//! ARQ shoot-out: alternating bit vs. go-back-N vs. Stenning over
//! increasingly lossy FIFO links, plus crash-recovery of the non-volatile
//! protocol — the workloads the paper's introduction motivates.
//!
//! ```text
//! cargo run --example arq_over_lossy_link
//! ```

use datalink::core::action::{Dir, Station};
use datalink::core::spec::datalink::DlModule;
use datalink::ioa::schedule_module::{ScheduleModule, TraceKind};
use datalink::sim::{link_system, Metrics, Runner, Script};
use dl_channels::{LossMode, LossyFifoChannel};

const MSGS: u64 = 40;

fn run_with<T, R>(tx: T, rx: R, mode: LossMode, seed: u64) -> Metrics
where
    T: datalink::ioa::Automaton<Action = datalink::core::action::DlAction>,
    R: datalink::ioa::Automaton<Action = datalink::core::action::DlAction>,
{
    let sys = link_system(
        tx,
        rx,
        LossyFifoChannel::new(Dir::TR, mode),
        LossyFifoChannel::new(Dir::RT, mode),
    );
    let mut runner = Runner::new(seed, 5_000_000);
    let report = runner.run(&sys, &Script::deliver_n(MSGS));
    assert!(report.quiescent, "run did not quiesce");
    assert_eq!(
        report.metrics.msgs_received, MSGS,
        "not all messages delivered"
    );
    let verdict = DlModule::full().check(&report.behavior, TraceKind::Complete);
    assert!(verdict.is_allowed(), "DL violated: {verdict}");
    report.metrics
}

fn main() {
    println!("delivering {MSGS} messages per cell; reporting data packets sent (overhead ×)\n");
    println!(
        "{:<20} {:>14} {:>14} {:>14}",
        "protocol", "lossless", "drop 1/4", "drop 1/2 (~)"
    );

    let modes = [
        ("lossless", LossMode::None),
        ("drop 1/4", LossMode::EveryNth(4)),
        ("drop ~1/2", LossMode::Nondet),
    ];

    let row = |name: &str, f: &dyn Fn(LossMode, u64) -> Metrics| {
        let cells: Vec<String> = modes
            .iter()
            .map(|(_, mode)| {
                let m = f(*mode, 7);
                format!(
                    "{} ({:.2}×)",
                    m.pkts_sent[0],
                    m.overhead().unwrap_or(f64::NAN)
                )
            })
            .collect();
        println!(
            "{:<20} {:>14} {:>14} {:>14}",
            name, cells[0], cells[1], cells[2]
        );
    };

    row("alternating-bit", &|mode, seed| {
        let p = datalink::protocols::abp::protocol();
        run_with(p.transmitter, p.receiver, mode, seed)
    });
    for w in [2, 4, 8] {
        let name = format!("sliding-window({w})");
        row(&name, &|mode, seed| {
            let p = datalink::protocols::sliding_window::protocol(w);
            run_with(p.transmitter, p.receiver, mode, seed)
        });
    }
    for w in [2, 4] {
        let name = format!("selective-repeat({w})");
        row(&name, &|mode, seed| {
            let p = datalink::protocols::selective_repeat::protocol(w);
            run_with(p.transmitter, p.receiver, mode, seed)
        });
    }
    row("fragmenting (k=2)", &|mode, seed| {
        let p = datalink::protocols::fragmenting::protocol();
        run_with(p.transmitter, p.receiver, mode, seed)
    });
    row("parity (§9)", &|mode, seed| {
        let p = datalink::protocols::parity::protocol();
        run_with(p.transmitter, p.receiver, mode, seed)
    });
    row("stenning", &|mode, seed| {
        let p = datalink::protocols::stenning::protocol();
        run_with(p.transmitter, p.receiver, mode, seed)
    });

    // Crash recovery: the non-volatile protocol keeps delivering across
    // repeated host crashes (what [BS83]-style initialization buys you).
    println!("\ncrash-recovery (non-volatile epoch protocol):");
    let p = datalink::protocols::nonvolatile::protocol();
    let sys = link_system(
        p.transmitter,
        p.receiver,
        LossyFifoChannel::new(Dir::TR, LossMode::EveryNth(4)),
        LossyFifoChannel::new(Dir::RT, LossMode::EveryNth(4)),
    );
    let mut script = Script::new().wake_both();
    let mut next = 0u64;
    for round in 0..6 {
        script = script.send_msgs(next, 5).settle();
        next += 5;
        let station = if round % 2 == 0 {
            Station::T
        } else {
            Station::R
        };
        script = script.crash_and_rewake(station);
    }
    script = script.send_msgs(next, 5).settle();
    let mut runner = Runner::new(3, 5_000_000);
    let report = runner.run(&sys, &script);
    let verdict = DlModule::weak().check(&report.behavior, TraceKind::Prefix);
    println!(
        "  {} crashes injected, {} of {} messages delivered, WDL safety: {}",
        report.metrics.crashes, report.metrics.msgs_received, report.metrics.msgs_sent, verdict
    );
    assert!(verdict.is_allowed());
    assert_eq!(report.metrics.msgs_received, report.metrics.msgs_sent);
}
