//! Theorem 7.5, live: mechanically derive a WDL-violating execution from
//! the alternating bit protocol by crashing and replaying (the paper's §7
//! pump), then show that the non-volatile protocol escapes the same
//! construction.
//!
//! ```text
//! cargo run --example crash_counterexample
//! ```

use datalink::impossibility::crash::refute_crash_tolerance;
use datalink::impossibility::explain_crash;
use datalink::protocols::{abp, nonvolatile, sliding_window};

fn main() {
    println!("=== Theorem 7.5: no crashing, message-independent protocol");
    println!("=== tolerates host crashes, even over FIFO channels\n");

    // Victim 1: the alternating bit protocol.
    let p = abp::protocol();
    let cx = refute_crash_tolerance(p.transmitter, p.receiver)
        .expect("ABP satisfies the theorem's hypotheses");
    println!("victim: {}", p.info.name);
    print!("{}", explain_crash(&cx));

    // Victim 2: go-back-N with a wider window fares no better.
    let p = sliding_window::protocol(4);
    let cx = refute_crash_tolerance(p.transmitter, p.receiver)
        .expect("sliding window satisfies the hypotheses");
    println!(
        "\nvictim: {} (window 4) — {} pumps → {}",
        p.info.name, cx.pumps, cx.violation
    );

    // The boundary: one piece of non-volatile state defeats the pump.
    let p = nonvolatile::protocol();
    let err = refute_crash_tolerance(p.transmitter, p.receiver)
        .expect_err("the non-volatile protocol is not crashing");
    println!("\nescape hatch: {} →\n  {err}", p.info.name);
    println!(
        "\n(Baratz–Segall [BS83] show a single non-volatile bit suffices; the\n\
         paper proves the *zero* non-volatile bits case is impossible.)"
    );
}
