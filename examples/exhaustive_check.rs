//! Exhaustive small-model verification: every interleaving of a bounded
//! alternating-bit system, checked against the WDL-safety observer by the
//! parallel `dl-explore` engine — including the shortest crash
//! counterexample, found by brute force.
//!
//! ```text
//! cargo run --example exhaustive_check
//! ```

use datalink::channels::{LossMode, LossyFifoChannel};
use datalink::core::action::{format_trace, Dir, DlAction, Msg, Station};
use datalink::core::observer::{ObserverState, WdlObserver};
use datalink::explore::ParallelExplorer;
use datalink::ioa::composition::Compose2;
use datalink::ioa::Automaton;
use datalink::protocols::{AbpReceiver, AbpTransmitter};

type Sys = Compose2<
    Compose2<AbpTransmitter, AbpReceiver>,
    Compose2<Compose2<LossyFifoChannel, LossyFifoChannel>, WdlObserver>,
>;

fn system(cap: usize) -> Sys {
    let p = datalink::protocols::abp::protocol();
    Compose2::new(
        Compose2::new(p.transmitter, p.receiver),
        Compose2::new(
            Compose2::new(
                LossyFifoChannel::with_capacity(Dir::TR, LossMode::Nondet, cap),
                LossyFifoChannel::with_capacity(Dir::RT, LossMode::Nondet, cap),
            ),
            WdlObserver,
        ),
    )
}

fn observer_of(s: &<Sys as Automaton>::State) -> &ObserverState {
    &s.right.right
}

fn main() {
    // Part 1: crash-free, all interleavings of 2 messages over lossy
    // bounded channels — exhaustively safe.
    let sys = system(2);
    let s0 = sys.start_states().remove(0);
    let s1 = sys.step_first(&s0, &DlAction::Wake(Dir::TR)).unwrap();
    let start = sys.step_first(&s1, &DlAction::Wake(Dir::RT)).unwrap();

    let explorer = ParallelExplorer::new(
        &sys,
        |s: &<Sys as Automaton>::State| {
            let obs = observer_of(s);
            (0..2)
                .map(Msg)
                .find(|m| !obs.sent.contains(m))
                .map(DlAction::SendMsg)
                .into_iter()
                .collect()
        },
        1_000_000,
        10_000,
    );
    let report = explorer.check_invariant_from(vec![start.clone()], |s| observer_of(s).is_safe());
    assert!(report.holds());
    println!(
        "crash-free ABP, 2 messages, nondet loss, channel capacity 2:\n  \
         {} reachable states, every interleaving WDL-safe\n  \
         ({} threads, {} BFS layers, {} transitions, {:?})\n",
        report.states_visited,
        report.threads,
        report.layers.len(),
        report.edges_expanded(),
        report.duration
    );

    // Part 2: allow receiver crashes — BFS finds the shortest duplicate-
    // delivery counterexample, the same one at any thread count.
    let explorer = ParallelExplorer::new(
        &sys,
        |s: &<Sys as Automaton>::State| {
            let mut out = Vec::new();
            if !observer_of(s).sent.contains(&Msg(0)) {
                out.push(DlAction::SendMsg(Msg(0)));
            }
            out.push(DlAction::Crash(Station::R));
            if !s.left.right.active {
                out.push(DlAction::Wake(Dir::RT));
            }
            out
        },
        1_000_000,
        10_000,
    );
    let report = explorer.check_invariant_from(vec![start], |s| observer_of(s).is_safe());
    let v = report.violation.expect("crash must break ABP");
    println!(
        "with crash^r,t allowed: shortest counterexample after exploring {} states:",
        report.states_visited
    );
    print!("{}", format_trace(&v.path));
    println!("\nobserver flag: {:?}", observer_of(&v.state).flag);
    println!(
        "\n→ the receiver crashed between accepting DATA#0 and the duplicate's\n\
         arrival; its reset expectation re-accepted the stale copy. This is the\n\
         same phenomenon the §7 engine constructs — found here by brute force."
    );
}
