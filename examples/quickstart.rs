//! Quickstart: build a data link implementation (paper Figure 3), run it
//! over lossy FIFO channels, and check its behavior against the `DL`
//! specification.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use datalink::channels::{LossMode, LossyFifoChannel};
use datalink::core::action::{format_trace, Dir};
use datalink::core::spec::datalink::DlModule;
use datalink::ioa::schedule_module::{ScheduleModule, TraceKind};
use datalink::protocols::abp;
use datalink::sim::{link_system, Runner, Script};

fn main() {
    // 1. A data link protocol: the alternating bit protocol (Aᵗ, Aʳ).
    let protocol = abp::protocol();
    println!("protocol: {}", protocol.info.name);
    println!(
        "  crashing: {}, header bound: {:?}, k-bound: {:?}",
        protocol.info.crashing, protocol.info.header_bound, protocol.info.k_bound
    );

    // 2. Two physical channels that drop every 3rd / 4th packet.
    let ch_tr = LossyFifoChannel::new(Dir::TR, LossMode::EveryNth(3));
    let ch_rt = LossyFifoChannel::new(Dir::RT, LossMode::EveryNth(4));

    // 3. The §5.2 composition: hide_Φ(Aᵗ × Aʳ × C^{t,r} × C^{r,t}).
    let system = link_system(protocol.transmitter, protocol.receiver, ch_tr, ch_rt);

    // 4. Wake both media, send 8 messages, run to quiescence.
    let script = Script::deliver_n(8);
    let mut runner = Runner::new(42, 1_000_000);
    let report = runner.run(&system, &script);

    println!("\ndata-link behavior (external actions):");
    print!("{}", format_trace(&report.behavior));

    println!("\nmetrics:");
    println!(
        "  messages sent/received: {}/{}",
        report.metrics.msgs_sent, report.metrics.msgs_received
    );
    println!(
        "  packets sent t→r: {} (overhead {:.2}× from retransmissions)",
        report.metrics.pkts_sent[0],
        report.metrics.overhead().unwrap_or(f64::NAN)
    );
    println!(
        "  distinct headers used: {}",
        report.metrics.headers_used.len()
    );
    println!("  quiescent: {}", report.quiescent);

    // 5. Judge the complete behavior against the full DL specification
    //    (DL1–DL8, including FIFO order and liveness).
    let verdict = DlModule::full().check(&report.behavior, TraceKind::Complete);
    println!("\nDL specification verdict: {verdict}");
    assert!(
        verdict.is_allowed(),
        "ABP over lossy FIFO channels must satisfy DL"
    );
}
