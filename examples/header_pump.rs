//! Theorem 8.5, live: pump a bounded-header protocol over a reordering
//! channel until stale packets can impersonate a fresh transmission; then
//! show Stenning's unbounded headers escaping the same pump with linearly
//! growing header usage (the paper's §9 observation).
//!
//! ```text
//! cargo run --example header_pump
//! ```

use datalink::core::action::format_trace;
use datalink::impossibility::headers::{
    refute_bounded_headers, HeaderConfig, HeaderEngine, HeaderOutcome,
};
use datalink::protocols::{abp, sliding_window, stenning};

fn main() {
    println!("=== Theorem 8.5: bounded headers cannot survive a non-FIFO");
    println!("=== physical channel\n");

    // Victim 1: ABP (4 headers).
    let p = abp::protocol();
    match refute_bounded_headers(p).unwrap() {
        HeaderOutcome::Violation(cx) => {
            println!("victim: alternating-bit — {} pump rounds", cx.rounds);
            println!("violation: {}", cx.violation);
            println!("\nimpersonation map (fresh packet ← stale in-transit packet):");
            for (fresh, old) in &cx.matched {
                println!("  {fresh}  ←  {old}");
            }
            println!("\nthe violating data-link behavior:");
            print!("{}", format_trace(&cx.behavior));
        }
        other => panic!("ABP must be refutable: {other:?}"),
    }

    // Victim 2: sliding window, window 3 (8 headers): more rounds needed.
    let p = sliding_window::protocol(3);
    match refute_bounded_headers(p).unwrap() {
        HeaderOutcome::Violation(cx) => {
            println!(
                "\nvictim: sliding-window(3) — {} pump rounds → {}",
                cx.rounds, cx.violation
            );
        }
        other => panic!("sliding window must be refutable: {other:?}"),
    }

    // The escape: Stenning's protocol never reuses a header, so the pump
    // can only watch the in-transit pool grow — one fresh class per round.
    let p = stenning::protocol();
    let config = HeaderConfig {
        max_rounds: 16,
        ..HeaderConfig::default()
    };
    match HeaderEngine::new(p.transmitter, p.receiver, config)
        .run()
        .unwrap()
    {
        HeaderOutcome::Exhausted {
            rounds,
            transit_size,
            distinct_classes,
        } => {
            println!(
                "\nescape hatch: stenning — after {rounds} pump rounds the trap never \
                 sprang:\n  {transit_size} packets stranded in transit, \
                 {distinct_classes} distinct header classes\n  (≥ one fresh class per \
                 round: header usage grows linearly, as §9 observes)"
            );
        }
        other => panic!("Stenning must not be refutable: {other:?}"),
    }
}
