#!/usr/bin/env bash
# Repository check gate: formatting, lints (warnings are errors), tests.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "All checks passed."
