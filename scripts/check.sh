#!/usr/bin/env bash
# Repository check gate, split into named fail-fast stages.
#
#   scripts/check.sh                 run every stage in order
#   scripts/check.sh --stage NAME    run a single stage
#   scripts/check.sh --list          list stage names and exit
#
# Each stage's wall-clock time is reported as it finishes and summarized
# at the end. The first failing stage aborts the run (set -e), so the
# summary of a failed run shows exactly how far it got.
set -euo pipefail
cd "$(dirname "$0")/.."

STAGES=(toolchain fmt clippy test obs scaling explore-deep monitor-smoke fuzz-smoke fleet-smoke stabilize-smoke alloc differential cross-check bench-smoke)

stage_toolchain() {
  # The container pins the toolchain by version, not by channel file
  # alone: rust-toolchain.toml says "stable", and this stage verifies
  # that "stable" still means the version the repo was validated with.
  local pinned actual
  pinned=$(sed -n 's/^# pinned-version: //p' rust-toolchain.toml)
  actual=$(cargo --version | awk '{print $2}')
  echo "    pinned ${pinned}, active ${actual}"
  if [[ -z "$pinned" ]]; then
    echo "toolchain: rust-toolchain.toml is missing its pinned-version comment" >&2
    return 1
  fi
  if [[ "$actual" != "$pinned" ]]; then
    echo "toolchain: active cargo ${actual} != pinned ${pinned} (update rust-toolchain.toml deliberately)" >&2
    return 1
  fi
}

stage_fmt() {
  cargo fmt --all -- --check
}

stage_clippy() {
  cargo clippy --workspace --all-targets -- -D warnings
  cargo clippy --workspace --all-targets --features dl-bench/obs -- -D warnings
}

stage_test() {
  cargo test -q --workspace
}

stage_obs() {
  # The observability differential: every pinned engine output must be
  # identical with the `obs` feature off (default) and on. One process
  # cannot compile both configurations, so the test runs twice.
  cargo test -q -p dl-bench --test obs_differential
  cargo test -q -p dl-bench --test obs_differential --features obs
  cargo test -q -p dl-bench --features obs
}

stage_scaling() {
  # 10^5-action trace through the streaming checkers, release; must stay
  # well under 1 s.
  cargo test --release -q -p dl-core --test monitor_props scaling_smoke
}

stage_explore_deep() {
  # Scaled-down `explore/deep` leg, release: the packed backend and the
  # lock-free visited set reproduce identical counters and layer
  # histograms at 1/2/4 threads (the full ≥10⁶-state run lives in
  # `scripts/bench.sh` / bench/baseline.json).
  cargo test --release -q -p dl-bench --test explore_deep_smoke
}

stage_monitor_smoke() {
  # Batched monitor ingest at line rate, release: session-sharded 2·10⁶
  # action stream holds a loose actions/sec floor (the tight floor lives
  # in bench/baseline.json), plus the monitor's own alloc ceiling —
  # steady-state ingestion allocates nothing and the footprint tracks
  # peak live transit, not total sends.
  cargo test --release -q -p dl-bench --test monitor_smoke
  cargo test -q -p dl-fuzz --test monitor_alloc_ceiling
}

stage_fuzz_smoke() {
  # Fixed seed, bounded execs, release: quirky DL4 + ABP crash pump
  # rediscovered, every counterexample replays byte-identically.
  cargo test --release -q -p dl-fuzz --test smoke
}

stage_fleet_smoke() {
  # Bounded mixed-protocol fleet: 400 monitored sessions with per-session
  # fault schedules and crash scripts complete, replay byte-identically,
  # and emit a well-formed ledger; plus the fleet-vs-independent-runners
  # differential at 1/2/4 workers.
  cargo test --release -q -p dl-fleet --test fleet_smoke --test differential
}

stage_stabilize_smoke() {
  # Self-stabilization from corrupted initial configurations, release:
  # bounded convergence runs over the corrupted fault class (hand-built
  # corruption genes + a cold-start fuzz campaign that must find no
  # counterexample), the stabilizing-fleet worker-count differential
  # with convergence-index pins, and the explorer's shortest path into
  # the stabilized region.
  cargo test --release -q -p dl-fuzz --test stabilize_smoke
  cargo test --release -q -p dl-fleet --test differential stabilizing_fleet
  cargo test --release -q --test model_checking corrupted_stabilizing
}

stage_alloc() {
  # Counting allocator: steady-state allocs per fuzz exec and per
  # explored edge (both visited-set backends) under the pinned ceilings.
  cargo test -q -p dl-fuzz --test alloc_regression
  cargo test -q -p dl-explore --test alloc_ceiling
}

stage_differential() {
  # Scratch-buffer runner byte-identical to the frozen clone-based
  # executor.
  cargo test -q -p dl-sim --test interned_runner_differential
}

stage_cross_check() {
  # Cross-formalism differential, release: the independent checker
  # (own hashing, own visited set, own BFS) agrees with the parallel
  # explorer field by field — state counts, diameters, per-layer stats,
  # and minimal counterexample traces — across the zoo, including the
  # Lemma 7.2 crash pump; and the committed TLA+ goldens are
  # byte-identical to fresh emission.
  cargo test --release -q -p dl-crosscheck
  cargo run -q --release -p dl-crosscheck --bin emit_tla -- --check crates/crosscheck/tla
}

stage_bench_smoke() {
  # Release benches + ledger binaries build without running.
  cargo bench --no-run -q -p dl-bench --bench model_check --bench parallel_explore
  cargo build -q --release -p dl-bench --features obs --bin ledger_run --bin bench_gate
}

list_stages() {
  printf '%s\n' "${STAGES[@]}"
}

run_stage() {
  local name=$1 fn=stage_${1//-/_}
  echo "==> ${name}"
  local start end
  start=$(date +%s)
  "$fn"
  end=$(date +%s)
  TIMINGS+=("$(printf '%-12s %4ds' "$name" $((end - start)))")
  echo "    ${name}: $((end - start))s"
}

TIMINGS=()

case "${1:-}" in
  --list)
    list_stages
    exit 0
    ;;
  --stage)
    stage=${2:?"usage: check.sh --stage NAME (see --list)"}
    if ! printf '%s\n' "${STAGES[@]}" | grep -qx "$stage"; then
      echo "check.sh: unknown stage '${stage}'; stages: ${STAGES[*]}" >&2
      exit 2
    fi
    run_stage "$stage"
    exit 0
    ;;
  "")
    ;;
  *)
    echo "usage: check.sh [--stage NAME | --list]" >&2
    exit 2
    ;;
esac

overall_start=$(date +%s)
for s in "${STAGES[@]}"; do
  run_stage "$s"
done
overall_end=$(date +%s)

echo
echo "stage timings:"
printf '  %s\n' "${TIMINGS[@]}"
echo "  total        $((overall_end - overall_start))s"
echo "All checks passed."
