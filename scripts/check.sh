#!/usr/bin/env bash
# Repository check gate: formatting, lints (warnings are errors), tests.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> checker scaling smoke (10^5-action trace, release, must stay well under 1 s)"
cargo test --release -q -p dl-core --test monitor_props scaling_smoke

echo "==> fuzz smoke (fixed seed, bounded execs, release: quirky DL4 + ABP crash pump rediscovered, every counterexample replays byte-identically)"
cargo test --release -q -p dl-fuzz --test smoke

echo "==> allocation-regression smoke (counting allocator: steady-state allocs per fuzz exec under the pinned ceiling)"
cargo test -q -p dl-fuzz --test alloc_regression

echo "==> interned-runner differential (scratch-buffer runner byte-identical to the frozen clone-based executor)"
cargo test -q -p dl-sim --test interned_runner_differential

echo "==> bench compile smoke (release: model_check + parallel_explore build without running)"
cargo bench --no-run -q -p dl-bench --bench model_check --bench parallel_explore

echo "All checks passed."
