#!/usr/bin/env bash
# Performance harness: ledger-emitting release runs of the headline
# experiments (E9 explore, E11 sim, E12 fuzz, E13 fleet, the 10⁷-action
# session-sharded monitor ingest, E16 cross-check, both impossibility
# constructions), written to bench/out/BENCH_<date>.json and gated
# against the committed bench/baseline.json.
#
#   scripts/bench.sh                  run workloads, write bench/out/BENCH_<date>.json
#   scripts/bench.sh --gate           ...and fail on regression vs baseline
#   scripts/bench.sh --update-baseline  rewrite bench/baseline.json (relaxed)
#   scripts/bench.sh --full           also run the criterion benches first
#
# Gate rules (dl_obs::gate): throughput gauges (*_per_sec) must not drop
# more than 25 % below baseline; latency gauges (*_micros) and allocation
# counters (*_bytes, *_allocs) must not grow more than 25 %; every
# baseline run and metric must still exist. See DESIGN.md for the
# baseline-update workflow.
#
# DL_BENCH_SLEEP_US (microseconds) injects a synthetic stall into every
# measured window — it exists so the test suite can prove a fake slowdown
# fails the gate. Leave it unset for real measurements.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=run
case "${1:-}" in
  "") ;;
  --gate) MODE=gate ;;
  --update-baseline) MODE=update ;;
  --full) MODE=full ;;
  *)
    echo "usage: bench.sh [--gate | --update-baseline | --full]" >&2
    exit 2
    ;;
esac

echo "==> build (release, --features obs)"
cargo build -q --release -p dl-bench --features obs --bin ledger_run --bin bench_gate

if [[ $MODE == full ]]; then
  echo "==> criterion benches (release)"
  cargo bench -q -p dl-bench --bench model_check --bench parallel_explore
fi

if [[ $MODE == update ]]; then
  echo "==> rewriting bench/baseline.json (relaxed tolerances)"
  ./target/release/ledger_run --relax-baseline --out bench/baseline.json
  echo "    review the diff and commit it together with the change that moved the numbers"
  exit 0
fi

mkdir -p bench/out
OUT="bench/out/BENCH_$(date +%Y%m%d).json"
echo "==> ledger runs -> ${OUT}"
./target/release/ledger_run --out "$OUT"

if [[ $MODE == gate ]]; then
  echo "==> gate vs bench/baseline.json"
  ./target/release/bench_gate bench/baseline.json "$OUT"
fi
