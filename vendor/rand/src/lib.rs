//! Vendored offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *minimal* RNG surface it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) plus uniform range sampling
//! ([`RngExt::random_range`]). The generator is splitmix64 — statistically
//! fine for schedule tie-breaking and property-test data, which is all the
//! workspace asks of it. It is **not** the real `rand` crate and makes no
//! cryptographic claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng {
    use crate::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand`'s
    /// `StdRng`. Same seed, same stream — that reproducibility is the only
    /// property the workspace relies on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                // Pre-scramble so seeds 0 and 1 do not yield nearly equal
                // low-order output words early in the stream.
                state: state.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x6A09_E667_F3BC_C909,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw word-at-a-time generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[lo, hi)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Modulo bias is < 2^-32 for every span this workspace
                // draws from (all are tiny); acceptable for a shim.
                lo.wrapping_add((rng.next_u64() % span) as Self)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Convenience sampling methods, mirroring `rand`'s `Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// Uniform draw from the half-open `range`.
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self) -> bool
    where
        Self: Sized,
    {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
        }
        for _ in 0..1000 {
            let x = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn all_residues_reachable() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
