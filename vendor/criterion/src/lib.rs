//! Vendored offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of criterion's API its benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`bench_function` / `bench_with_input` /
//! `sample_size` / `finish`), [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each sample is one timed call of the `iter` closure
//! body, with one untimed warm-up call first. The number of samples is
//! `sample_size` (default 10), adaptively reduced so a single benchmark
//! stays under roughly three seconds of sampling. Output is
//! `group/id: median …` on stdout. In test mode (`cargo test` on a
//! `harness = false` bench target, detected by the absence of `--bench`
//! in the arguments) every benchmark body runs exactly once, untimed, so
//! tier-1 verification stays fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, constructed by [`criterion_group!`].
pub struct Criterion {
    bench_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Builds a driver from the process arguments, as `cargo bench` /
    /// `cargo test` invoke a `harness = false` target.
    #[must_use]
    pub fn from_args() -> Self {
        let mut bench_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => bench_mode = true,
                "--test" => bench_mode = false,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { bench_mode, filter }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (bench_mode, filter) = (self.bench_mode, self.filter.clone());
        run_one(bench_mode, filter.as_deref(), 10, &id.into().label, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(
            self.criterion.bench_mode,
            self.criterion.filter.as_deref(),
            self.sample_size,
            &label,
            f,
        );
        self
    }

    /// Benchmarks `f(input)` under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op in the shim, kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, `function_name/parameter` or either half alone.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    bench_mode: bool,
    sample_size: usize,
    ran: bool,
    label: String,
}

impl Bencher {
    /// Times `f`, one call per sample, and prints a summary line.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.ran = true;
        if !self.bench_mode {
            black_box(f());
            return;
        }
        // Untimed warm-up; also sizes the adaptive sample budget.
        let warm = Instant::now();
        black_box(f());
        let per_call = warm.elapsed();
        let budget = Duration::from_secs(3);
        let affordable = if per_call.is_zero() {
            self.sample_size
        } else {
            (budget.as_nanos() / per_call.as_nanos().max(1)) as usize
        };
        let samples = self.sample_size.min(affordable).max(3);

        let mut times: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed());
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{:<60} median {:>12?}  mean {:>12?}  ({} samples)",
            self.label,
            median,
            mean,
            times.len()
        );
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    bench_mode: bool,
    filter: Option<&str>,
    sample_size: usize,
    label: &str,
    mut f: F,
) {
    if let Some(needle) = filter {
        if !label.contains(needle) {
            return;
        }
    }
    let mut b = Bencher {
        bench_mode,
        sample_size,
        ran: false,
        label: label.to_string(),
    };
    f(&mut b);
    assert!(b.ran, "benchmark {label} never called Bencher::iter");
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
