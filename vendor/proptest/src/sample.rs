//! Sampling helpers (`prop::sample::Index`).

use crate::arbitrary::Arbitrary;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size-independent index into a collection whose length is only known
/// at use time, mirroring `proptest::sample::Index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index(usize);

impl Index {
    /// Projects this value onto `[0, size)`. Panics if `size` is zero.
    #[must_use]
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "Index::index on an empty collection");
        self.0 % size
    }
}

/// Strategy generating [`Index`] values.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexStrategy;

impl Strategy for IndexStrategy {
    type Value = Index;
    fn sample(&self, rng: &mut TestRng) -> Index {
        Index(rng.next_u64() as usize)
    }
}

impl Arbitrary for Index {
    type Strategy = IndexStrategy;
    fn arbitrary() -> Self::Strategy {
        IndexStrategy
    }
}
