//! Vendored offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of proptest's API its tests actually use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`,
//! integer-range and tuple strategies, [`strategy::Just`],
//! [`collection::vec`], [`sample::Index`], `any::<T>()`, the
//! [`proptest!`] / [`prop_assert!`] / [`prop_oneof!`] macro family, and a
//! [`test_runner::TestRunner`] driving a configurable number of cases
//! from a deterministic seed.
//!
//! Deliberate differences from real proptest: **no shrinking** (a failing
//! case is reported as generated) and **deterministic seeding** (override
//! the case count with the `PROPTEST_CASES` environment variable).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The subset of `proptest::prelude` this workspace imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced re-exports, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property-test functions: each `fn name(pat in strategy, ...)`
/// body runs for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: recursively expands each test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            let outcome = runner.run(&($($strat,)+), |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(e) = outcome {
                ::core::panic!("{}", e);
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", format_args!($($fmt)*), file!(), line!()),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format_args!($($fmt)*)
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format_args!($($fmt)*)
        );
    }};
}

/// Uniform choice among strategies with a common `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}
