//! Case-driving runner, configuration, and the deterministic test RNG.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

use crate::strategy::Strategy;

/// The RNG handed to strategies.
///
/// Deterministic: a fixed base seed advanced across cases, so failures
/// reproduce run-to-run (there is no shrinking to rediscover them).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.random_range(0..n)
    }

    /// Uniform draw from `[lo, hi)` for unsigned types.
    pub fn uniform<T: rand::SampleUniform>(&mut self, lo: T, hi: T) -> T {
        self.inner.random_range(lo..hi)
    }

    /// Uniform draw from `[lo, hi)` for signed types.
    pub fn uniform_signed<T: rand::SampleUniform>(&mut self, lo: T, hi: T) -> T {
        self.inner.random_range(lo..hi)
    }
}

/// How many cases to run per property.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Config { cases }
    }
}

/// A single case's failure.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed case with the given reason.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A whole property's failure: the first failing case, unshrunk.
#[derive(Debug, Clone)]
pub struct TestError {
    case: u32,
    inner: TestCaseError,
}

impl fmt::Display for TestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "property failed at case {} (vendored proptest shim, no shrinking): {}",
            self.case, self.inner
        )
    }
}

impl std::error::Error for TestError {}

/// Runs a property over `config.cases` generated cases.
pub struct TestRunner {
    config: Config,
    rng: TestRng,
}

impl TestRunner {
    /// A runner with the given config and the deterministic base seed.
    #[must_use]
    pub fn new(config: Config) -> Self {
        TestRunner {
            config,
            rng: TestRng::from_seed(0x1988_0D11),
        }
    }

    /// Generates `cases` values from `strategy` and feeds each to `test`.
    ///
    /// # Errors
    ///
    /// The first case on which `test` returns `Err`, without shrinking.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let value = strategy.sample(&mut self.rng);
            test(value).map_err(|inner| TestError { case, inner })?;
        }
        Ok(())
    }
}
