//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length interval for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            self.size.min + rng.below(self.size.max - self.size.min + 1)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
