//! The [`Strategy`] trait and core combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Strategy,
        F: Fn(Self::Value) -> U,
    {
        FlatMap { source: self, f }
    }

    /// Type-erases this strategy behind a cheaply cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    U: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U::Value;
    fn sample(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// A type-erased, cheaply cloneable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Uniform choice among alternatives; the expansion of [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given (non-empty) alternatives.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len());
        self.arms[pick].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.uniform(self.start, self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                // Half-open sampling is exact for every inclusive range the
                // workspace uses (none end at the type's MAX).
                rng.uniform(*self.start(), self.end().checked_add(1).expect(
                    "inclusive range ending at MAX is not supported by the vendored shim",
                ))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.uniform_signed(self.start, self.end)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
