//! `any::<T>()` — canonical strategies per type.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Canonical full-domain strategy for a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrim<T>(PhantomData<T>);

impl<T> Default for AnyPrim<T> {
    fn default() -> Self {
        AnyPrim(PhantomData)
    }
}

impl Strategy for AnyPrim<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim::default()
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrim::default()
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
