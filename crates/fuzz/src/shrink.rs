//! Delta-debugging counterexample shrinker.
//!
//! Given a genome whose execution exhibits a violation of some property,
//! [`shrink`] searches for a smaller genome exhibiting the **same**
//! property (validity = same `Violation::property` string): first classic
//! ddmin over the gene sequence (chunk removal with halving granularity),
//! then per-gene numeric simplification (step counts to 1, fault knobs
//! toward [`FaultSpec::none`](dl_channels::FaultSpec::none), override
//! values to 0). Every candidate is judged by a fresh deterministic
//! execution, so the result is exactly as replayable as the original —
//! the shrunk `(seed, genome)` pair alone reproduces the violating trace.

use dl_channels::FaultSpec;

use crate::genome::{Corruption, Gene, Genome};
use crate::target::{ExecConfig, Target};

/// Returns `true` if `genome` still exhibits a violation of `property`.
fn reproduces(target: &Target, genome: &Genome, cfg: &ExecConfig, property: &str) -> bool {
    (target.run)(genome, cfg)
        .violation
        .as_ref()
        .is_some_and(|v| v.property == property)
}

/// Simpler variants of one gene, most aggressive first.
fn simplifications(gene: &Gene) -> Vec<Gene> {
    match gene {
        Gene::Steps(n) if *n > 1 => vec![Gene::Steps(1), Gene::Steps(n / 2)],
        Gene::FaultsTr(s) => spec_simplifications(s)
            .into_iter()
            .map(Gene::FaultsTr)
            .collect(),
        Gene::FaultsRt(s) => spec_simplifications(s)
            .into_iter()
            .map(Gene::FaultsRt)
            .collect(),
        Gene::Sched { index, value } if *value > 0 => vec![Gene::Sched {
            index: *index,
            value: 0,
        }],
        Gene::Corrupt(c) if *c != Corruption::default() => {
            let mut out = vec![Gene::Corrupt(Corruption::default())];
            if c.ghosts_tr > 0 || c.ghosts_rt > 0 {
                out.push(Gene::Corrupt(Corruption {
                    ghosts_tr: 0,
                    ghosts_rt: 0,
                    ..*c
                }));
            }
            if c.tx_seq > 0 || c.rx_expected > 0 {
                out.push(Gene::Corrupt(Corruption {
                    tx_seq: 0,
                    rx_expected: 0,
                    ..*c
                }));
            }
            if c.seed != 0 {
                out.push(Gene::Corrupt(Corruption { seed: 0, ..*c }));
            }
            out
        }
        _ => vec![],
    }
}

fn spec_simplifications(s: &FaultSpec) -> Vec<FaultSpec> {
    let mut out = Vec::new();
    if *s != FaultSpec::none() {
        out.push(FaultSpec::none());
    }
    if s.loss > 0 {
        out.push(FaultSpec { loss: 0, ..*s });
    }
    if s.dup > 0 {
        out.push(FaultSpec { dup: 0, ..*s });
    }
    if s.reorder > 0 {
        out.push(FaultSpec { reorder: 0, ..*s });
    }
    if s.burst_bad > 0 || s.burst_good > 0 {
        out.push(FaultSpec {
            burst_good: 0,
            burst_bad: 0,
            ..*s
        });
    }
    if s.salt != 0 {
        out.push(FaultSpec { salt: 0, ..*s });
    }
    out
}

/// Minimizes `genome` while preserving a violation of `property`.
///
/// The caller must have observed `property` on `genome`; if the input no
/// longer reproduces (flaky oracle — impossible here since executions are
/// deterministic), the input is returned unchanged.
#[must_use]
pub fn shrink(target: &Target, genome: &Genome, cfg: &ExecConfig, property: &str) -> Genome {
    shrink_counted(target, genome, cfg, property).0
}

/// Like [`shrink`], additionally returning how many candidate executions
/// the search spent (every ddmin cut and numeric simplification costs one
/// deterministic run). Deterministic for a fixed input, so the count
/// lands in the fuzz ledger as a counter.
#[must_use]
pub fn shrink_counted(
    target: &Target,
    genome: &Genome,
    cfg: &ExecConfig,
    property: &str,
) -> (Genome, u64) {
    let mut execs = 1u64;
    if !reproduces(target, genome, cfg, property) {
        return (genome.clone(), execs);
    }
    let mut best = genome.clone();

    // Phase 1: ddmin over the gene sequence. Chunk removal with halving
    // granularity, restarted from the largest chunk whenever a removal
    // sticks (the sequence shrank, so earlier failed cuts may now work).
    loop {
        let before = best.genes.len();
        let mut chunk = (best.genes.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < best.genes.len() {
                let end = (i + chunk).min(best.genes.len());
                let mut candidate = best.clone();
                candidate.genes.drain(i..end);
                execs += 1;
                if reproduces(target, &candidate, cfg, property) {
                    best = candidate;
                } else {
                    i = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        if best.genes.len() == before {
            break;
        }
    }

    // Phase 2: per-gene numeric simplification, to a bounded fixpoint.
    for _ in 0..4 {
        let mut changed = false;
        for i in 0..best.genes.len() {
            for simpler in simplifications(&best.genes[i]) {
                let mut candidate = best.clone();
                candidate.genes[i] = simpler;
                execs += 1;
                if reproduces(target, &candidate, cfg, property) {
                    best = candidate;
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }

    (best, execs)
}

/// Runs `genome` twice and checks the two executions are byte-identical
/// (same stamped schedule, same violation) — the replayability guarantee
/// every emitted counterexample must satisfy.
#[must_use]
pub fn replays_identically(target: &Target, genome: &Genome, cfg: &ExecConfig) -> bool {
    let a = (target.run)(genome, cfg);
    let b = (target.run)(genome, cfg);
    a.schedule == b.schedule && a.violation == b.violation
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::target;
    use dl_core::action::Station;

    #[test]
    fn shrink_prunes_irrelevant_genes() {
        // A deliberately bloated crash-pump genome: the noise genes
        // (flaps, extra steps, an irrelevant fault block) must go.
        let bloated = Genome {
            seed: 2,
            genes: vec![
                Gene::Flap(dl_core::action::Dir::RT),
                Gene::Send,
                Gene::Steps(37),
                Gene::FaultsRt(FaultSpec {
                    reorder: 3,
                    salt: 99,
                    ..FaultSpec::none()
                }),
                Gene::Crash(Station::T),
                Gene::Send,
                Gene::Settle,
                Gene::Steps(20),
            ],
        };
        let t = target("abp").unwrap();
        let cfg = ExecConfig::default();
        let out = (t.run)(&bloated, &cfg);
        let property = out.violation.expect("bloated genome violates").property;
        let shrunk = shrink(t, &bloated, &cfg, property);
        assert!(shrunk.genes.len() < bloated.genes.len());
        // Still reproduces the same property, and replays identically.
        assert!(reproduces(t, &shrunk, &cfg, property));
        assert!(replays_identically(t, &shrunk, &cfg));
        // The crash and at least one send must survive: the violation
        // needs them.
        assert!(shrunk.genes.iter().any(|g| matches!(g, Gene::Crash(_))));
        assert!(shrunk.genes.iter().any(|g| matches!(g, Gene::Send)));
    }

    #[test]
    fn shrink_returns_input_when_nothing_reproduces() {
        let clean = Genome {
            seed: 1,
            genes: vec![Gene::Send],
        };
        let t = target("abp").unwrap();
        let cfg = ExecConfig::default();
        assert_eq!(shrink(t, &clean, &cfg, "DL4"), clean);
    }
}
