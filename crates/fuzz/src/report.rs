//! Fuzzing campaign reports: throughput, coverage growth, corpus shape,
//! and shrunk counterexamples.

use std::fmt;
use std::time::Duration;

use ioa::schedule_module::Violation;

use dl_core::action::{format_trace, DlAction};

use crate::corpus::CorpusStats;
use crate::genome::Genome;

/// One shrunk, replay-verified counterexample.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Which target it was found on.
    pub target: &'static str,
    /// The violated property (earliest finding for this property).
    pub violation: Violation,
    /// The shrunk genome; running it reproduces [`Counterexample::trace`]
    /// exactly.
    pub genome: Genome,
    /// Gene count before shrinking.
    pub original_genes: usize,
    /// Execution count at which the property was first hit.
    pub found_at_exec: u64,
    /// The violating run's full stamped schedule.
    pub trace: Vec<DlAction>,
    /// `true` if two fresh executions of the shrunk genome produced
    /// byte-identical schedules and the same violation.
    pub replay_verified: bool,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] {} at exec #{}: {} genes (from {}), {} trace actions, replay {}",
            self.target,
            self.violation.property,
            self.found_at_exec,
            self.genome.genes.len(),
            self.original_genes,
            self.trace.len(),
            if self.replay_verified {
                "verified"
            } else {
                "FAILED"
            },
        )?;
        writeln!(f, "  reason: {}", self.violation.reason)?;
        writeln!(
            f,
            "  genome: seed={} {:?}",
            self.genome.seed, self.genome.genes
        )?;
        write!(f, "{}", format_trace(&self.trace))
    }
}

/// The outcome of one fuzzing campaign against one target.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The target fuzzed.
    pub target: &'static str,
    /// Total executions performed.
    pub executions: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Distinct coverage keys at the end of the campaign.
    pub coverage_points: usize,
    /// Coverage growth curve: `(executions so far, total coverage)` at
    /// each admission of a novelty-bearing genome.
    pub coverage_curve: Vec<(u64, usize)>,
    /// Corpus shape at the end of the campaign.
    pub corpus: CorpusStats,
    /// Shrunk counterexamples, one per violated property (earliest
    /// finding wins).
    pub counterexamples: Vec<Counterexample>,
    /// Candidate executions the shrinker spent across all
    /// counterexamples (ddmin cuts plus numeric simplifications), not
    /// counted in [`FuzzReport::executions`].
    pub shrink_execs: u64,
}

impl FuzzReport {
    /// Executions per wall-clock second.
    #[must_use]
    pub fn execs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.executions as f64 / secs
        } else {
            0.0
        }
    }

    /// Mean wall-clock microseconds per campaign execution; `None` for an
    /// empty campaign. This is the machine-checked form of the "~30 µs
    /// per execution" throughput claim: the bench gate holds the
    /// `exec_micros` gauge of the ledger below its baseline ceiling.
    #[must_use]
    pub fn exec_micros(&self) -> Option<f64> {
        if self.executions == 0 {
            None
        } else {
            Some(self.elapsed.as_secs_f64() * 1e6 / self.executions as f64)
        }
    }

    /// Serializes the campaign into a [`dl_obs::RunLedger`] under the
    /// `fuzz` engine.
    ///
    /// With a single worker every counter is a pure function of the
    /// [`FuzzConfig`](crate::FuzzConfig) — the ledger round-trip tests
    /// compare them exactly. Gauges (`execs_per_sec`, `exec_micros`,
    /// `duration_micros`) are wall-clock-derived and feed the regression
    /// gate only.
    #[must_use]
    pub fn to_ledger(&self, run_id: &str) -> dl_obs::RunLedger {
        let mut ledger = dl_obs::RunLedger::new("fuzz", run_id);
        ledger.counter("executions", self.executions);
        ledger.counter("shrink_execs", self.shrink_execs);
        ledger.counter("coverage_points", self.coverage_points as u64);
        ledger.counter("coverage_admissions", self.coverage_curve.len() as u64);
        ledger.counter("corpus_entries", self.corpus.entries as u64);
        ledger.counter("corpus_steps", self.corpus.total_steps as u64);
        ledger.counter("corpus_novelty", self.corpus.total_novelty as u64);
        ledger.counter("counterexamples", self.counterexamples.len() as u64);
        ledger.counter(
            "replay_verified",
            self.counterexamples
                .iter()
                .filter(|c| c.replay_verified)
                .count() as u64,
        );
        ledger.counter(
            "trace_actions",
            self.counterexamples
                .iter()
                .map(|c| c.trace.len() as u64)
                .sum(),
        );

        let secs = self.elapsed.as_secs_f64().max(1e-9);
        ledger.gauge("execs_per_sec", self.executions as f64 / secs);
        ledger.gauge("duration_micros", self.elapsed.as_secs_f64() * 1e6);
        if let Some(micros) = self.exec_micros() {
            ledger.gauge("exec_micros", micros);
        }

        // Gaps between successive coverage admissions (in executions):
        // how fast the campaign goes stale.
        let mut gap = dl_obs::Histogram::new();
        let mut last = 0u64;
        for &(at, _) in &self.coverage_curve {
            gap.record(at - last);
            last = at;
        }
        ledger.histogram("coverage_gap_execs", &gap);

        let mut genes = dl_obs::Histogram::new();
        for c in &self.counterexamples {
            genes.record(c.genome.genes.len() as u64);
        }
        ledger.histogram("shrunk_genes", &genes);
        ledger
    }

    /// `true` if some counterexample violates `property`.
    #[must_use]
    pub fn found(&self, property: &str) -> bool {
        self.counterexamples
            .iter()
            .any(|c| c.violation.property == property)
    }

    /// The counterexample for `property`, if found.
    #[must_use]
    pub fn counterexample(&self, property: &str) -> Option<&Counterexample> {
        self.counterexamples
            .iter()
            .find(|c| c.violation.property == property)
    }
}

impl fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} execs in {:.2?} ({:.0} execs/s), {} coverage points, corpus {} entries / {} steps",
            self.target,
            self.executions,
            self.elapsed,
            self.execs_per_sec(),
            self.coverage_points,
            self.corpus.entries,
            self.corpus.total_steps,
        )?;
        if self.counterexamples.is_empty() {
            write!(f, "  no violations found")?;
        }
        for c in &self.counterexamples {
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accessors() {
        let report = FuzzReport {
            target: "abp",
            executions: 100,
            elapsed: Duration::from_millis(500),
            coverage_points: 42,
            coverage_curve: vec![(1, 10), (5, 42)],
            corpus: CorpusStats {
                entries: 2,
                total_novelty: 42,
                total_steps: 77,
            },
            counterexamples: vec![Counterexample {
                target: "abp",
                violation: Violation {
                    property: "DL4",
                    at: Some(7),
                    reason: "dup".into(),
                },
                genome: Genome {
                    seed: 3,
                    genes: vec![],
                },
                original_genes: 5,
                found_at_exec: 9,
                trace: vec![],
                replay_verified: true,
            }],
            shrink_execs: 12,
        };
        assert!((report.execs_per_sec() - 200.0).abs() < 1e-9);
        assert!(report.found("DL4"));
        assert!(!report.found("DL8"));
        assert_eq!(report.counterexample("DL4").unwrap().found_at_exec, 9);
        let text = report.to_string();
        assert!(text.contains("DL4"));
        assert!(text.contains("replay verified"));
    }
}
