//! Genomes: the fuzzer's heritable run descriptions.
//!
//! A [`Genome`] is a `(seed, gene sequence)` pair from which a complete
//! run derives deterministically: the genes decode into an environment
//! [`Script`], per-direction [`FaultSpec`] channel knobs, and scheduler
//! decision overrides (a [`Plan`]); the seed drives every remaining
//! executor choice. Running the same genome twice reproduces the same
//! execution byte-for-byte, which is what makes corpus entries shareable
//! and counterexamples replayable.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{RngCore, RngExt};

use dl_channels::FaultSpec;
use dl_core::action::{Dir, DlAction, Station};
use dl_sim::Script;

/// One heritable unit of a fuzzed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gene {
    /// Hand one fresh message to the transmitter. Message values are
    /// assigned sequentially at decode time, so generated traces never
    /// send duplicate values (which would make DL3 vacuous and suppress
    /// every data-link verdict).
    Send,
    /// Let the system take up to this many autonomous steps.
    Steps(u16),
    /// Run autonomously to quiescence (bounded by the executor's global
    /// step limit).
    Settle,
    /// Crash a station, then re-wake its outgoing medium (well-formed by
    /// construction, like `Script::crash_and_rewake`).
    Crash(Station),
    /// Fail and immediately re-wake a medium direction — a link outage
    /// with no intervening sends, keeping DL2 out of play.
    Flap(Dir),
    /// Replace the `t → r` channel's fault knobs.
    FaultsTr(FaultSpec),
    /// Replace the `r → t` channel's fault knobs.
    FaultsRt(FaultSpec),
    /// Override executor decision `index` to pick alternative
    /// `value % arity` (see `dl_sim::Runner::with_decision_overrides`).
    Sched {
        /// Decision index within the run, counted from 0.
        index: u32,
        /// Forced pick, reduced modulo the decision's arity.
        value: u32,
    },
    /// Corrupt the initial configuration (stations *and* channels). The
    /// last corruption gene wins. Every target decodes it — the classic
    /// nine map it through their `corrupted_start` counter skews and
    /// ghost-packet preloads, the stabilizing target through its corrupt
    /// channels. Only generated when a target opts in by default (see
    /// `Target::corrupting`) or the campaign opts the classic targets in
    /// (`FuzzConfig::corrupt_starts`), so the classic random streams
    /// stay byte-identical.
    Corrupt(Corruption),
}

/// A decoded corrupted initial configuration: small station counters and
/// per-direction ghost populations, everything derived deterministically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Corruption {
    /// Transmitter's initial sequence counter.
    pub tx_seq: u8,
    /// Receiver's initial expectation counter.
    pub rx_expected: u8,
    /// Ghost packets pre-loaded into the `t → r` channel.
    pub ghosts_tr: u8,
    /// Ghost packets pre-loaded into the `r → t` channel.
    pub ghosts_rt: u8,
    /// Seed for ghost derivation and channel loss decisions.
    pub seed: u64,
}

/// A complete heritable run description.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Genome {
    /// Seed for every executor decision not overridden by a
    /// [`Gene::Sched`] gene.
    pub seed: u64,
    /// The gene sequence, decoded front to back.
    pub genes: Vec<Gene>,
}

/// The decoded, directly runnable form of a genome.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Environment script: `wake_both`, the decoded genes, a trailing
    /// `settle`.
    pub script: Script,
    /// Channel fault knobs, `(t→r, r→t)`; the last fault gene per
    /// direction wins.
    pub faults: [FaultSpec; 2],
    /// Decision overrides collected from [`Gene::Sched`] genes.
    pub overrides: BTreeMap<u64, u64>,
    /// How many distinct messages the script sends.
    pub messages: u64,
    /// Corrupted initial configuration, if any [`Gene::Corrupt`] gene is
    /// present (the last wins). `None` means a clean start.
    pub corruption: Option<Corruption>,
}

impl Genome {
    /// Decodes the genes into a runnable [`Plan`].
    #[must_use]
    pub fn decode(&self) -> Plan {
        let mut script = Script::new().wake_both();
        let mut faults = [FaultSpec::none(), FaultSpec::none()];
        let mut overrides = BTreeMap::new();
        let mut messages = 0u64;
        let mut corruption = None;
        for gene in &self.genes {
            match gene {
                Gene::Send => {
                    script = script.send_msgs(messages, 1);
                    messages += 1;
                }
                Gene::Steps(n) => script = script.local((*n).max(1) as usize),
                Gene::Settle => script = script.settle(),
                Gene::Crash(station) => script = script.crash_and_rewake(*station),
                Gene::Flap(dir) => {
                    script = script
                        .inject(DlAction::Fail(*dir))
                        .inject(DlAction::Wake(*dir));
                }
                Gene::FaultsTr(spec) => faults[0] = *spec,
                Gene::FaultsRt(spec) => faults[1] = *spec,
                Gene::Sched { index, value } => {
                    overrides.insert(u64::from(*index), u64::from(*value));
                }
                Gene::Corrupt(c) => corruption = Some(*c),
            }
        }
        Plan {
            script: script.settle(),
            faults,
            overrides,
            messages,
            corruption,
        }
    }

    /// A fresh random genome with `1..=max_genes` genes. With `corrupt`,
    /// corrupted-initial-configuration genes join the pool; without it the
    /// gene distribution (and thus the random stream) is exactly the
    /// classic one.
    #[must_use]
    pub fn random(rng: &mut StdRng, max_genes: usize, corrupt: bool) -> Genome {
        let len = rng.random_range(1..max_genes.max(2));
        let mut genes = Vec::with_capacity(len);
        for _ in 0..len {
            genes.push(random_gene(rng, corrupt));
        }
        Genome {
            seed: rng.next_u64(),
            genes,
        }
    }

    /// One mutation step: insert, remove, duplicate, or replace a gene,
    /// tweak a numeric field, or reseed. The result is a new genome; the
    /// parent is untouched. `corrupt` as in [`Genome::random`].
    #[must_use]
    pub fn mutate(&self, rng: &mut StdRng, max_genes: usize, corrupt: bool) -> Genome {
        let mut child = self.clone();
        match rng.random_range(0u32..6) {
            0 if child.genes.len() < max_genes => {
                let at = rng.random_range(0..child.genes.len() + 1);
                child.genes.insert(at, random_gene(rng, corrupt));
            }
            1 if child.genes.len() > 1 => {
                let at = rng.random_range(0..child.genes.len());
                child.genes.remove(at);
            }
            2 if child.genes.len() < max_genes && !child.genes.is_empty() => {
                let at = rng.random_range(0..child.genes.len());
                let g = child.genes[at];
                child.genes.insert(at, g);
            }
            3 if !child.genes.is_empty() => {
                let at = rng.random_range(0..child.genes.len());
                child.genes[at] = random_gene(rng, corrupt);
            }
            4 => child.seed = rng.next_u64(),
            _ => {
                if child.genes.len() < max_genes {
                    child.genes.push(random_gene(rng, corrupt));
                } else {
                    child.seed = rng.next_u64();
                }
            }
        }
        child
    }
}

fn random_spec(rng: &mut StdRng) -> FaultSpec {
    FaultSpec {
        loss: rng.random_range(0u8..96),
        dup: rng.random_range(0u8..96),
        reorder: rng.random_range(0u8..4),
        burst_good: rng.random_range(0u16..6),
        burst_bad: rng.random_range(0u16..4),
        salt: rng.next_u64(),
    }
}

fn random_corruption(rng: &mut StdRng) -> Corruption {
    Corruption {
        tx_seq: rng.random_range(0u8..8),
        rx_expected: rng.random_range(0u8..8),
        ghosts_tr: rng.random_range(0u8..4),
        ghosts_rt: rng.random_range(0u8..4),
        seed: rng.next_u64(),
    }
}

fn random_gene(rng: &mut StdRng, corrupt: bool) -> Gene {
    // `corrupt = false` must draw exactly the classic `0..16` stream so
    // existing seeds keep reproducing byte-identical campaigns.
    let roll = if corrupt {
        rng.random_range(0u32..20)
    } else {
        rng.random_range(0u32..16)
    };
    match roll {
        0..=3 => Gene::Send,
        4..=6 => Gene::Steps(rng.random_range(1u16..48)),
        7 => Gene::Settle,
        8 => Gene::Crash(Station::T),
        9 => Gene::Crash(Station::R),
        10 => Gene::Flap(if rng.random_bool() { Dir::TR } else { Dir::RT }),
        11 => Gene::FaultsTr(random_spec(rng)),
        12 => Gene::FaultsRt(random_spec(rng)),
        13..=15 => Gene::Sched {
            index: rng.random_range(0u32..512),
            value: rng.random_range(0u32..8),
        },
        _ => Gene::Corrupt(random_corruption(rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn decode_assigns_unique_message_values() {
        let g = Genome {
            seed: 0,
            genes: vec![Gene::Send, Gene::Settle, Gene::Send, Gene::Send],
        };
        let plan = g.decode();
        assert_eq!(plan.messages, 3);
        let sends: Vec<_> = plan
            .script
            .steps()
            .iter()
            .filter_map(|s| match s {
                dl_sim::ScriptStep::Inject(DlAction::SendMsg(m)) => Some(*m),
                _ => None,
            })
            .collect();
        assert_eq!(sends.len(), 3);
        let mut dedup = sends.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "message values must be distinct");
    }

    #[test]
    fn decode_collects_faults_and_overrides() {
        let spec = FaultSpec {
            loss: 10,
            ..FaultSpec::none()
        };
        let g = Genome {
            seed: 1,
            genes: vec![
                Gene::FaultsRt(spec),
                Gene::Sched { index: 3, value: 1 },
                Gene::Sched { index: 3, value: 2 },
                Gene::Crash(Station::R),
            ],
        };
        let plan = g.decode();
        assert_eq!(plan.faults[0], FaultSpec::none());
        assert_eq!(plan.faults[1], spec);
        // Later Sched genes for the same index win.
        assert_eq!(plan.overrides, BTreeMap::from([(3, 2)]));
        // Script ends with the implicit settle.
        assert!(matches!(
            plan.script.steps().last(),
            Some(dl_sim::ScriptStep::Settle)
        ));
    }

    #[test]
    fn random_and_mutate_are_deterministic() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let ga = Genome::random(&mut a, 16, false);
        let gb = Genome::random(&mut b, 16, false);
        assert_eq!(ga, gb);
        assert_eq!(ga.mutate(&mut a, 16, false), gb.mutate(&mut b, 16, false));
    }

    #[test]
    fn mutation_respects_max_genes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut g = Genome::random(&mut rng, 8, false);
        for _ in 0..200 {
            g = g.mutate(&mut rng, 8, false);
            assert!(!g.genes.is_empty());
            assert!(g.genes.len() <= 8);
        }
    }

    #[test]
    fn classic_generation_never_emits_corruption_genes() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let g = Genome::random(&mut rng, 24, false);
            assert!(
                !g.genes.iter().any(|g| matches!(g, Gene::Corrupt(_))),
                "corruption genes must be opt-in"
            );
        }
    }

    #[test]
    fn corrupting_generation_reaches_corruption_genes() {
        let mut rng = StdRng::seed_from_u64(42);
        let found = (0..200).any(|_| {
            Genome::random(&mut rng, 24, true)
                .genes
                .iter()
                .any(|g| matches!(g, Gene::Corrupt(_)))
        });
        assert!(found, "1 in 5 genes over 200 genomes should corrupt");
    }

    #[test]
    fn decode_keeps_the_last_corruption_gene() {
        let first = Corruption {
            tx_seq: 1,
            ..Corruption::default()
        };
        let last = Corruption {
            rx_expected: 5,
            ghosts_tr: 2,
            seed: 9,
            ..Corruption::default()
        };
        let g = Genome {
            seed: 0,
            genes: vec![Gene::Corrupt(first), Gene::Send, Gene::Corrupt(last)],
        };
        assert_eq!(g.decode().corruption, Some(last));
        let clean = Genome {
            seed: 0,
            genes: vec![Gene::Send],
        };
        assert_eq!(clean.decode().corruption, None);
    }
}
