//! The shared coverage map: sharded novelty dedup for the worker fleet.
//!
//! Modeled on `dl-explore`'s `ShardedVisited`: coverage keys are already
//! 64-bit hashes, so each key's **upper** bits pick one of a power-of-two
//! number of `Mutex<HashSet>` shards (the set's own probing consumes the
//! lower bits), and concurrent workers contend only when two observations
//! land in the same shard at the same instant. A relaxed atomic mirrors
//! the total size so progress reporting never takes a lock.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A sharded set of novel coverage keys.
#[derive(Debug)]
pub struct ShardedCoverage {
    shards: Vec<Mutex<HashSet<u64>>>,
    mask: usize,
    count: AtomicUsize,
}

impl ShardedCoverage {
    /// A coverage map with `shards` shards, rounded up to a power of two.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedCoverage {
            shards: (0..n).map(|_| Mutex::new(HashSet::new())).collect(),
            mask: n - 1,
            count: AtomicUsize::new(0),
        }
    }

    /// Inserts every key of one execution; returns how many were novel.
    pub fn observe(&self, keys: &[u64]) -> usize {
        let mut novel = 0;
        for &k in keys {
            let idx = (k >> 32) as usize & self.mask;
            let mut shard = self.shards[idx].lock().expect("coverage shard poisoned");
            if shard.insert(k) {
                novel += 1;
            }
        }
        if novel > 0 {
            self.count.fetch_add(novel, Ordering::Relaxed);
        }
        novel
    }

    /// Total distinct coverage keys observed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// `true` if no key has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn novelty_counts_distinct_keys_once() {
        let cov = ShardedCoverage::new(4);
        assert!(cov.is_empty());
        assert_eq!(cov.observe(&[1, 2, 3, 2]), 3);
        assert_eq!(cov.observe(&[3, 4]), 1);
        assert_eq!(cov.len(), 4);
    }

    #[test]
    fn sharding_spreads_by_upper_bits() {
        let cov = ShardedCoverage::new(8);
        // Keys differing only in upper bits land in different shards but
        // are still all counted.
        let keys: Vec<u64> = (0..64u64).map(|i| i << 32).collect();
        assert_eq!(cov.observe(&keys), 64);
        assert_eq!(cov.len(), 64);
    }

    #[test]
    fn concurrent_observers_agree_on_the_total() {
        let cov = ShardedCoverage::new(8);
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let cov = &cov;
                s.spawn(move || {
                    // Overlapping key ranges: total distinct = 0..600.
                    let keys: Vec<u64> = (w * 100..w * 100 + 300).collect();
                    cov.observe(&keys);
                });
            }
        });
        assert_eq!(cov.len(), 600);
    }
}
