//! The worker fleet: multi-threaded coverage-guided fuzzing loop.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use ioa::schedule_module::Violation;

use crate::corpus::{Corpus, CorpusEntry};
use crate::coverage::ShardedCoverage;
use crate::genome::Genome;
use crate::report::{Counterexample, FuzzReport};
use crate::shrink::{replays_identically, shrink_counted};
use crate::target::{ExecConfig, Target};

/// Campaign-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Base seed; worker `w` derives its stream from `seed` and `w`.
    pub seed: u64,
    /// Worker threads. With `1`, the whole campaign (executions performed,
    /// corpus order, counterexamples) is a pure function of the
    /// configuration; with more, the found *set* is seed-determined per
    /// worker but admission interleaving and total executions may vary.
    pub workers: usize,
    /// Stop after this many executions (shared across workers).
    pub max_execs: u64,
    /// Optional wall-clock budget; checked between executions.
    pub time_budget: Option<Duration>,
    /// Step bound per execution.
    pub max_steps: usize,
    /// Judge against the full `DL` spec instead of weak `WDL`.
    pub full_dl: bool,
    /// Upper bound on genes per genome.
    pub max_genes: usize,
    /// Stop the whole fleet at the first violation (the smoke-test mode);
    /// with `false` the campaign runs its full budget and reports one
    /// counterexample per violated property.
    pub stop_on_violation: bool,
    /// Generate corrupted-initial-configuration genes for *every* target,
    /// not just the ones that opt in (`Target::corrupting`): the classic
    /// nine then start from skewed station counters and ghost-packet
    /// preloads, making their misbehavior under the arXiv 1011.3632 fault
    /// class measurable. Off by default so classic campaigns' random
    /// streams (and their pinned ledgers) stay byte-identical.
    pub corrupt_starts: bool,
    /// Coverage map shards (rounded up to a power of two).
    pub coverage_shards: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            workers: 1,
            max_execs: 2_000,
            time_budget: None,
            max_steps: 800,
            full_dl: false,
            max_genes: 24,
            stop_on_violation: true,
            corrupt_starts: false,
            coverage_shards: 16,
        }
    }
}

struct RawFinding {
    genome: Genome,
    violation: Violation,
    at_exec: u64,
}

fn worker_seed(base: u64, w: usize) -> u64 {
    let mut z = base ^ (w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// Runs one coverage-guided fuzzing campaign against `target`.
///
/// Workers draw genomes (3:1 corpus mutation vs. fresh random once the
/// corpus is non-empty), execute them deterministically, feed the sharded
/// coverage map, and admit novelty-bearing genomes to the shared corpus.
/// After the fleet drains, the earliest finding per violated property is
/// ddmin-shrunk and replay-verified into a [`Counterexample`].
#[must_use]
pub fn fuzz(target: &Target, cfg: &FuzzConfig) -> FuzzReport {
    let start = Instant::now();
    let deadline = cfg.time_budget.map(|d| start + d);
    let exec_cfg = ExecConfig {
        max_steps: cfg.max_steps,
        full_dl: cfg.full_dl,
    };
    let coverage = ShardedCoverage::new(cfg.coverage_shards);
    let corpus = Corpus::new();
    let executions = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let curve: Mutex<Vec<(u64, usize)>> = Mutex::new(Vec::new());
    let findings: Mutex<Vec<RawFinding>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for w in 0..cfg.workers.max(1) {
            let coverage = &coverage;
            let corpus = &corpus;
            let executions = &executions;
            let stop = &stop;
            let curve = &curve;
            let findings = &findings;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(worker_seed(cfg.seed, w));
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let n = executions.fetch_add(1, Ordering::Relaxed);
                    if n >= cfg.max_execs {
                        executions.fetch_sub(1, Ordering::Relaxed);
                        break;
                    }
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        executions.fetch_sub(1, Ordering::Relaxed);
                        break;
                    }
                    let corrupt = target.corrupting || cfg.corrupt_starts;
                    let genome = if !corpus.is_empty() && rng.random_range(0u32..4) != 0 {
                        match corpus.pick(&mut rng) {
                            Some(parent) => parent.mutate(&mut rng, cfg.max_genes, corrupt),
                            None => Genome::random(&mut rng, cfg.max_genes, corrupt),
                        }
                    } else {
                        Genome::random(&mut rng, cfg.max_genes, corrupt)
                    };
                    let outcome = (target.run)(&genome, &exec_cfg);
                    let novel = coverage.observe(&outcome.coverage);
                    if novel > 0 {
                        corpus.add(CorpusEntry {
                            genome: genome.clone(),
                            novelty: novel,
                            steps: outcome.steps,
                        });
                        curve
                            .lock()
                            .expect("curve lock poisoned")
                            .push((n + 1, coverage.len()));
                    }
                    if let Some(violation) = outcome.violation {
                        findings
                            .lock()
                            .expect("findings lock poisoned")
                            .push(RawFinding {
                                genome,
                                violation,
                                at_exec: n + 1,
                            });
                        if cfg.stop_on_violation {
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            });
        }
    });

    // Earliest finding per property, shrunk and replay-verified.
    let mut raw = findings.into_inner().expect("findings lock poisoned");
    raw.sort_by_key(|f| (f.violation.property, f.at_exec));
    raw.dedup_by_key(|f| f.violation.property);
    let mut shrink_execs = 0u64;
    let mut counterexamples: Vec<Counterexample> = raw
        .into_iter()
        .map(|f| {
            let (shrunk, spent) =
                shrink_counted(target, &f.genome, &exec_cfg, f.violation.property);
            shrink_execs += spent;
            let out = (target.run)(&shrunk, &exec_cfg);
            let verified =
                out.violation.is_some() && replays_identically(target, &shrunk, &exec_cfg);
            Counterexample {
                target: target.name,
                violation: out.violation.unwrap_or(f.violation),
                original_genes: f.genome.genes.len(),
                genome: shrunk,
                found_at_exec: f.at_exec,
                trace: out.schedule,
                replay_verified: verified,
            }
        })
        .collect();
    counterexamples.sort_by_key(|c| c.found_at_exec);

    let mut coverage_curve = curve.into_inner().expect("curve lock poisoned");
    coverage_curve.sort_unstable();

    FuzzReport {
        target: target.name,
        executions: executions.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        coverage_points: coverage.len(),
        coverage_curve,
        corpus: corpus.stats(),
        counterexamples,
        shrink_execs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::target;

    #[test]
    fn single_worker_campaigns_are_deterministic() {
        let cfg = FuzzConfig {
            seed: 11,
            max_execs: 40,
            max_steps: 300,
            stop_on_violation: false,
            ..FuzzConfig::default()
        };
        let t = target("stenning").unwrap();
        let a = fuzz(t, &cfg);
        let b = fuzz(t, &cfg);
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.coverage_points, b.coverage_points);
        assert_eq!(a.coverage_curve, b.coverage_curve);
        assert_eq!(a.corpus.entries, b.corpus.entries);
        assert_eq!(a.counterexamples.len(), b.counterexamples.len(),);
        for (x, y) in a.counterexamples.iter().zip(&b.counterexamples) {
            assert_eq!(x.genome, y.genome);
            assert_eq!(x.trace, y.trace);
        }
    }

    #[test]
    fn coverage_grows_and_corpus_fills() {
        let cfg = FuzzConfig {
            seed: 3,
            max_execs: 30,
            max_steps: 300,
            stop_on_violation: false,
            ..FuzzConfig::default()
        };
        let report = fuzz(target("abp").unwrap(), &cfg);
        assert_eq!(report.executions, 30);
        assert!(report.coverage_points > 0);
        assert!(report.corpus.entries > 0);
        // The curve is monotone in both coordinates.
        for pair in report.coverage_curve.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn multi_worker_fleet_finds_violations_too() {
        let cfg = FuzzConfig {
            seed: 5,
            workers: 4,
            max_execs: 400,
            max_steps: 300,
            ..FuzzConfig::default()
        };
        let report = fuzz(target("abp").unwrap(), &cfg);
        assert!(
            !report.counterexamples.is_empty(),
            "4 workers x 100 execs should hit the ABP crash pump"
        );
        assert!(report.counterexamples.iter().all(|c| c.replay_verified));
    }
}
