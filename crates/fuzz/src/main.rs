//! The `dl-fuzz` command line: run coverage-guided fuzzing campaigns
//! against the protocol zoo and print shrunk, replayable counterexamples.

use std::process::ExitCode;
use std::time::Duration;

use dl_fuzz::{all_targets, fuzz, target, FuzzConfig};

const USAGE: &str = "\
dl-fuzz: coverage-guided schedule fuzzer for data link protocols

USAGE:
    dl-fuzz [OPTIONS]

OPTIONS:
    --target NAME     fuzz one target (default: all; see --list)
    --seed N          base seed (default 0)
    --execs N         execution budget per target (default 2000)
    --workers N       worker threads (default 1; 1 = fully deterministic)
    --time-ms N       wall-clock budget per target in milliseconds
    --max-steps N     step bound per execution (default 800)
    --max-genes N     gene bound per genome (default 24)
    --full-dl         judge against full DL instead of weak WDL
    --keep-going      do not stop at the first violation
    --corrupt-starts  generate corrupted-initial-configuration genes for
                      every target, not just the stabilizing one
    --list            list targets and exit
    --help            this text
";

struct Args {
    targets: Vec<&'static str>,
    cfg: FuzzConfig,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut cfg = FuzzConfig::default();
    let mut targets: Vec<&'static str> = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(None);
            }
            "--list" => {
                for t in all_targets() {
                    println!("{}", t.name);
                }
                return Ok(None);
            }
            "--target" => {
                let name = value("--target")?;
                let t =
                    target(&name).ok_or_else(|| format!("unknown target {name:?} (see --list)"))?;
                targets.push(t.name);
            }
            "--seed" => cfg.seed = parse_num(&value("--seed")?)?,
            "--execs" => cfg.max_execs = parse_num(&value("--execs")?)?,
            "--workers" => cfg.workers = parse_num(&value("--workers")?)? as usize,
            "--time-ms" => {
                cfg.time_budget = Some(Duration::from_millis(parse_num(&value("--time-ms")?)?));
            }
            "--max-steps" => cfg.max_steps = parse_num(&value("--max-steps")?)? as usize,
            "--max-genes" => cfg.max_genes = parse_num(&value("--max-genes")?)? as usize,
            "--full-dl" => cfg.full_dl = true,
            "--keep-going" => cfg.stop_on_violation = false,
            "--corrupt-starts" => cfg.corrupt_starts = true,
            other => return Err(format!("unknown option {other:?} (try --help)")),
        }
    }
    if targets.is_empty() {
        targets = all_targets().iter().map(|t| t.name).collect();
    }
    Ok(Some(Args { targets, cfg }))
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("not a number: {s:?}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dl-fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut unverified = false;
    for name in &args.targets {
        let t = target(name).expect("validated above");
        let report = fuzz(t, &args.cfg);
        println!("{report}");
        unverified |= report.counterexamples.iter().any(|c| !c.replay_verified);
    }
    // Finding violations is the tool doing its job; a counterexample that
    // fails replay verification is the only failure mode.
    if unverified {
        eprintln!("dl-fuzz: a counterexample failed replay verification");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
