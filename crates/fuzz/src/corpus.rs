//! The shared corpus: genomes that discovered novel coverage, kept as
//! mutation seeds for the fleet.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::RngExt;

use crate::genome::Genome;

/// One retained genome and what it earned its place with.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The genome.
    pub genome: Genome,
    /// Novel coverage keys it contributed when admitted.
    pub novelty: usize,
    /// Steps its execution took.
    pub steps: usize,
}

/// Aggregate corpus statistics for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusStats {
    /// Number of retained genomes.
    pub entries: usize,
    /// Sum of admission novelty over all entries.
    pub total_novelty: usize,
    /// Sum of execution steps over all entries.
    pub total_steps: usize,
}

/// The corpus proper: a mutex-guarded entry list with a lock-free size
/// mirror (workers poll the size every iteration to decide between
/// mutating and generating from scratch).
#[derive(Debug, Default)]
pub struct Corpus {
    entries: Mutex<Vec<CorpusEntry>>,
    len: AtomicUsize,
}

impl Corpus {
    /// An empty corpus.
    #[must_use]
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Admits a genome that contributed novel coverage.
    pub fn add(&self, entry: CorpusEntry) {
        let mut entries = self.entries.lock().expect("corpus lock poisoned");
        entries.push(entry);
        self.len.store(entries.len(), Ordering::Relaxed);
    }

    /// Number of retained genomes (lock-free).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// `true` if nothing has been admitted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A uniformly random retained genome, cloned out.
    #[must_use]
    pub fn pick(&self, rng: &mut StdRng) -> Option<Genome> {
        let entries = self.entries.lock().expect("corpus lock poisoned");
        if entries.is_empty() {
            return None;
        }
        let i = rng.random_range(0..entries.len());
        Some(entries[i].genome.clone())
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> CorpusStats {
        let entries = self.entries.lock().expect("corpus lock poisoned");
        CorpusStats {
            entries: entries.len(),
            total_novelty: entries.iter().map(|e| e.novelty).sum(),
            total_steps: entries.iter().map(|e| e.steps).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn entry(seed: u64, novelty: usize) -> CorpusEntry {
        CorpusEntry {
            genome: Genome {
                seed,
                genes: vec![],
            },
            novelty,
            steps: 10,
        }
    }

    #[test]
    fn add_pick_stats_round_trip() {
        let corpus = Corpus::new();
        assert!(corpus.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(corpus.pick(&mut rng).is_none());
        corpus.add(entry(1, 5));
        corpus.add(entry(2, 7));
        assert_eq!(corpus.len(), 2);
        let picked = corpus.pick(&mut rng).unwrap();
        assert!(picked.seed == 1 || picked.seed == 2);
        assert_eq!(
            corpus.stats(),
            CorpusStats {
                entries: 2,
                total_novelty: 12,
                total_steps: 20,
            }
        );
    }
}
