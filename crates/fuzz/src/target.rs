//! Fuzz targets: every protocol of the zoo, composed with fault-injected
//! channels and executed from a genome.
//!
//! Each target is a monomorphized `fn(&Genome, &ExecConfig) -> ExecOutcome`
//! that builds the §5.2 composition `hide_Φ(protocol ∥ FaultyChannel²)`,
//! runs the genome's plan through an online-monitored
//! [`Runner`](dl_sim::Runner), and extracts per-step coverage keys.
//!
//! Monitoring posture: executions run with `monitor_pl = false` (the
//! duplication fault knob violates PL3 *by design*, and aborting on the
//! medium's own misbehavior would hide the protocol bugs the fuzzer is
//! hunting) and `full_dl = false` by default, so a **violation** is either
//! an online `WDL` safety conclusion (DL4/DL5) or — on runs that quiesce
//! with the script fully consumed — a complete-trace `WDL` verdict, which
//! adds the DL8 liveness conclusion ("every sent message is delivered").
//! Truncated runs are never judged against DL8, so step-budget exhaustion
//! cannot fabricate liveness violations.

use std::hash::{BuildHasher, BuildHasherDefault};

use ioa::schedule_module::{ScheduleModule, TraceKind, Verdict, Violation};

use dl_channels::{CorruptChannel, CorruptSpec, FaultyChannel, GhostSpec};
use dl_core::action::{Dir, DlAction, Station};
use dl_core::protocol::{CorruptedStart, DataLinkProtocol, StationAutomaton};
use dl_core::spec::datalink::DlModule;
use dl_core::spec::stabilize::SuffixMonitor;
use dl_sim::{link_system, ConformancePolicy, RunReport, Runner};

use crate::genome::Genome;

/// Per-execution knobs, shared by every target.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Global step bound per execution.
    pub max_steps: usize,
    /// Judge against the full `DL` spec instead of the weak `WDL`.
    pub full_dl: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_steps: 800,
            full_dl: false,
        }
    }
}

/// What one execution of a genome produced.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The judged violation, if any (online safety, or batch `WDL` on a
    /// quiescent complete trace).
    pub violation: Option<Violation>,
    /// `true` if the run quiesced with the script fully consumed.
    pub quiescent: bool,
    /// Steps taken.
    pub steps: usize,
    /// One coverage key per step: a hash of `(post-state, progress
    /// digest, action class)`.
    pub coverage: Vec<u64>,
    /// The full stamped schedule — the replay-comparison witness.
    pub schedule: Vec<DlAction>,
}

/// A named, runnable fuzz target.
#[derive(Debug, Clone, Copy)]
pub struct Target {
    /// Stable target name, e.g. `"abp"` or `"quirky"`.
    pub name: &'static str,
    /// Executes one genome against this target's composed system.
    pub run: fn(&Genome, &ExecConfig) -> ExecOutcome,
    /// `true` if the fleet generates
    /// [`Corruption`](crate::genome::Corruption) genes for this target *by
    /// default*, keeping the classic targets' random streams
    /// byte-identical to before the fault class existed. Every target
    /// *decodes* corruption genes (see [`run_protocol`]); campaigns opt
    /// the classic nine into generating them with
    /// [`FuzzConfig::corrupt_starts`](crate::FuzzConfig::corrupt_starts).
    pub corrupting: bool,
}

/// The full target registry: all ten protocols of the zoo.
#[must_use]
pub fn all_targets() -> &'static [Target] {
    &TARGETS
}

/// Looks a target up by name.
#[must_use]
pub fn target(name: &str) -> Option<&'static Target> {
    TARGETS.iter().find(|t| t.name == name)
}

static TARGETS: [Target; 10] = [
    Target {
        name: "abp",
        run: |g, c| run_protocol(dl_protocols::abp::protocol(), g, c),
        corrupting: false,
    },
    Target {
        name: "go-back-2",
        run: |g, c| run_protocol(dl_protocols::sliding_window::protocol(2), g, c),
        corrupting: false,
    },
    Target {
        name: "go-back-8",
        run: |g, c| run_protocol(dl_protocols::sliding_window::protocol(8), g, c),
        corrupting: false,
    },
    Target {
        name: "selective-repeat-4",
        run: |g, c| run_protocol(dl_protocols::selective_repeat::protocol(4), g, c),
        corrupting: false,
    },
    Target {
        name: "fragmenting",
        run: |g, c| run_protocol(dl_protocols::fragmenting::protocol(), g, c),
        corrupting: false,
    },
    Target {
        name: "parity",
        run: |g, c| run_protocol(dl_protocols::parity::protocol(), g, c),
        corrupting: false,
    },
    Target {
        name: "stenning",
        run: |g, c| run_protocol(dl_protocols::stenning::protocol(), g, c),
        corrupting: false,
    },
    Target {
        name: "nonvolatile",
        run: |g, c| run_protocol(dl_protocols::nonvolatile::protocol(), g, c),
        corrupting: false,
    },
    Target {
        name: "quirky",
        run: |g, c| run_protocol(dl_protocols::quirky::protocol(), g, c),
        corrupting: false,
    },
    Target {
        name: "stabilizing",
        run: run_stabilizing,
        corrupting: true,
    },
];

/// Coarse action-class code for coverage keys: which kind of action fired,
/// and on which side/direction.
fn action_class(a: &DlAction) -> u64 {
    match a {
        DlAction::SendMsg(_) => 0,
        DlAction::ReceiveMsg(_) => 1,
        DlAction::SendPkt(Dir::TR, _) => 2,
        DlAction::SendPkt(Dir::RT, _) => 3,
        DlAction::ReceivePkt(Dir::TR, _) => 4,
        DlAction::ReceivePkt(Dir::RT, _) => 5,
        DlAction::Wake(Dir::TR) => 6,
        DlAction::Wake(Dir::RT) => 7,
        DlAction::Fail(Dir::TR) => 8,
        DlAction::Fail(Dir::RT) => 9,
        DlAction::Crash(Station::T) => 10,
        DlAction::Crash(Station::R) => 11,
        DlAction::Internal(Station::T, _) => 12,
        DlAction::Internal(Station::R, _) => 13,
    }
}

/// Log-bucketed counter, ≤ 15 — keeps the progress digest finite.
fn bucket(n: u64) -> u64 {
    u64::from(64 - n.leading_zeros()).min(15)
}

fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a ^ b.rotate_left(21) ^ c.rotate_left(42);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs one genome against one protocol over fault-injected channels.
///
/// Any [`Corruption`](crate::genome::Corruption) gene is decoded into a
/// corrupted initial configuration for the *classic* zoo too: the
/// stations start with their counters skewed ([`CorruptedStart`], via
/// each protocol's `corrupted_start` mapping) and the channels start
/// with ghost packets already in flight ([`GhostSpec`]). A missing or
/// all-zero corruption gene decodes to the honest start (`seq == 0`
/// wrappers and empty ghost preloads are behaviorally identity), so
/// corruption-free genomes execute byte-identically to before the fault
/// class reached these targets.
pub fn run_protocol<T, R>(
    protocol: DataLinkProtocol<T, R>,
    genome: &Genome,
    cfg: &ExecConfig,
) -> ExecOutcome
where
    T: StationAutomaton,
    R: StationAutomaton,
    T::State: std::hash::Hash,
    R::State: std::hash::Hash,
{
    let plan = genome.decode();
    let c = plan.corruption.unwrap_or_default();
    let ghosts = |count: u8, lane: u64| GhostSpec {
        count,
        seed: c.seed ^ lane,
    };
    let system = link_system(
        CorruptedStart::new(protocol.transmitter, u64::from(c.tx_seq)),
        CorruptedStart::new(protocol.receiver, u64::from(c.rx_expected)),
        FaultyChannel::new(Dir::TR, plan.faults[0]).with_ghosts(ghosts(c.ghosts_tr, 0x7121)),
        FaultyChannel::new(Dir::RT, plan.faults[1]).with_ghosts(ghosts(c.ghosts_rt, 0x1217)),
    );
    let policy = ConformancePolicy {
        full_dl: cfg.full_dl,
        complete: false,
        fifo_channels: false,
        monitor_pl: false,
        ..ConformancePolicy::default()
    };
    let mut runner = Runner::new(genome.seed, cfg.max_steps)
        .with_online_conformance(policy)
        .with_decision_overrides(plan.overrides.clone());
    let report = runner.run(&system, &plan.script);

    let mut violation = report.online_violation.clone();
    if violation.is_none() && report.quiescent {
        let module = if cfg.full_dl {
            DlModule::full()
        } else {
            DlModule::weak()
        };
        if let Verdict::Violated(v) = module.check(&report.behavior, TraceKind::Complete) {
            violation = Some(v);
        }
    }

    let coverage = coverage_keys(&report);
    ExecOutcome {
        violation,
        quiescent: report.quiescent,
        steps: report.execution.len(),
        coverage,
        schedule: report.schedule(),
    }
}

/// Coverage: one key per step, hashing the composed post-state, a
/// log-bucketed progress digest (the monitor-visible counters), and the
/// action class — the `(protocol state, monitor state, action class)`
/// tuple, collapsed to 64 bits.
fn coverage_keys<S>(report: &RunReport<S>) -> Vec<u64>
where
    S: std::hash::Hash + Clone + Eq + std::fmt::Debug,
{
    let hasher = BuildHasherDefault::<std::collections::hash_map::DefaultHasher>::default();
    let (mut sent, mut delivered, mut crashes) = (0u64, 0u64, 0u64);
    let mut coverage = Vec::with_capacity(report.execution.len());
    for step in report.execution.steps() {
        match step.action {
            DlAction::SendMsg(_) => sent += 1,
            DlAction::ReceiveMsg(_) => delivered += 1,
            DlAction::Crash(_) => crashes += 1,
            _ => {}
        }
        let digest = bucket(sent) | bucket(delivered) << 4 | crashes.min(15) << 8;
        coverage.push(mix3(
            hasher.hash_one(&step.post),
            digest,
            action_class(&step.action),
        ));
    }
    coverage
}

/// Runs one genome against the self-stabilizing protocol (zoo member #10)
/// over bounded-capacity, non-FIFO [`CorruptChannel`]s, decoding any
/// [`Corruption`](crate::genome::Corruption) gene into a corrupted initial
/// configuration (station counters and ghost packet populations).
///
/// Judged in **suffix mode**: the execution runs with no online
/// conformance at all (a corrupted start is *supposed* to misbehave for a
/// finite prefix), and quiescent complete runs are judged by the
/// [`SuffixMonitor`] plus a **corruption budget**: a corrupted receiver
/// expecting sequence `e` against a transmitter at sequence `s < e` is
/// entitled to consume up to `e − s` messages while the counters climb
/// into agreement, so only losses *beyond* that budget — or a suffix
/// safety violation surviving every candidate convergence point — count
/// as counterexamples. Crashy runs are not judged for liveness at all:
/// the stabilizing protocol's memory is volatile, crash-loss is outside
/// its claim (Theorem 7.5 territory, not arXiv 1011.3632's).
fn run_stabilizing(genome: &Genome, cfg: &ExecConfig) -> ExecOutcome {
    let plan = genome.decode();
    let c = plan.corruption.unwrap_or_default();
    let capacity = dl_protocols::stabilizing::DEFAULT_CAPACITY;
    let protocol = dl_protocols::stabilizing::corrupted(
        capacity,
        u64::from(c.tx_seq),
        u64::from(c.rx_expected),
    );
    // The corrupt channel's loss knob reuses the fault genes' loss rates,
    // so shrinking toward `FaultSpec::none` also cleans the medium.
    let spec = |ghosts: u8, loss: u8, lane: u64| CorruptSpec {
        capacity: capacity as u8,
        ghosts,
        loss,
        seed: c.seed ^ lane,
    };
    let system = link_system(
        protocol.transmitter,
        protocol.receiver,
        CorruptChannel::new(Dir::TR, spec(c.ghosts_tr, plan.faults[0].loss, 0x7121)),
        CorruptChannel::new(Dir::RT, spec(c.ghosts_rt, plan.faults[1].loss, 0x1217)),
    );
    let mut runner =
        Runner::new(genome.seed, cfg.max_steps).with_decision_overrides(plan.overrides.clone());
    let report = runner.run(&system, &plan.script);

    let mut violation = None;
    let crash_free = !report
        .behavior
        .iter()
        .any(|a| matches!(a, DlAction::Crash(_)));
    if report.quiescent && crash_free {
        let suffix = SuffixMonitor::scan(&report.behavior, cfg.full_dl);
        let budget = u64::from(c.rx_expected.saturating_sub(c.tx_seq));
        let (mut sent, mut delivered) = (0u64, 0u64);
        for a in &report.behavior {
            match a {
                DlAction::SendMsg(_) => sent += 1,
                DlAction::ReceiveMsg(_) => delivered += 1,
                _ => {}
            }
        }
        let lost = sent.saturating_sub(delivered);
        match suffix.violation {
            // Liveness: the climb may consume `budget` messages; one more
            // lost is a genuine failure to stabilize.
            Some("DL8") | None if lost > budget => {
                violation = Some(Violation {
                    property: "DL8",
                    at: Some(suffix.convergence_index),
                    reason: format!(
                        "{lost} messages lost exceeds the corruption budget {budget} \
                         ({} resets)",
                        suffix.resets
                    ),
                });
            }
            // Safety violations surviving every candidate convergence
            // point (none are reachable from the current protocol — the
            // monitor resets absorb prefix noise — but a counting-
            // discipline regression would land here).
            Some(property) if property != "DL8" => {
                violation = Some(Violation {
                    property,
                    at: Some(suffix.convergence_index),
                    reason: format!(
                        "no conforming suffix: {property} survives past every candidate \
                         convergence point ({} resets)",
                        suffix.resets
                    ),
                });
            }
            _ => {}
        }
    }

    let coverage = coverage_keys(&report);
    ExecOutcome {
        violation,
        quiescent: report.quiescent,
        steps: report.execution.len(),
        coverage,
        schedule: report.schedule(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::Gene;

    fn genome(seed: u64, genes: Vec<Gene>) -> Genome {
        Genome { seed, genes }
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut names: Vec<_> = all_targets().iter().map(|t| t.name).collect();
        assert_eq!(names.len(), 10);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "duplicate target names");
        assert!(target("quirky").is_some());
        assert!(target("stabilizing").is_some());
        assert!(target("no-such-protocol").is_none());
    }

    #[test]
    fn only_the_stabilizing_target_generates_corruption_by_default() {
        for t in all_targets() {
            assert_eq!(t.corrupting, t.name == "stabilizing", "{}", t.name);
        }
    }

    #[test]
    fn zero_corruption_gene_is_identity_on_classic_targets() {
        // `corrupted_start(0)` and an empty ghost preload are the honest
        // start, so an all-zero corruption gene must not perturb a classic
        // run at all (this is what keeps the pinned campaigns exact).
        let clean = genome(4, vec![Gene::Send, Gene::Send]);
        let zeroed = genome(
            4,
            vec![
                Gene::Corrupt(crate::genome::Corruption::default()),
                Gene::Send,
                Gene::Send,
            ],
        );
        for name in ["abp", "go-back-2", "stenning"] {
            let t = target(name).unwrap();
            let a = (t.run)(&clean, &ExecConfig::default());
            let b = (t.run)(&zeroed, &ExecConfig::default());
            assert_eq!(a.schedule, b.schedule, "{name}");
            assert_eq!(a.coverage, b.coverage, "{name}");
            assert_eq!(a.violation, b.violation, "{name}");
        }
    }

    #[test]
    fn corrupted_abp_start_misbehaves_measurably() {
        // ABP with its alternating bits skewed out of agreement: the
        // transmitter believes it is past the receiver's expectation, so
        // the first message is swallowed by the duplicate filter — the
        // classic-zoo face of the corrupted-configuration fault class.
        let g = genome(
            5,
            vec![
                Gene::Corrupt(crate::genome::Corruption {
                    tx_seq: 1,
                    rx_expected: 0,
                    ghosts_tr: 0,
                    ghosts_rt: 0,
                    seed: 0,
                }),
                Gene::Send,
                Gene::Send,
            ],
        );
        let out = (target("abp").unwrap().run)(&g, &ExecConfig::default());
        let v = out.violation.expect("skewed counters must misbehave");
        assert!(
            ["DL4", "DL5", "DL8"].contains(&v.property),
            "unexpected property {}",
            v.property
        );
    }

    #[test]
    fn ghost_packets_reach_classic_receivers() {
        // A ghost DATA packet preloaded into t→r carries a message no one
        // sent; if the receiver trusts it, WDL safety (DL4) catches the
        // delivery. Either way the run must stay deterministic.
        let g = genome(
            10,
            vec![
                Gene::Corrupt(crate::genome::Corruption {
                    tx_seq: 0,
                    rx_expected: 0,
                    ghosts_tr: 4,
                    ghosts_rt: 2,
                    seed: 21,
                }),
                Gene::Send,
            ],
        );
        let t = target("go-back-2").unwrap();
        let a = (t.run)(&g, &ExecConfig::default());
        let b = (t.run)(&g, &ExecConfig::default());
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.violation, b.violation);
        // The ghosts are really in flight: the schedule must contain
        // more TR packet receptions than TR packet sends can explain.
        let sends = a
            .schedule
            .iter()
            .filter(|x| matches!(x, DlAction::SendPkt(Dir::TR, _)))
            .count();
        let recvs = a
            .schedule
            .iter()
            .filter(|x| matches!(x, DlAction::ReceivePkt(Dir::TR, _)))
            .count();
        assert!(
            recvs > 0 && (recvs > sends || a.violation.is_some()),
            "ghost traffic left no trace: {sends} sends, {recvs} recvs"
        );
    }

    #[test]
    fn corrupted_stabilizing_run_converges_without_counterexample() {
        // A corrupted start misbehaves for a prefix; suffix-mode judgment
        // must not call that a violation once the run stabilizes.
        let g = genome(
            6,
            vec![
                Gene::Corrupt(crate::genome::Corruption {
                    tx_seq: 2,
                    rx_expected: 5,
                    ghosts_tr: 3,
                    ghosts_rt: 2,
                    seed: 77,
                }),
                Gene::Send,
                Gene::Send,
                Gene::Send,
            ],
        );
        let out = (target("stabilizing").unwrap().run)(
            &g,
            &ExecConfig {
                max_steps: 2_000,
                full_dl: false,
            },
        );
        assert!(out.quiescent, "corrupted run must still quiesce");
        assert!(
            out.violation.is_none(),
            "stabilization is not a counterexample: {:?}",
            out.violation
        );
    }

    #[test]
    fn sends_beyond_the_corruption_budget_are_delivered() {
        // Gap of 3 (rx expects 5, tx starts at 2): the climb consumes at
        // most 3 messages, so 5 sends must deliver the surplus 2.
        let g = genome(
            8,
            vec![
                Gene::Corrupt(crate::genome::Corruption {
                    tx_seq: 2,
                    rx_expected: 5,
                    ghosts_tr: 3,
                    ghosts_rt: 3,
                    seed: 31,
                }),
                Gene::Send,
                Gene::Send,
                Gene::Send,
                Gene::Send,
                Gene::Send,
            ],
        );
        let out = (target("stabilizing").unwrap().run)(
            &g,
            &ExecConfig {
                max_steps: 4_000,
                full_dl: false,
            },
        );
        assert!(out.quiescent);
        assert!(out.violation.is_none(), "{:?}", out.violation);
        let delivered = out
            .schedule
            .iter()
            .filter(|a| matches!(a, DlAction::ReceiveMsg(_)))
            .count();
        assert_eq!(delivered, 2, "the surplus past the climb must arrive");
    }

    #[test]
    fn stabilizing_runs_replay_identically() {
        let g = genome(
            9,
            vec![
                Gene::Corrupt(crate::genome::Corruption {
                    tx_seq: 1,
                    rx_expected: 3,
                    ghosts_tr: 2,
                    ghosts_rt: 1,
                    seed: 5,
                }),
                Gene::Send,
                Gene::Crash(Station::T),
                Gene::Send,
            ],
        );
        let t = target("stabilizing").unwrap();
        let cfg = ExecConfig {
            max_steps: 2_000,
            full_dl: false,
        };
        let a = (t.run)(&g, &cfg);
        let b = (t.run)(&g, &cfg);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.violation, b.violation);
    }

    #[test]
    fn clean_abp_run_has_no_violation_and_full_coverage() {
        let g = genome(3, vec![Gene::Send, Gene::Send]);
        let out = (target("abp").unwrap().run)(&g, &ExecConfig::default());
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.quiescent);
        assert_eq!(out.coverage.len(), out.steps);
        assert_eq!(out.schedule.len(), out.steps);
    }

    #[test]
    fn abp_transmitter_crash_mid_flight_is_flagged() {
        // The E4 crash pump, phrased as a genome: deliver m0, crash t,
        // send m1 — the retransmitted DATA#0 swallows m1.
        let g = genome(
            2,
            vec![
                Gene::Send,
                Gene::Steps(3),
                Gene::Crash(Station::T),
                Gene::Send,
            ],
        );
        let out = (target("abp").unwrap().run)(&g, &ExecConfig::default());
        let v = out.violation.expect("crash pump violation");
        assert!(
            ["DL4", "DL5", "DL8"].contains(&v.property),
            "unexpected property {}",
            v.property
        );
    }

    #[test]
    fn executions_are_deterministic() {
        let g = genome(
            7,
            vec![
                Gene::Send,
                Gene::FaultsTr(dl_channels::FaultSpec {
                    loss: 64,
                    dup: 32,
                    reorder: 2,
                    burst_good: 0,
                    burst_bad: 0,
                    salt: 5,
                }),
                Gene::Send,
                Gene::Crash(Station::R),
                Gene::Send,
            ],
        );
        let t = target("go-back-2").unwrap();
        let a = (t.run)(&g, &ExecConfig::default());
        let b = (t.run)(&g, &ExecConfig::default());
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.violation, b.violation);
    }

    #[test]
    fn truncated_runs_are_not_judged_for_liveness() {
        // A tiny step budget truncates the run mid-delivery; DL8 must not
        // fire on the truncated trace.
        let g = genome(1, vec![Gene::Send]);
        let out = (target("abp").unwrap().run)(
            &g,
            &ExecConfig {
                max_steps: 4,
                full_dl: false,
            },
        );
        assert!(!out.quiescent);
        assert!(out.violation.is_none(), "{:?}", out.violation);
    }
}
