//! Fuzz targets: every protocol of the zoo, composed with fault-injected
//! channels and executed from a genome.
//!
//! Each target is a monomorphized `fn(&Genome, &ExecConfig) -> ExecOutcome`
//! that builds the §5.2 composition `hide_Φ(protocol ∥ FaultyChannel²)`,
//! runs the genome's plan through an online-monitored
//! [`Runner`](dl_sim::Runner), and extracts per-step coverage keys.
//!
//! Monitoring posture: executions run with `monitor_pl = false` (the
//! duplication fault knob violates PL3 *by design*, and aborting on the
//! medium's own misbehavior would hide the protocol bugs the fuzzer is
//! hunting) and `full_dl = false` by default, so a **violation** is either
//! an online `WDL` safety conclusion (DL4/DL5) or — on runs that quiesce
//! with the script fully consumed — a complete-trace `WDL` verdict, which
//! adds the DL8 liveness conclusion ("every sent message is delivered").
//! Truncated runs are never judged against DL8, so step-budget exhaustion
//! cannot fabricate liveness violations.

use std::hash::{BuildHasher, BuildHasherDefault};

use ioa::automaton::Automaton;
use ioa::schedule_module::{ScheduleModule, TraceKind, Verdict, Violation};

use dl_channels::FaultyChannel;
use dl_core::action::{Dir, DlAction, Station};
use dl_core::protocol::DataLinkProtocol;
use dl_core::spec::datalink::DlModule;
use dl_sim::{link_system, ConformancePolicy, Runner};

use crate::genome::Genome;

/// Per-execution knobs, shared by every target.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Global step bound per execution.
    pub max_steps: usize,
    /// Judge against the full `DL` spec instead of the weak `WDL`.
    pub full_dl: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_steps: 800,
            full_dl: false,
        }
    }
}

/// What one execution of a genome produced.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The judged violation, if any (online safety, or batch `WDL` on a
    /// quiescent complete trace).
    pub violation: Option<Violation>,
    /// `true` if the run quiesced with the script fully consumed.
    pub quiescent: bool,
    /// Steps taken.
    pub steps: usize,
    /// One coverage key per step: a hash of `(post-state, progress
    /// digest, action class)`.
    pub coverage: Vec<u64>,
    /// The full stamped schedule — the replay-comparison witness.
    pub schedule: Vec<DlAction>,
}

/// A named, runnable fuzz target.
#[derive(Debug, Clone, Copy)]
pub struct Target {
    /// Stable target name, e.g. `"abp"` or `"quirky"`.
    pub name: &'static str,
    /// Executes one genome against this target's composed system.
    pub run: fn(&Genome, &ExecConfig) -> ExecOutcome,
}

/// The full target registry: all nine protocols of the zoo.
#[must_use]
pub fn all_targets() -> &'static [Target] {
    &TARGETS
}

/// Looks a target up by name.
#[must_use]
pub fn target(name: &str) -> Option<&'static Target> {
    TARGETS.iter().find(|t| t.name == name)
}

static TARGETS: [Target; 9] = [
    Target {
        name: "abp",
        run: |g, c| run_protocol(dl_protocols::abp::protocol(), g, c),
    },
    Target {
        name: "go-back-2",
        run: |g, c| run_protocol(dl_protocols::sliding_window::protocol(2), g, c),
    },
    Target {
        name: "go-back-8",
        run: |g, c| run_protocol(dl_protocols::sliding_window::protocol(8), g, c),
    },
    Target {
        name: "selective-repeat-4",
        run: |g, c| run_protocol(dl_protocols::selective_repeat::protocol(4), g, c),
    },
    Target {
        name: "fragmenting",
        run: |g, c| run_protocol(dl_protocols::fragmenting::protocol(), g, c),
    },
    Target {
        name: "parity",
        run: |g, c| run_protocol(dl_protocols::parity::protocol(), g, c),
    },
    Target {
        name: "stenning",
        run: |g, c| run_protocol(dl_protocols::stenning::protocol(), g, c),
    },
    Target {
        name: "nonvolatile",
        run: |g, c| run_protocol(dl_protocols::nonvolatile::protocol(), g, c),
    },
    Target {
        name: "quirky",
        run: |g, c| run_protocol(dl_protocols::quirky::protocol(), g, c),
    },
];

/// Coarse action-class code for coverage keys: which kind of action fired,
/// and on which side/direction.
fn action_class(a: &DlAction) -> u64 {
    match a {
        DlAction::SendMsg(_) => 0,
        DlAction::ReceiveMsg(_) => 1,
        DlAction::SendPkt(Dir::TR, _) => 2,
        DlAction::SendPkt(Dir::RT, _) => 3,
        DlAction::ReceivePkt(Dir::TR, _) => 4,
        DlAction::ReceivePkt(Dir::RT, _) => 5,
        DlAction::Wake(Dir::TR) => 6,
        DlAction::Wake(Dir::RT) => 7,
        DlAction::Fail(Dir::TR) => 8,
        DlAction::Fail(Dir::RT) => 9,
        DlAction::Crash(Station::T) => 10,
        DlAction::Crash(Station::R) => 11,
        DlAction::Internal(Station::T, _) => 12,
        DlAction::Internal(Station::R, _) => 13,
    }
}

/// Log-bucketed counter, ≤ 15 — keeps the progress digest finite.
fn bucket(n: u64) -> u64 {
    u64::from(64 - n.leading_zeros()).min(15)
}

fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a ^ b.rotate_left(21) ^ c.rotate_left(42);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs one genome against one protocol over fault-injected channels.
pub fn run_protocol<T, R>(
    protocol: DataLinkProtocol<T, R>,
    genome: &Genome,
    cfg: &ExecConfig,
) -> ExecOutcome
where
    T: Automaton<Action = DlAction>,
    R: Automaton<Action = DlAction>,
    T::State: std::hash::Hash,
    R::State: std::hash::Hash,
{
    let plan = genome.decode();
    let system = link_system(
        protocol.transmitter,
        protocol.receiver,
        FaultyChannel::new(Dir::TR, plan.faults[0]),
        FaultyChannel::new(Dir::RT, plan.faults[1]),
    );
    let policy = ConformancePolicy {
        full_dl: cfg.full_dl,
        complete: false,
        fifo_channels: false,
        monitor_pl: false,
        ..ConformancePolicy::default()
    };
    let mut runner = Runner::new(genome.seed, cfg.max_steps)
        .with_online_conformance(policy)
        .with_decision_overrides(plan.overrides.clone());
    let report = runner.run(&system, &plan.script);

    let mut violation = report.online_violation.clone();
    if violation.is_none() && report.quiescent {
        let module = if cfg.full_dl {
            DlModule::full()
        } else {
            DlModule::weak()
        };
        if let Verdict::Violated(v) = module.check(&report.behavior, TraceKind::Complete) {
            violation = Some(v);
        }
    }

    // Coverage: one key per step, hashing the composed post-state, a
    // log-bucketed progress digest (the monitor-visible counters), and the
    // action class — the `(protocol state, monitor state, action class)`
    // tuple, collapsed to 64 bits.
    let hasher = BuildHasherDefault::<std::collections::hash_map::DefaultHasher>::default();
    let (mut sent, mut delivered, mut crashes) = (0u64, 0u64, 0u64);
    let mut coverage = Vec::with_capacity(report.execution.len());
    for step in report.execution.steps() {
        match step.action {
            DlAction::SendMsg(_) => sent += 1,
            DlAction::ReceiveMsg(_) => delivered += 1,
            DlAction::Crash(_) => crashes += 1,
            _ => {}
        }
        let digest = bucket(sent) | bucket(delivered) << 4 | crashes.min(15) << 8;
        coverage.push(mix3(
            hasher.hash_one(&step.post),
            digest,
            action_class(&step.action),
        ));
    }

    ExecOutcome {
        violation,
        quiescent: report.quiescent,
        steps: report.execution.len(),
        coverage,
        schedule: report.schedule(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::Gene;

    fn genome(seed: u64, genes: Vec<Gene>) -> Genome {
        Genome { seed, genes }
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut names: Vec<_> = all_targets().iter().map(|t| t.name).collect();
        assert_eq!(names.len(), 9);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9, "duplicate target names");
        assert!(target("quirky").is_some());
        assert!(target("no-such-protocol").is_none());
    }

    #[test]
    fn clean_abp_run_has_no_violation_and_full_coverage() {
        let g = genome(3, vec![Gene::Send, Gene::Send]);
        let out = (target("abp").unwrap().run)(&g, &ExecConfig::default());
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.quiescent);
        assert_eq!(out.coverage.len(), out.steps);
        assert_eq!(out.schedule.len(), out.steps);
    }

    #[test]
    fn abp_transmitter_crash_mid_flight_is_flagged() {
        // The E4 crash pump, phrased as a genome: deliver m0, crash t,
        // send m1 — the retransmitted DATA#0 swallows m1.
        let g = genome(
            2,
            vec![
                Gene::Send,
                Gene::Steps(3),
                Gene::Crash(Station::T),
                Gene::Send,
            ],
        );
        let out = (target("abp").unwrap().run)(&g, &ExecConfig::default());
        let v = out.violation.expect("crash pump violation");
        assert!(
            ["DL4", "DL5", "DL8"].contains(&v.property),
            "unexpected property {}",
            v.property
        );
    }

    #[test]
    fn executions_are_deterministic() {
        let g = genome(
            7,
            vec![
                Gene::Send,
                Gene::FaultsTr(dl_channels::FaultSpec {
                    loss: 64,
                    dup: 32,
                    reorder: 2,
                    burst_good: 0,
                    burst_bad: 0,
                    salt: 5,
                }),
                Gene::Send,
                Gene::Crash(Station::R),
                Gene::Send,
            ],
        );
        let t = target("go-back-2").unwrap();
        let a = (t.run)(&g, &ExecConfig::default());
        let b = (t.run)(&g, &ExecConfig::default());
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.violation, b.violation);
    }

    #[test]
    fn truncated_runs_are_not_judged_for_liveness() {
        // A tiny step budget truncates the run mid-delivery; DL8 must not
        // fire on the truncated trace.
        let g = genome(1, vec![Gene::Send]);
        let out = (target("abp").unwrap().run)(
            &g,
            &ExecConfig {
                max_steps: 4,
                full_dl: false,
            },
        );
        assert!(!out.quiescent);
        assert!(out.violation.is_none(), "{:?}", out.violation);
    }
}
