//! `dl-fuzz`: a coverage-guided schedule fuzzer for data link protocols.
//!
//! Theorems 7.5 and 8.5 are adversarial-schedule arguments: a violation
//! exists iff *some* interleaving of crashes, losses, duplications, and
//! reorderings exhibits it. Exhaustive search (`dl-explore`) proves small
//! configurations outright but caps out quickly; this crate trades proof
//! for reach, hunting violations in configurations far beyond BFS range
//! with the streaming `TraceMonitor` of `dl-core` as a linear-time oracle.
//!
//! # Architecture
//!
//! * [`genome`] — a run is a `(seed, gene sequence)` [`Genome`]: genes
//!   decode into an environment script (sends, crashes, link flaps,
//!   settle points), per-direction [`FaultSpec`](dl_channels::FaultSpec)
//!   channel knobs, and scheduler decision overrides; the seed drives
//!   every remaining executor choice through `dl-sim`'s decision points.
//!   Executions are **pure functions of the genome** — no hidden
//!   randomness — so every result replays.
//! * [`target`] — all ten protocols of the zoo, each composed with two
//!   [`FaultyChannel`](dl_channels::FaultyChannel)s and executed under an
//!   online conformance monitor (`monitor_pl = false`: the fault knobs
//!   violate the physical layer on purpose; the quarry is data-link
//!   violations of the protocol under test). The `stabilizing` target is
//!   special: it runs over [`CorruptChannel`](dl_channels::CorruptChannel)s
//!   whose initial contents (and the stations' initial counters) come from
//!   [`Gene::Corrupt`] genes, with no online monitor at all — quiescent
//!   runs are judged in *suffix mode* by `dl-core`'s `SuffixMonitor`, so
//!   only a failure to stabilize counts as a counterexample.
//! * [`coverage`] / [`corpus`] — novelty detection over per-step
//!   `(post-state, progress digest, action class)` hashes, deduplicated
//!   in a sharded set modeled on `dl-explore`'s visited set; genomes that
//!   contribute novel keys join the corpus and breed.
//! * [`fleet`] — the multi-threaded campaign loop: [`fuzz`] spawns
//!   workers, each mutating corpus picks or generating fresh genomes,
//!   until an execution / wall-clock budget or the first violation.
//! * [`shrink`] — ddmin over the gene sequence plus numeric
//!   simplification, preserving the violated property; every emitted
//!   [`Counterexample`] is replay-verified (two fresh executions,
//!   byte-identical schedules).
//! * [`report`] — throughput, coverage growth curve, corpus statistics,
//!   and the shrunk counterexamples.
//!
//! # Example
//!
//! ```
//! use dl_fuzz::{fuzz, target, FuzzConfig};
//!
//! let cfg = FuzzConfig {
//!     seed: 0xDA7A,
//!     max_execs: 400,
//!     max_steps: 400,
//!     ..FuzzConfig::default()
//! };
//! let report = fuzz(target("quirky").expect("registered"), &cfg);
//! // The quirky protocol's crash-forgets-everything receiver redelivers:
//! assert!(report.counterexamples.iter().any(|c| c.replay_verified));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod coverage;
pub mod fleet;
pub mod genome;
pub mod report;
pub mod shrink;
pub mod target;

pub use corpus::{Corpus, CorpusEntry, CorpusStats};
pub use coverage::ShardedCoverage;
pub use fleet::{fuzz, FuzzConfig};
pub use genome::{Corruption, Gene, Genome, Plan};
pub use report::{Counterexample, FuzzReport};
pub use shrink::{replays_identically, shrink, shrink_counted};
pub use target::{all_targets, target, ExecConfig, ExecOutcome, Target};
