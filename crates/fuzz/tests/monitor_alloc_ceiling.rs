//! Monitor memory ceiling: transit state is bounded by *live* in-flight
//! packets, not by total sends.
//!
//! The old `TransitState` pushed one slot per send and tombstoned
//! received slots with `None`, so a long-lived monitored link leaked one
//! slot per packet forever — memory O(total sends) even with nothing in
//! transit. The struct-of-arrays rewrite recycles cancelled slots
//! through a free list, so a monitor watching recurring traffic reaches
//! a steady state: zero allocations and a byte-stable footprint no
//! matter how many more actions stream through. This test pins both
//! with a counting global allocator, the same instrument
//! `alloc_regression.rs` uses for the execution core.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dl_core::action::{Dir, DlAction, Msg, Packet};
use dl_core::spec::monitor::TraceMonitor;

/// Counts every allocation (and growth reallocation); frees are not
/// interesting for a regression bound.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One chunk of recurring-value traffic: a window of `width` packets per
/// direction goes into transit, then drains in FIFO order. The same
/// `width × 2` packet values recur in every chunk, so the value tables
/// stop growing after the first chunk and only transit slots churn.
fn recurring_chunk(width: u64) -> Vec<DlAction> {
    let mut chunk = Vec::new();
    for dir in Dir::BOTH {
        for v in 0..width {
            chunk.push(DlAction::SendPkt(dir, Packet::data(v, Msg(v)).with_uid(v)));
        }
    }
    for dir in Dir::BOTH {
        for v in 0..width {
            chunk.push(DlAction::ReceivePkt(
                dir,
                Packet::data(v, Msg(v)).with_uid(v),
            ));
        }
    }
    chunk
}

#[test]
fn monitor_steady_state_allocates_nothing_and_stays_byte_stable() {
    // Kept well under the monitor's batch pre-reserve threshold so the
    // fast path exercised here is plain ingestion, not `reserve`.
    let chunk = recurring_chunk(64);
    assert!(chunk.len() < 512);

    let mut mon = TraceMonitor::new();
    mon.observe(&DlAction::Wake(Dir::TR));
    mon.observe(&DlAction::Wake(Dir::RT));
    // Warm up: table growth, the one-time duplicate-send violation
    // strings, and capacity doubling all happen in the first few chunks.
    for _ in 0..8 {
        mon.observe_all(&chunk);
    }
    let bytes_before = mon.approx_bytes();
    let actions_before = mon.actions_observed();
    let allocs_before = ALLOCS.load(Ordering::Relaxed);

    // 400 more chunks ≈ 10⁵ further actions, 100× more total sends than
    // the live window ever holds.
    for _ in 0..400 {
        mon.observe_all(&chunk);
        assert_eq!(mon.in_transit_count(Dir::TR), 0);
        assert_eq!(mon.in_transit_count(Dir::RT), 0);
    }

    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let actions = mon.actions_observed() - actions_before;
    eprintln!(
        "monitor steady state: {allocs} allocations over {actions} actions, \
         footprint {} bytes",
        mon.approx_bytes()
    );
    assert!(actions >= 100_000);
    assert_eq!(
        mon.approx_bytes(),
        bytes_before,
        "footprint grew with total sends — the transit free list stopped recycling"
    );
    assert_eq!(
        allocs, 0,
        "steady-state ingestion allocated {allocs} times over {actions} actions"
    );
}

#[test]
fn footprint_tracks_peak_live_transit_not_send_count() {
    // Two monitors, same total send count, different peak in-flight
    // windows: the wide one may cost more, but the narrow one must not
    // grow toward the wide one's footprint no matter how many chunks
    // (i.e. total sends) it observes.
    let narrow = recurring_chunk(16);
    let wide = recurring_chunk(1024);

    let mut narrow_mon = TraceMonitor::new();
    // 64× the chunks, so both monitors see the same number of sends.
    for _ in 0..256 {
        narrow_mon.observe_all(&narrow);
    }
    let mut wide_mon = TraceMonitor::new();
    for _ in 0..4 {
        wide_mon.observe_all(&wide);
    }
    assert!(
        narrow_mon.approx_bytes() * 4 < wide_mon.approx_bytes(),
        "a 16-packet window ({} bytes) should cost far less than a \
         1024-packet window ({} bytes) at equal send counts",
        narrow_mon.approx_bytes(),
        wide_mon.approx_bytes()
    );
}
