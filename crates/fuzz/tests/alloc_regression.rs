//! Allocation-regression smoke for the interned execution core.
//!
//! One fuzz exec used to clone the full enabled-action set, a per-class
//! filter vector, and the full successor list on **every step** — tens of
//! allocations per step, hundreds of thousands per exec. The scratch-
//! buffer runner reduced the steady state to the unavoidable residue:
//! constructing successor states (channel states own heap collections),
//! recording the execution, and the report's output vectors. This test
//! pins that residue with a counting global allocator so a future change
//! that quietly reintroduces per-step cloning fails loudly here rather
//! than as a silent throughput loss in the benches.
//!
//! The ceiling is deliberately generous (~1.5× current measurements) so it
//! only trips on asymptotic regressions, not allocator or libstd noise.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dl_fuzz::{ExecConfig, Gene, Genome};

/// Counts every allocation (and growth reallocation); frees are not
/// interesting for a regression bound.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_for_one_exec(target_name: &str, genome: &Genome, cfg: &ExecConfig) -> (u64, usize) {
    let t = dl_fuzz::target(target_name).expect("known target");
    // Warm up once so lazily-initialized runtime state (thread-locals,
    // hasher seeds) is excluded from the measurement.
    let _ = (t.run)(genome, cfg);
    let before = ALLOCS.load(Ordering::Relaxed);
    let outcome = (t.run)(genome, cfg);
    let after = ALLOCS.load(Ordering::Relaxed);
    (after - before, outcome.steps)
}

#[test]
fn fuzz_exec_allocations_stay_bounded() {
    // A busy but realistic genome: several messages, a crash, lossy
    // duplicating media — enough work to reach the 800-step default
    // budget's neighborhood on the chattier protocols.
    let genome = Genome {
        seed: 0xFEED_F00D,
        genes: vec![
            Gene::Send,
            Gene::Send,
            Gene::Send,
            Gene::Send,
            Gene::Steps(120),
            Gene::Crash(dl_core::action::Station::T),
            Gene::Send,
            Gene::Send,
            Gene::Send,
            Gene::Steps(200),
        ],
    };
    let cfg = ExecConfig::default();

    // Measured on the scratch-buffer core (debug build): abp ≈ 721 allocs
    // over 74 steps; go-back-8 ≈ 10_013 and selective-repeat-4 ≈ 10_068
    // over the full 800-step budget — ≈ 10–13 per step, all from successor
    // state construction, execution recording, and report assembly.
    for (name, ceiling) in [
        ("abp", 1_500u64),
        ("go-back-8", 16_000),
        ("selective-repeat-4", 16_000),
    ] {
        let (allocs, steps) = allocs_for_one_exec(name, &genome, &cfg);
        eprintln!("{name}: {allocs} allocations over {steps} steps");
        assert!(
            steps > 50,
            "{name}: exec too short ({steps} steps) to be meaningful"
        );
        assert!(
            allocs < ceiling,
            "{name}: {allocs} allocations in one exec ({steps} steps) — \
             above the pinned ceiling {ceiling}; did per-step cloning sneak \
             back into the runner?"
        );
        // Also bound the per-step rate: the clone-based executor sat at
        // dozens per step, the scratch-buffer core at a handful.
        let per_step = allocs as f64 / steps as f64;
        assert!(
            per_step < 20.0,
            "{name}: {per_step:.1} allocations per step ({allocs}/{steps})"
        );
    }
}
