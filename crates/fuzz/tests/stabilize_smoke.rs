//! Bounded stabilization smoke: the `stabilize-smoke` check.sh stage.
//!
//! Two legs, both offline and wall-clock independent:
//!
//! 1. **Bounded convergence runs from corrupted configurations** — hand-
//!    built genomes with explicit [`Corruption`] genes (skewed station
//!    counters, ghost packets in both non-FIFO channels) execute through
//!    the stabilizing target and converge: quiescent, and judged clean by
//!    the suffix-mode monitor with the corruption-budget liveness oracle.
//! 2. **Fuzz rediscovery** — a cold-start campaign over the stabilizing
//!    target, whose genome pool includes the corruption genes, explores
//!    the corrupted-initial-configuration fault class without ever
//!    producing a counterexample (arXiv 1011.3632's possibility result,
//!    as a fuzzing null result), and reproduces byte-identically.

use dl_fuzz::{fuzz, target, Corruption, ExecConfig, FuzzConfig, Gene, Genome};

fn smoke_cfg() -> FuzzConfig {
    FuzzConfig {
        seed: 42,
        workers: 1,
        max_execs: 400,
        max_steps: 2_000,
        stop_on_violation: false,
        ..FuzzConfig::default()
    }
}

/// A genome that sends `msgs` messages from an explicitly corrupted
/// initial configuration.
fn corrupted_genome(corruption: Corruption, msgs: usize) -> Genome {
    let mut genes = vec![Gene::Corrupt(corruption)];
    genes.extend(std::iter::repeat_n(Gene::Send, msgs));
    genes.push(Gene::Settle);
    Genome { seed: 7, genes }
}

#[test]
fn corrupted_configurations_converge_within_the_bound() {
    let t = target("stabilizing").expect("stabilizing is registered");
    assert!(t.corrupting, "the stabilizing target decodes corruption");
    let cfg = ExecConfig {
        max_steps: 4_000,
        full_dl: false,
    };
    // A sweep over counter skews and ghost populations: every corrupted
    // start must converge — quiesce and conclude no violation under the
    // suffix-mode judgment.
    for (tx_seq, rx_expected) in [(0, 0), (1, 1), (0, 3), (2, 5), (5, 5)] {
        for ghosts in [0u8, 2, 3] {
            let corruption = Corruption {
                tx_seq,
                rx_expected,
                ghosts_tr: ghosts,
                ghosts_rt: ghosts / 2,
                seed: 0xD0_1E5 ^ u64::from(ghosts),
            };
            // Send strictly more messages than the corruption budget so
            // the run proves post-convergence delivery, not just a climb.
            let budget = u64::from(rx_expected - tx_seq);
            let outcome = (t.run)(&corrupted_genome(corruption, budget as usize + 3), &cfg);
            assert!(
                outcome.quiescent,
                "corrupted start {corruption:?} did not quiesce"
            );
            assert_eq!(
                outcome.violation, None,
                "corrupted start {corruption:?} failed to stabilize"
            );
        }
    }
}

#[test]
fn fuzzing_the_corrupted_fault_class_finds_no_counterexample() {
    let t = target("stabilizing").expect("stabilizing is registered");
    let report = fuzz(t, &smoke_cfg());
    assert_eq!(report.executions, 400);
    assert!(
        report.counterexamples.is_empty(),
        "the stabilizing protocol must survive the corrupted fault class: {:?}",
        report
            .counterexamples
            .iter()
            .map(|c| (c.violation.property, &c.genome.genes))
            .collect::<Vec<_>>()
    );
    // The campaign genuinely explored: coverage accumulated and the
    // corpus retained novelty-bearing genomes.
    assert!(
        report.coverage_points > 200,
        "campaign barely explored: {} coverage points",
        report.coverage_points
    );
    assert!(report.corpus.entries > 0);
}

#[test]
fn stabilize_campaign_is_deterministic() {
    let t = target("stabilizing").expect("stabilizing is registered");
    let a = fuzz(t, &smoke_cfg());
    let b = fuzz(t, &smoke_cfg());
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.coverage_points, b.coverage_points);
    assert_eq!(a.coverage_curve, b.coverage_curve);
    assert_eq!(a.corpus.entries, b.corpus.entries);
    assert_eq!(a.corpus.total_novelty, b.corpus.total_novelty);
}
