//! Bounded, deterministic fuzz smoke: the check.sh gate.
//!
//! Cold-start rediscovery of the two seeded violations — the `quirky`
//! protocol's crash-forgets-everything duplicate delivery (experiment E9)
//! and the ABP crash pump (experiment E4) — under a fixed seed and a small
//! execution budget, with byte-identical replay of every emitted
//! counterexample. Entirely offline and wall-clock independent: budgets
//! are execution counts, never time.

use dl_core::action::Station;
use dl_fuzz::{fuzz, target, ExecConfig, FuzzConfig, Gene};

fn smoke_cfg() -> FuzzConfig {
    FuzzConfig {
        seed: 42,
        workers: 1,
        max_execs: 400,
        max_steps: 400,
        stop_on_violation: false,
        ..FuzzConfig::default()
    }
}

#[test]
fn rediscovers_quirky_duplicate_delivery_and_replays_it() {
    let t = target("quirky").expect("quirky is registered");
    let report = fuzz(t, &smoke_cfg());
    let c = report
        .counterexample("DL4")
        .expect("quirky DL4 within the smoke budget");
    assert!(c.replay_verified, "shrunk counterexample must replay");
    assert!(c.found_at_exec <= 400);
    // The violation needs the receiver's volatile `seen` set wiped.
    assert!(
        c.genome
            .genes
            .iter()
            .any(|g| matches!(g, Gene::Crash(Station::R))),
        "shrunk genome kept a receiver crash: {:?}",
        c.genome.genes
    );
    // Byte-identical reproduction from the (seed, genome) pair alone.
    let cfg = ExecConfig {
        max_steps: 400,
        full_dl: false,
    };
    let rerun = (t.run)(&c.genome, &cfg);
    assert_eq!(rerun.schedule, c.trace, "replay diverged from the report");
    assert_eq!(
        rerun.violation.as_ref().map(|v| v.property),
        Some("DL4"),
        "replay lost the violation"
    );
}

#[test]
fn rediscovers_abp_crash_pump_and_replays_it() {
    let t = target("abp").expect("abp is registered");
    let report = fuzz(t, &smoke_cfg());
    assert!(
        !report.counterexamples.is_empty(),
        "the ABP crash pump must fall within the smoke budget"
    );
    for c in &report.counterexamples {
        assert!(
            ["DL4", "DL5", "DL8"].contains(&c.violation.property),
            "unexpected property {}",
            c.violation.property
        );
        assert!(c.replay_verified, "{} failed replay", c.violation.property);
        // Theorem 7.5's mechanism: no violation without a crash.
        assert!(
            c.genome.genes.iter().any(|g| matches!(g, Gene::Crash(_))),
            "shrunk genome lost its crash: {:?}",
            c.genome.genes
        );
        // Shrinking produced a small witness.
        assert!(
            c.genome.genes.len() <= 8,
            "shrunk genome still has {} genes",
            c.genome.genes.len()
        );
        let cfg = ExecConfig {
            max_steps: 400,
            full_dl: false,
        };
        let rerun = (t.run)(&c.genome, &cfg);
        assert_eq!(rerun.schedule, c.trace);
    }
}

#[test]
fn nonvolatile_survives_the_same_budget() {
    // The Theorem 7.5 tightness control: the protocol with non-volatile
    // memory endures the identical fault regime without a violation.
    let report = fuzz(target("nonvolatile").expect("registered"), &smoke_cfg());
    assert_eq!(report.executions, 400);
    assert!(
        report.counterexamples.is_empty(),
        "nonvolatile should survive: {:?}",
        report
            .counterexamples
            .iter()
            .map(|c| c.violation.property)
            .collect::<Vec<_>>()
    );
    assert!(report.coverage_points > 0);
}

#[test]
fn smoke_campaign_is_deterministic() {
    let t = target("quirky").expect("registered");
    let a = fuzz(t, &smoke_cfg());
    let b = fuzz(t, &smoke_cfg());
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.coverage_points, b.coverage_points);
    assert_eq!(a.counterexamples.len(), b.counterexamples.len());
    for (x, y) in a.counterexamples.iter().zip(&b.counterexamples) {
        assert_eq!(x.violation.property, y.violation.property);
        assert_eq!(x.genome, y.genome);
        assert_eq!(x.trace, y.trace);
        assert_eq!(x.found_at_exec, y.found_at_exec);
    }
}
