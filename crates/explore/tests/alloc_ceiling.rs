//! Allocation-ceiling smoke for the sharded visited set.
//!
//! The lock-free rewrite's whole point is that the per-layer barrier no
//! longer rebuilds hash tables or re-clones frontier states: workers
//! claim slots in a preallocated `LayerFilter` with a CAS on the tag
//! word, and only genuinely new states reach the arena. This test pins
//! that steady state with a counting global allocator, on both storage
//! backends, so a change that quietly reintroduces per-edge cloning (or
//! per-candidate boxing on the packed path) fails loudly here rather
//! than as a silent throughput loss in `explore/deep`.
//!
//! Measured on the current engine (debug build, E9 at channel capacity
//! 2, 594 states / 3042 edges, one worker): plain ≈ 26.9k allocations
//! (~45 per state, ~8.8 per edge — successor construction dominates,
//! since every candidate E9 state owns channel `VecDeque`s and observer
//! sets), packed ≈ 39.7k (~13.0 per edge — each admitted state adds one
//! boxed canonical encoding, and expansion decodes frontier states back
//! into their heap-carrying form). The ceilings are ~1.5× those
//! measurements so only asymptotic regressions trip them, not allocator
//! or libstd noise.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dl_channels::{LossMode, LossyFifoChannel};
use dl_core::action::{Dir, DlAction, Msg};
use dl_core::observer::{ObserverState, WdlObserver};
use dl_explore::ParallelExplorer;
use ioa::composition::Compose2;
use ioa::Automaton;

/// Counts every allocation (and growth reallocation); frees are not
/// interesting for a regression bound.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

type Sys = Compose2<
    Compose2<dl_protocols::AbpTransmitter, dl_protocols::AbpReceiver>,
    Compose2<Compose2<LossyFifoChannel, LossyFifoChannel>, WdlObserver>,
>;

type SysState = <Sys as Automaton>::State;

/// E9 at channel capacity 2 — the published model one notch smaller, so
/// a debug-build measurement stays fast while still exercising real
/// heap-carrying states (channel `VecDeque`s, observer sets).
fn small_e9() -> Sys {
    let p = dl_protocols::abp::protocol();
    Compose2::new(
        Compose2::new(p.transmitter, p.receiver),
        Compose2::new(
            Compose2::new(
                LossyFifoChannel::with_capacity(Dir::TR, LossMode::Nondet, 2),
                LossyFifoChannel::with_capacity(Dir::RT, LossMode::Nondet, 2),
            ),
            WdlObserver,
        ),
    )
}

fn observer_of(s: &SysState) -> &ObserverState {
    &s.right.right
}

fn inputs(s: &SysState) -> Vec<DlAction> {
    let obs = observer_of(s);
    (0..2u64)
        .map(Msg)
        .find(|m| !obs.sent.contains(m))
        .map(DlAction::SendMsg)
        .into_iter()
        .collect()
}

fn woken_start(sys: &Sys) -> SysState {
    let s0 = sys.start_states().remove(0);
    let s1 = sys.step_first(&s0, &DlAction::Wake(Dir::TR)).unwrap();
    sys.step_first(&s1, &DlAction::Wake(Dir::RT)).unwrap()
}

/// Runs one full single-worker exploration and returns its allocation
/// count plus the (states, edges) it visited, with a warm-up run first
/// so lazily-initialized runtime state is excluded.
fn allocs_for_one_run(packed: bool) -> (u64, usize, u64) {
    let sys = small_e9();
    let start = woken_start(&sys);
    let explore = |start: SysState| {
        let e = ParallelExplorer::new(&sys, inputs, 100_000, 10_000).threads(1);
        if packed {
            e.packed()
                .check_invariant_from(vec![start], |s| observer_of(s).is_safe())
        } else {
            e.check_invariant_from(vec![start], |s| observer_of(s).is_safe())
        }
    };
    let _ = explore(start.clone());
    let before = ALLOCS.load(Ordering::Relaxed);
    let report = explore(start);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(report.holds(), "ABP must be safe crash-free");
    (
        after - before,
        report.states_visited,
        report.edges_expanded(),
    )
}

#[test]
fn visited_set_allocations_stay_bounded() {
    for (name, packed, ceiling) in [("plain", false, 40_000u64), ("packed", true, 60_000u64)] {
        let (allocs, states, edges) = allocs_for_one_run(packed);
        eprintln!("{name}: {allocs} allocations over {states} states / {edges} edges");
        assert_eq!(states, 594, "{name}: capacity-2 E9 state count moved");
        assert!(
            allocs < ceiling,
            "{name}: {allocs} allocations in one exploration ({states} states, \
             {edges} edges) — above the pinned ceiling {ceiling}; did per-edge \
             cloning sneak back into the visited set?"
        );
        // Also bound the per-edge rate: a visited set that clones or
        // boxes every candidate would sit at dozens per edge.
        let per_edge = allocs as f64 / edges as f64;
        assert!(
            per_edge < 20.0,
            "{name}: {per_edge:.1} allocations per expanded edge ({allocs}/{edges})"
        );
    }
}
