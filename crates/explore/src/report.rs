//! Exploration results: a superset of [`ioa::ExploreReport`].

use std::time::Duration;

use dl_obs::{Histogram, RunLedger};

/// Why the search stopped before exhausting the reachable state space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truncation {
    /// The state budget filled: later discoveries were dropped.
    StateBudget,
    /// The depth budget was reached with a non-empty frontier.
    DepthBudget,
}

/// A property violation with a shortest action path reaching it.
#[derive(Debug, Clone)]
pub struct Violation<A, S> {
    /// A shortest action sequence from a start state to `state`. BFS
    /// guarantees minimal length; the deterministic claim ordering
    /// guarantees the *same* path for every thread count.
    pub path: Vec<A>,
    /// The violating state.
    pub state: S,
    /// Name of the violated [`Property`](crate::Property).
    pub property: String,
}

/// Frontier statistics for one expanded BFS layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerStats {
    /// Depth of the expanded frontier (start states are depth 0).
    pub depth: usize,
    /// Number of states in the expanded frontier.
    pub frontier: usize,
    /// Distinct new states admitted from this expansion.
    pub discovered: usize,
    /// Transitions enumerated while expanding this layer.
    pub edges: u64,
    /// Transitions that landed on an already-known state (or improved a
    /// pending claim on one).
    pub duplicates: u64,
}

/// Result of a parallel exploration.
///
/// Superset of [`ioa::ExploreReport`]: the `states_visited` /
/// `quiescent_states` / `violation` triple carries the same meaning,
/// plus truncation cause, per-layer statistics, and engine telemetry.
#[derive(Debug, Clone)]
pub struct ExploreReport<A, S> {
    /// Number of distinct states admitted to the search.
    pub states_visited: usize,
    /// Why the search was cut short, if it was. Absence of a violation is
    /// conclusive only when this is `None`.
    pub truncation: Option<Truncation>,
    /// The deterministic shortest violation, if any property failed.
    pub violation: Option<Violation<A, S>>,
    /// States with no locally-controlled action enabled and no permitted
    /// input (terminal under this exploration).
    pub quiescent_states: usize,
    /// Statistics for each layer that was expanded.
    pub layers: Vec<LayerStats>,
    /// Worker threads the engine actually used.
    pub threads: usize,
    /// Resident bytes of the state arena (interned states, cached hashes,
    /// index slots) when the search finished. A lower bound on footprint:
    /// heap data owned *by* the states is not traversed. With the interned
    /// core each state is stored once — the legacy engine's second copy in
    /// the visited map is gone.
    pub arena_bytes: usize,
    /// Wall-clock duration of the search.
    pub duration: Duration,
    /// Nanoseconds spent single-threaded at layer barriers (claim
    /// draining, admission, property checks) — the stall time the worker
    /// pool sits out. Always 0 unless the `obs` feature is enabled.
    pub barrier_nanos: u64,
}

impl<A, S> ExploreReport<A, S> {
    /// `true` if the search enumerated *every* reachable state (no budget
    /// truncation), so its verdict is conclusive for the full model.
    #[must_use]
    pub fn exhaustive(&self) -> bool {
        self.truncation.is_none()
    }

    /// `true` if no property violation was found among the states the
    /// budget admitted — the weaker, budget-relative safety verdict.
    #[must_use]
    pub fn safe_within_budget(&self) -> bool {
        self.violation.is_none()
    }

    /// `true` if every admitted state satisfied every property **and**
    /// the search was exhaustive. Mirrors `ioa::ExploreReport::holds`.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.safe_within_budget() && self.exhaustive()
    }

    /// Total transitions enumerated across all layers.
    #[must_use]
    pub fn edges_expanded(&self) -> u64 {
        self.layers.iter().map(|l| l.edges).sum()
    }

    /// Depth of the deepest expanded frontier.
    #[must_use]
    pub fn max_depth_reached(&self) -> usize {
        self.layers.last().map_or(0, |l| l.depth)
    }

    /// The state graph's diameter from the start set, when the search
    /// was [`exhaustive`](Self::exhaustive): synonym of
    /// [`max_depth_reached`](Self::max_depth_reached) under the name the
    /// cross-formalism differential (`dl-crosscheck`) compares.
    #[must_use]
    pub fn diameter(&self) -> usize {
        self.max_depth_reached()
    }

    /// Distinct states first discovered at the given depth: the layer's
    /// `discovered` count, or 0 for depths the search never expanded.
    #[must_use]
    pub fn layer_discovered(&self, depth: usize) -> usize {
        self.layers
            .iter()
            .find(|l| l.depth == depth)
            .map_or(0, |l| l.discovered)
    }

    /// Total transitions that deduplicated against an already-known state
    /// across all layers — the work the interned visited index absorbed
    /// without storing a second state copy.
    #[must_use]
    pub fn dedup_hits(&self) -> u64 {
        self.layers.iter().map(|l| l.duplicates).sum()
    }

    /// Serializes the run into a [`RunLedger`] under the `explore` engine.
    ///
    /// Counters (`states`, `edges`, `dedup_hits`, …) are pure functions of
    /// the model, budgets, and thread count — the ledger round-trip tests
    /// compare them exactly across re-runs. Gauges (`states_per_sec`,
    /// `duration_micros`) and the `barrier` span are wall-clock-derived
    /// and feed the regression gate only.
    #[must_use]
    pub fn to_ledger(&self, run_id: &str) -> RunLedger {
        let mut ledger = RunLedger::new("explore", run_id);
        ledger.counter("states", self.states_visited as u64);
        ledger.counter("quiescent_states", self.quiescent_states as u64);
        ledger.counter("edges", self.edges_expanded());
        ledger.counter("dedup_hits", self.dedup_hits());
        ledger.counter("layers", self.layers.len() as u64);
        ledger.counter("max_depth", self.max_depth_reached() as u64);
        ledger.counter("threads", self.threads as u64);
        ledger.counter("truncated", u64::from(self.truncation.is_some()));
        ledger.counter("violation", u64::from(self.violation.is_some()));
        ledger.counter(
            "violation_path_len",
            self.violation.as_ref().map_or(0, |v| v.path.len() as u64),
        );
        ledger.counter("arena_bytes", self.arena_bytes as u64);

        let secs = self.duration.as_secs_f64().max(1e-9);
        ledger.gauge("states_per_sec", self.states_visited as f64 / secs);
        ledger.gauge("edges_per_sec", self.edges_expanded() as f64 / secs);
        ledger.gauge("duration_micros", self.duration.as_secs_f64() * 1e6);

        let mut frontier = Histogram::new();
        let mut discovered = Histogram::new();
        for layer in &self.layers {
            frontier.record(layer.frontier as u64);
            discovered.record(layer.discovered as u64);
        }
        ledger.histogram("frontier_states", &frontier);
        ledger.histogram("layer_discovered", &discovered);

        ledger.span("barrier", self.barrier_nanos);
        ledger
    }
}
