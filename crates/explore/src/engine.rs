//! The layer-synchronous parallel BFS engine.

use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use ioa::Automaton;

use crate::property::{Invariant, Property, TraceProperty};
use crate::report::{ExploreReport, LayerStats, Truncation, Violation};
use crate::shard::{ClaimKey, ClaimOutcome, ShardedVisited};

/// One admitted state with its deterministic predecessor link.
struct Record<S, A> {
    state: S,
    /// Arena index of the predecessor, or `usize::MAX` for start states.
    parent: usize,
    /// Action taken from the predecessor (`None` for start states).
    action: Option<A>,
}

#[derive(Default, Clone, Copy)]
struct WorkerStats {
    quiescent: usize,
    edges: u64,
    duplicates: u64,
}

impl WorkerStats {
    fn merge(self, other: WorkerStats) -> WorkerStats {
        WorkerStats {
            quiescent: self.quiescent + other.quiescent,
            edges: self.edges + other.edges,
            duplicates: self.duplicates + other.duplicates,
        }
    }
}

/// Parallel breadth-first explorer over an automaton's reachable states.
///
/// Drop-in generalization of [`ioa::Explorer`]: same constructor shape
/// (`automaton`, permitted-inputs closure, state and depth budgets), plus
/// [`threads`](ParallelExplorer::threads) /
/// [`shards`](ParallelExplorer::shards) controls and multi-property
/// search via [`check_properties_from`](ParallelExplorer::check_properties_from).
pub struct ParallelExplorer<M, I> {
    automaton: M,
    /// Environment inputs permitted in a given state.
    inputs: I,
    max_states: usize,
    max_depth: usize,
    threads: usize,
    shards: usize,
}

impl<M, I> ParallelExplorer<M, I>
where
    M: Automaton + Sync,
    M::State: Hash + Send + Sync,
    M::Action: Send + Sync,
    I: Fn(&M::State) -> Vec<M::Action> + Sync,
{
    /// Creates an explorer. `inputs(state)` returns the environment input
    /// actions to consider from `state` (return an empty vector for a
    /// closed system). Thread count defaults to the machine's available
    /// parallelism.
    pub fn new(automaton: M, inputs: I, max_states: usize, max_depth: usize) -> Self {
        ParallelExplorer {
            automaton,
            inputs,
            max_states,
            max_depth,
            threads: 0,
            shards: 64,
        }
    }

    /// Sets the worker thread count; `0` means available parallelism.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the visited-set shard count (rounded up to a power of two).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }

    /// Explores breadth-first from the automaton's start states, checking
    /// `invariant` on every admitted state (start states included).
    pub fn check_invariant(
        &self,
        invariant: impl Fn(&M::State) -> bool + Sync,
    ) -> ExploreReport<M::Action, M::State> {
        self.check_invariant_from(self.automaton.start_states(), invariant)
    }

    /// Like [`check_invariant`](Self::check_invariant) but explores from
    /// the given states — useful when a fixed environment prefix (e.g.
    /// waking the media) should be applied before exploration begins.
    pub fn check_invariant_from(
        &self,
        starts: Vec<M::State>,
        invariant: impl Fn(&M::State) -> bool + Sync,
    ) -> ExploreReport<M::Action, M::State> {
        let invariant = Invariant::new("invariant", invariant);
        self.check_properties_from(starts, &[&invariant])
    }

    /// Counts reachable states (no properties), for sizing studies.
    pub fn reachable_states(&self) -> ExploreReport<M::Action, M::State> {
        self.check_properties_from(self.automaton.start_states(), &[])
    }

    /// Explores breadth-first from `starts`, checking every property on
    /// every admitted state. Stops at the end of the first layer
    /// containing a violation and reports the violating state with the
    /// minimal claim — both independent of the thread count.
    pub fn check_properties_from(
        &self,
        starts: Vec<M::State>,
        properties: &[&dyn Property<M::State>],
    ) -> ExploreReport<M::Action, M::State> {
        self.check_traced_from(starts, properties, &())
    }

    /// Like [`check_properties_from`](Self::check_properties_from), with a
    /// [`TraceProperty`] additionally threaded along the BFS spanning
    /// tree: each admitted state carries the monitor state of the
    /// deterministic minimal-claim path that reached it, and a monitor
    /// violation counts like a state-property violation (checked after
    /// the state properties on each admitted state, in the same
    /// deterministic order, so verdict, counterexample, and counts remain
    /// thread-count-independent).
    ///
    /// Trace violations found this way are genuine — the reported path
    /// replays them — but their *absence* is conclusive only for the
    /// spanning-tree paths, not all interleavings (see [`TraceProperty`]).
    pub fn check_traced_from<TP>(
        &self,
        starts: Vec<M::State>,
        properties: &[&dyn Property<M::State>],
        trace: &TP,
    ) -> ExploreReport<M::Action, M::State>
    where
        TP: TraceProperty<M::Action>,
    {
        let t0 = Instant::now();
        let threads = self.effective_threads();
        let mut visited: ShardedVisited<M::State, M::Action> = ShardedVisited::new(self.shards);
        let mut arena: Vec<Record<M::State, M::Action>> = Vec::new();
        // Trace-monitor states, parallel to `arena`. Stepping happens at
        // admission time (single-threaded, between layers), so workers
        // never touch this.
        let mut tstates: Vec<TP::State> = Vec::new();

        for state in starts {
            if visited.insert_done(&state) {
                arena.push(Record {
                    state,
                    parent: usize::MAX,
                    action: None,
                });
                tstates.push(trace.start());
            }
        }

        // Check properties on start states first, in admission order.
        for i in 0..arena.len() {
            let failed = first_violation(properties, &arena[i].state)
                .or_else(|| trace_violation(trace, &tstates[i]));
            if let Some(property) = failed {
                return ExploreReport {
                    states_visited: arena.len(),
                    truncation: None,
                    violation: Some(Violation {
                        path: vec![],
                        state: arena[i].state.clone(),
                        property,
                    }),
                    quiescent_states: 0,
                    layers: vec![],
                    threads,
                    duration: t0.elapsed(),
                };
            }
        }

        let mut layers: Vec<LayerStats> = Vec::new();
        let mut quiescent = 0usize;
        let mut truncation: Option<Truncation> = None;
        let mut violation: Option<Violation<M::Action, M::State>> = None;
        let mut layer_start = 0usize;
        let mut depth = 0usize;

        loop {
            let layer_end = arena.len();
            if layer_start == layer_end {
                break;
            }
            if depth >= self.max_depth {
                // Mirror the sequential explorer: a non-empty frontier at
                // the depth budget means the verdict is inconclusive.
                truncation = Some(Truncation::DepthBudget);
                break;
            }

            let frontier = layer_end - layer_start;
            // Thin layers are not worth fanning out: the spawn cost would
            // exceed the expansion work, and expansion order is
            // irrelevant to the result either way.
            let fan_out = if frontier < threads * 4 { 1 } else { threads };
            let counter = AtomicUsize::new(layer_start);
            let chunk = (frontier / (fan_out * 8)).max(1);

            let stats = if fan_out == 1 {
                self.expand_worker(&arena, layer_end, chunk, &counter, &visited)
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..fan_out)
                        .map(|_| {
                            scope.spawn(|| {
                                self.expand_worker(&arena, layer_end, chunk, &counter, &visited)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("explore worker panicked"))
                        .fold(WorkerStats::default(), WorkerStats::merge)
                })
            };
            quiescent += stats.quiescent;

            let mut fresh = visited.drain_fresh_sorted();
            let room = self.max_states.saturating_sub(arena.len());
            if fresh.len() > room {
                truncation = Some(Truncation::StateBudget);
                for dropped in fresh.drain(room..) {
                    visited.remove(&dropped.state);
                }
            }
            layers.push(LayerStats {
                depth,
                frontier,
                discovered: fresh.len(),
                edges: stats.edges,
                duplicates: stats.duplicates,
            });

            let admitted_start = arena.len();
            for claim in fresh {
                tstates.push(trace.step(&tstates[claim.key.parent], &claim.action));
                arena.push(Record {
                    state: claim.state,
                    parent: claim.key.parent,
                    action: Some(claim.action),
                });
            }

            // Check properties on the admitted states in deterministic
            // (claim-key) order; the first violator is the counterexample
            // for every thread count. State properties outrank the trace
            // property on the same state, again deterministically.
            for idx in admitted_start..arena.len() {
                let failed = first_violation(properties, &arena[idx].state)
                    .or_else(|| trace_violation(trace, &tstates[idx]));
                if let Some(property) = failed {
                    violation = Some(Violation {
                        path: reconstruct_path(&arena, idx),
                        state: arena[idx].state.clone(),
                        property,
                    });
                    break;
                }
            }
            if violation.is_some() {
                break;
            }

            layer_start = admitted_start;
            depth += 1;
        }

        ExploreReport {
            states_visited: arena.len(),
            truncation,
            violation,
            quiescent_states: quiescent,
            layers,
            threads,
            duration: t0.elapsed(),
        }
    }

    /// One worker's share of a layer expansion: steal frontier chunks,
    /// enumerate each state's actions and successors, claim discoveries
    /// in the sharded visited set.
    fn expand_worker(
        &self,
        arena: &[Record<M::State, M::Action>],
        layer_end: usize,
        chunk: usize,
        counter: &AtomicUsize,
        visited: &ShardedVisited<M::State, M::Action>,
    ) -> WorkerStats {
        let mut stats = WorkerStats::default();
        loop {
            let begin = counter.fetch_add(chunk, Ordering::Relaxed);
            if begin >= layer_end {
                break;
            }
            let end = (begin + chunk).min(layer_end);
            for (idx, record) in arena.iter().enumerate().take(end).skip(begin) {
                let state = &record.state;
                let mut actions = self.automaton.enabled_local(state);
                let extra = (self.inputs)(state);
                if actions.is_empty() && extra.is_empty() {
                    stats.quiescent += 1;
                    continue;
                }
                actions.extend(extra);
                for (ai, action) in actions.iter().enumerate() {
                    for (si, succ) in self
                        .automaton
                        .successors(state, action)
                        .into_iter()
                        .enumerate()
                    {
                        stats.edges += 1;
                        let key = ClaimKey {
                            parent: idx,
                            action: ai,
                            succ: si,
                        };
                        match visited.claim(succ, key, action) {
                            ClaimOutcome::New => {}
                            ClaimOutcome::Duplicate => stats.duplicates += 1,
                        }
                    }
                }
            }
        }
        stats
    }
}

/// First property (in order) that `state` violates, as an owned name.
fn first_violation<S>(properties: &[&dyn Property<S>], state: &S) -> Option<String> {
    properties
        .iter()
        .find(|p| !p.holds(state))
        .map(|p| p.name().to_string())
}

/// The trace property's verdict on a threaded monitor state, labelled
/// `name: description` for the violation report.
fn trace_violation<A, TP: TraceProperty<A>>(trace: &TP, tstate: &TP::State) -> Option<String> {
    trace
        .violation(tstate)
        .map(|desc| format!("{}: {desc}", trace.name()))
}

/// Follows predecessor links from `idx` back to a start state.
fn reconstruct_path<S, A: Clone>(arena: &[Record<S, A>], mut idx: usize) -> Vec<A> {
    let mut path = Vec::new();
    while arena[idx].parent != usize::MAX {
        path.push(
            arena[idx]
                .action
                .clone()
                .expect("non-root record carries an action"),
        );
        idx = arena[idx].parent;
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioa::{ActionClass, Explorer, TaskId};

    /// Counter modulo `n` with an input `Bump` and output `Tick` — the
    /// same model the sequential explorer's unit tests use.
    #[derive(Clone)]
    struct Counter {
        n: u8,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Act {
        Bump,
        Tick,
    }

    impl Automaton for Counter {
        type Action = Act;
        type State = u8;

        fn start_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn classify(&self, a: &Act) -> Option<ActionClass> {
            Some(match a {
                Act::Bump => ActionClass::Input,
                Act::Tick => ActionClass::Output,
            })
        }
        fn successors(&self, s: &u8, a: &Act) -> Vec<u8> {
            match a {
                Act::Bump => vec![(s + 1) % self.n],
                Act::Tick => {
                    if s.is_multiple_of(2) {
                        vec![(s + 2) % self.n]
                    } else {
                        vec![]
                    }
                }
            }
        }
        fn enabled_local(&self, s: &u8) -> Vec<Act> {
            if s.is_multiple_of(2) {
                vec![Act::Tick]
            } else {
                vec![]
            }
        }
        fn task_of(&self, _a: &Act) -> TaskId {
            TaskId(0)
        }
        fn task_count(&self) -> usize {
            1
        }
    }

    fn bump(_s: &u8) -> Vec<Act> {
        vec![Act::Bump]
    }

    #[test]
    fn finds_shortest_violation_path_every_thread_count() {
        for threads in [1, 2, 4] {
            let e = ParallelExplorer::new(Counter { n: 10 }, bump, 1000, 100).threads(threads);
            let report = e.check_invariant(|s| *s != 3);
            let v = report.violation.expect("3 is reachable");
            assert_eq!(v.state, 3);
            assert_eq!(v.path.len(), 2, "Tick then Bump is shortest");
            // The deterministic claim order also pins the path itself.
            assert_eq!(v.path, vec![Act::Tick, Act::Bump]);
        }
    }

    #[test]
    fn exhaustive_hold_matches_sequential() {
        let seq = Explorer::new(Counter { n: 10 }, bump, 1000, 100).reachable_states();
        for threads in [1, 2, 4] {
            let par = ParallelExplorer::new(Counter { n: 10 }, bump, 1000, 100)
                .threads(threads)
                .reachable_states();
            assert!(par.holds() && par.exhaustive());
            assert_eq!(par.states_visited, seq.states_visited);
            assert_eq!(par.quiescent_states, seq.quiescent_states);
        }
    }

    #[test]
    fn layer_stats_cover_the_search() {
        let e = ParallelExplorer::new(Counter { n: 10 }, bump, 1000, 100).threads(2);
        let report = e.reachable_states();
        let discovered: usize = report.layers.iter().map(|l| l.discovered).sum();
        // Start state plus per-layer discoveries account for every state.
        assert_eq!(1 + discovered, report.states_visited);
        assert!(report.edges_expanded() > 0);
        assert!(report.layers.iter().all(|l| l.frontier > 0));
    }

    #[test]
    fn state_budget_truncates() {
        let e = ParallelExplorer::new(Counter { n: 100 }, bump, 5, 100).threads(2);
        let report = e.reachable_states();
        assert_eq!(report.truncation, Some(Truncation::StateBudget));
        assert!(!report.exhaustive());
        assert!(report.safe_within_budget());
        assert!(!report.holds());
        assert!(report.states_visited <= 5);
    }

    #[test]
    fn depth_budget_truncates() {
        let e = ParallelExplorer::new(Counter { n: 100 }, bump, 1000, 3).threads(2);
        let report = e.reachable_states();
        assert_eq!(report.truncation, Some(Truncation::DepthBudget));
        assert!(report.max_depth_reached() < 3);
        assert!(report.states_visited <= 8);
    }

    #[test]
    fn violated_start_state_gives_empty_path() {
        let e = ParallelExplorer::new(Counter { n: 10 }, |_s: &u8| vec![], 1000, 100);
        let report = e.check_invariant(|s| *s != 0);
        let v = report.violation.unwrap();
        assert!(v.path.is_empty());
        assert_eq!(v.state, 0);
        assert_eq!(v.property, "invariant");
    }

    #[test]
    fn multiple_properties_report_first_violated_in_order() {
        let even = Invariant::new("below-6", |s: &u8| *s < 6);
        let odd = Invariant::new("below-4", |s: &u8| *s < 4);
        let e = ParallelExplorer::new(Counter { n: 10 }, bump, 1000, 100).threads(2);
        // Both properties eventually fail; 4 (violating "below-4") is at
        // depth 2, while 6 (violating "below-6") is at depth 3 — the
        // shallower violation must win.
        let report = e.check_properties_from(vec![0], &[&even, &odd]);
        let v = report.violation.unwrap();
        assert_eq!(v.state, 4);
        assert_eq!(v.property, "below-4");
        assert_eq!(v.path.len(), 2);
    }

    /// Diamond automaton: two different one-step actions reach the same
    /// state; the minimal claim (lower action index) must win the
    /// predecessor race under every thread count.
    #[derive(Clone)]
    struct Diamond;

    impl Automaton for Diamond {
        type Action = u8;
        type State = u8;

        fn start_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn classify(&self, _a: &u8) -> Option<ActionClass> {
            Some(ActionClass::Output)
        }
        fn successors(&self, s: &u8, a: &u8) -> Vec<u8> {
            match (s, a) {
                (0, 1) => vec![1],
                (0, 2) => vec![2],
                (1, 3) | (2, 4) => vec![3],
                _ => vec![],
            }
        }
        fn enabled_local(&self, s: &u8) -> Vec<u8> {
            match s {
                0 => vec![1, 2],
                1 => vec![3],
                2 => vec![4],
                _ => vec![],
            }
        }
        fn task_of(&self, _a: &u8) -> TaskId {
            TaskId(0)
        }
        fn task_count(&self) -> usize {
            1
        }
    }

    #[test]
    fn diamond_merge_picks_canonical_parent() {
        for threads in [1, 2, 4] {
            let e = ParallelExplorer::new(Diamond, |_s: &u8| vec![], 100, 100).threads(threads);
            let report = e.check_invariant(|s| *s != 3);
            let v = report.violation.unwrap();
            // Both 1→3 and 2→4 paths have length 2; the canonical one
            // goes through state 1 (the lower-indexed parent).
            assert_eq!(v.path, vec![1, 3]);
        }
    }

    /// Trace property "action `0` has occurred on the path", for the
    /// trace-threading tests below.
    struct SawAction(u8);

    impl TraceProperty<u8> for SawAction {
        type State = bool;

        fn name(&self) -> &str {
            "saw-action"
        }

        fn start(&self) -> bool {
            false
        }

        fn step(&self, state: &bool, action: &u8) -> bool {
            *state || *action == self.0
        }

        fn violation(&self, state: &bool) -> Option<String> {
            state.then(|| format!("action {} occurred", self.0))
        }
    }

    #[test]
    fn null_trace_property_changes_nothing() {
        let plain = ParallelExplorer::new(Counter { n: 10 }, bump, 1000, 100)
            .threads(2)
            .reachable_states();
        let traced = ParallelExplorer::new(Counter { n: 10 }, bump, 1000, 100)
            .threads(2)
            .check_traced_from(vec![0], &[], &());
        assert!(traced.holds());
        assert_eq!(traced.states_visited, plain.states_visited);
        assert_eq!(traced.quiescent_states, plain.quiescent_states);
    }

    #[test]
    fn trace_violation_reports_canonical_path_every_thread_count() {
        for threads in [1, 2, 4] {
            let e = ParallelExplorer::new(Diamond, |_s: &u8| vec![], 100, 100).threads(threads);
            let report = e.check_traced_from(vec![0], &[], &SawAction(1));
            let v = report.violation.expect("action 1 is on a canonical path");
            assert_eq!(v.path, vec![1]);
            assert_eq!(v.state, 1);
            assert_eq!(v.property, "saw-action: action 1 occurred");
        }
    }

    /// The documented incompleteness: action `4` occurs only on the
    /// 0→2→3 branch of the diamond, but state 3's canonical (minimal
    /// claim) path goes through state 1, so the threaded monitor never
    /// sees `4` — the search reports a hold even though a real execution
    /// violates the trace property. Conclusive absence needs an observer
    /// automaton composed into the system instead.
    #[test]
    fn trace_dedup_can_hide_noncanonical_paths() {
        let e = ParallelExplorer::new(Diamond, |_s: &u8| vec![], 100, 100).threads(2);
        let report = e.check_traced_from(vec![0], &[], &SawAction(4));
        assert!(report.holds(), "spanning-tree monitor misses the 2→4 path");
    }

    #[test]
    fn state_properties_outrank_trace_property_on_the_same_state() {
        let below = Invariant::new("below-1", |s: &u8| *s < 1);
        let e = ParallelExplorer::new(Diamond, |_s: &u8| vec![], 100, 100).threads(2);
        // Both fail first at state 1 (depth 1); the state property wins.
        let report = e.check_traced_from(vec![0], &[&below], &SawAction(1));
        let v = report.violation.unwrap();
        assert_eq!(v.state, 1);
        assert_eq!(v.property, "below-1");
    }
}
