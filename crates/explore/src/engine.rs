//! The layer-synchronous parallel BFS engine.
//!
//! States are admitted once into a pluggable [`StateStore`] arena;
//! everything else — the spanning-tree links, the frontier itself (a
//! contiguous id range per layer) — carries dense `u32` ids. The store
//! is frozen while workers expand a layer: membership for admitted
//! states is a read-only store lookup, and intra-layer discoveries are
//! coordinated through the lock-free [`LayerFilter`]. The store grows
//! only at the layer barrier, where the engine merges worker-local
//! overflow claims with the drained filter, sorts by minimal claim key,
//! and admits in that deterministic order. Workers reuse per-worker
//! scratch buffers and enumerate transitions through the
//! allocation-free [`Automaton`] callbacks, so a steady-state expansion
//! allocates only for genuinely new states (plus, on the packed
//! backend, one encoding buffer per discovered edge).

use std::collections::HashMap;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use dl_obs::Stopwatch;
use ioa::Automaton;

use crate::property::{Invariant, Property, TraceProperty};
use crate::report::{ExploreReport, LayerStats, Truncation, Violation};
use crate::shard::{ClaimKey, Claimed, LayerFilter, PendingState};
use crate::store::{ExploreBackend, PackedBackend, PlainBackend, StateStore};

/// Root marker in the spanning-tree link arrays.
const NO_LINK: u32 = u32::MAX;

/// The claim representation a backend's store circulates.
type ReprOf<B, S> = <<B as ExploreBackend<S>>::Store as StateStore<S>>::Repr;

/// What one worker hands back from a layer expansion: its local stats
/// and the claims the lock-free filter could not decide (merged at the
/// barrier).
type WorkerOutcome<R> = (WorkerStats, Vec<PendingState<R>>);

#[derive(Default, Clone, Copy)]
struct WorkerStats {
    quiescent: usize,
    edges: u64,
    duplicates: u64,
}

impl WorkerStats {
    fn merge(self, other: WorkerStats) -> WorkerStats {
        WorkerStats {
            quiescent: self.quiescent + other.quiescent,
            edges: self.edges + other.edges,
            duplicates: self.duplicates + other.duplicates,
        }
    }
}

/// Parallel breadth-first explorer over an automaton's reachable states.
///
/// Drop-in generalization of [`ioa::Explorer`]: same constructor shape
/// (`automaton`, permitted-inputs closure, state and depth budgets), plus
/// [`threads`](ParallelExplorer::threads) /
/// [`shards`](ParallelExplorer::shards) controls, pluggable state
/// storage ([`packed`](ParallelExplorer::packed) swaps the struct arena
/// for bit-packed encodings), and multi-property search via
/// [`check_properties_from`](ParallelExplorer::check_properties_from).
pub struct ParallelExplorer<M, I, B = PlainBackend> {
    automaton: M,
    /// Environment inputs permitted in a given state.
    inputs: I,
    max_states: usize,
    max_depth: usize,
    threads: usize,
    shards: usize,
    backend: B,
}

impl<M, I> ParallelExplorer<M, I, PlainBackend> {
    /// Creates an explorer over the default plain (full-struct) storage.
    /// `inputs(state)` returns the environment input actions to consider
    /// from `state` (return an empty vector for a closed system). Thread
    /// count defaults to the machine's available parallelism.
    pub fn new(automaton: M, inputs: I, max_states: usize, max_depth: usize) -> Self {
        ParallelExplorer {
            automaton,
            inputs,
            max_states,
            max_depth,
            threads: 0,
            shards: 64,
            backend: PlainBackend,
        }
    }
}

impl<M, I, B> ParallelExplorer<M, I, B> {
    /// Sets the worker thread count; `0` means available parallelism.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the claim-filter segment count (rounded up to a power of
    /// two).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Swaps the state-storage backend, keeping every other setting.
    pub fn with_backend<B2>(self, backend: B2) -> ParallelExplorer<M, I, B2> {
        ParallelExplorer {
            automaton: self.automaton,
            inputs: self.inputs,
            max_states: self.max_states,
            max_depth: self.max_depth,
            threads: self.threads,
            shards: self.shards,
            backend,
        }
    }

    /// Stores states as packed canonical encodings ([`PackedBackend`]):
    /// same admitted states, same ids, same verdicts — a fraction of the
    /// arena bytes. Requires `M::State: PackedCodec`.
    pub fn packed(self) -> ParallelExplorer<M, I, PackedBackend> {
        self.with_backend(PackedBackend::new())
    }

    /// Packed storage with the disk-spill path enabled: resident arena
    /// bytes beyond `threshold` move to an unlinked temp file.
    pub fn packed_with_spill(self, threshold: usize) -> ParallelExplorer<M, I, PackedBackend> {
        self.with_backend(PackedBackend::new().with_spill_threshold(threshold))
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }
}

impl<M, I, B> ParallelExplorer<M, I, B>
where
    M: Automaton + Sync,
    M::State: Send + Sync,
    M::Action: Send + Sync,
    I: Fn(&M::State) -> Vec<M::Action> + Sync,
    B: ExploreBackend<M::State> + Sync,
{
    /// Explores breadth-first from the automaton's start states, checking
    /// `invariant` on every admitted state (start states included).
    pub fn check_invariant(
        &self,
        invariant: impl Fn(&M::State) -> bool + Sync,
    ) -> ExploreReport<M::Action, M::State> {
        self.check_invariant_from(self.automaton.start_states(), invariant)
    }

    /// Like [`check_invariant`](Self::check_invariant) but explores from
    /// the given states — useful when a fixed environment prefix (e.g.
    /// waking the media) should be applied before exploration begins.
    pub fn check_invariant_from(
        &self,
        starts: Vec<M::State>,
        invariant: impl Fn(&M::State) -> bool + Sync,
    ) -> ExploreReport<M::Action, M::State> {
        let invariant = Invariant::new("invariant", invariant);
        self.check_properties_from(starts, &[&invariant])
    }

    /// Counts reachable states (no properties), for sizing studies.
    pub fn reachable_states(&self) -> ExploreReport<M::Action, M::State> {
        self.check_properties_from(self.automaton.start_states(), &[])
    }

    /// Explores breadth-first from `starts`, checking every property on
    /// every admitted state. Stops at the end of the first layer
    /// containing a violation and reports the violating state with the
    /// minimal claim — both independent of the thread count.
    pub fn check_properties_from(
        &self,
        starts: Vec<M::State>,
        properties: &[&dyn Property<M::State>],
    ) -> ExploreReport<M::Action, M::State> {
        self.check_traced_from(starts, properties, &())
    }

    /// Like [`check_properties_from`](Self::check_properties_from), with a
    /// [`TraceProperty`] additionally threaded along the BFS spanning
    /// tree: each admitted state carries the monitor state of the
    /// deterministic minimal-claim path that reached it, and a monitor
    /// violation counts like a state-property violation (checked after
    /// the state properties on each admitted state, in the same
    /// deterministic order, so verdict, counterexample, and counts remain
    /// thread-count-independent).
    ///
    /// Trace violations found this way are genuine — the reported path
    /// replays them — but their *absence* is conclusive only for the
    /// spanning-tree paths, not all interleavings (see [`TraceProperty`]).
    pub fn check_traced_from<TP>(
        &self,
        starts: Vec<M::State>,
        properties: &[&dyn Property<M::State>],
        trace: &TP,
    ) -> ExploreReport<M::Action, M::State>
    where
        TP: TraceProperty<M::Action>,
    {
        let t0 = Instant::now();
        let threads = self.effective_threads();
        let mut store = self.backend.new_store();
        // Spanning-tree links, parallel to the arena: `parents[i]` /
        // `action_idx[i]` name the minimal claim that admitted state `i`
        // (`NO_LINK` for roots). Actions are never stored — the index
        // resolves against the parent's deterministic action list.
        let mut parents: Vec<u32> = Vec::new();
        let mut action_idx: Vec<u32> = Vec::new();
        // Trace-monitor states, parallel to the arena. Stepping happens
        // at admission time (single-threaded, between layers), so workers
        // never touch this.
        let mut tstates: Vec<TP::State> = Vec::new();

        for state in starts {
            let (hash, repr) = store.absorb(state);
            if store.lookup(hash, &repr).is_none() {
                store.intern_new(hash, repr);
                parents.push(NO_LINK);
                action_idx.push(NO_LINK);
                tstates.push(trace.start());
            }
        }

        // Check properties on start states first, in admission order.
        for (i, tstate) in tstates.iter().enumerate() {
            let state = store.load(i as u32);
            let failed =
                first_violation(properties, &state).or_else(|| trace_violation(trace, tstate));
            if let Some(property) = failed {
                return ExploreReport {
                    states_visited: store.len(),
                    truncation: None,
                    violation: Some(Violation {
                        path: vec![],
                        state: state.into_owned(),
                        property,
                    }),
                    quiescent_states: 0,
                    layers: vec![],
                    threads,
                    arena_bytes: store.approx_bytes(),
                    duration: t0.elapsed(),
                    barrier_nanos: 0,
                };
            }
        }

        let mut layers: Vec<LayerStats> = Vec::new();
        let mut quiescent = 0usize;
        // Wall-clock spent single-threaded at layer barriers (merging
        // claims, admitting states, checking properties) — the stall the
        // workers sit out. Zero (and free) without the `obs` feature.
        let mut barrier_nanos = 0u64;
        let mut truncation: Option<Truncation> = None;
        let mut violation: Option<Violation<M::Action, M::State>> = None;
        let mut layer_start = 0usize;
        let mut depth = 0usize;
        // Scratch for admission-time action resolution, reused across
        // layers (claims are sorted, so one rebuild per distinct parent).
        let mut cached_parent: u32;
        let mut parent_actions: Vec<M::Action> = Vec::new();

        loop {
            let layer_end = store.len();
            if layer_start == layer_end {
                break;
            }
            if depth >= self.max_depth {
                // Mirror the sequential explorer: a non-empty frontier at
                // the depth budget means the verdict is inconclusive.
                truncation = Some(Truncation::DepthBudget);
                break;
            }

            let frontier = layer_end - layer_start;
            // Thin layers are not worth fanning out: the spawn cost would
            // exceed the expansion work, and expansion order is
            // irrelevant to the result either way.
            let fan_out = if frontier < threads * 4 { 1 } else { threads };
            let counter = AtomicUsize::new(layer_start);
            let chunk = (frontier / (fan_out * 8)).max(1);
            // Fresh claim filter per layer, generously sized from the
            // frontier; undersizing is safe (claims overflow, the
            // barrier merge stays exact).
            let mut filter: LayerFilter<ReprOf<B, M::State>> =
                LayerFilter::new(frontier * 8 + 64, self.shards);

            let (stats, overflow) = if fan_out == 1 {
                self.expand_worker(&store, layer_end, chunk, &counter, &filter)
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..fan_out)
                        .map(|_| {
                            scope.spawn(|| {
                                self.expand_worker(&store, layer_end, chunk, &counter, &filter)
                            })
                        })
                        .collect();
                    let mut stats = WorkerStats::default();
                    let mut overflow = Vec::new();
                    for handle in handles {
                        let (s, mut o) = handle.join().expect("explore worker panicked");
                        stats = stats.merge(s);
                        overflow.append(&mut o);
                    }
                    (stats, overflow)
                })
            };
            quiescent += stats.quiescent;

            let barrier_sw = Stopwatch::start();
            // Merge overflow claims into the drained filter entries. The
            // hash index is only ever *probed* (never iterated), and
            // min/set-union are order-independent, so the merged entry
            // set and keys do not depend on scheduling.
            let mut entries = filter.drain();
            let mut merged_dups = 0u64;
            {
                let mut index: HashMap<u64, Vec<usize>> = HashMap::with_capacity(entries.len());
                for (i, entry) in entries.iter().enumerate() {
                    index.entry(entry.hash).or_default().push(i);
                }
                for pending in overflow {
                    let slots = index.entry(pending.hash).or_default();
                    if let Some(&i) = slots.iter().find(|&&i| entries[i].repr == pending.repr) {
                        merged_dups += 1;
                        if pending.key < entries[i].key {
                            entries[i].key = pending.key;
                        }
                    } else {
                        slots.push(entries.len());
                        entries.push(pending);
                    }
                }
            }
            // Claim keys are unique (one entry per distinct state, and
            // distinct states that share a parent differ in action or
            // successor index), so this order is total and deterministic.
            entries.sort_unstable_by_key(|entry| entry.key);
            let room = self.max_states.saturating_sub(store.len());
            if entries.len() > room {
                truncation = Some(Truncation::StateBudget);
                // The filter dies with the layer, so dropped states are
                // naturally rediscoverable later.
                entries.truncate(room);
            }
            layers.push(LayerStats {
                depth,
                frontier,
                discovered: entries.len(),
                edges: stats.edges,
                duplicates: stats.duplicates + merged_dups,
            });

            let admitted_start = store.len();
            cached_parent = NO_LINK;
            for PendingState { key, hash, repr } in entries {
                // Resolve the admitting action only when a real trace
                // property needs it: rebuild the parent's deterministic
                // action list once per parent (claims arrive
                // parent-grouped) and index it.
                let tstate = if trace.is_vacuous() {
                    trace.start()
                } else {
                    if key.parent != cached_parent {
                        cached_parent = key.parent;
                        self.enumerate_actions(&store.load(key.parent), &mut parent_actions);
                    }
                    trace.step(
                        &tstates[key.parent as usize],
                        &parent_actions[key.action as usize],
                    )
                };
                store.intern_new(hash, repr);
                parents.push(key.parent);
                action_idx.push(key.action);
                tstates.push(tstate);
            }

            // Check properties on the admitted states in deterministic
            // (claim-key) order; the first violator is the counterexample
            // for every thread count. State properties outrank the trace
            // property on the same state, again deterministically.
            for (idx, tstate) in tstates.iter().enumerate().skip(admitted_start) {
                let state = store.load(idx as u32);
                let failed =
                    first_violation(properties, &state).or_else(|| trace_violation(trace, tstate));
                if let Some(property) = failed {
                    violation = Some(Violation {
                        path: self.reconstruct_path(&store, &parents, &action_idx, idx),
                        state: state.into_owned(),
                        property,
                    });
                    break;
                }
            }
            barrier_nanos += barrier_sw.elapsed_nanos();
            if violation.is_some() {
                break;
            }

            layer_start = admitted_start;
            depth += 1;
        }

        ExploreReport {
            states_visited: store.len(),
            truncation,
            violation,
            quiescent_states: quiescent,
            layers,
            threads,
            arena_bytes: store.approx_bytes(),
            duration: t0.elapsed(),
            barrier_nanos,
        }
    }

    /// One worker's share of a layer expansion: steal frontier chunks,
    /// enumerate each state's actions and successors through the
    /// allocation-free callbacks, dedup against the frozen store, claim
    /// genuinely new discoveries in the lock-free layer filter. Claims
    /// the filter cannot decide go to the returned overflow list, merged
    /// exactly at the barrier.
    fn expand_worker(
        &self,
        store: &B::Store,
        layer_end: usize,
        chunk: usize,
        counter: &AtomicUsize,
        filter: &LayerFilter<ReprOf<B, M::State>>,
    ) -> WorkerOutcome<ReprOf<B, M::State>> {
        let mut stats = WorkerStats::default();
        let mut overflow = Vec::new();
        let mut actions: Vec<M::Action> = Vec::new();
        loop {
            let begin = counter.fetch_add(chunk, Ordering::Relaxed);
            if begin >= layer_end {
                break;
            }
            let end = (begin + chunk).min(layer_end);
            for idx in begin..end {
                let state = store.load(idx as u32);
                self.enumerate_actions(&state, &mut actions);
                if actions.is_empty() {
                    stats.quiescent += 1;
                    continue;
                }
                for (ai, action) in actions.iter().enumerate() {
                    let mut si = 0u32;
                    let _ = self
                        .automaton
                        .try_for_each_successor(&state, action, &mut |succ| {
                            stats.edges += 1;
                            let key = ClaimKey {
                                parent: idx as u32,
                                action: ai as u32,
                                succ: si,
                            };
                            si += 1;
                            let (hash, repr) = store.absorb(succ);
                            if store.lookup(hash, &repr).is_some() {
                                stats.duplicates += 1;
                            } else {
                                match filter.claim(hash, key, repr) {
                                    Claimed::New => {}
                                    Claimed::Duplicate => stats.duplicates += 1,
                                    Claimed::Overflow(repr) => {
                                        overflow.push(PendingState { key, hash, repr });
                                    }
                                }
                            }
                            ControlFlow::Continue(())
                        });
                }
            }
        }
        (stats, overflow)
    }

    /// Fills `into` with `state`'s deterministic action list: the enabled
    /// locally controlled actions, then the permitted environment inputs.
    /// Claim keys, admission-time trace labels, and lazy counterexample
    /// reconstruction all index this one list.
    fn enumerate_actions(&self, state: &M::State, into: &mut Vec<M::Action>) {
        into.clear();
        let _ = self.automaton.for_each_enabled_local(state, &mut |a| {
            into.push(a);
            ControlFlow::Continue(())
        });
        into.extend((self.inputs)(state));
    }

    /// Follows spanning-tree links from `idx` back to a root, resolving
    /// each stored action *index* against the parent's re-enumerated
    /// action list — labels are materialized lazily, only for the one
    /// reported path, and identically to what the workers enumerated.
    fn reconstruct_path(
        &self,
        store: &B::Store,
        parents: &[u32],
        action_idx: &[u32],
        mut idx: usize,
    ) -> Vec<M::Action> {
        let mut path = Vec::new();
        let mut acts: Vec<M::Action> = Vec::new();
        while parents[idx] != NO_LINK {
            let parent = parents[idx] as usize;
            self.enumerate_actions(&store.load(parent as u32), &mut acts);
            path.push(acts.swap_remove(action_idx[idx] as usize));
            idx = parent;
        }
        path.reverse();
        path
    }
}

/// First property (in order) that `state` violates, as an owned name.
fn first_violation<S>(properties: &[&dyn Property<S>], state: &S) -> Option<String> {
    properties
        .iter()
        .find(|p| !p.holds(state))
        .map(|p| p.name().to_string())
}

/// The trace property's verdict on a threaded monitor state, labelled
/// `name: description` for the violation report.
fn trace_violation<A, TP: TraceProperty<A>>(trace: &TP, tstate: &TP::State) -> Option<String> {
    trace
        .violation(tstate)
        .map(|desc| format!("{}: {desc}", trace.name()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioa::{ActionClass, Explorer, TaskId};

    /// Counter modulo `n` with an input `Bump` and output `Tick` — the
    /// same model the sequential explorer's unit tests use.
    #[derive(Clone)]
    struct Counter {
        n: u8,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Act {
        Bump,
        Tick,
    }

    impl Automaton for Counter {
        type Action = Act;
        type State = u8;

        fn start_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn classify(&self, a: &Act) -> Option<ActionClass> {
            Some(match a {
                Act::Bump => ActionClass::Input,
                Act::Tick => ActionClass::Output,
            })
        }
        fn successors(&self, s: &u8, a: &Act) -> Vec<u8> {
            match a {
                Act::Bump => vec![(s + 1) % self.n],
                Act::Tick => {
                    if s.is_multiple_of(2) {
                        vec![(s + 2) % self.n]
                    } else {
                        vec![]
                    }
                }
            }
        }
        fn enabled_local(&self, s: &u8) -> Vec<Act> {
            if s.is_multiple_of(2) {
                vec![Act::Tick]
            } else {
                vec![]
            }
        }
        fn task_of(&self, _a: &Act) -> TaskId {
            TaskId(0)
        }
        fn task_count(&self) -> usize {
            1
        }
    }

    fn bump(_s: &u8) -> Vec<Act> {
        vec![Act::Bump]
    }

    #[test]
    fn finds_shortest_violation_path_every_thread_count() {
        for threads in [1, 2, 4] {
            let e = ParallelExplorer::new(Counter { n: 10 }, bump, 1000, 100).threads(threads);
            let report = e.check_invariant(|s| *s != 3);
            let v = report.violation.expect("3 is reachable");
            assert_eq!(v.state, 3);
            assert_eq!(v.path.len(), 2, "Tick then Bump is shortest");
            // The deterministic claim order also pins the path itself.
            assert_eq!(v.path, vec![Act::Tick, Act::Bump]);
        }
    }

    #[test]
    fn exhaustive_hold_matches_sequential() {
        let seq = Explorer::new(Counter { n: 10 }, bump, 1000, 100).reachable_states();
        for threads in [1, 2, 4] {
            let par = ParallelExplorer::new(Counter { n: 10 }, bump, 1000, 100)
                .threads(threads)
                .reachable_states();
            assert!(par.holds() && par.exhaustive());
            assert_eq!(par.states_visited, seq.states_visited);
            assert_eq!(par.quiescent_states, seq.quiescent_states);
        }
    }

    #[test]
    fn layer_stats_cover_the_search() {
        let e = ParallelExplorer::new(Counter { n: 10 }, bump, 1000, 100).threads(2);
        let report = e.reachable_states();
        let discovered: usize = report.layers.iter().map(|l| l.discovered).sum();
        // Start state plus per-layer discoveries account for every state.
        assert_eq!(1 + discovered, report.states_visited);
        assert!(report.edges_expanded() > 0);
        assert!(report.layers.iter().all(|l| l.frontier > 0));
        // The interner reports a live footprint once states are admitted.
        assert!(report.arena_bytes > 0);
    }

    #[test]
    fn state_budget_truncates() {
        let e = ParallelExplorer::new(Counter { n: 100 }, bump, 5, 100).threads(2);
        let report = e.reachable_states();
        assert_eq!(report.truncation, Some(Truncation::StateBudget));
        assert!(!report.exhaustive());
        assert!(report.safe_within_budget());
        assert!(!report.holds());
        assert!(report.states_visited <= 5);
    }

    #[test]
    fn depth_budget_truncates() {
        let e = ParallelExplorer::new(Counter { n: 100 }, bump, 1000, 3).threads(2);
        let report = e.reachable_states();
        assert_eq!(report.truncation, Some(Truncation::DepthBudget));
        assert!(report.max_depth_reached() < 3);
        assert!(report.states_visited <= 8);
    }

    #[test]
    fn violated_start_state_gives_empty_path() {
        let e = ParallelExplorer::new(Counter { n: 10 }, |_s: &u8| vec![], 1000, 100);
        let report = e.check_invariant(|s| *s != 0);
        let v = report.violation.unwrap();
        assert!(v.path.is_empty());
        assert_eq!(v.state, 0);
        assert_eq!(v.property, "invariant");
    }

    #[test]
    fn multiple_properties_report_first_violated_in_order() {
        let even = Invariant::new("below-6", |s: &u8| *s < 6);
        let odd = Invariant::new("below-4", |s: &u8| *s < 4);
        let e = ParallelExplorer::new(Counter { n: 10 }, bump, 1000, 100).threads(2);
        // Both properties eventually fail; 4 (violating "below-4") is at
        // depth 2, while 6 (violating "below-6") is at depth 3 — the
        // shallower violation must win.
        let report = e.check_properties_from(vec![0], &[&even, &odd]);
        let v = report.violation.unwrap();
        assert_eq!(v.state, 4);
        assert_eq!(v.property, "below-4");
        assert_eq!(v.path.len(), 2);
    }

    /// Diamond automaton: two different one-step actions reach the same
    /// state; the minimal claim (lower action index) must win the
    /// predecessor race under every thread count.
    #[derive(Clone)]
    struct Diamond;

    impl Automaton for Diamond {
        type Action = u8;
        type State = u8;

        fn start_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn classify(&self, _a: &u8) -> Option<ActionClass> {
            Some(ActionClass::Output)
        }
        fn successors(&self, s: &u8, a: &u8) -> Vec<u8> {
            match (s, a) {
                (0, 1) => vec![1],
                (0, 2) => vec![2],
                (1, 3) | (2, 4) => vec![3],
                _ => vec![],
            }
        }
        fn enabled_local(&self, s: &u8) -> Vec<u8> {
            match s {
                0 => vec![1, 2],
                1 => vec![3],
                2 => vec![4],
                _ => vec![],
            }
        }
        fn task_of(&self, _a: &u8) -> TaskId {
            TaskId(0)
        }
        fn task_count(&self) -> usize {
            1
        }
    }

    #[test]
    fn diamond_merge_picks_canonical_parent() {
        for threads in [1, 2, 4] {
            let e = ParallelExplorer::new(Diamond, |_s: &u8| vec![], 100, 100).threads(threads);
            let report = e.check_invariant(|s| *s != 3);
            let v = report.violation.unwrap();
            // Both 1→3 and 2→4 paths have length 2; the canonical one
            // goes through state 1 (the lower-indexed parent).
            assert_eq!(v.path, vec![1, 3]);
        }
    }

    /// Trace property "action `0` has occurred on the path", for the
    /// trace-threading tests below.
    struct SawAction(u8);

    impl TraceProperty<u8> for SawAction {
        type State = bool;

        fn name(&self) -> &str {
            "saw-action"
        }

        fn start(&self) -> bool {
            false
        }

        fn step(&self, state: &bool, action: &u8) -> bool {
            *state || *action == self.0
        }

        fn violation(&self, state: &bool) -> Option<String> {
            state.then(|| format!("action {} occurred", self.0))
        }
    }

    #[test]
    fn null_trace_property_changes_nothing() {
        let plain = ParallelExplorer::new(Counter { n: 10 }, bump, 1000, 100)
            .threads(2)
            .reachable_states();
        let traced = ParallelExplorer::new(Counter { n: 10 }, bump, 1000, 100)
            .threads(2)
            .check_traced_from(vec![0], &[], &());
        assert!(traced.holds());
        assert_eq!(traced.states_visited, plain.states_visited);
        assert_eq!(traced.quiescent_states, plain.quiescent_states);
    }

    #[test]
    fn trace_violation_reports_canonical_path_every_thread_count() {
        for threads in [1, 2, 4] {
            let e = ParallelExplorer::new(Diamond, |_s: &u8| vec![], 100, 100).threads(threads);
            let report = e.check_traced_from(vec![0], &[], &SawAction(1));
            let v = report.violation.expect("action 1 is on a canonical path");
            assert_eq!(v.path, vec![1]);
            assert_eq!(v.state, 1);
            assert_eq!(v.property, "saw-action: action 1 occurred");
        }
    }

    /// The documented incompleteness: action `4` occurs only on the
    /// 0→2→3 branch of the diamond, but state 3's canonical (minimal
    /// claim) path goes through state 1, so the threaded monitor never
    /// sees `4` — the search reports a hold even though a real execution
    /// violates the trace property. Conclusive absence needs an observer
    /// automaton composed into the system instead.
    #[test]
    fn trace_dedup_can_hide_noncanonical_paths() {
        let e = ParallelExplorer::new(Diamond, |_s: &u8| vec![], 100, 100).threads(2);
        let report = e.check_traced_from(vec![0], &[], &SawAction(4));
        assert!(report.holds(), "spanning-tree monitor misses the 2→4 path");
    }

    #[test]
    fn state_properties_outrank_trace_property_on_the_same_state() {
        let below = Invariant::new("below-1", |s: &u8| *s < 1);
        let e = ParallelExplorer::new(Diamond, |_s: &u8| vec![], 100, 100).threads(2);
        // Both fail first at state 1 (depth 1); the state property wins.
        let report = e.check_traced_from(vec![0], &[&below], &SawAction(1));
        let v = report.violation.unwrap();
        assert_eq!(v.state, 1);
        assert_eq!(v.property, "below-1");
    }

    #[test]
    fn dedup_hits_are_counted() {
        // The 10-state counter cycle revisits states constantly.
        let report = ParallelExplorer::new(Counter { n: 10 }, bump, 1000, 100)
            .threads(2)
            .reachable_states();
        assert!(report.dedup_hits() > 0);
        assert_eq!(
            report.dedup_hits(),
            report.layers.iter().map(|l| l.duplicates).sum::<u64>()
        );
    }

    #[test]
    fn packed_backend_matches_plain_verdicts_and_counts() {
        let plain = ParallelExplorer::new(Counter { n: 10 }, bump, 1000, 100)
            .threads(2)
            .reachable_states();
        for threads in [1, 2, 4] {
            let packed = ParallelExplorer::new(Counter { n: 10 }, bump, 1000, 100)
                .threads(threads)
                .packed()
                .reachable_states();
            assert!(packed.holds() && packed.exhaustive());
            assert_eq!(packed.states_visited, plain.states_visited);
            assert_eq!(packed.quiescent_states, plain.quiescent_states);
            assert_eq!(packed.dedup_hits(), plain.dedup_hits());
            assert_eq!(packed.layers.len(), plain.layers.len());
            for (p, q) in packed.layers.iter().zip(&plain.layers) {
                assert_eq!(
                    (p.frontier, p.discovered, p.edges),
                    (q.frontier, q.discovered, q.edges)
                );
            }
        }
    }

    #[test]
    fn packed_backend_reports_identical_counterexamples() {
        for threads in [1, 2, 4] {
            let e = ParallelExplorer::new(Diamond, |_s: &u8| vec![], 100, 100)
                .threads(threads)
                .packed();
            let report = e.check_invariant(|s| *s != 3);
            let v = report.violation.unwrap();
            assert_eq!(v.path, vec![1, 3]);
            assert_eq!(v.state, 3);
        }
    }

    #[test]
    fn packed_spill_keeps_results_and_bounds_resident_bytes() {
        let reference = ParallelExplorer::new(Counter { n: 100 }, bump, 1000, 200)
            .threads(2)
            .packed()
            .reachable_states();
        let spilled = ParallelExplorer::new(Counter { n: 100 }, bump, 1000, 200)
            .threads(2)
            .packed_with_spill(16)
            .reachable_states();
        assert_eq!(spilled.states_visited, reference.states_visited);
        assert_eq!(spilled.quiescent_states, reference.quiescent_states);
        assert_eq!(spilled.dedup_hits(), reference.dedup_hits());
        // With a 16-byte resident ceiling the encoding arena must have
        // spilled, so the packed run's resident bytes shrink further.
        assert!(spilled.arena_bytes < reference.arena_bytes);
    }

    #[test]
    fn tiny_filters_stay_exact_through_the_overflow_path() {
        // One segment and a frontier-derived size that the branching
        // factor of the bumping counter overwhelms: correctness must
        // come from the barrier merge, not filter capacity.
        let seq = Explorer::new(Counter { n: 100 }, bump, 1000, 200).reachable_states();
        for threads in [1, 2, 4] {
            let par = ParallelExplorer::new(Counter { n: 100 }, bump, 1000, 200)
                .threads(threads)
                .shards(1)
                .reachable_states();
            assert_eq!(par.states_visited, seq.states_visited);
            assert_eq!(par.quiescent_states, seq.quiescent_states);
        }
    }
}
