//! `dl-explore`: a parallel, work-sharded explicit-state model checker
//! for [`ioa`] automata.
//!
//! The sequential [`ioa::Explorer`] is this workspace's reference
//! implementation of bounded exhaustive verification (experiment E9). It
//! caps how large a channel capacity / message alphabet can be verified
//! before the state budget truncates the search, because one thread must
//! enumerate every interleaving alone. This crate generalizes it to a
//! **layer-synchronous parallel BFS**:
//!
//! * the breadth-first frontier is expanded one depth layer at a time by a
//!   pool of scoped worker threads ([`std::thread::scope`] — no external
//!   dependencies);
//! * admitted states live in a frozen, read-only arena during expansion,
//!   and intra-layer discoveries go through a **lock-free claim filter**
//!   sharded by state hash: slots are claimed by compare-and-swap, rival
//!   claims fold together with an atomic `fetch_min` on the packed claim
//!   key, and anything the filter cannot decide overflows to worker-local
//!   lists that the layer barrier merges exactly;
//! * state storage is **pluggable**: the default [`PlainBackend`] interns
//!   full structs, while [`PackedBackend`] interns canonical bit-packed
//!   [`ioa::intern::PackedCodec`] encodings (same states, same ids, same
//!   verdicts, a fraction of the arena bytes) with an optional
//!   disk-spill threshold that bounds resident memory on deep searches;
//! * every newly discovered state records the **minimal claim** that
//!   reached it — the lexicographically least `(parent index, action
//!   index, successor index)` triple — which makes state numbering,
//!   counterexample choice, and counterexample length a pure function of
//!   the state graph, **identical for every thread count**;
//! * properties are pluggable [`Property`] observers checked on every
//!   state as layers complete (the WDL-safety observer of `dl-core`
//!   composes into the system as an automaton and is then checked here as
//!   a plain [`Invariant`] over its projected state);
//! * trace properties — judgements over the *action path* rather than the
//!   state — thread a [`TraceProperty`] monitor state along the BFS
//!   spanning tree without enlarging the explored state space;
//!   [`MonitorProperty`] wires `dl-core`'s streaming conformance monitor
//!   in this way (sound for violations, conclusive only per spanning-tree
//!   path — see the trait docs);
//! * budgets (state count, depth) and per-layer frontier statistics are
//!   surfaced in an [`ExploreReport`] that is a superset of the
//!   sequential explorer's report.
//!
//! # Verdict compatibility with `ioa::Explorer`
//!
//! On a search that completes without truncation, the parallel engine
//! visits exactly the reachable state set, so `states_visited` and
//! `quiescent_states` equal the sequential explorer's, and a violation
//! (if any) is reported with a **shortest** path, the same length the
//! sequential BFS finds. The differential tests in this crate and in the
//! workspace root pin these guarantees at 1, 2, and 4 threads. The one
//! intentional difference: on a violation the sequential explorer stops
//! mid-layer (its `states_visited` depends on insertion order), while
//! this engine always completes the layer it is in, so its counts are
//! thread-count-independent.
//!
//! # Example
//!
//! ```
//! use ioa::{ActionClass, Automaton, TaskId};
//! use dl_explore::ParallelExplorer;
//!
//! /// Counter that wraps at 4; invariant "never reaches 3" fails.
//! #[derive(Clone)]
//! struct C;
//! impl Automaton for C {
//!     type Action = ();
//!     type State = u8;
//!     fn start_states(&self) -> Vec<u8> { vec![0] }
//!     fn classify(&self, _: &()) -> Option<ActionClass> { Some(ActionClass::Output) }
//!     fn successors(&self, s: &u8, _: &()) -> Vec<u8> { vec![(s + 1) % 4] }
//!     fn enabled_local(&self, _: &u8) -> Vec<()> { vec![()] }
//!     fn task_of(&self, _: &()) -> TaskId { TaskId(0) }
//!     fn task_count(&self) -> usize { 1 }
//! }
//!
//! let explorer = ParallelExplorer::new(C, |_s: &u8| vec![], 100, 100).threads(2);
//! let report = explorer.check_invariant(|s| *s != 3);
//! let violation = report.violation.unwrap();
//! assert_eq!(violation.state, 3);
//! assert_eq!(violation.path.len(), 3); // shortest path, any thread count
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod monitor;
mod property;
mod report;
mod shard;
mod store;

pub use engine::ParallelExplorer;
pub use monitor::MonitorProperty;
pub use property::{Invariant, Property, TraceProperty};
pub use report::{ExploreReport, LayerStats, Truncation, Violation};
pub use store::{ExploreBackend, PackedBackend, PackedStore, PlainBackend, PlainStore, StateStore};
