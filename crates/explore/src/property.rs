//! Pluggable safety properties checked during search.

/// A named state predicate checked on every state the explorer admits.
///
/// Implementations must be [`Sync`]: workers on different layers of the
/// search share them. Temporal/trace properties can be expressed two
/// ways: by composing an observer automaton into the explored system (as
/// `dl-core`'s WDL-safety observer does) and checking the observer's
/// projected state here — exhaustive but state-space-expanding — or by
/// threading a [`TraceProperty`] along the BFS spanning tree, which adds
/// no states but sees only one path per state (see that trait's docs).
pub trait Property<S>: Sync {
    /// Human-readable name, used in violation reports.
    fn name(&self) -> &str;

    /// `true` if `state` satisfies the property.
    fn holds(&self, state: &S) -> bool;
}

/// A [`Property`] built from a plain predicate closure.
pub struct Invariant<F> {
    name: String,
    predicate: F,
}

impl<F> Invariant<F> {
    /// Names `predicate` for violation reporting.
    pub fn new(name: impl Into<String>, predicate: F) -> Self {
        Invariant {
            name: name.into(),
            predicate,
        }
    }
}

impl<S, F> Property<S> for Invariant<F>
where
    F: Fn(&S) -> bool + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn holds(&self, state: &S) -> bool {
        (self.predicate)(state)
    }
}

/// A property of the *action path*, not the state, threaded along the
/// BFS spanning tree.
///
/// The engine keeps one `Self::State` per admitted automaton state,
/// obtained by [`step`](TraceProperty::step)ping the parent's value with
/// the admitting action, and reports the first state (in deterministic
/// admission order) where [`violation`](TraceProperty::violation) fires.
/// Because the admitting path is itself a real execution, every reported
/// violation is genuine — and the counterexample path replays it.
///
/// **Sound for violations, incomplete for proofs.** State deduplication
/// keeps only the minimal-claim path to each automaton state, so a trace
/// violation reachable *only* along a path the dedup discarded can be
/// missed. Use an observer automaton composed into the system when the
/// absence of trace violations must be conclusive; use this when a
/// linear-time online monitor (e.g. [`MonitorProperty`](crate::MonitorProperty))
/// should scan the search without enlarging the explored state space.
pub trait TraceProperty<A>: Sync {
    /// Per-path monitor state carried along the spanning tree.
    type State: Clone + Send + Sync;

    /// Human-readable name, used in violation reports.
    fn name(&self) -> &str;

    /// Monitor state for an (empty-trace) start state.
    fn start(&self) -> Self::State;

    /// Monitor state after `action` extends the path that led to `state`.
    fn step(&self, state: &Self::State, action: &A) -> Self::State;

    /// `Some(description)` if the path summarized by `state` violates the
    /// property.
    fn violation(&self, state: &Self::State) -> Option<String>;

    /// `true` if this property can never report a violation **and** its
    /// monitor state is meaningless, so the engine may skip resolving
    /// action labels and stepping entirely. Only the null property `()`
    /// should override this.
    fn is_vacuous(&self) -> bool {
        false
    }
}

/// The null trace property: never violated, zero-sized state. Lets the
/// plain property-checking entry points share the traced engine.
impl<A> TraceProperty<A> for () {
    type State = ();

    fn name(&self) -> &str {
        "()"
    }

    fn start(&self) -> Self::State {}

    fn step(&self, _state: &Self::State, _action: &A) -> Self::State {}

    fn violation(&self, _state: &Self::State) -> Option<String> {
        None
    }

    fn is_vacuous(&self) -> bool {
        true
    }
}
