//! Pluggable safety properties checked during search.

/// A named state predicate checked on every state the explorer admits.
///
/// Implementations must be [`Sync`]: workers on different layers of the
/// search share them. Temporal/trace properties are expressed by
/// composing an observer automaton into the explored system (as
/// `dl-core`'s WDL-safety observer does) and checking the observer's
/// projected state here.
pub trait Property<S>: Sync {
    /// Human-readable name, used in violation reports.
    fn name(&self) -> &str;

    /// `true` if `state` satisfies the property.
    fn holds(&self, state: &S) -> bool;
}

/// A [`Property`] built from a plain predicate closure.
pub struct Invariant<F> {
    name: String,
    predicate: F,
}

impl<F> Invariant<F> {
    /// Names `predicate` for violation reporting.
    pub fn new(name: impl Into<String>, predicate: F) -> Self {
        Invariant {
            name: name.into(),
            predicate,
        }
    }
}

impl<S, F> Property<S> for Invariant<F>
where
    F: Fn(&S) -> bool + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn holds(&self, state: &S) -> bool {
        (self.predicate)(state)
    }
}
