//! Pluggable state-storage backends for the parallel explorer.
//!
//! The engine is generic over *how admitted states are stored*. The
//! [`PlainBackend`] keeps full structs in a [`StateTable`] — zero
//! translation cost, byte-identical to the engine's original behavior.
//! The [`PackedBackend`] stores each state's canonical [`PackedCodec`]
//! encoding in a [`PackedTable`]: the hasher touches a handful of bytes
//! instead of walking a struct, the arena footprint drops several-fold
//! for queue-heavy zoo states, and an optional spill threshold moves
//! cold encoding bytes to an unlinked temp file so deep searches bound
//! their resident memory.
//!
//! Both backends expose the same claim-time contract: [`absorb`] turns a
//! successor into `(hash, representation)` once, workers dedup against
//! admitted states via the read-only [`lookup`], and the barrier interns
//! in deterministic sorted order via [`intern_new`] — so plain and
//! packed runs admit the same states with the same dense ids and differ
//! only in `arena_bytes`.
//!
//! [`absorb`]: StateStore::absorb
//! [`lookup`]: StateStore::lookup
//! [`intern_new`]: StateStore::intern_new

use std::borrow::Cow;
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

use ioa::intern::{PackedCodec, PackedTable};
use ioa::{StateId, StateTable};

use crate::shard::SharedHasher;

/// Storage for one exploration run: an append-only arena of admitted
/// states plus the claim-time representation workers pass around.
///
/// The store is frozen (shared immutably) while workers expand a layer
/// and grows only at the barrier, on the coordinating thread.
pub trait StateStore<S: Clone>: Sync {
    /// What a claimed-but-not-yet-admitted state is carried as: the
    /// state itself for plain storage, its canonical encoding for packed
    /// storage. Equality on representations must coincide with equality
    /// on states.
    type Repr: Eq + Send + Sync;

    /// Hashes `state` and converts it to its claim representation. The
    /// returned hash is the one [`lookup`](Self::lookup) and
    /// [`intern_new`](Self::intern_new) expect — it is computed exactly
    /// once per discovered edge.
    fn absorb(&self, state: S) -> (u64, Self::Repr);

    /// Dense id of an already-admitted state with this representation,
    /// if any. Read-only; safe to call from concurrent workers.
    fn lookup(&self, hash: u64, repr: &Self::Repr) -> Option<u32>;

    /// Admits a representation known not to be stored yet, returning its
    /// dense id (ids are assigned in call order, starting at 0).
    fn intern_new(&mut self, hash: u64, repr: Self::Repr) -> u32;

    /// Loads admitted state `idx` — borrowed from the arena for plain
    /// storage, decoded on the fly for packed storage.
    fn load(&self, idx: u32) -> Cow<'_, S>;

    /// Number of admitted states.
    fn len(&self) -> usize;

    /// True when no state has been admitted yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident footprint of the arena in bytes (spilled bytes excluded).
    fn approx_bytes(&self) -> usize;

    /// Bytes moved to the disk-spill file so far (`0` without spill).
    fn spilled_bytes(&self) -> u64;
}

/// A factory for [`StateStore`]s — the explorer holds a backend and
/// builds one fresh store per exploration run.
pub trait ExploreBackend<S: Clone>: Clone {
    /// The store this backend builds.
    type Store: StateStore<S>;

    /// A fresh, empty store.
    fn new_store(&self) -> Self::Store;
}

/// The default backend: full structs in a [`StateTable`], hashed by the
/// deterministic [`SharedHasher`]. This is byte-for-byte the storage the
/// engine always used, so reports (including `arena_bytes`) are pinned.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlainBackend;

/// Store built by [`PlainBackend`].
pub struct PlainStore<S> {
    table: StateTable<S, SharedHasher>,
    hasher: SharedHasher,
}

impl<S> ExploreBackend<S> for PlainBackend
where
    S: Clone + Eq + Hash + Send + Sync,
{
    type Store = PlainStore<S>;

    fn new_store(&self) -> PlainStore<S> {
        PlainStore {
            table: StateTable::with_hasher(SharedHasher::default()),
            hasher: SharedHasher::default(),
        }
    }
}

impl<S> StateStore<S> for PlainStore<S>
where
    S: Clone + Eq + Hash + Send + Sync,
{
    type Repr = S;

    fn absorb(&self, state: S) -> (u64, S) {
        (self.hasher.hash_one(&state), state)
    }

    fn lookup(&self, hash: u64, repr: &S) -> Option<u32> {
        self.table.lookup_prehashed(hash, repr).map(|id| id.0)
    }

    fn intern_new(&mut self, hash: u64, repr: S) -> u32 {
        let (id, fresh) = self.table.intern_prehashed(hash, repr);
        debug_assert!(fresh, "intern_new called on an admitted state");
        id.0
    }

    fn load(&self, idx: u32) -> Cow<'_, S> {
        Cow::Borrowed(self.table.get(StateId(idx)))
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn approx_bytes(&self) -> usize {
        self.table.approx_bytes()
    }

    fn spilled_bytes(&self) -> u64 {
        0
    }
}

/// Packed-encoding backend: states live as canonical [`PackedCodec`]
/// byte strings in a [`PackedTable`]. Optionally spills cold encoding
/// bytes to disk past a resident-size threshold.
#[derive(Debug, Clone, Copy, Default)]
pub struct PackedBackend {
    spill_threshold: usize,
}

impl PackedBackend {
    /// A packed backend with no disk spill.
    #[must_use]
    pub fn new() -> Self {
        PackedBackend::default()
    }

    /// Enables disk spill: whenever the resident encoding arena exceeds
    /// `threshold` bytes it is appended to an unlinked temp file. `0`
    /// disables spilling.
    #[must_use]
    pub fn with_spill_threshold(mut self, threshold: usize) -> Self {
        self.spill_threshold = threshold;
        self
    }
}

/// Store built by [`PackedBackend`].
pub struct PackedStore<S> {
    table: PackedTable,
    _state: PhantomData<fn() -> S>,
}

impl<S> ExploreBackend<S> for PackedBackend
where
    S: Clone + Eq + PackedCodec,
{
    type Store = PackedStore<S>;

    fn new_store(&self) -> PackedStore<S> {
        PackedStore {
            table: PackedTable::new().with_spill_threshold(self.spill_threshold),
            _state: PhantomData,
        }
    }
}

impl<S> StateStore<S> for PackedStore<S>
where
    S: Clone + Eq + PackedCodec,
{
    type Repr = Box<[u8]>;

    fn absorb(&self, state: S) -> (u64, Box<[u8]>) {
        let mut buf = Vec::with_capacity(32);
        state.encode(&mut buf);
        let repr = buf.into_boxed_slice();
        (self.table.hash_bytes(&repr), repr)
    }

    fn lookup(&self, hash: u64, repr: &Box<[u8]>) -> Option<u32> {
        self.table.lookup(hash, repr)
    }

    fn intern_new(&mut self, hash: u64, repr: Box<[u8]>) -> u32 {
        let (id, fresh) = self.table.intern(hash, &repr);
        debug_assert!(fresh, "intern_new called on an admitted state");
        id
    }

    fn load(&self, idx: u32) -> Cow<'_, S> {
        Cow::Owned(self.table.decode(idx))
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn approx_bytes(&self) -> usize {
        self.table.approx_bytes()
    }

    fn spilled_bytes(&self) -> u64 {
        self.table.spilled_bytes()
    }
}
