//! Online DL/PL conformance as a [`TraceProperty`]: `dl-core`'s
//! streaming [`TraceMonitor`] threaded along the BFS spanning tree.

use dl_core::action::DlAction;
use dl_core::spec::monitor::TraceMonitor;

use crate::property::TraceProperty;

/// Checks every explored path against the paper's safety conclusions
/// (PL3/PL4/optionally PL5 per direction; DL4/DL5/optionally DL6),
/// using the monitor's online suppression rule: a conclusion violation
/// is only reported while the prefix-checkable module hypotheses
/// (wellformedness, DL2, DL3 / per-direction PL1, PL2) still hold on the
/// path. End-of-trace hypotheses like DL1 do **not** suppress — they are
/// non-monotone (a later wake can restore them while the violation
/// persists) — so a reported path may be batch-`Vacuous(DL1)` at that
/// exact prefix while every hypothesis-restoring continuation is
/// batch-`Violated`.
///
/// The monitor state is one [`TraceMonitor`] clone per admitted state —
/// linear work per transition, but memory-heavier than a plain
/// invariant; intended for the bounded searches `dl-explore` runs, not
/// for unbounded frontiers. Violations are genuine (the counterexample
/// path replays them under `DlModule`/`PlModule` with
/// `TraceKind::Prefix`); their absence covers only the spanning-tree
/// paths — see [`TraceProperty`] for the soundness/completeness
/// contract.
pub struct MonitorProperty {
    name: String,
    /// Monitor pre-seeded with the fixed environment prefix, so every
    /// explored path is judged as `prefix ++ path`.
    base: TraceMonitor,
    full_dl: bool,
    fifo: bool,
}

impl MonitorProperty {
    /// A monitor property over the empty prefix. `full_dl` enables DL6,
    /// `fifo` enables PL5 — the same toggles `dl-sim`'s online
    /// conformance policy exposes.
    #[must_use]
    pub fn new(full_dl: bool, fifo: bool) -> Self {
        MonitorProperty {
            name: if full_dl {
                "dl-monitor".to_string()
            } else {
                "wdl-monitor".to_string()
            },
            base: TraceMonitor::new(),
            full_dl,
            fifo,
        }
    }

    /// Replays `prefix` (typically the wake script applied before
    /// exploration starts, mirroring
    /// [`check_invariant_from`](crate::ParallelExplorer::check_invariant_from))
    /// into the monitor before any explored action.
    #[must_use]
    pub fn with_prefix(mut self, prefix: &[DlAction]) -> Self {
        self.base.observe_all(prefix);
        self
    }
}

impl TraceProperty<DlAction> for MonitorProperty {
    type State = TraceMonitor;

    fn name(&self) -> &str {
        &self.name
    }

    fn start(&self) -> TraceMonitor {
        self.base.clone()
    }

    fn step(&self, state: &TraceMonitor, action: &DlAction) -> TraceMonitor {
        let mut next = state.clone();
        next.observe(action);
        next
    }

    fn violation(&self, state: &TraceMonitor) -> Option<String> {
        state
            .online_violation(self.full_dl, self.fifo)
            .map(|v| match v.at {
                Some(at) => format!("{} at action {at}: {}", v.property, v.reason),
                None => format!("{}: {}", v.property, v.reason),
            })
    }
}
