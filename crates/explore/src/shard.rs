//! The work-sharded visited set.
//!
//! States are distributed over `N` independent shards by state hash, each
//! shard a `Mutex<HashMap>`; concurrent workers claiming successors
//! contend only when two discoveries land in the same shard at the same
//! instant. Between layers the engine owns the set exclusively and drains
//! the per-shard fresh lists without locking.

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hash};
use std::sync::Mutex;

/// The identity of one discovery of a state: which frontier slot, which
/// of its actions, which nondeterministic successor. Lexicographic order
/// over this triple is the deterministic tie-break that makes parallel
/// results thread-count-independent: concurrent claims of the same state
/// keep the minimal key, and the minimum over a set does not depend on
/// arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct ClaimKey {
    /// Arena index of the parent (frontier) state.
    pub parent: usize,
    /// Index of the action within the parent's deterministic action list.
    pub action: usize,
    /// Index of the successor within the action's successor list.
    pub succ: usize,
}

/// A newly discovered state, with the minimal claim that reached it.
pub(crate) struct FreshClaim<S, A> {
    pub key: ClaimKey,
    pub state: S,
    pub action: A,
}

/// Outcome of one [`ShardedVisited::claim`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ClaimOutcome {
    /// First discovery of this state.
    New,
    /// Already pending this layer; duplicate (whether or not it improved
    /// the pending claim key).
    Duplicate,
}

#[derive(Clone, Copy)]
enum Slot {
    /// Admitted in a previous layer (or a start state).
    Done,
    /// Discovered this layer; payload is an index into the shard's fresh
    /// list, where the current minimal claim lives.
    Pending(usize),
}

struct Shard<S, A> {
    map: HashMap<S, Slot>,
    fresh: Vec<FreshClaim<S, A>>,
}

impl<S, A> Default for Shard<S, A> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            fresh: Vec::new(),
        }
    }
}

pub(crate) struct ShardedVisited<S, A> {
    shards: Vec<Mutex<Shard<S, A>>>,
    /// Mask for the power-of-two shard count.
    mask: usize,
    hasher: BuildHasherDefault<std::collections::hash_map::DefaultHasher>,
}

impl<S, A> ShardedVisited<S, A>
where
    S: Hash + Eq + Clone,
    A: Clone,
{
    /// A visited set with `shards` shards, rounded up to a power of two.
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedVisited {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            mask: n - 1,
            hasher: BuildHasherDefault::default(),
        }
    }

    fn shard_of(&self, state: &S) -> usize {
        // Use the upper bits: HashMap's probing consumes the lower ones,
        // so this keeps shard choice and in-shard placement independent.
        (self.hasher.hash_one(state) >> 32) as usize & self.mask
    }

    /// Records that a start state is visited. Returns `false` if it was
    /// already present (duplicate start).
    pub fn insert_done(&mut self, state: &S) -> bool {
        let idx = self.shard_of(state);
        let shard = self.shards[idx].get_mut().expect("shard lock poisoned");
        shard.map.insert(state.clone(), Slot::Done).is_none()
    }

    /// Claims `state` as discovered via `key`/`action`. Concurrent claims
    /// of the same state race only for the shard lock; the stored claim
    /// is always the minimal key seen, so the final claim set is
    /// independent of scheduling.
    pub fn claim(&self, state: S, key: ClaimKey, action: &A) -> ClaimOutcome {
        let idx = self.shard_of(&state);
        let mut shard = self.shards[idx].lock().expect("shard lock poisoned");
        match shard.map.get(&state).copied() {
            Some(Slot::Done) => ClaimOutcome::Duplicate,
            Some(Slot::Pending(i)) => {
                let pending = &mut shard.fresh[i];
                if key < pending.key {
                    pending.key = key;
                    pending.action = action.clone();
                }
                ClaimOutcome::Duplicate
            }
            None => {
                let i = shard.fresh.len();
                shard.map.insert(state.clone(), Slot::Pending(i));
                shard.fresh.push(FreshClaim {
                    key,
                    state,
                    action: action.clone(),
                });
                ClaimOutcome::New
            }
        }
    }

    /// Drains every pending claim (marking the states `Done`) and returns
    /// them sorted by claim key — the deterministic admission order.
    /// Called between layers, when no worker holds a lock.
    pub fn drain_fresh_sorted(&mut self) -> Vec<FreshClaim<S, A>> {
        let mut all = Vec::new();
        for shard in &mut self.shards {
            let shard = shard.get_mut().expect("shard lock poisoned");
            for claim in shard.fresh.drain(..) {
                *shard
                    .map
                    .get_mut(&claim.state)
                    .expect("pending state missing from shard map") = Slot::Done;
                all.push(claim);
            }
        }
        // Claim keys are unique (one fresh entry per distinct state, and
        // distinct states that share a parent differ in action/successor
        // index), so this order is total and deterministic.
        all.sort_unstable_by_key(|c| c.key);
        all
    }

    /// Forgets a state dropped by the state budget, so the set's contents
    /// stay exactly "admitted states".
    pub fn remove(&mut self, state: &S) {
        let idx = self.shard_of(state);
        let shard = self.shards[idx].get_mut().expect("shard lock poisoned");
        shard.map.remove(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_claim_wins_regardless_of_order() {
        let keys = [
            ClaimKey {
                parent: 2,
                action: 0,
                succ: 0,
            },
            ClaimKey {
                parent: 0,
                action: 1,
                succ: 0,
            },
            ClaimKey {
                parent: 0,
                action: 0,
                succ: 1,
            },
        ];
        // Insert in two different orders; the surviving claim must match.
        for order in [[0usize, 1, 2], [2, 1, 0]] {
            let mut v: ShardedVisited<u32, &'static str> = ShardedVisited::new(4);
            for i in order {
                v.claim(7, keys[i], &"a");
            }
            let fresh = v.drain_fresh_sorted();
            assert_eq!(fresh.len(), 1);
            assert_eq!(
                fresh[0].key,
                ClaimKey {
                    parent: 0,
                    action: 0,
                    succ: 1
                }
            );
        }
    }

    #[test]
    fn drain_sorts_across_shards() {
        let mut v: ShardedVisited<u32, ()> = ShardedVisited::new(8);
        for s in (0..100u32).rev() {
            v.claim(
                s,
                ClaimKey {
                    parent: s as usize,
                    action: 0,
                    succ: 0,
                },
                &(),
            );
        }
        let fresh = v.drain_fresh_sorted();
        let parents: Vec<usize> = fresh.iter().map(|c| c.key.parent).collect();
        assert_eq!(parents, (0..100).collect::<Vec<_>>());
        // Everything is now Done: re-claiming is a duplicate.
        assert_eq!(
            v.claim(
                5,
                ClaimKey {
                    parent: 0,
                    action: 0,
                    succ: 0
                },
                &()
            ),
            ClaimOutcome::Duplicate
        );
    }

    #[test]
    fn removed_states_can_be_rediscovered() {
        let mut v: ShardedVisited<u32, ()> = ShardedVisited::new(2);
        v.claim(
            9,
            ClaimKey {
                parent: 0,
                action: 0,
                succ: 0,
            },
            &(),
        );
        let fresh = v.drain_fresh_sorted();
        v.remove(&fresh[0].state);
        assert_eq!(
            v.claim(
                9,
                ClaimKey {
                    parent: 3,
                    action: 1,
                    succ: 0
                },
                &()
            ),
            ClaimOutcome::New
        );
    }
}
