//! The lock-free, sharded **per-layer claim filter**.
//!
//! Admitted states live in the engine's state store, which is frozen
//! while workers expand a layer — membership for *admitted* states is a
//! plain read-only store lookup, no synchronization at all. What needs
//! concurrent coordination is only the set of states discovered *within
//! the current layer*, and that set is handled here by a fixed-capacity
//! open-addressing filter whose slots are claimed by atomic
//! compare-and-swap instead of per-shard mutexes:
//!
//! * a worker **claims** a slot by CAS-ing the slot's tag from the empty
//!   sentinel to the state's hash; the single CAS winner publishes the
//!   `(hash, representation)` payload through a [`OnceLock`];
//! * losers that verify payload equality fold their claim in with a
//!   single `fetch_min` on the slot's packed claim key — the minimal
//!   `(parent, action, successor)` triple survives regardless of arrival
//!   order, which is what keeps results thread-count-independent;
//! * anything the filter cannot prove — an unverifiable race with a
//!   winner mid-publish, a probe chain past its limit, a claim key too
//!   large for the packed 64-bit form — is returned to the caller as
//!   [`Claimed::Overflow`] *with ownership of the representation*, and
//!   exactness is restored at the layer barrier where the engine merges
//!   worker-local overflow lists into the drained entries.
//!
//! The filter is built fresh per layer and drained at the barrier, so a
//! state dropped by the state budget is naturally rediscoverable in a
//! later layer (the role the old visited-set tombstones played). The
//! segment count honors the explorer's `shards` knob; segments are
//! selected by the hash's upper bits while in-segment probing consumes
//! the lower bits, keeping the two choices independent.

use std::collections::hash_map::DefaultHasher;
use std::hash::BuildHasherDefault;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The hasher shared by the claim filter and the state store.
/// `DefaultHasher` with default keys is deterministic, which keeps
/// segment routing and cached hashes reproducible across runs.
pub(crate) type SharedHasher = BuildHasherDefault<DefaultHasher>;

/// The identity of one discovery of a state: which frontier slot, which
/// of its actions, which nondeterministic successor. Lexicographic order
/// over this triple is the deterministic tie-break that makes parallel
/// results thread-count-independent: concurrent claims of the same state
/// keep the minimal key, and the minimum over a set does not depend on
/// arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct ClaimKey {
    /// Arena id of the parent (frontier) state.
    pub parent: u32,
    /// Index of the action within the parent's deterministic action list.
    pub action: u32,
    /// Index of the successor within the action's successor list.
    pub succ: u32,
}

/// Bits of the packed key reserved for the successor index.
const SUCC_BITS: u32 = 12;
/// Bits of the packed key reserved for the action index.
const ACTION_BITS: u32 = 20;

impl ClaimKey {
    /// Packs the triple into one `u64` whose numeric order equals the
    /// triple's lexicographic order, so a `fetch_min` on the packed form
    /// is a lock-free "keep the minimal claim". `None` when the action
    /// or successor index exceeds its bit-field — such claims take the
    /// overflow path and are merged exactly at the barrier.
    pub fn pack(self) -> Option<u64> {
        (self.action < (1 << ACTION_BITS) && self.succ < (1 << SUCC_BITS)).then(|| {
            (u64::from(self.parent) << (ACTION_BITS + SUCC_BITS))
                | (u64::from(self.action) << SUCC_BITS)
                | u64::from(self.succ)
        })
    }

    /// Inverse of [`pack`](Self::pack).
    pub fn unpack(packed: u64) -> ClaimKey {
        ClaimKey {
            parent: (packed >> (ACTION_BITS + SUCC_BITS)) as u32,
            action: ((packed >> SUCC_BITS) & ((1 << ACTION_BITS) - 1)) as u32,
            succ: (packed & ((1 << SUCC_BITS) - 1)) as u32,
        }
    }
}

/// A state pending admission: the minimal claim seen so far, the state's
/// hash under the shared hasher, and its store representation. Produced
/// by [`LayerFilter::drain`] and by overflowing claims; the engine merges
/// both populations at the layer barrier.
pub(crate) struct PendingState<R> {
    pub key: ClaimKey,
    pub hash: u64,
    pub repr: R,
}

/// Outcome of one [`LayerFilter::claim`] call.
pub(crate) enum Claimed<R> {
    /// First discovery of this state in the current layer.
    New,
    /// Verified equal to a state already claimed this layer; the minimal
    /// claim key was folded in.
    Duplicate,
    /// The filter could not decide (probe limit, unverifiable race, or
    /// an unpackable claim key). Ownership of the representation returns
    /// to the caller, which records it in a worker-local overflow list;
    /// the barrier merge restores exact dedup semantics.
    Overflow(R),
}

/// How many slots a claim probes before giving up and overflowing.
/// Overflow is correctness-neutral (the barrier dedups exactly), so this
/// only bounds the worst-case work under pathological clustering.
const PROBE_LIMIT: usize = 64;

/// One filter slot. `tag` is the claim CAS target (0 = empty sentinel;
/// a state hashing to 0 is tagged 1, and the true hash stored in `val`
/// disambiguates). `key` accumulates the minimal packed claim key via
/// `fetch_min`. `val` is published exactly once, by the CAS winner.
struct FilterSlot<R> {
    tag: AtomicU64,
    key: AtomicU64,
    val: OnceLock<(u64, R)>,
}

impl<R> FilterSlot<R> {
    fn empty() -> Self {
        FilterSlot {
            tag: AtomicU64::new(0),
            key: AtomicU64::new(u64::MAX),
            val: OnceLock::new(),
        }
    }
}

/// The per-layer claim filter: `segments` independent power-of-two slot
/// arrays. See the module docs for the protocol.
pub(crate) struct LayerFilter<R> {
    segments: Vec<Vec<FilterSlot<R>>>,
    /// Mask for the power-of-two segment count (upper hash bits).
    seg_mask: usize,
    /// Mask for the power-of-two per-segment slot count (lower bits).
    slot_mask: usize,
}

impl<R: Eq> LayerFilter<R> {
    /// A filter sized for about `expected` distinct discoveries, split
    /// into `segments` segments (both rounded up to powers of two; small
    /// layers collapse to fewer segments so each keeps a useful probe
    /// neighborhood). Claims beyond capacity overflow, they never block.
    pub fn new(expected: usize, segments: usize) -> Self {
        let total = expected.next_power_of_two().max(16);
        let segs = segments.max(1).next_power_of_two().min((total / 16).max(1));
        let per_seg = (total / segs).next_power_of_two();
        LayerFilter {
            segments: (0..segs)
                .map(|_| (0..per_seg).map(|_| FilterSlot::empty()).collect())
                .collect(),
            seg_mask: segs - 1,
            slot_mask: per_seg - 1,
        }
    }

    /// Claims `repr` (hashing to `hash`) as discovered via `key`.
    /// Lock-free: the only writes are one CAS on an empty slot's tag, a
    /// `OnceLock` publish by the unique CAS winner, and `fetch_min` folds
    /// of the packed claim key.
    pub fn claim(&self, hash: u64, key: ClaimKey, repr: R) -> Claimed<R> {
        let Some(packed) = key.pack() else {
            return Claimed::Overflow(repr);
        };
        let tag = if hash == 0 { 1 } else { hash };
        let segment = &self.segments[(hash >> 32) as usize & self.seg_mask];
        let mut i = (hash as usize) & self.slot_mask;
        for _ in 0..PROBE_LIMIT.min(segment.len()) {
            let slot = &segment[i];
            let mut current = slot.tag.load(Ordering::Acquire);
            if current == 0 {
                match slot
                    .tag
                    .compare_exchange(0, tag, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => {
                        // We own the slot: publish, then fold our key.
                        let published = slot.val.set((hash, repr)).is_ok();
                        debug_assert!(published, "CAS winner is the only publisher");
                        slot.key.fetch_min(packed, Ordering::AcqRel);
                        return Claimed::New;
                    }
                    Err(raced) => current = raced,
                }
            }
            if current == tag {
                match slot.val.get() {
                    Some((h, r)) if *h == hash && *r == repr => {
                        slot.key.fetch_min(packed, Ordering::AcqRel);
                        return Claimed::Duplicate;
                    }
                    // A different state sharing the tag: keep probing.
                    Some(_) => {}
                    // Winner mid-publish; defer to the barrier merge
                    // rather than spin.
                    None => return Claimed::Overflow(repr),
                }
            }
            i = (i + 1) & self.slot_mask;
        }
        Claimed::Overflow(repr)
    }

    /// Drains every claimed slot. Called at the layer barrier with
    /// exclusive access (all workers joined), so every claimed slot has
    /// a published payload and a folded key. Slot order is scheduling
    /// dependent — the engine sorts the merged entries by claim key
    /// before admitting, which is what makes admission deterministic.
    pub fn drain(&mut self) -> Vec<PendingState<R>> {
        let mut out = Vec::new();
        for segment in &mut self.segments {
            for slot in segment {
                if *slot.tag.get_mut() == 0 {
                    continue;
                }
                let (hash, repr) = slot.val.take().expect("claimed slot has a payload");
                out.push(PendingState {
                    key: ClaimKey::unpack(*slot.key.get_mut()),
                    hash,
                    repr,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(parent: u32, action: u32, succ: u32) -> ClaimKey {
        ClaimKey {
            parent,
            action,
            succ,
        }
    }

    #[test]
    fn pack_order_matches_lexicographic_order() {
        let keys = [
            key(0, 0, 0),
            key(0, 0, 1),
            key(0, 1, 0),
            key(1, 0, 0),
            key(1, 2, 3),
            key(u32::MAX, (1 << 20) - 1, (1 << 12) - 1),
        ];
        for a in &keys {
            for b in &keys {
                let (pa, pb) = (a.pack().unwrap(), b.pack().unwrap());
                assert_eq!(pa.cmp(&pb), a.cmp(b), "{a:?} vs {b:?}");
                assert_eq!(ClaimKey::unpack(pa), *a);
            }
        }
        assert!(key(0, 1 << 20, 0).pack().is_none());
        assert!(key(0, 0, 1 << 12).pack().is_none());
    }

    #[test]
    fn minimal_claim_wins_regardless_of_order() {
        let keys = [key(2, 0, 0), key(0, 1, 0), key(0, 0, 1)];
        for order in [[0usize, 1, 2], [2, 1, 0]] {
            let mut filter: LayerFilter<u32> = LayerFilter::new(16, 4);
            let mut news = 0;
            for i in order {
                if matches!(filter.claim(7, keys[i], 99), Claimed::New) {
                    news += 1;
                }
            }
            assert_eq!(news, 1);
            let drained = filter.drain();
            assert_eq!(drained.len(), 1);
            assert_eq!(drained[0].key, key(0, 0, 1));
            assert_eq!(drained[0].hash, 7);
            assert_eq!(drained[0].repr, 99);
        }
    }

    #[test]
    fn distinct_states_with_equal_hashes_coexist() {
        let mut filter: LayerFilter<u32> = LayerFilter::new(16, 1);
        assert!(matches!(filter.claim(5, key(0, 0, 0), 10), Claimed::New));
        assert!(matches!(filter.claim(5, key(0, 0, 1), 20), Claimed::New));
        assert!(matches!(
            filter.claim(5, key(9, 0, 0), 10),
            Claimed::Duplicate
        ));
        assert!(matches!(
            filter.claim(5, key(9, 0, 0), 20),
            Claimed::Duplicate
        ));
        let mut drained = filter.drain();
        drained.sort_unstable_by_key(|p| p.key);
        assert_eq!(drained.len(), 2);
        assert_eq!((drained[0].repr, drained[1].repr), (10, 20));
    }

    #[test]
    fn zero_hash_is_remapped_but_disambiguated() {
        let mut filter: LayerFilter<u32> = LayerFilter::new(16, 1);
        assert!(matches!(filter.claim(0, key(0, 0, 0), 1), Claimed::New));
        // Hash 1 shares the tag with remapped hash 0; the stored true
        // hash keeps them distinct states.
        assert!(matches!(filter.claim(1, key(0, 0, 1), 1), Claimed::New));
        assert!(matches!(
            filter.claim(0, key(5, 0, 0), 1),
            Claimed::Duplicate
        ));
        let drained = filter.drain();
        assert_eq!(drained.len(), 2);
    }

    #[test]
    fn unpackable_keys_overflow_with_ownership() {
        let filter: LayerFilter<String> = LayerFilter::new(16, 1);
        let big = key(0, 1 << 20, 0);
        match filter.claim(3, big, "payload".to_string()) {
            Claimed::Overflow(s) => assert_eq!(s, "payload"),
            _ => panic!("unpackable key must overflow"),
        }
    }

    #[test]
    fn capacity_exhaustion_overflows_instead_of_blocking() {
        let mut filter: LayerFilter<u64> = LayerFilter::new(1, 1); // 16 slots
        let (mut news, mut overflows) = (0, 0);
        for s in 0..100u64 {
            // Spread hashes so probing is realistic.
            match filter.claim(
                s.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                key(s as u32, 0, 0),
                s,
            ) {
                Claimed::New => news += 1,
                Claimed::Overflow(_) => overflows += 1,
                Claimed::Duplicate => panic!("all states distinct"),
            }
        }
        assert_eq!(news + overflows, 100);
        assert!(news <= 16);
        assert!(overflows >= 84);
        assert_eq!(filter.drain().len(), news);
    }

    #[test]
    fn concurrent_claims_merge_to_minimal_keys() {
        let filter: LayerFilter<u64> = LayerFilter::new(1024, 8);
        // Worker-local overflow lists, merged below exactly the way the
        // engine's layer barrier merges them.
        let overflow = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let (filter, overflow) = (&filter, &overflow);
                scope.spawn(move || {
                    let mut local = Vec::new();
                    for s in 0..256u64 {
                        let hash = s.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        let k = key(s as u32, t, 0);
                        if let Claimed::Overflow(r) = filter.claim(hash, k, s) {
                            local.push(PendingState {
                                key: k,
                                hash,
                                repr: r,
                            });
                        }
                    }
                    overflow.lock().unwrap().append(&mut local);
                });
            }
        });
        let mut filter = filter;
        let mut best = std::collections::BTreeMap::new();
        for p in filter
            .drain()
            .into_iter()
            .chain(overflow.into_inner().unwrap())
        {
            let k = best.entry(p.repr).or_insert(p.key);
            *k = (*k).min(p.key);
        }
        // After the merge every state survives exactly once, with the
        // overall minimal claim (action index 0 beats 1..4).
        assert_eq!(best.len(), 256);
        assert!(best.values().all(|k| k.action == 0));
    }
}
