//! The work-sharded visited *index* over the global state arena.
//!
//! States live exactly once, in the engine's [`StateTable`] arena. Each
//! shard is an open-addressing table of `(hash, slot)` pairs behind a
//! mutex; a slot names either an admitted arena id ([`Slot::Done`]) or an
//! entry in the shard's fresh list ([`Slot::Pending`]) — never a second
//! clone of the state. Concurrent workers claiming successors contend
//! only when two discoveries land in the same shard at the same instant.
//! Between layers the engine owns the set exclusively: it drains the
//! fresh lists, interns the admitted states, and patches their slots to
//! `Done` (or [`Slot::Tombstone`] for budget drops) without locking.
//!
//! The shards and the arena share one (deterministic) hasher, so a hash
//! computed at claim time is reused for the arena insertion at admission.

use std::collections::hash_map::DefaultHasher;
use std::hash::{BuildHasher, BuildHasherDefault, Hash};
use std::sync::Mutex;

use ioa::{StateId, StateTable};

/// The hasher shared by the visited shards and the state arena.
/// `DefaultHasher` with default keys is deterministic, which keeps shard
/// routing and cached hashes reproducible across runs.
pub(crate) type SharedHasher = BuildHasherDefault<DefaultHasher>;

/// The identity of one discovery of a state: which frontier slot, which
/// of its actions, which nondeterministic successor. Lexicographic order
/// over this triple is the deterministic tie-break that makes parallel
/// results thread-count-independent: concurrent claims of the same state
/// keep the minimal key, and the minimum over a set does not depend on
/// arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct ClaimKey {
    /// Arena id of the parent (frontier) state.
    pub parent: u32,
    /// Index of the action within the parent's deterministic action list.
    pub action: u32,
    /// Index of the successor within the action's successor list.
    pub succ: u32,
}

/// A newly discovered state with the minimal claim that reached it. The
/// action is *not* stored — `key.action` indexes the parent's
/// deterministic action list, which the engine re-enumerates on demand.
pub(crate) struct FreshClaim<S> {
    pub key: ClaimKey,
    pub state: S,
    /// The state's hash under the shared hasher, cached for admission.
    pub hash: u64,
    /// Which shard holds the pending slot.
    pub shard: u32,
    /// Index into that shard's fresh list at claim time; still the
    /// `Pending` payload after draining, so admission can re-find the
    /// slot unambiguously even among equal hashes.
    pub fresh_idx: u32,
}

/// Outcome of one [`ShardedVisited::claim`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ClaimOutcome {
    /// First discovery of this state.
    New,
    /// Already admitted or pending this layer; duplicate (whether or not
    /// it improved the pending claim key).
    Duplicate,
}

#[derive(Clone, Copy)]
enum Slot {
    /// Free; terminates probe chains.
    Empty,
    /// Admitted state; payload is its arena id.
    Done(u32),
    /// Discovered this layer; payload is the fresh-list index where the
    /// current minimal claim lives.
    Pending(u32),
    /// A dropped (state-budget) entry: keeps probe chains intact but
    /// matches nothing, so the state can be rediscovered later.
    Tombstone,
}

struct Shard<S> {
    /// Cached hash per table slot, probed before any `Eq` check.
    hashes: Vec<u64>,
    /// Parallel to `hashes`; length is a power of two.
    slots: Vec<Slot>,
    /// Live entries (`Done` + `Pending`).
    live: usize,
    /// Non-`Empty` entries (`live` + tombstones) — the load-factor input.
    used: usize,
    fresh: Vec<FreshClaim<S>>,
}

impl<S> Default for Shard<S> {
    fn default() -> Self {
        Shard {
            hashes: Vec::new(),
            slots: Vec::new(),
            live: 0,
            used: 0,
            fresh: Vec::new(),
        }
    }
}

impl<S: Hash + Eq> Shard<S> {
    /// Rebuilds the table at double capacity, dropping tombstones.
    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(16);
        let old_hashes = std::mem::take(&mut self.hashes);
        let old_slots = std::mem::replace(&mut self.slots, vec![Slot::Empty; cap]);
        self.hashes = vec![0; cap];
        let mask = cap - 1;
        for (hash, slot) in old_hashes.into_iter().zip(old_slots) {
            if matches!(slot, Slot::Done(_) | Slot::Pending(_)) {
                let mut i = (hash as usize) & mask;
                while !matches!(self.slots[i], Slot::Empty) {
                    i = (i + 1) & mask;
                }
                self.hashes[i] = hash;
                self.slots[i] = slot;
            }
        }
        self.used = self.live;
    }

    fn maybe_grow(&mut self) {
        // Grow at 7/8 load so probe chains stay short.
        if self.slots.is_empty() || (self.used + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
    }

    /// Probes for the `Pending` slot `fresh_idx` names (hash known). Used
    /// at admission, when the fresh list is already drained and state
    /// equality can no longer be checked — the fresh index disambiguates.
    fn find_pending(&self, hash: u64, fresh_idx: u32) -> usize {
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            match self.slots[i] {
                Slot::Pending(fi) if self.hashes[i] == hash && fi == fresh_idx => return i,
                Slot::Empty => panic!("pending slot missing from shard"),
                _ => i = (i + 1) & mask,
            }
        }
    }
}

pub(crate) struct ShardedVisited<S> {
    shards: Vec<Mutex<Shard<S>>>,
    /// Mask for the power-of-two shard count.
    mask: usize,
    hasher: SharedHasher,
}

impl<S: Hash + Eq> ShardedVisited<S> {
    /// A visited index with `shards` shards, rounded up to a power of two.
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedVisited {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            mask: n - 1,
            hasher: SharedHasher::default(),
        }
    }

    /// A hasher identical to the shards' own, for the arena to share so
    /// claim-time hashes stay valid at intern time.
    pub fn arena_hasher(&self) -> SharedHasher {
        SharedHasher::default()
    }

    fn place(&self, hash: u64) -> usize {
        // Use the upper bits: in-shard probing consumes the lower ones,
        // so this keeps shard choice and slot placement independent.
        (hash >> 32) as usize & self.mask
    }

    /// Records an already-interned start state. Requires exclusive access
    /// (called before workers exist); the caller guarantees `id` is fresh.
    pub fn insert_done<H: BuildHasher>(&mut self, id: StateId, arena: &StateTable<S, H>) {
        let hash = self.hasher.hash_one(arena.get(id));
        let at = self.place(hash);
        let shard = self.shards[at].get_mut().expect("shard lock poisoned");
        shard.maybe_grow();
        let mask = shard.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        let mut free = None;
        loop {
            match shard.slots[i] {
                Slot::Empty => break,
                Slot::Tombstone => {
                    free.get_or_insert(i);
                }
                _ => {}
            }
            i = (i + 1) & mask;
        }
        let at = free.unwrap_or(i);
        if matches!(shard.slots[at], Slot::Empty) {
            shard.used += 1;
        }
        shard.hashes[at] = hash;
        shard.slots[at] = Slot::Done(id.0);
        shard.live += 1;
    }

    /// Claims `state` as discovered via `key`. Concurrent claims of the
    /// same state race only for the shard lock; the stored claim is
    /// always the minimal key seen, so the final claim set is independent
    /// of scheduling. `arena` (frozen during the layer) resolves equality
    /// for admitted states.
    pub fn claim<H: BuildHasher>(
        &self,
        state: S,
        key: ClaimKey,
        arena: &StateTable<S, H>,
    ) -> ClaimOutcome {
        let hash = self.hasher.hash_one(&state);
        let shard_idx = self.place(hash);
        let mut shard = self.shards[shard_idx].lock().expect("shard lock poisoned");
        shard.maybe_grow();
        let mask = shard.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        let mut free = None;
        loop {
            match shard.slots[i] {
                Slot::Empty => break,
                Slot::Tombstone => {
                    free.get_or_insert(i);
                }
                Slot::Done(id) if shard.hashes[i] == hash && *arena.get(StateId(id)) == state => {
                    return ClaimOutcome::Duplicate;
                }
                Slot::Pending(fi)
                    if shard.hashes[i] == hash && shard.fresh[fi as usize].state == state =>
                {
                    let pending = &mut shard.fresh[fi as usize];
                    if key < pending.key {
                        pending.key = key;
                    }
                    return ClaimOutcome::Duplicate;
                }
                _ => {}
            }
            i = (i + 1) & mask;
        }
        let at = free.unwrap_or(i);
        if matches!(shard.slots[at], Slot::Empty) {
            shard.used += 1;
        }
        let fresh_idx = u32::try_from(shard.fresh.len()).expect("fresh list overflowed u32");
        shard.hashes[at] = hash;
        shard.slots[at] = Slot::Pending(fresh_idx);
        shard.live += 1;
        shard.fresh.push(FreshClaim {
            key,
            state,
            hash,
            shard: shard_idx as u32,
            fresh_idx,
        });
        ClaimOutcome::New
    }

    /// Drains every pending claim, sorted by claim key — the deterministic
    /// admission order. Slots stay `Pending` until the engine either
    /// [`finalize`](Self::finalize)s or [`discard`](Self::discard)s each
    /// claim. Called between layers, when no worker holds a lock.
    pub fn drain_fresh_sorted(&mut self) -> Vec<FreshClaim<S>> {
        let mut all = Vec::new();
        for shard in &mut self.shards {
            let shard = shard.get_mut().expect("shard lock poisoned");
            all.append(&mut shard.fresh);
        }
        // Claim keys are unique (one fresh entry per distinct state, and
        // distinct states that share a parent differ in action/successor
        // index), so this order is total and deterministic.
        all.sort_unstable_by_key(|c| c.key);
        all
    }

    /// Patches a drained claim's slot to its freshly assigned arena id.
    pub fn finalize(&mut self, shard: u32, hash: u64, fresh_idx: u32, id: StateId) {
        let shard = self.shards[shard as usize]
            .get_mut()
            .expect("shard lock poisoned");
        let i = shard.find_pending(hash, fresh_idx);
        shard.slots[i] = Slot::Done(id.0);
    }

    /// Tombstones a drained claim dropped by the state budget, so the
    /// index's contents stay exactly "admitted states" and the state can
    /// be rediscovered.
    pub fn discard(&mut self, shard: u32, hash: u64, fresh_idx: u32) {
        let shard = self.shards[shard as usize]
            .get_mut()
            .expect("shard lock poisoned");
        let i = shard.find_pending(hash, fresh_idx);
        shard.slots[i] = Slot::Tombstone;
        shard.live -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(parent: u32, action: u32, succ: u32) -> ClaimKey {
        ClaimKey {
            parent,
            action,
            succ,
        }
    }

    #[test]
    fn minimal_claim_wins_regardless_of_order() {
        let keys = [key(2, 0, 0), key(0, 1, 0), key(0, 0, 1)];
        // Insert in two different orders; the surviving claim must match.
        for order in [[0usize, 1, 2], [2, 1, 0]] {
            let arena: StateTable<u32> = StateTable::new();
            let v: ShardedVisited<u32> = ShardedVisited::new(4);
            for i in order {
                v.claim(7, keys[i], &arena);
            }
            let mut v = v;
            let fresh = v.drain_fresh_sorted();
            assert_eq!(fresh.len(), 1);
            assert_eq!(fresh[0].key, key(0, 0, 1));
        }
    }

    #[test]
    fn drain_sorts_across_shards_and_finalized_states_are_duplicates() {
        let mut arena: StateTable<u32> = StateTable::new();
        let mut v: ShardedVisited<u32> = ShardedVisited::new(8);
        for s in (0..100u32).rev() {
            v.claim(s, key(s, 0, 0), &arena);
        }
        let fresh = v.drain_fresh_sorted();
        let parents: Vec<u32> = fresh.iter().map(|c| c.key.parent).collect();
        assert_eq!(parents, (0..100).collect::<Vec<_>>());
        for claim in fresh {
            let (id, new) = arena.intern(claim.state);
            assert!(new);
            v.finalize(claim.shard, claim.hash, claim.fresh_idx, id);
        }
        // Everything is now Done: re-claiming is a duplicate.
        assert_eq!(v.claim(5, key(0, 0, 0), &arena), ClaimOutcome::Duplicate);
    }

    #[test]
    fn discarded_states_can_be_rediscovered() {
        let arena: StateTable<u32> = StateTable::new();
        let mut v: ShardedVisited<u32> = ShardedVisited::new(2);
        v.claim(9, key(0, 0, 0), &arena);
        let fresh = v.drain_fresh_sorted();
        v.discard(fresh[0].shard, fresh[0].hash, fresh[0].fresh_idx);
        assert_eq!(v.claim(9, key(3, 1, 0), &arena), ClaimOutcome::New);
    }

    #[test]
    fn survives_growth_with_mixed_done_and_pending() {
        let mut arena: StateTable<u32> = StateTable::new();
        let mut v: ShardedVisited<u32> = ShardedVisited::new(1);
        // Admit a first wave so Done slots are rehashed during growth.
        for s in 0..50u32 {
            v.claim(s, key(0, s, 0), &arena);
        }
        for claim in v.drain_fresh_sorted() {
            let (id, _) = arena.intern(claim.state);
            v.finalize(claim.shard, claim.hash, claim.fresh_idx, id);
        }
        // A second wave forces growth while Done slots coexist.
        for s in 50..500u32 {
            assert_eq!(v.claim(s, key(1, s, 0), &arena), ClaimOutcome::New);
        }
        for s in 0..500u32 {
            assert_eq!(v.claim(s, key(9, s, 9), &arena), ClaimOutcome::Duplicate);
        }
        assert_eq!(v.drain_fresh_sorted().len(), 450);
    }
}
