//! `dl-crosscheck`: cross-formalism differential verification for the
//! data-link workspace.
//!
//! The workspace's verification story so far rests on one family of
//! engines: `ioa::Explorer` and its parallel generalization
//! [`dl_explore::ParallelExplorer`] share the `Automaton` trait, the
//! action-enumeration discipline, and (in the packed backend) the
//! interning codecs. A bug in any of those shared layers would bias
//! *every* reported state count and counterexample the same way, and no
//! tier-1 test could see it. This crate closes that gap with three
//! deliberately independent artifacts:
//!
//! * **An independent checker** ([`CcChecker`]) in the style of an
//!   actor-model explicit-state checker: its own model trait
//!   ([`CcModel`]), its own FNV-1a hashing and open-addressed visited
//!   index, a sequential BFS with owned actions on spanning-tree edges,
//!   and *zero* imports from `ioa`/`dl-explore` in the engine module.
//!   The only shared code is the [`translate`] bridge, which compiles
//!   an `Automaton` into a `CcModel` through the public allocating API.
//! * **A TLA+ emitter** ([`tla`]) that renders the small-instance zoo —
//!   ABP, go-back-N, and the self-stabilizing protocol over 2-slot
//!   channels — as self-contained, deterministic TLA+ modules with an
//!   invertible action-atom table. Goldens live in
//!   `crates/crosscheck/tla/` and `scripts/check.sh` diffs them against
//!   fresh emission.
//! * **A differential harness** ([`diff`], [`zoo`]) asserting that both
//!   engines agree *exactly* — reachable-state count, quiescent count,
//!   diameter, per-layer statistics, and minimal counterexample traces
//!   action for action — across the zoo, including the Lemma 7.2 crash
//!   pump where agreement covers the DL4 counterexample itself.
//!
//! # Why exact agreement is the right contract
//!
//! Both engines admit newly discovered states in the order of their
//! minimal `(parent, action, successor)` claim: the parallel explorer
//! sorts a layer's claims explicitly, and a sequential in-order scan
//! encounters those keys in increasing order for free. First-discovery
//! order is therefore engine-independent, which lifts the comparison
//! from "same verdict" to field-by-field equality of counts, layers,
//! and traces — a far sharper oracle than safety agreement alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod diff;
pub mod model;
pub mod tla;
pub mod translate;
pub mod zoo;

pub use checker::{CcChecker, CcLayer, CcReport, CcTruncation, CcViolation};
pub use diff::{disagreements, EngineSummary, LayerLine, ViolationLine, ZooOutcome};
pub use model::{CcModel, CcProperty};
pub use tla::{atom_name, golden_specs, parse_atom_name, TlaAtom, TlaSpec};
pub use translate::Translated;
