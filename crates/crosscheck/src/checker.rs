//! The independent layer-synchronous checker.
//!
//! This module is the heart of the cross-check: a second, sequential
//! implementation of breadth-first reachability with property checking,
//! written against [`CcModel`] and **nothing else**. It imports no code
//! from `ioa` or any `dl-*` crate — no `FxHasher`, no `StateTable`, no
//! `LayerFilter`, no interner. Its moving parts are deliberately
//! different from `dl-explore`'s:
//!
//! - hashing is FNV-1a 64 ([`Fnv1a64`]), not the explorer's FxHash;
//! - the visited index is a single open-addressing linear-probe table
//!   over an arena `Vec<S>`, not a sharded lock-free claim filter;
//! - identity is decided by full `Eq` on stored states — the hash only
//!   routes probes;
//! - the search is sequential, scanning parents in admission order,
//!   actions in menu order, successors in `apply` order, with
//!   first-discovery-wins deduplication;
//! - spanning-tree edges store the admitting action *by value*, not as
//!   an index resolved lazily against a re-enumerated menu.
//!
//! Why the differential is still exact: the explorer admits each layer
//! in sorted minimal-claim-key order `(parent, action, successor)`, and
//! a sequential scan in admission/menu/successor order encounters claim
//! keys in exactly that increasing order — so first-discovery order
//! here *is* the explorer's sorted order. Counts, per-layer statistics,
//! diameter, and minimal counterexample traces must therefore agree
//! action-for-action; any divergence indicts one of the two encodings.

use std::fmt::Debug;
use std::hash::{Hash, Hasher};

use crate::model::{CcModel, CcProperty};

/// FNV-1a 64-bit, written out from the published constants.
///
/// Chosen precisely because it shares nothing with the explorer's
/// multiply-xor FxHash: different constants, different mixing, so a
/// state encoding that collides one index into a wrong verdict would
/// have to fool two unrelated hash functions *and* the `Eq`-based
/// probe compare.
#[derive(Clone, Copy)]
pub struct Fnv1a64(u64);

impl Default for Fnv1a64 {
    fn default() -> Self {
        Fnv1a64(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// FNV-1a digest of a hashable value.
fn fnv_hash<S: Hash>(value: &S) -> u64 {
    let mut h = Fnv1a64::default();
    value.hash(&mut h);
    h.finish()
}

/// Sentinel for "no slot" in the open-addressing table and "no parent"
/// in the spanning tree.
const EMPTY: u32 = u32::MAX;

/// Open-addressing linear-probe index over an external arena.
///
/// Slots hold arena ids; the stored hash array short-circuits probe
/// compares, but membership is always confirmed by `Eq` on the arena
/// entry. Capacity is a power of two, grown at 3/4 load by re-probing
/// the cached hashes (states are never rehashed).
struct SlotIndex {
    slots: Vec<u32>,
    mask: u64,
    len: usize,
}

impl SlotIndex {
    fn new() -> SlotIndex {
        SlotIndex {
            slots: vec![EMPTY; 64],
            mask: 63,
            len: 0,
        }
    }

    /// Arena id of `state` if present.
    fn lookup<S: Eq>(&self, hash: u64, state: &S, arena: &[S], hashes: &[u64]) -> Option<u32> {
        let mut slot = (hash & self.mask) as usize;
        loop {
            let id = self.slots[slot];
            if id == EMPTY {
                return None;
            }
            if hashes[id as usize] == hash && arena[id as usize] == *state {
                return Some(id);
            }
            slot = (slot + 1) & self.mask as usize;
        }
    }

    /// Records arena id `id` (whose hash is `hash`); the caller has
    /// already established the state is absent.
    fn insert(&mut self, hash: u64, id: u32, hashes: &[u64]) {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow(hashes);
        }
        let mut slot = (hash & self.mask) as usize;
        while self.slots[slot] != EMPTY {
            slot = (slot + 1) & self.mask as usize;
        }
        self.slots[slot] = id;
        self.len += 1;
    }

    fn grow(&mut self, hashes: &[u64]) {
        let cap = self.slots.len() * 2;
        let mask = (cap - 1) as u64;
        let mut slots = vec![EMPTY; cap];
        for &id in self.slots.iter().filter(|&&id| id != EMPTY) {
            let mut slot = (hashes[id as usize] & mask) as usize;
            while slots[slot] != EMPTY {
                slot = (slot + 1) & mask as usize;
            }
            slots[slot] = id;
        }
        self.slots = slots;
        self.mask = mask;
    }

    /// Resident bytes of the slot table.
    fn bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u32>()
    }
}

/// Why the search stopped before exhausting the reachable states.
/// Mirrors `dl-explore::Truncation` by meaning, not by code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcTruncation {
    /// The state budget filled: later discoveries were dropped.
    StateBudget,
    /// The depth budget was reached with a non-empty frontier.
    DepthBudget,
}

/// A property violation with a shortest action path reaching it.
#[derive(Debug, Clone)]
pub struct CcViolation<A, S> {
    /// A shortest action sequence from an initial state to `state`,
    /// assembled from the owned actions on the spanning-tree edges.
    pub path: Vec<A>,
    /// The violating state.
    pub state: S,
    /// Name of the violated [`CcProperty`].
    pub property: String,
}

/// Statistics for one expanded BFS layer. Field-for-field comparable
/// with `dl-explore::LayerStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcLayer {
    /// Depth of the expanded frontier (initial states are depth 0).
    pub depth: usize,
    /// Number of states in the expanded frontier.
    pub frontier: usize,
    /// Distinct new states admitted from this expansion.
    pub discovered: usize,
    /// Transitions enumerated while expanding this layer.
    pub edges: u64,
    /// Transitions that landed on an already-known state.
    pub duplicates: u64,
}

/// Result of an independent check. The differential harness compares
/// every deterministic field here against the explorer's report.
#[derive(Debug, Clone)]
pub struct CcReport<A, S> {
    /// Number of distinct states admitted to the search.
    pub states_visited: usize,
    /// Why the search was cut short, if it was.
    pub truncation: Option<CcTruncation>,
    /// The first violation in first-discovery order, if any.
    pub violation: Option<CcViolation<A, S>>,
    /// States whose action menu was empty when expanded.
    pub quiescent_states: usize,
    /// Statistics for each layer that was expanded.
    pub layers: Vec<CcLayer>,
    /// Resident bytes of the checker's arena-side bookkeeping (slot
    /// table, hashes, spanning-tree links). States themselves are held
    /// as full structs, so this is not comparable with the explorer's
    /// interned `arena_bytes` — it is reported for the ledger only.
    pub index_bytes: usize,
}

impl<A, S> CcReport<A, S> {
    /// `true` if the search enumerated every reachable state.
    #[must_use]
    pub fn exhaustive(&self) -> bool {
        self.truncation.is_none()
    }

    /// `true` if no property violation was found among admitted states.
    #[must_use]
    pub fn safe_within_budget(&self) -> bool {
        self.violation.is_none()
    }

    /// `true` if every admitted state satisfied every property and the
    /// search was exhaustive.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.safe_within_budget() && self.exhaustive()
    }

    /// Total transitions enumerated across all layers.
    #[must_use]
    pub fn edges_expanded(&self) -> u64 {
        self.layers.iter().map(|l| l.edges).sum()
    }

    /// Total transitions that landed on an already-known state.
    #[must_use]
    pub fn dedup_hits(&self) -> u64 {
        self.layers.iter().map(|l| l.duplicates).sum()
    }

    /// Depth of the deepest expanded frontier — the BFS diameter of the
    /// reachable graph when the search was exhaustive.
    #[must_use]
    pub fn diameter(&self) -> usize {
        self.layers.last().map_or(0, |l| l.depth)
    }

    /// Per-layer discovery counts, for histogram-level comparison.
    #[must_use]
    pub fn layer_discovered(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.discovered).collect()
    }
}

/// A state pending admission at the end of the current layer, with the
/// spanning-tree edge that first discovered it.
struct Pending<A, S> {
    state: S,
    hash: u64,
    parent: u32,
    action: A,
}

/// The independent checker: sequential layer-synchronous BFS over a
/// [`CcModel`], with budgets matching the explorer's constructor shape.
pub struct CcChecker<M> {
    model: M,
    max_states: usize,
    max_depth: usize,
}

impl<M: CcModel> CcChecker<M> {
    /// Creates a checker with the given state and depth budgets.
    pub fn new(model: M, max_states: usize, max_depth: usize) -> CcChecker<M> {
        CcChecker {
            model,
            max_states,
            max_depth,
        }
    }

    /// Counts reachable states from the model's initial states.
    pub fn reachable(&self) -> CcReport<M::Action, M::State> {
        self.check_from(self.model.init_states(), &[])
    }

    /// Checks every property on every admitted state, searching from
    /// the model's initial states.
    pub fn check(&self, props: &[CcProperty<'_, M::State>]) -> CcReport<M::Action, M::State> {
        self.check_from(self.model.init_states(), props)
    }

    /// Checks every property on every admitted state, searching from
    /// `starts` (deduplicated, in order). Initial states are checked
    /// first; thereafter each layer's discoveries are checked in
    /// first-discovery order, so the reported violation is the one the
    /// explorer's sorted-minimal-claim admission also reports.
    pub fn check_from(
        &self,
        starts: Vec<M::State>,
        props: &[CcProperty<'_, M::State>],
    ) -> CcReport<M::Action, M::State> {
        let mut arena: Vec<M::State> = Vec::new();
        let mut hashes: Vec<u64> = Vec::new();
        let mut index = SlotIndex::new();
        // Spanning tree: the edge that first discovered each state.
        // Roots carry `EMPTY` and no action.
        let mut parents: Vec<u32> = Vec::new();
        let mut actions: Vec<Option<M::Action>> = Vec::new();

        for state in starts {
            let hash = fnv_hash(&state);
            if index.lookup(hash, &state, &arena, &hashes).is_none() {
                let id = arena.len() as u32;
                arena.push(state);
                hashes.push(hash);
                index.insert(hash, id, &hashes);
                parents.push(EMPTY);
                actions.push(None);
            }
        }

        let index_bytes = |index: &SlotIndex, n: usize| {
            index.bytes() + n * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
        };

        // Initial states are checked before any expansion, in admission
        // order, and a root violation reports an empty path.
        for (id, state) in arena.iter().enumerate() {
            if let Some(name) = CcProperty::first_violated(props, state) {
                return CcReport {
                    states_visited: arena.len(),
                    truncation: None,
                    violation: Some(CcViolation {
                        path: vec![],
                        state: arena[id].clone(),
                        property: name.to_string(),
                    }),
                    quiescent_states: 0,
                    layers: vec![],
                    index_bytes: index_bytes(&index, arena.len()),
                };
            }
        }

        let mut layers: Vec<CcLayer> = Vec::new();
        let mut quiescent = 0usize;
        let mut truncation: Option<CcTruncation> = None;
        let mut violation: Option<CcViolation<M::Action, M::State>> = None;
        let mut layer_start = 0usize;
        let mut depth = 0usize;
        let mut menu: Vec<M::Action> = Vec::new();
        let mut succs: Vec<M::State> = Vec::new();

        loop {
            let layer_end = arena.len();
            if layer_start == layer_end {
                break;
            }
            if depth >= self.max_depth {
                truncation = Some(CcTruncation::DepthBudget);
                break;
            }

            let frontier = layer_end - layer_start;
            let mut edges = 0u64;
            let mut duplicates = 0u64;
            // This layer's discoveries, in first-discovery order, with a
            // hash-bucketed side index for intra-layer deduplication.
            let mut pending: Vec<Pending<M::Action, M::State>> = Vec::new();
            let mut pending_index: std::collections::HashMap<u64, Vec<usize>> =
                std::collections::HashMap::new();

            for parent_id in layer_start..layer_end {
                menu.clear();
                self.model.actions(&arena[parent_id], &mut menu);
                if menu.is_empty() {
                    quiescent += 1;
                    continue;
                }
                for action in &menu {
                    succs.clear();
                    self.model.apply(&arena[parent_id], action, &mut succs);
                    for succ in succs.drain(..) {
                        edges += 1;
                        let hash = fnv_hash(&succ);
                        if index.lookup(hash, &succ, &arena, &hashes).is_some() {
                            duplicates += 1;
                            continue;
                        }
                        let bucket = pending_index.entry(hash).or_default();
                        if bucket.iter().any(|&i| pending[i].state == succ) {
                            duplicates += 1;
                            continue;
                        }
                        bucket.push(pending.len());
                        pending.push(Pending {
                            state: succ,
                            hash,
                            parent: parent_id as u32,
                            action: action.clone(),
                        });
                    }
                }
            }

            // Admission barrier: first-discovery order here equals the
            // explorer's sorted minimal-claim-key order (see module
            // docs), so truncating the same prefix drops the same
            // states.
            let room = self.max_states.saturating_sub(arena.len());
            if pending.len() > room {
                truncation = Some(CcTruncation::StateBudget);
                pending.truncate(room);
            }
            layers.push(CcLayer {
                depth,
                frontier,
                discovered: pending.len(),
                edges,
                duplicates,
            });

            let admitted_start = arena.len();
            for p in pending {
                let id = arena.len() as u32;
                arena.push(p.state);
                hashes.push(p.hash);
                index.insert(p.hash, id, &hashes);
                parents.push(p.parent);
                actions.push(Some(p.action));
            }

            for (id, state) in arena.iter().enumerate().skip(admitted_start) {
                if let Some(name) = CcProperty::first_violated(props, state) {
                    violation = Some(CcViolation {
                        path: reconstruct(&parents, &actions, id),
                        state: state.clone(),
                        property: name.to_string(),
                    });
                    break;
                }
            }
            if violation.is_some() {
                break;
            }

            layer_start = admitted_start;
            depth += 1;
        }

        CcReport {
            states_visited: arena.len(),
            truncation,
            violation,
            quiescent_states: quiescent,
            layers,
            index_bytes: index_bytes(&index, arena.len()),
        }
    }
}

/// Follows the spanning tree from `id` back to a root, collecting the
/// owned edge actions. No menus are re-enumerated: the checker pays for
/// action storage up front so reconstruction cannot disagree with what
/// was expanded.
fn reconstruct<A: Clone>(parents: &[u32], actions: &[Option<A>], mut id: usize) -> Vec<A> {
    let mut path = Vec::new();
    while parents[id] != EMPTY {
        path.push(
            actions[id]
                .clone()
                .expect("non-root states carry their admitting action"),
        );
        id = parents[id] as usize;
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counter modulo `n` with a local `Tick` (from even states, +2)
    /// and an environment `Bump` (+1) — the same shape as the explorer
    /// unit-test model, rebuilt against `CcModel`.
    struct Counter {
        n: u8,
        bump: bool,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Act {
        Tick,
        Bump,
    }

    impl CcModel for Counter {
        type State = u8;
        type Action = Act;

        fn init_states(&self) -> Vec<u8> {
            vec![0]
        }

        fn actions(&self, s: &u8, out: &mut Vec<Act>) {
            if s.is_multiple_of(2) {
                out.push(Act::Tick);
            }
            if self.bump {
                out.push(Act::Bump);
            }
        }

        fn apply(&self, s: &u8, a: &Act, out: &mut Vec<u8>) {
            match a {
                Act::Tick => {
                    if s.is_multiple_of(2) {
                        out.push((s + 2) % self.n);
                    }
                }
                Act::Bump => out.push((s + 1) % self.n),
            }
        }
    }

    fn counter(n: u8) -> CcChecker<Counter> {
        CcChecker::new(Counter { n, bump: true }, 1000, 100)
    }

    #[test]
    fn exhausts_the_counter_cycle() {
        let report = counter(10).reachable();
        assert!(report.holds());
        assert_eq!(report.states_visited, 10);
        assert_eq!(report.quiescent_states, 0);
        assert!(report.dedup_hits() > 0);
        let discovered: usize = report.layers.iter().map(|l| l.discovered).sum();
        assert_eq!(1 + discovered, report.states_visited);
    }

    #[test]
    fn finds_shortest_violation_with_canonical_path() {
        let holds = |s: &u8| *s != 3;
        let props = [CcProperty {
            name: "not-three",
            holds: &holds,
        }];
        let report = counter(10).check(&props);
        let v = report.violation.expect("3 is reachable");
        assert_eq!(v.state, 3);
        assert_eq!(v.property, "not-three");
        // Tick (0→2) then Bump (2→3): local action first on the menu, so
        // the minimal first-discovery path prefers it — the explorer's
        // claim-key order does the same.
        assert_eq!(v.path, vec![Act::Tick, Act::Bump]);
    }

    #[test]
    fn violated_initial_state_reports_empty_path() {
        let holds = |s: &u8| *s != 0;
        let props = [CcProperty {
            name: "nonzero",
            holds: &holds,
        }];
        let report = counter(10).check(&props);
        let v = report.violation.unwrap();
        assert!(v.path.is_empty());
        assert_eq!(v.state, 0);
        assert!(report.layers.is_empty());
    }

    #[test]
    fn state_budget_truncates() {
        let report = CcChecker::new(Counter { n: 100, bump: true }, 5, 100).reachable();
        assert_eq!(report.truncation, Some(CcTruncation::StateBudget));
        assert!(!report.exhaustive());
        assert!(report.safe_within_budget());
        assert!(!report.holds());
        assert!(report.states_visited <= 5);
    }

    #[test]
    fn depth_budget_truncates() {
        let report = CcChecker::new(Counter { n: 100, bump: true }, 1000, 3).reachable();
        assert_eq!(report.truncation, Some(CcTruncation::DepthBudget));
        assert!(report.diameter() < 3);
        assert!(report.states_visited <= 8);
    }

    #[test]
    fn quiescent_states_are_counted() {
        // Without the environment bump, odd states have an empty menu;
        // from 0 only even states are reachable and 8 ticks to 0 — so
        // no quiescent state exists, while seeding an odd start does.
        let report =
            CcChecker::new(Counter { n: 10, bump: false }, 1000, 100).check_from(vec![0, 1], &[]);
        assert_eq!(report.states_visited, 6);
        assert_eq!(report.quiescent_states, 1);
    }

    /// Two one-step actions reach the same state; the first action on
    /// the menu must win the parent race, matching the explorer's
    /// minimal-claim rule.
    struct Diamond;

    impl CcModel for Diamond {
        type State = u8;
        type Action = u8;

        fn init_states(&self) -> Vec<u8> {
            vec![0]
        }

        fn actions(&self, s: &u8, out: &mut Vec<u8>) {
            match s {
                0 => out.extend([1, 2]),
                1 => out.push(3),
                2 => out.push(4),
                _ => {}
            }
        }

        fn apply(&self, s: &u8, a: &u8, out: &mut Vec<u8>) {
            match (s, a) {
                (0, 1) => out.push(1),
                (0, 2) => out.push(2),
                (1, 3) | (2, 4) => out.push(3),
                _ => {}
            }
        }
    }

    #[test]
    fn diamond_merge_picks_canonical_parent() {
        let holds = |s: &u8| *s != 3;
        let props = [CcProperty {
            name: "not-three",
            holds: &holds,
        }];
        let report = CcChecker::new(Diamond, 100, 100).check(&props);
        let v = report.violation.unwrap();
        assert_eq!(v.path, vec![1, 3]);
    }

    #[test]
    fn duplicate_starts_are_deduplicated() {
        let report = CcChecker::new(Diamond, 100, 100).check_from(vec![0, 0, 1], &[]);
        // 0 admitted once, 1 admitted as a root; {0,1,2,3} reachable.
        assert_eq!(report.states_visited, 4);
    }

    #[test]
    fn fnv_vectors_match_the_published_constants() {
        // Spot-check the hasher against independently computed FNV-1a
        // values so "independent hash function" is a tested fact, not
        // an intention: fnv1a64("") is the offset basis, and "a" /
        // "foobar" are the classic published vectors.
        let mut h = Fnv1a64::default();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a64::default();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a64::default();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn index_survives_growth_and_collisions() {
        // Push the index well past several doublings; every admitted
        // state must remain findable (no lost or duplicated ids).
        let report = CcChecker::new(Counter { n: 251, bump: true }, 10_000, 1000).reachable();
        assert!(report.holds());
        assert_eq!(report.states_visited, 251);
    }
}
