//! TLA+ model emission for the small-instance zoo.
//!
//! Each emitter renders a **self-contained** TLA+ module mirroring the
//! composed Rust system the differential explores: protocol stations,
//! bounded channels with loss resolved at send time, and the WDL
//! observer folded into the state as `obsSent` / `obsReceived` /
//! `obsFlag`. The modules describe the *crash-free, woken* instances
//! (media up, no `fail`/`crash` in `Next`), matching the zoo's
//! crash-free environments; `active` flags are therefore constant and
//! elided.
//!
//! Emission is a pure function of the instance parameters — no clocks,
//! no environment lookups — so two emissions are byte-identical and the
//! committed goldens under `crates/crosscheck/tla/` can be diffed
//! against fresh output in `scripts/check.sh`. The modules are
//! artifacts for the TLA+ toolchain (TLC is not run in this offline
//! repo); their fidelity is attested by the committed goldens plus the
//! Rust-vs-Rust differential over the same instances.
//!
//! Every module carries an *action-atom table* in its header: one line
//! per concrete action of the finite instance, naming the TLA+ atom,
//! its I/O-automaton classification, and its rendering in the paper's
//! notation. [`parse_atom_name`] inverts [`atom_name`], and the emitter
//! tests check that every emitted atom round-trips through the composed
//! system's memoized `Signature::classify` table.

use std::fmt::Write as _;

use dl_channels::{LossMode, LossyFifoChannel, ReorderChannel};
use dl_core::action::{Dir, DlAction, Msg, Packet, Station, Tag};
use ioa::{ActionClass, Automaton};

use crate::zoo::checked_system;

/// One concrete action of a finite instance: the TLA+ atom name, the
/// IOA action it denotes, and that action's class in the composed
/// system's signature.
#[derive(Debug, Clone)]
pub struct TlaAtom {
    /// TLA+-compatible identifier, invertible via [`parse_atom_name`].
    pub name: String,
    /// The denoted action.
    pub action: DlAction,
    /// The composed system's classification of [`TlaAtom::action`].
    pub class: ActionClass,
}

/// An emitted TLA+ module: rendered text plus the structured action
/// table the tests interrogate.
#[derive(Debug, Clone)]
pub struct TlaSpec {
    /// Module name (also the golden file stem: `<module>.tla`).
    pub module: String,
    /// One-line instance description (appears in the module header).
    pub description: String,
    /// The concrete action atoms of the finite instance.
    pub atoms: Vec<TlaAtom>,
    /// The full module text, deterministic for fixed parameters.
    pub text: String,
}

impl TlaSpec {
    /// The golden file name for this module.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("{}.tla", self.module)
    }
}

fn dir_str(d: Dir) -> &'static str {
    match d {
        Dir::TR => "tr",
        Dir::RT => "rt",
    }
}

/// TLA+ atom name for an action, or `None` for actions the emitter does
/// not name (internal steps, init-phase packets).
#[must_use]
pub fn atom_name(a: &DlAction) -> Option<String> {
    let pkt = |p: &Packet| match (p.header.tag, p.payload) {
        (Tag::Data, Some(Msg(m))) => Some(format!("data{}_m{m}", p.header.seq)),
        (Tag::Ack, None) => Some(format!("ack{}", p.header.seq)),
        _ => None,
    };
    match a {
        DlAction::SendMsg(Msg(m)) => Some(format!("SendMsg_m{m}")),
        DlAction::ReceiveMsg(Msg(m)) => Some(format!("ReceiveMsg_m{m}")),
        DlAction::SendPkt(d, p) => Some(format!("SendPkt_{}_{}", dir_str(*d), pkt(p)?)),
        DlAction::ReceivePkt(d, p) => Some(format!("ReceivePkt_{}_{}", dir_str(*d), pkt(p)?)),
        DlAction::Wake(d) => Some(format!("Wake_{}", dir_str(*d))),
        DlAction::Fail(d) => Some(format!("Fail_{}", dir_str(*d))),
        DlAction::Crash(Station::T) => Some("Crash_t".to_string()),
        DlAction::Crash(Station::R) => Some("Crash_r".to_string()),
        DlAction::Internal(..) => None,
    }
}

/// Inverse of [`atom_name`]: the action a TLA+ atom name denotes.
#[must_use]
pub fn parse_atom_name(name: &str) -> Option<DlAction> {
    fn dir_of(s: &str) -> Option<Dir> {
        match s {
            "tr" => Some(Dir::TR),
            "rt" => Some(Dir::RT),
            _ => None,
        }
    }
    fn num(s: &str, prefix: &str) -> Option<u64> {
        s.strip_prefix(prefix)?.parse().ok()
    }
    fn pkt(parts: &[&str]) -> Option<Packet> {
        match parts {
            [data, m] => Some(Packet::data(num(data, "data")?, Msg(num(m, "m")?))),
            [ack] => Some(Packet::ack(num(ack, "ack")?)),
            _ => None,
        }
    }
    let parts: Vec<&str> = name.split('_').collect();
    match parts.as_slice() {
        ["SendMsg", m] => Some(DlAction::SendMsg(Msg(num(m, "m")?))),
        ["ReceiveMsg", m] => Some(DlAction::ReceiveMsg(Msg(num(m, "m")?))),
        ["SendPkt", d, rest @ ..] => Some(DlAction::SendPkt(dir_of(d)?, pkt(rest)?)),
        ["ReceivePkt", d, rest @ ..] => Some(DlAction::ReceivePkt(dir_of(d)?, pkt(rest)?)),
        ["Wake", d] => Some(DlAction::Wake(dir_of(d)?)),
        ["Fail", d] => Some(DlAction::Fail(dir_of(d)?)),
        ["Crash", "t"] => Some(DlAction::Crash(Station::T)),
        ["Crash", "r"] => Some(DlAction::Crash(Station::R)),
        _ => None,
    }
}

/// Builds the crash-free atom set of one instance — message actions,
/// data packets over the given sequence range, acks over theirs — and
/// classifies each through `classify`.
fn crash_free_atoms(
    msgs: u64,
    data_seqs: u64,
    ack_seqs: u64,
    classify: &dyn Fn(&DlAction) -> Option<ActionClass>,
) -> Vec<TlaAtom> {
    let mut actions = Vec::new();
    for m in 0..msgs {
        actions.push(DlAction::SendMsg(Msg(m)));
    }
    for m in 0..msgs {
        actions.push(DlAction::ReceiveMsg(Msg(m)));
    }
    for kind in [DlAction::SendPkt, DlAction::ReceivePkt] {
        for seq in 0..data_seqs {
            for m in 0..msgs {
                actions.push(kind(Dir::TR, Packet::data(seq, Msg(m))));
            }
        }
    }
    for kind in [DlAction::SendPkt, DlAction::ReceivePkt] {
        for seq in 0..ack_seqs {
            actions.push(kind(Dir::RT, Packet::ack(seq)));
        }
    }
    actions
        .into_iter()
        .map(|action| TlaAtom {
            name: atom_name(&action).expect("crash-free atoms are all nameable"),
            class: classify(&action).expect("every emitted atom is in the composed signature"),
            action,
        })
        .collect()
}

/// Renders the shared module header: banner, instance line, atom table.
fn header(module: &str, description: &str, atoms: &[TlaAtom]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "---- MODULE {module} ----");
    out.push_str(
        "\\* Emitted by dl-crosscheck. DO NOT EDIT: regenerate with\n\
         \\*   cargo run -p dl-crosscheck --bin emit_tla -- --out crates/crosscheck/tla\n",
    );
    let _ = writeln!(out, "\\* Instance: {description}");
    out.push_str(
        "\\*\n\
         \\* Action atoms of this finite instance (name : class : IOA rendering):\n",
    );
    for atom in atoms {
        let _ = writeln!(
            out,
            "\\*   {} : {} : {}",
            atom.name, atom.class, atom.action
        );
    }
    out.push_str("\nEXTENDS Naturals, Sequences\n\n");
    out
}

const OBS_COMMENT: &str = "\
(* Delivery to the environment, scored by the WDL observer: each message
   is offered at most once, so a repeated member of obsReceived is a
   duplicate (DL4) and a receive that was never sent is a phantom (DL5). *)\n";

/// ABP over lossy FIFO channels: window 1, bits modulo 2.
#[must_use]
pub fn abp_spec(capacity: usize, msgs: u64) -> TlaSpec {
    let module = format!("AbpC{capacity}M{msgs}");
    let description = format!(
        "ABP over {capacity}-slot lossy FIFO channels, {msgs} messages, crash-free and woken"
    );
    let p = dl_protocols::abp::protocol();
    let sys = checked_system(
        p.transmitter,
        p.receiver,
        LossyFifoChannel::with_capacity(Dir::TR, LossMode::Nondet, capacity),
        LossyFifoChannel::with_capacity(Dir::RT, LossMode::Nondet, capacity),
    );
    let atoms = crash_free_atoms(msgs, 2, 2, &|a| sys.classify(a));

    let mut text = header(&module, &description, &atoms);
    let _ = write!(
        text,
        "Messages == 0 .. {last_msg}\n\
         Capacity == {capacity}\n\
         MaxPendingAcks == 2\n\
         \n\
         Data(b, m) == [tag |-> \"DATA\", seq |-> b, msg |-> m]\n\
         Ack(b) == [tag |-> \"ACK\", seq |-> b]\n\
         \n\
         VARIABLES\n\
         \x20 txBit, txQueue,                 \\* AbpTxState (active elided: TRUE)\n\
         \x20 rxExpected, rxDeliver, rxAcks,  \\* AbpRxState (active elided: TRUE)\n\
         \x20 chTR, chRT,                     \\* FIFO FlightState per direction\n\
         \x20 obsSent, obsReceived, obsFlag   \\* WDL observer\n\
         \n\
         vars == <<txBit, txQueue, rxExpected, rxDeliver, rxAcks, chTR, chRT,\n\
         \x20         obsSent, obsReceived, obsFlag>>\n\
         \n\
         Init ==\n\
         \x20 /\\ txBit = 0 /\\ txQueue = <<>>\n\
         \x20 /\\ rxExpected = 0 /\\ rxDeliver = <<>> /\\ rxAcks = <<>>\n\
         \x20 /\\ chTR = <<>> /\\ chRT = <<>>\n\
         \x20 /\\ obsSent = {{}} /\\ obsReceived = {{}} /\\ obsFlag = \"ok\"\n\
         \n\
         (* Environment: the harness offers the least not-yet-sent message. *)\n\
         SendMsg(m) ==\n\
         \x20 /\\ m \\notin obsSent\n\
         \x20 /\\ \\A k \\in Messages : (k < m) => (k \\in obsSent)\n\
         \x20 /\\ txQueue' = Append(txQueue, m)\n\
         \x20 /\\ obsSent' = obsSent \\cup {{m}}\n\
         \x20 /\\ UNCHANGED <<txBit, rxExpected, rxDeliver, rxAcks, chTR, chRT,\n\
         \x20               obsReceived, obsFlag>>\n\
         \n\
         (* Retransmission of the front packet; loss resolves at send time:\n\
         \x20  the kept and dropped branches are the two disjuncts, and a full\n\
         \x20  channel always drops. *)\n\
         SendPktTR ==\n\
         \x20 /\\ txQueue # <<>>\n\
         \x20 /\\ \\/ /\\ Len(chTR) < Capacity\n\
         \x20       /\\ chTR' = Append(chTR, Data(txBit, Head(txQueue)))\n\
         \x20    \\/ chTR' = chTR\n\
         \x20 /\\ UNCHANGED <<txBit, txQueue, rxExpected, rxDeliver, rxAcks, chRT,\n\
         \x20               obsSent, obsReceived, obsFlag>>\n\
         \n\
         (* FIFO delivery to the receiver: deliver fresh data, acknowledge\n\
         \x20  fresh and duplicate data alike into a bounded ack buffer. *)\n\
         RecvPktTR ==\n\
         \x20 /\\ chTR # <<>>\n\
         \x20 /\\ LET p == Head(chTR) IN\n\
         \x20      /\\ chTR' = Tail(chTR)\n\
         \x20      /\\ IF p.seq = rxExpected\n\
         \x20         THEN /\\ rxDeliver' = Append(rxDeliver, p.msg)\n\
         \x20              /\\ rxExpected' = 1 - rxExpected\n\
         \x20         ELSE UNCHANGED <<rxDeliver, rxExpected>>\n\
         \x20      /\\ IF Len(rxAcks) < MaxPendingAcks\n\
         \x20         THEN rxAcks' = Append(rxAcks, p.seq)\n\
         \x20         ELSE UNCHANGED rxAcks\n\
         \x20 /\\ UNCHANGED <<txBit, txQueue, chRT, obsSent, obsReceived, obsFlag>>\n\
         \n\
         SendPktRT ==\n\
         \x20 /\\ rxAcks # <<>>\n\
         \x20 /\\ rxAcks' = Tail(rxAcks)\n\
         \x20 /\\ \\/ /\\ Len(chRT) < Capacity\n\
         \x20       /\\ chRT' = Append(chRT, Ack(Head(rxAcks)))\n\
         \x20    \\/ chRT' = chRT\n\
         \x20 /\\ UNCHANGED <<txBit, txQueue, rxExpected, rxDeliver, chTR,\n\
         \x20               obsSent, obsReceived, obsFlag>>\n\
         \n\
         (* The matching ack bit retires the front message and flips the bit. *)\n\
         RecvPktRT ==\n\
         \x20 /\\ chRT # <<>>\n\
         \x20 /\\ chRT' = Tail(chRT)\n\
         \x20 /\\ IF (Head(chRT).seq = txBit) /\\ (txQueue # <<>>)\n\
         \x20    THEN /\\ txQueue' = Tail(txQueue)\n\
         \x20         /\\ txBit' = 1 - txBit\n\
         \x20    ELSE UNCHANGED <<txQueue, txBit>>\n\
         \x20 /\\ UNCHANGED <<rxExpected, rxDeliver, rxAcks, chTR,\n\
         \x20               obsSent, obsReceived, obsFlag>>\n\
         \n\
         {obs}\
         ReceiveMsg(m) ==\n\
         \x20 /\\ rxDeliver # <<>> /\\ Head(rxDeliver) = m\n\
         \x20 /\\ rxDeliver' = Tail(rxDeliver)\n\
         \x20 /\\ obsFlag' = IF m \\in obsReceived THEN \"duplicate\"\n\
         \x20               ELSE IF m \\notin obsSent THEN \"phantom\"\n\
         \x20               ELSE obsFlag\n\
         \x20 /\\ obsReceived' = obsReceived \\cup {{m}}\n\
         \x20 /\\ UNCHANGED <<txBit, txQueue, rxExpected, rxAcks, chTR, chRT, obsSent>>\n\
         \n\
         Next ==\n\
         \x20 \\/ \\E m \\in Messages : SendMsg(m) \\/ ReceiveMsg(m)\n\
         \x20 \\/ SendPktTR \\/ RecvPktTR \\/ SendPktRT \\/ RecvPktRT\n\
         \n\
         Spec == Init /\\ [][Next]_vars\n\
         \n\
         NoDuplicate == obsFlag # \"duplicate\"\n\
         NoPhantom == obsFlag # \"phantom\"\n\
         Safety == obsFlag = \"ok\"\n\
         \n\
         THEOREM Spec => []Safety\n\
         ====\n",
        last_msg = msgs - 1,
        capacity = capacity,
        obs = OBS_COMMENT,
    );

    TlaSpec {
        module,
        description,
        atoms,
        text,
    }
}

/// Go-back-N over lossy FIFO channels: window `W`, modulus `W + 1`.
#[must_use]
pub fn go_back_n_spec(window: u64, capacity: usize, msgs: u64) -> TlaSpec {
    let module = format!("GoBackW{window}C{capacity}M{msgs}");
    let description = format!(
        "go-back-{window} (modulus {}) over {capacity}-slot lossy FIFO channels, \
         {msgs} messages, crash-free and woken",
        window + 1
    );
    let p = dl_protocols::sliding_window::protocol(window);
    let sys = checked_system(
        p.transmitter,
        p.receiver,
        LossyFifoChannel::with_capacity(Dir::TR, LossMode::Nondet, capacity),
        LossyFifoChannel::with_capacity(Dir::RT, LossMode::Nondet, capacity),
    );
    let modulus = window + 1;
    let atoms = crash_free_atoms(msgs, modulus, modulus, &|a| sys.classify(a));

    let mut text = header(&module, &description, &atoms);
    let _ = write!(
        text,
        "Messages == 0 .. {last_msg}\n\
         Capacity == {capacity}\n\
         Window == {window}\n\
         Modulus == {modulus}\n\
         MaxPendingAcks == 2\n\
         \n\
         Min(a, b) == IF a < b THEN a ELSE b\n\
         Data(s, m) == [tag |-> \"DATA\", seq |-> s, msg |-> m]\n\
         Ack(s) == [tag |-> \"ACK\", seq |-> s]\n\
         \n\
         VARIABLES\n\
         \x20 txBase, txQueue,               \\* SwTxState (active elided: TRUE)\n\
         \x20 rxExpected, rxDeliver, rxAcks, \\* SwRxState; rxExpected is absolute\n\
         \x20 chTR, chRT,\n\
         \x20 obsSent, obsReceived, obsFlag\n\
         \n\
         vars == <<txBase, txQueue, rxExpected, rxDeliver, rxAcks, chTR, chRT,\n\
         \x20         obsSent, obsReceived, obsFlag>>\n\
         \n\
         Init ==\n\
         \x20 /\\ txBase = 0 /\\ txQueue = <<>>\n\
         \x20 /\\ rxExpected = 0 /\\ rxDeliver = <<>> /\\ rxAcks = <<>>\n\
         \x20 /\\ chTR = <<>> /\\ chRT = <<>>\n\
         \x20 /\\ obsSent = {{}} /\\ obsReceived = {{}} /\\ obsFlag = \"ok\"\n\
         \n\
         (* Environment: the harness offers the least not-yet-sent message. *)\n\
         SendMsg(m) ==\n\
         \x20 /\\ m \\notin obsSent\n\
         \x20 /\\ \\A k \\in Messages : (k < m) => (k \\in obsSent)\n\
         \x20 /\\ txQueue' = Append(txQueue, m)\n\
         \x20 /\\ obsSent' = obsSent \\cup {{m}}\n\
         \x20 /\\ UNCHANGED <<txBase, rxExpected, rxDeliver, rxAcks, chTR, chRT,\n\
         \x20               obsReceived, obsFlag>>\n\
         \n\
         (* Any in-window packet may be (re)transmitted; loss resolves at\n\
         \x20  send time, and a full channel always drops. *)\n\
         SendPktTR ==\n\
         \x20 /\\ \\E i \\in 1 .. Min(Window, Len(txQueue)) :\n\
         \x20      LET p == Data((txBase + i - 1) % Modulus, txQueue[i]) IN\n\
         \x20        \\/ /\\ Len(chTR) < Capacity\n\
         \x20           /\\ chTR' = Append(chTR, p)\n\
         \x20        \\/ chTR' = chTR\n\
         \x20 /\\ UNCHANGED <<txBase, txQueue, rxExpected, rxDeliver, rxAcks, chRT,\n\
         \x20               obsSent, obsReceived, obsFlag>>\n\
         \n\
         (* FIFO delivery: accept exactly the next expected header, and\n\
         \x20  always (re)acknowledge with the cumulative next-expected value\n\
         \x20  into a bounded ack buffer. *)\n\
         RecvPktTR ==\n\
         \x20 /\\ chTR # <<>>\n\
         \x20 /\\ LET p == Head(chTR)\n\
         \x20        fresh == p.seq = rxExpected % Modulus\n\
         \x20        exp2 == IF fresh THEN rxExpected + 1 ELSE rxExpected\n\
         \x20    IN /\\ chTR' = Tail(chTR)\n\
         \x20       /\\ rxExpected' = exp2\n\
         \x20       /\\ rxDeliver' = IF fresh THEN Append(rxDeliver, p.msg) ELSE rxDeliver\n\
         \x20       /\\ rxAcks' = IF Len(rxAcks) < MaxPendingAcks\n\
         \x20                    THEN Append(rxAcks, exp2 % Modulus)\n\
         \x20                    ELSE rxAcks\n\
         \x20 /\\ UNCHANGED <<txBase, txQueue, chRT, obsSent, obsReceived, obsFlag>>\n\
         \n\
         SendPktRT ==\n\
         \x20 /\\ rxAcks # <<>>\n\
         \x20 /\\ rxAcks' = Tail(rxAcks)\n\
         \x20 /\\ \\/ /\\ Len(chRT) < Capacity\n\
         \x20       /\\ chRT' = Append(chRT, Ack(Head(rxAcks)))\n\
         \x20    \\/ chRT' = chRT\n\
         \x20 /\\ UNCHANGED <<txBase, txQueue, rxExpected, rxDeliver, chTR,\n\
         \x20               obsSent, obsReceived, obsFlag>>\n\
         \n\
         (* Cumulative ack: seq names the receiver's next expected value;\n\
         \x20  advance by the unique k with (base + k) % Modulus = seq when\n\
         \x20  1 <= k <= min(Window, |queue|). *)\n\
         RecvPktRT ==\n\
         \x20 /\\ chRT # <<>>\n\
         \x20 /\\ chRT' = Tail(chRT)\n\
         \x20 /\\ LET k == (Head(chRT).seq + Modulus - (txBase % Modulus)) % Modulus IN\n\
         \x20      IF k \\in 1 .. Min(Window, Len(txQueue))\n\
         \x20      THEN /\\ txQueue' = SubSeq(txQueue, k + 1, Len(txQueue))\n\
         \x20           /\\ txBase' = txBase + k\n\
         \x20      ELSE UNCHANGED <<txQueue, txBase>>\n\
         \x20 /\\ UNCHANGED <<rxExpected, rxDeliver, rxAcks, chTR,\n\
         \x20               obsSent, obsReceived, obsFlag>>\n\
         \n\
         {obs}\
         ReceiveMsg(m) ==\n\
         \x20 /\\ rxDeliver # <<>> /\\ Head(rxDeliver) = m\n\
         \x20 /\\ rxDeliver' = Tail(rxDeliver)\n\
         \x20 /\\ obsFlag' = IF m \\in obsReceived THEN \"duplicate\"\n\
         \x20               ELSE IF m \\notin obsSent THEN \"phantom\"\n\
         \x20               ELSE obsFlag\n\
         \x20 /\\ obsReceived' = obsReceived \\cup {{m}}\n\
         \x20 /\\ UNCHANGED <<txBase, txQueue, rxExpected, rxAcks, chTR, chRT, obsSent>>\n\
         \n\
         Next ==\n\
         \x20 \\/ \\E m \\in Messages : SendMsg(m) \\/ ReceiveMsg(m)\n\
         \x20 \\/ SendPktTR \\/ RecvPktTR \\/ SendPktRT \\/ RecvPktRT\n\
         \n\
         Spec == Init /\\ [][Next]_vars\n\
         \n\
         NoDuplicate == obsFlag # \"duplicate\"\n\
         NoPhantom == obsFlag # \"phantom\"\n\
         Safety == obsFlag = \"ok\"\n\
         \n\
         THEOREM Spec => []Safety\n\
         ====\n",
        last_msg = msgs - 1,
        capacity = capacity,
        window = window,
        modulus = modulus,
        obs = OBS_COMMENT,
    );

    TlaSpec {
        module,
        description,
        atoms,
        text,
    }
}

/// The self-stabilizing protocol over non-FIFO (reordering) channels:
/// absolute sequence numbers, `capacity + 1` identical copies to commit.
#[must_use]
pub fn stabilizing_spec(capacity: u64, chan_capacity: usize, msgs: u64) -> TlaSpec {
    let module = format!("StabilizingK{capacity}C{chan_capacity}M{msgs}");
    let description = format!(
        "self-stabilizing protocol (K = {capacity}) over {chan_capacity}-slot reordering \
         channels, {msgs} messages, clean start, crash-free and woken"
    );
    let p = dl_protocols::stabilizing::protocol_with(capacity);
    let sys = checked_system(
        p.transmitter,
        p.receiver,
        ReorderChannel::with_capacity(Dir::TR, LossMode::Nondet, chan_capacity),
        ReorderChannel::with_capacity(Dir::RT, LossMode::Nondet, chan_capacity),
    );
    let atoms = crash_free_atoms(msgs, msgs, msgs, &|a| sys.classify(a));

    let mut text = header(&module, &description, &atoms);
    let _ = write!(
        text,
        "Messages == 0 .. {last_msg}\n\
         Capacity == {chan_capacity}\n\
         K == {capacity}  \\* channel-capacity bound: commit needs K + 1 copies\n\
         MaxPendingAcks == 2\n\
         \n\
         Data(s, m) == [tag |-> \"DATA\", seq |-> s, msg |-> m]\n\
         Ack(s) == [tag |-> \"ACK\", seq |-> s]\n\
         NoCand == [seq |-> -1, msg |-> -1]\n\
         RemoveAt(s, i) == SubSeq(s, 1, i - 1) \\o SubSeq(s, i + 1, Len(s))\n\
         \n\
         VARIABLES\n\
         \x20 txSeq, txAcked, txQueue,       \\* StabTxState (active elided: TRUE)\n\
         \x20 rxExpected, rxCand, rxCopies,  \\* StabRxState candidate counting\n\
         \x20 rxDeliver, rxAcks,\n\
         \x20 chTR, chRT,                    \\* reordering bags (delivery by index)\n\
         \x20 obsSent, obsReceived, obsFlag\n\
         \n\
         vars == <<txSeq, txAcked, txQueue, rxExpected, rxCand, rxCopies,\n\
         \x20         rxDeliver, rxAcks, chTR, chRT, obsSent, obsReceived, obsFlag>>\n\
         \n\
         Init ==\n\
         \x20 /\\ txSeq = 0 /\\ txAcked = 0 /\\ txQueue = <<>>\n\
         \x20 /\\ rxExpected = 0 /\\ rxCand = NoCand /\\ rxCopies = 0\n\
         \x20 /\\ rxDeliver = <<>> /\\ rxAcks = <<>>\n\
         \x20 /\\ chTR = <<>> /\\ chRT = <<>>\n\
         \x20 /\\ obsSent = {{}} /\\ obsReceived = {{}} /\\ obsFlag = \"ok\"\n\
         \n\
         (* Environment: the harness offers the least not-yet-sent message. *)\n\
         SendMsg(m) ==\n\
         \x20 /\\ m \\notin obsSent\n\
         \x20 /\\ \\A k \\in Messages : (k < m) => (k \\in obsSent)\n\
         \x20 /\\ txQueue' = Append(txQueue, m)\n\
         \x20 /\\ obsSent' = obsSent \\cup {{m}}\n\
         \x20 /\\ UNCHANGED <<txSeq, txAcked, rxExpected, rxCand, rxCopies, rxDeliver,\n\
         \x20               rxAcks, chTR, chRT, obsReceived, obsFlag>>\n\
         \n\
         (* The transmitter repeats Data(txSeq, front); loss resolves at send\n\
         \x20  time, and a full channel always drops. *)\n\
         SendPktTR ==\n\
         \x20 /\\ txQueue # <<>>\n\
         \x20 /\\ \\/ /\\ Len(chTR) < Capacity\n\
         \x20       /\\ chTR' = Append(chTR, Data(txSeq, Head(txQueue)))\n\
         \x20    \\/ chTR' = chTR\n\
         \x20 /\\ UNCHANGED <<txSeq, txAcked, txQueue, rxExpected, rxCand, rxCopies,\n\
         \x20               rxDeliver, rxAcks, chRT, obsSent, obsReceived, obsFlag>>\n\
         \n\
         (* Reordering delivery: any in-flight packet. Stale data is\n\
         \x20  re-acknowledged only; non-stale data is counted — K + 1 identical\n\
         \x20  copies outlast any ghost population and commit the message. *)\n\
         RecvPktTR ==\n\
         \x20 /\\ chTR # <<>>\n\
         \x20 /\\ \\E i \\in 1 .. Len(chTR) :\n\
         \x20      LET p == chTR[i] IN\n\
         \x20        /\\ chTR' = RemoveAt(chTR, i)\n\
         \x20        /\\ IF p.seq < rxExpected\n\
         \x20           THEN /\\ rxAcks' = IF Len(rxAcks) < MaxPendingAcks\n\
         \x20                             THEN Append(rxAcks, p.seq)\n\
         \x20                             ELSE rxAcks\n\
         \x20                /\\ UNCHANGED <<rxExpected, rxCand, rxCopies, rxDeliver>>\n\
         \x20           ELSE LET match == rxCand = [seq |-> p.seq, msg |-> p.msg]\n\
         \x20                    copies2 == IF match THEN rxCopies + 1 ELSE 1\n\
         \x20                IN IF copies2 > K\n\
         \x20                   THEN /\\ rxDeliver' = Append(rxDeliver, p.msg)\n\
         \x20                        /\\ rxExpected' = p.seq + 1\n\
         \x20                        /\\ rxCand' = NoCand /\\ rxCopies' = 0\n\
         \x20                        /\\ rxAcks' = IF Len(rxAcks) < MaxPendingAcks\n\
         \x20                                     THEN Append(rxAcks, p.seq)\n\
         \x20                                     ELSE rxAcks\n\
         \x20                   ELSE /\\ rxCand' = [seq |-> p.seq, msg |-> p.msg]\n\
         \x20                        /\\ rxCopies' = copies2\n\
         \x20                        /\\ UNCHANGED <<rxExpected, rxDeliver, rxAcks>>\n\
         \x20 /\\ UNCHANGED <<txSeq, txAcked, txQueue, chRT, obsSent, obsReceived, obsFlag>>\n\
         \n\
         SendPktRT ==\n\
         \x20 /\\ rxAcks # <<>>\n\
         \x20 /\\ rxAcks' = Tail(rxAcks)\n\
         \x20 /\\ \\/ /\\ Len(chRT) < Capacity\n\
         \x20       /\\ chRT' = Append(chRT, Ack(Head(rxAcks)))\n\
         \x20    \\/ chRT' = chRT\n\
         \x20 /\\ UNCHANGED <<txSeq, txAcked, txQueue, rxExpected, rxCand, rxCopies,\n\
         \x20               rxDeliver, chTR, obsSent, obsReceived, obsFlag>>\n\
         \n\
         (* Reordering ack consumption: matching acks are counted; the\n\
         \x20  K + 1-th retires the front message and advances txSeq. *)\n\
         RecvPktRT ==\n\
         \x20 /\\ chRT # <<>>\n\
         \x20 /\\ \\E i \\in 1 .. Len(chRT) :\n\
         \x20      LET p == chRT[i] IN\n\
         \x20        /\\ chRT' = RemoveAt(chRT, i)\n\
         \x20        /\\ IF (p.seq = txSeq) /\\ (txQueue # <<>>)\n\
         \x20           THEN IF txAcked >= K\n\
         \x20                THEN /\\ txQueue' = Tail(txQueue)\n\
         \x20                     /\\ txSeq' = txSeq + 1\n\
         \x20                     /\\ txAcked' = 0\n\
         \x20                ELSE /\\ txAcked' = txAcked + 1\n\
         \x20                     /\\ UNCHANGED <<txQueue, txSeq>>\n\
         \x20           ELSE UNCHANGED <<txQueue, txSeq, txAcked>>\n\
         \x20 /\\ UNCHANGED <<rxExpected, rxCand, rxCopies, rxDeliver, rxAcks, chTR,\n\
         \x20               obsSent, obsReceived, obsFlag>>\n\
         \n\
         {obs}\
         ReceiveMsg(m) ==\n\
         \x20 /\\ rxDeliver # <<>> /\\ Head(rxDeliver) = m\n\
         \x20 /\\ rxDeliver' = Tail(rxDeliver)\n\
         \x20 /\\ obsFlag' = IF m \\in obsReceived THEN \"duplicate\"\n\
         \x20               ELSE IF m \\notin obsSent THEN \"phantom\"\n\
         \x20               ELSE obsFlag\n\
         \x20 /\\ obsReceived' = obsReceived \\cup {{m}}\n\
         \x20 /\\ UNCHANGED <<txSeq, txAcked, txQueue, rxExpected, rxCand, rxCopies,\n\
         \x20               rxAcks, chTR, chRT, obsSent>>\n\
         \n\
         Next ==\n\
         \x20 \\/ \\E m \\in Messages : SendMsg(m) \\/ ReceiveMsg(m)\n\
         \x20 \\/ SendPktTR \\/ RecvPktTR \\/ SendPktRT \\/ RecvPktRT\n\
         \n\
         Spec == Init /\\ [][Next]_vars\n\
         \n\
         NoDuplicate == obsFlag # \"duplicate\"\n\
         NoPhantom == obsFlag # \"phantom\"\n\
         Safety == obsFlag = \"ok\"\n\
         \n\
         THEOREM Spec => []Safety\n\
         ====\n",
        last_msg = msgs - 1,
        chan_capacity = chan_capacity,
        capacity = capacity,
        obs = OBS_COMMENT,
    );

    TlaSpec {
        module,
        description,
        atoms,
        text,
    }
}

/// The committed golden set: the three acceptance-criteria instances
/// over 2-slot channels. `scripts/check.sh --stage cross-check` diffs
/// these against `crates/crosscheck/tla/`.
#[must_use]
pub fn golden_specs() -> Vec<TlaSpec> {
    vec![
        abp_spec(2, 2),
        go_back_n_spec(2, 2, 2),
        stabilizing_spec(2, 2, 2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_names_are_invertible() {
        for spec in golden_specs() {
            for atom in &spec.atoms {
                assert_eq!(
                    parse_atom_name(&atom.name),
                    Some(atom.action),
                    "atom {} does not round-trip",
                    atom.name
                );
            }
        }
    }

    #[test]
    fn emission_is_deterministic() {
        for (a, b) in golden_specs().iter().zip(golden_specs().iter()) {
            assert_eq!(a.text, b.text, "two emissions of {} differ", a.module);
        }
    }

    #[test]
    fn modules_mention_every_atom() {
        for spec in golden_specs() {
            for atom in &spec.atoms {
                assert!(
                    spec.text.contains(&atom.name),
                    "{} missing from {}",
                    atom.name,
                    spec.module
                );
            }
        }
    }

    #[test]
    fn module_text_is_structurally_complete() {
        for spec in golden_specs() {
            for needle in [
                "---- MODULE ",
                "EXTENDS Naturals, Sequences",
                "Init ==",
                "Next ==",
                "Spec == Init /\\ [][Next]_vars",
                "THEOREM Spec => []Safety",
                "====",
            ] {
                assert!(
                    spec.text.contains(needle),
                    "{} missing {needle:?}",
                    spec.module
                );
            }
            assert!(spec
                .text
                .starts_with(&format!("---- MODULE {} ----", spec.module)));
        }
    }
}
