//! The only place the two formalisms meet: compiling an
//! [`ioa::Automaton`] (plus a permitted-inputs closure) into the
//! independent checker's [`CcModel`].
//!
//! The bridge deliberately consumes the *allocating* `Automaton` API
//! family — [`Automaton::successors`] and [`Automaton::enabled_local`]
//! — while `dl-explore` drives the streaming callbacks
//! (`try_for_each_successor` / `for_each_enabled_local`). The trait
//! contract says both families enumerate identically, so the
//! differential also cross-checks that contract on every composed
//! automaton it touches: an override whose callback order drifted from
//! its `Vec` order would show up as a count or trace disagreement.

use std::fmt::Debug;
use std::hash::Hash;

use ioa::Automaton;

use crate::model::CcModel;

/// An automaton-plus-environment compiled into a [`CcModel`].
///
/// The action menu is the explorer's: enabled locally-controlled
/// actions first (in `enabled_local` order), then the permitted
/// environment inputs (in closure order).
pub struct Translated<M, I> {
    automaton: M,
    inputs: I,
}

impl<M> Translated<M, fn(&<M as Automaton>::State) -> Vec<<M as Automaton>::Action>>
where
    M: Automaton,
{
    /// A closed system: no environment inputs, only local actions.
    pub fn closed(automaton: M) -> Self {
        Translated {
            automaton,
            inputs: |_| Vec::new(),
        }
    }
}

impl<M, I> Translated<M, I>
where
    M: Automaton,
    I: Fn(&M::State) -> Vec<M::Action>,
{
    /// Compiles `automaton` with the permitted-inputs closure `inputs`
    /// (the same closure handed to the explorer, so both engines face
    /// the same environment).
    pub fn new(automaton: M, inputs: I) -> Self {
        Translated { automaton, inputs }
    }
}

impl<M, I> CcModel for Translated<M, I>
where
    M: Automaton,
    M::State: Clone + Eq + Hash + Debug,
    M::Action: Clone + Eq + Debug,
    I: Fn(&M::State) -> Vec<M::Action>,
{
    type State = M::State;
    type Action = M::Action;

    fn init_states(&self) -> Vec<M::State> {
        self.automaton.start_states()
    }

    fn actions(&self, state: &M::State, out: &mut Vec<M::Action>) {
        out.extend(self.automaton.enabled_local(state));
        out.extend((self.inputs)(state));
    }

    fn apply(&self, state: &M::State, action: &M::Action, out: &mut Vec<M::State>) {
        out.extend(self.automaton.successors(state, action));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::CcChecker;
    use ioa::{ActionClass, TaskId};

    /// Modulo-3 counter with a local `Tick` and an environment `Reset`.
    struct Counter;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Act {
        Tick,
        Reset,
    }

    impl Automaton for Counter {
        type State = u8;
        type Action = Act;

        fn start_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn classify(&self, a: &Act) -> Option<ActionClass> {
            Some(match a {
                Act::Tick => ActionClass::Output,
                Act::Reset => ActionClass::Input,
            })
        }
        fn successors(&self, s: &u8, a: &Act) -> Vec<u8> {
            match a {
                Act::Tick => vec![(s + 1) % 3],
                Act::Reset => vec![0],
            }
        }
        fn enabled_local(&self, _s: &u8) -> Vec<Act> {
            vec![Act::Tick]
        }
        fn task_of(&self, _a: &Act) -> TaskId {
            TaskId(0)
        }
        fn task_count(&self) -> usize {
            1
        }
    }

    #[test]
    fn closed_translation_explores_the_local_cycle() {
        let report = CcChecker::new(Translated::closed(Counter), 100, 100).reachable();
        assert!(report.holds());
        assert_eq!(report.states_visited, 3);
        assert_eq!(report.diameter(), 2);
    }

    #[test]
    fn menu_is_local_then_inputs() {
        let model = Translated::new(Counter, |_s: &u8| vec![Act::Reset]);
        let mut menu = Vec::new();
        model.actions(&1, &mut menu);
        assert_eq!(menu, vec![Act::Tick, Act::Reset]);
    }
}
