//! Emits (or verifies) the golden TLA+ modules.
//!
//! ```text
//! emit_tla --out DIR     write every golden module into DIR
//! emit_tla --check DIR   diff DIR against fresh emission; exit 1 on drift
//! ```
//!
//! `--check` is what `scripts/check.sh --stage cross-check` and the CI
//! `cross-check` job run: the committed goldens under
//! `crates/crosscheck/tla/` must be byte-identical to fresh emission.

use std::path::Path;
use std::process::ExitCode;

use dl_crosscheck::tla::golden_specs;

fn usage() -> ExitCode {
    eprintln!("usage: emit_tla --out DIR | --check DIR");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [mode, dir] = args.as_slice() else {
        return usage();
    };
    let dir = Path::new(dir);
    match mode.as_str() {
        "--out" => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("emit_tla: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            for spec in golden_specs() {
                let path = dir.join(spec.file_name());
                if let Err(e) = std::fs::write(&path, &spec.text) {
                    eprintln!("emit_tla: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!(
                    "emit_tla: wrote {} ({} atoms)",
                    path.display(),
                    spec.atoms.len()
                );
            }
            ExitCode::SUCCESS
        }
        "--check" => {
            let mut drifted = false;
            for spec in golden_specs() {
                let path = dir.join(spec.file_name());
                match std::fs::read_to_string(&path) {
                    Ok(on_disk) if on_disk == spec.text => {
                        println!("emit_tla: {} up to date", path.display());
                    }
                    Ok(_) => {
                        eprintln!(
                            "emit_tla: {} differs from fresh emission; \
                             regenerate with --out",
                            path.display()
                        );
                        drifted = true;
                    }
                    Err(e) => {
                        eprintln!("emit_tla: cannot read {}: {e}", path.display());
                        drifted = true;
                    }
                }
            }
            if drifted {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}
