//! The differential harness: normalizing both engines' reports into a
//! formalism-neutral summary and diffing them field by field.
//!
//! The summary keeps only the *deterministic* facts — reachable-state
//! count, quiescent count, truncation, diameter, per-layer statistics,
//! and the minimal counterexample rendered action-for-action — so a
//! comparison failure always names a semantic disagreement, never a
//! wall-clock artifact. Disagreements render as a line-per-field dump
//! that the CI `cross-check` job uploads as an artifact.

use std::fmt::{Debug, Display, Write as _};
use std::path::PathBuf;

use crate::checker::CcReport;
use dl_explore::ExploreReport;

/// One expanded BFS layer, engine-neutral.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerLine {
    /// Depth of the expanded frontier.
    pub depth: usize,
    /// States in the expanded frontier.
    pub frontier: usize,
    /// Distinct new states admitted from this expansion.
    pub discovered: usize,
    /// Transitions enumerated.
    pub edges: u64,
    /// Transitions landing on already-known states.
    pub duplicates: u64,
}

/// A violation, rendered: property name, path as one `Display` string
/// per action, and the violating state's `Debug` form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationLine {
    /// Violated property name.
    pub property: String,
    /// Minimal counterexample, one rendered action per step.
    pub path: Vec<String>,
    /// `Debug` rendering of the violating state.
    pub state: String,
}

/// The deterministic facts of one engine's search, engine-neutral.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSummary {
    /// Which engine produced this summary.
    pub engine: &'static str,
    /// Distinct states admitted.
    pub states: usize,
    /// States with an empty action menu when expanded.
    pub quiescent: usize,
    /// Whether a budget cut the search short.
    pub truncated: bool,
    /// Depth of the deepest expanded frontier.
    pub diameter: usize,
    /// Per-layer statistics, in depth order.
    pub layers: Vec<LayerLine>,
    /// The minimal violation, if any property failed.
    pub violation: Option<ViolationLine>,
}

impl EngineSummary {
    /// Normalizes a `dl-explore` report.
    pub fn from_explore<A: Display, S: Debug>(r: &ExploreReport<A, S>) -> EngineSummary {
        EngineSummary {
            engine: "dl-explore",
            states: r.states_visited,
            quiescent: r.quiescent_states,
            truncated: r.truncation.is_some(),
            diameter: r.diameter(),
            layers: r
                .layers
                .iter()
                .map(|l| LayerLine {
                    depth: l.depth,
                    frontier: l.frontier,
                    discovered: l.discovered,
                    edges: l.edges,
                    duplicates: l.duplicates,
                })
                .collect(),
            violation: r.violation.as_ref().map(|v| ViolationLine {
                property: v.property.clone(),
                path: v.path.iter().map(|a| a.to_string()).collect(),
                state: format!("{:?}", v.state),
            }),
        }
    }

    /// Normalizes an independent-checker report.
    pub fn from_crosscheck<A: Display + Debug, S: Debug>(r: &CcReport<A, S>) -> EngineSummary {
        EngineSummary {
            engine: "dl-crosscheck",
            states: r.states_visited,
            quiescent: r.quiescent_states,
            truncated: r.truncation.is_some(),
            diameter: r.diameter(),
            layers: r
                .layers
                .iter()
                .map(|l| LayerLine {
                    depth: l.depth,
                    frontier: l.frontier,
                    discovered: l.discovered,
                    edges: l.edges,
                    duplicates: l.duplicates,
                })
                .collect(),
            violation: r.violation.as_ref().map(|v| ViolationLine {
                property: v.property.clone(),
                path: v.path.iter().map(|a| a.to_string()).collect(),
                state: format!("{:?}", v.state),
            }),
        }
    }
}

/// Field-by-field diff of two engine summaries. Empty means the engines
/// agree on every deterministic fact; each line names one disagreement.
#[must_use]
pub fn disagreements(a: &EngineSummary, b: &EngineSummary) -> Vec<String> {
    let mut out = Vec::new();
    let mut field = |name: &str, av: String, bv: String| {
        if av != bv {
            out.push(format!("{name}: {}={av} vs {}={bv}", a.engine, b.engine));
        }
    };
    field("states", a.states.to_string(), b.states.to_string());
    field(
        "quiescent",
        a.quiescent.to_string(),
        b.quiescent.to_string(),
    );
    field(
        "truncated",
        a.truncated.to_string(),
        b.truncated.to_string(),
    );
    field("diameter", a.diameter.to_string(), b.diameter.to_string());
    field(
        "layer_count",
        a.layers.len().to_string(),
        b.layers.len().to_string(),
    );
    for (la, lb) in a.layers.iter().zip(&b.layers) {
        if la != lb {
            out.push(format!(
                "layer[{}]: {}={la:?} vs {}={lb:?}",
                la.depth, a.engine, b.engine
            ));
        }
    }
    match (&a.violation, &b.violation) {
        (None, None) => {}
        (Some(va), Some(vb)) => {
            if va.property != vb.property {
                out.push(format!(
                    "violation.property: {}={} vs {}={}",
                    a.engine, va.property, b.engine, vb.property
                ));
            }
            if va.path.len() != vb.path.len() {
                out.push(format!(
                    "violation.path_len: {}={} vs {}={}",
                    a.engine,
                    va.path.len(),
                    b.engine,
                    vb.path.len()
                ));
            }
            for (i, (pa, pb)) in va.path.iter().zip(&vb.path).enumerate() {
                if pa != pb {
                    out.push(format!(
                        "violation.path[{i}]: {}={pa} vs {}={pb}",
                        a.engine, b.engine
                    ));
                }
            }
            if va.state != vb.state {
                out.push(format!(
                    "violation.state: {}={} vs {}={}",
                    a.engine, va.state, b.engine, vb.state
                ));
            }
        }
        (va, vb) => out.push(format!(
            "violation verdict: {} found_violation={} vs {} found_violation={}",
            a.engine,
            va.is_some(),
            b.engine,
            vb.is_some()
        )),
    }
    out
}

/// Both engines' summaries for one zoo instance, ready to diff.
#[derive(Debug, Clone)]
pub struct ZooOutcome {
    /// Instance name (also the disagreement-dump file stem).
    pub name: String,
    /// The `dl-explore` side.
    pub explorer: EngineSummary,
    /// The independent-checker side.
    pub crosscheck: EngineSummary,
}

impl ZooOutcome {
    /// The field-by-field diff (empty = full agreement).
    #[must_use]
    pub fn disagreements(&self) -> Vec<String> {
        disagreements(&self.explorer, &self.crosscheck)
    }

    /// Panics with every disagreement if the engines diverged, first
    /// writing the dump where CI picks it up as an artifact
    /// (`target/crosscheck-disagreements/<name>.txt`).
    pub fn assert_agree(&self) {
        let diff = self.disagreements();
        if diff.is_empty() {
            return;
        }
        let path = write_disagreements(&self.name, &diff);
        panic!(
            "engines disagree on {} ({} field(s); dump at {path:?}):\n{}",
            self.name,
            diff.len(),
            diff.join("\n")
        );
    }
}

/// Writes a disagreement dump under `target/crosscheck-disagreements/`
/// (workspace-relative) and returns its path. Best-effort: an
/// unwritable target directory must not mask the real assertion, so IO
/// errors degrade to a dump-less panic message.
pub fn write_disagreements(name: &str, lines: &[String]) -> PathBuf {
    let dir = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/crosscheck-disagreements"
    ));
    let path = dir.join(format!("{name}.txt"));
    let mut body = String::new();
    for line in lines {
        let _ = writeln!(body, "{line}");
    }
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(&path, body);
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(engine: &'static str, states: usize) -> EngineSummary {
        EngineSummary {
            engine,
            states,
            quiescent: 0,
            truncated: false,
            diameter: 2,
            layers: vec![LayerLine {
                depth: 0,
                frontier: 1,
                discovered: 2,
                edges: 3,
                duplicates: 0,
            }],
            violation: None,
        }
    }

    #[test]
    fn identical_summaries_have_no_disagreements() {
        let a = summary("dl-explore", 7);
        let b = EngineSummary {
            engine: "dl-crosscheck",
            ..summary("dl-crosscheck", 7)
        };
        assert!(disagreements(&a, &b).is_empty());
    }

    #[test]
    fn every_divergent_field_is_named() {
        let a = summary("dl-explore", 7);
        let mut b = summary("dl-crosscheck", 8);
        b.diameter = 3;
        b.violation = Some(ViolationLine {
            property: "invariant".into(),
            path: vec!["crash^r".into()],
            state: "S".into(),
        });
        let diff = disagreements(&a, &b);
        assert!(diff.iter().any(|l| l.starts_with("states:")));
        assert!(diff.iter().any(|l| l.starts_with("diameter:")));
        assert!(diff.iter().any(|l| l.starts_with("violation verdict:")));
    }

    #[test]
    fn path_disagreements_are_per_action() {
        let mut a = summary("dl-explore", 7);
        let mut b = summary("dl-crosscheck", 7);
        a.violation = Some(ViolationLine {
            property: "invariant".into(),
            path: vec!["a".into(), "b".into()],
            state: "S".into(),
        });
        b.violation = Some(ViolationLine {
            property: "invariant".into(),
            path: vec!["a".into(), "c".into()],
            state: "S".into(),
        });
        let diff = disagreements(&a, &b);
        assert_eq!(diff.len(), 1);
        assert!(diff[0].starts_with("violation.path[1]:"));
    }
}
