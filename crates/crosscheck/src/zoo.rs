//! The small-instance zoo the differential runs over: composed
//! protocol + channel + observer systems, each executed by **both**
//! engines — `dl-explore`'s parallel BFS and this crate's independent
//! checker — from the same woken start, under the same environment
//! closure, against the same WDL-observer invariant.
//!
//! Composition shape and environment discipline mirror the tier-1
//! model-checking suite (`tests/model_checking.rs`): state shape
//! `((tx, rx), ((ch_tr, ch_rt), observer))`, media woken once before
//! exploration, at most one unsent message offered at a time.

use std::fmt::Debug;
use std::hash::Hash;

use dl_channels::{FlightState, LossMode, LossyFifoChannel, ReorderChannel};
use dl_core::action::{Dir, DlAction, Msg, Station};
use dl_core::observer::{ObserverState, WdlObserver};
use dl_explore::ParallelExplorer;
use dl_protocols::abp::{AbpRxState, AbpTxState};
use ioa::composition::{Compose2, Pair};
use ioa::Automaton;

use crate::diff::{EngineSummary, ZooOutcome};
use crate::model::CcProperty;
use crate::translate::Translated;
use crate::CcChecker;

/// Composed system: protocol + channels + observer.
pub type Sys<T, R, C1, C2> = Compose2<Compose2<T, R>, Compose2<Compose2<C1, C2>, WdlObserver>>;

/// State of [`Sys`]: `((tx, rx), ((ch_tr, ch_rt), observer))`.
pub type SysState<TS, RS, CS1, CS2> = Pair<Pair<TS, RS>, Pair<Pair<CS1, CS2>, ObserverState>>;

/// Budgets matching the tier-1 model-checking suite: large enough that
/// every zoo instance is exhaustive, so verdicts are conclusive.
const MAX_STATES: usize = 2_000_000;
const MAX_DEPTH: usize = 10_000;

/// Composes protocol + channels + observer in the canonical shape.
pub fn checked_system<T, R, C1, C2>(tx: T, rx: R, ch_tr: C1, ch_rt: C2) -> Sys<T, R, C1, C2>
where
    T: Automaton<Action = DlAction>,
    R: Automaton<Action = DlAction>,
    C1: Automaton<Action = DlAction>,
    C2: Automaton<Action = DlAction>,
{
    Compose2::new(
        Compose2::new(tx, rx),
        Compose2::new(Compose2::new(ch_tr, ch_rt), WdlObserver),
    )
}

/// The observer component of a composed state.
pub fn observer_of<TS, RS, CS1, CS2>(s: &SysState<TS, RS, CS1, CS2>) -> &ObserverState {
    &s.right.right
}

/// The canonical exploration start: both media woken once.
pub fn woken_start<M: Automaton<Action = DlAction>>(sys: &M) -> M::State {
    let s0 = sys.start_states().remove(0);
    let s1 = sys.step_first(&s0, &DlAction::Wake(Dir::TR)).unwrap();
    sys.step_first(&s1, &DlAction::Wake(Dir::RT)).unwrap()
}

/// Crash-free environment: offer the first of `n` messages the observer
/// has not yet seen (at most one unsent at a time).
pub fn crash_free_inputs<TS, RS, CS1, CS2>(
    n: u64,
) -> impl Fn(&SysState<TS, RS, CS1, CS2>) -> Vec<DlAction> + Sync {
    move |s| {
        (0..n)
            .map(Msg)
            .find(|m| !observer_of(s).sent.contains(m))
            .map(DlAction::SendMsg)
            .into_iter()
            .collect()
    }
}

/// Crash-pump environment: offer `m0` once, plus receiver crash and
/// re-wake — the Lemma 7.2 fault pattern that makes DL4 reachable.
fn crash_inputs<TS, RS, CS1, CS2>(
    s: &SysState<TS, RS, CS1, CS2>,
    rx_active: bool,
) -> Vec<DlAction> {
    let mut out = Vec::new();
    if !observer_of(s).sent.contains(&Msg(0)) {
        out.push(DlAction::SendMsg(Msg(0)));
    }
    out.push(DlAction::Crash(Station::R));
    if !rx_active {
        out.push(DlAction::Wake(Dir::RT));
    }
    out
}

/// Runs one composed system through both engines and pairs the
/// summaries. The explorer uses `threads` workers; the independent
/// checker is sequential by construction.
fn run_both<T, R, C1, C2, I>(
    name: String,
    threads: usize,
    sys: Sys<T, R, C1, C2>,
    inputs: I,
) -> ZooOutcome
where
    T: Automaton<Action = DlAction> + Sync,
    R: Automaton<Action = DlAction> + Sync,
    C1: Automaton<Action = DlAction> + Sync,
    C2: Automaton<Action = DlAction> + Sync,
    T::State: Clone + Eq + Hash + Debug + Send + Sync,
    R::State: Clone + Eq + Hash + Debug + Send + Sync,
    C1::State: Clone + Eq + Hash + Debug + Send + Sync,
    C2::State: Clone + Eq + Hash + Debug + Send + Sync,
    I: Fn(&SysState<T::State, R::State, C1::State, C2::State>) -> Vec<DlAction> + Sync,
{
    let start = woken_start(&sys);

    let explore = ParallelExplorer::new(&sys, &inputs, MAX_STATES, MAX_DEPTH)
        .threads(threads)
        .check_invariant_from(vec![start.clone()], |s| observer_of(s).is_safe());

    let holds = |s: &SysState<T::State, R::State, C1::State, C2::State>| observer_of(s).is_safe();
    let props = [CcProperty {
        name: "invariant",
        holds: &holds,
    }];
    let cross = CcChecker::new(Translated::new(&sys, &inputs), MAX_STATES, MAX_DEPTH)
        .check_from(vec![start], &props);

    ZooOutcome {
        name,
        explorer: EngineSummary::from_explore(&explore),
        crosscheck: EngineSummary::from_crosscheck(&cross),
    }
}

/// ABP over lossy FIFO channels of the given capacity, crash-free, two
/// messages. Capacity 2 is the acceptance-criteria instance; capacity 3
/// is the E9 system, whose published 1178-state count both engines must
/// reproduce.
pub fn abp_lossy(capacity: usize, threads: usize) -> ZooOutcome {
    let p = dl_protocols::abp::protocol();
    run_both(
        format!("abp_lossy_cap{capacity}"),
        threads,
        checked_system(
            p.transmitter,
            p.receiver,
            LossyFifoChannel::with_capacity(Dir::TR, LossMode::Nondet, capacity),
            LossyFifoChannel::with_capacity(Dir::RT, LossMode::Nondet, capacity),
        ),
        crash_free_inputs(2),
    )
}

/// Go-back-N over lossy FIFO channels, crash-free, two messages.
pub fn go_back_n_lossy(window: u64, capacity: usize, threads: usize) -> ZooOutcome {
    let p = dl_protocols::sliding_window::protocol(window);
    run_both(
        format!("go_back_{window}_cap{capacity}"),
        threads,
        checked_system(
            p.transmitter,
            p.receiver,
            LossyFifoChannel::with_capacity(Dir::TR, LossMode::Nondet, capacity),
            LossyFifoChannel::with_capacity(Dir::RT, LossMode::Nondet, capacity),
        ),
        crash_free_inputs(2),
    )
}

/// The self-stabilizing protocol over non-FIFO (reordering) channels of
/// the given capacity, crash-free, two messages — the zoo member whose
/// channel model the TLA+ emission also covers.
pub fn stabilizing_reorder(capacity: usize, threads: usize) -> ZooOutcome {
    let p = dl_protocols::stabilizing::protocol_with(capacity as u64);
    run_both(
        format!("stabilizing_reorder_cap{capacity}"),
        threads,
        checked_system(
            p.transmitter,
            p.receiver,
            ReorderChannel::with_capacity(Dir::TR, LossMode::Nondet, capacity),
            ReorderChannel::with_capacity(Dir::RT, LossMode::Nondet, capacity),
        ),
        crash_free_inputs(2),
    )
}

/// Stenning over a reordering data channel, crash-free — a second
/// non-FIFO instance that stays exhaustively safe.
pub fn stenning_reorder(threads: usize) -> ZooOutcome {
    let p = dl_protocols::stenning::protocol();
    run_both(
        "stenning_reorder".to_string(),
        threads,
        checked_system(
            p.transmitter,
            p.receiver,
            ReorderChannel::with_capacity(Dir::TR, LossMode::Nondet, 2),
            LossyFifoChannel::with_capacity(Dir::RT, LossMode::Nondet, 2),
        ),
        crash_free_inputs(2),
    )
}

/// The ABP crash pump: lossless 2-slot channels plus receiver
/// crash/re-wake inputs. Both engines must report the *same* minimal
/// DL4 counterexample, action for action.
pub fn abp_crash_pump(threads: usize) -> ZooOutcome {
    let p = dl_protocols::abp::protocol();
    let sys = checked_system(
        p.transmitter,
        p.receiver,
        LossyFifoChannel::with_capacity(Dir::TR, LossMode::None, 2),
        LossyFifoChannel::with_capacity(Dir::RT, LossMode::None, 2),
    );
    run_both(
        "abp_crash_pump".to_string(),
        threads,
        sys,
        |s: &SysState<AbpTxState, AbpRxState, FlightState, FlightState>| {
            crash_inputs(s, s.left.right.active)
        },
    )
}
