//! The independent checker's own model interface.
//!
//! [`CcModel`] is this crate's equivalent of a Stateright `Model`: an
//! explicit-state transition system with a deterministic action menu per
//! state. It is deliberately **not** `ioa::Automaton` — no signature, no
//! task partition, no input-enabledness contract — so the checker built
//! on it cannot accidentally inherit semantics (or bugs) from the IOA
//! kernel. The translation layer in [`crate::translate`] is the only
//! place the two vocabularies meet.

use std::fmt::Debug;
use std::hash::Hash;

/// An explicit-state model the independent checker can search.
///
/// The two enumeration methods must be *deterministic*: the same state
/// yields the same action list in the same order, and the same
/// `(state, action)` pair yields the same successor list in the same
/// order. The differential against `dl-explore` compares minimal
/// counterexamples action-for-action, which is only meaningful because
/// both engines agree on this canonical enumeration order.
pub trait CcModel {
    /// Model states. `Eq` is the ground truth for deduplication — the
    /// checker's hash index only routes probes, it never decides
    /// identity, so a hash collision costs time, not correctness.
    type State: Clone + Eq + Hash + Debug;
    /// Action labels, recorded on spanning-tree edges and reported in
    /// counterexample traces.
    type Action: Clone + Eq + Debug;

    /// The initial states, in canonical order.
    fn init_states(&self) -> Vec<Self::State>;

    /// Appends the canonical action menu of `state` to `out`: the
    /// enabled system actions first, then the environment inputs the
    /// harness permits (matching the explorer's enumeration contract).
    /// An action on the menu may still have zero successors — it then
    /// contributes no edges.
    fn actions(&self, state: &Self::State, out: &mut Vec<Self::Action>);

    /// Appends all successors of `(state, action)` to `out`, in
    /// canonical order.
    fn apply(&self, state: &Self::State, action: &Self::Action, out: &mut Vec<Self::State>);
}

/// A named state predicate the checker verifies on every admitted state.
///
/// Mirrors `dl-explore`'s `Property` shape (name + holds) without
/// depending on it; the differential harness instantiates both sides
/// from one closure.
pub struct CcProperty<'a, S> {
    /// Name reported in [`CcViolation`](crate::checker::CcViolation).
    pub name: &'a str,
    /// `true` while the state is acceptable.
    pub holds: &'a (dyn Fn(&S) -> bool + Sync),
}

impl<S> CcProperty<'_, S> {
    /// First property in `props` (in order) that `state` violates.
    #[must_use]
    pub fn first_violated<'p>(props: &'p [CcProperty<'_, S>], state: &S) -> Option<&'p str> {
        props.iter().find(|p| !(p.holds)(state)).map(|p| p.name)
    }
}
