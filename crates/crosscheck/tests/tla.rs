//! TLA+ emitter contract tests: determinism, golden fidelity, and the
//! invertibility of the action-atom naming scheme through the composed
//! systems' memoized signatures.

use proptest::prelude::*;

use dl_channels::{LossMode, LossyFifoChannel};
use dl_core::action::{Dir, DlAction, Msg, Packet, Station};
use dl_crosscheck::tla::{atom_name, golden_specs, parse_atom_name};
use dl_crosscheck::zoo::checked_system;
use ioa::{Automaton, Signature};

#[test]
fn two_emissions_are_byte_identical() {
    let first = golden_specs();
    let second = golden_specs();
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.module, b.module);
        assert_eq!(
            a.text, b.text,
            "emission of {} is not deterministic",
            a.module
        );
    }
}

#[test]
fn committed_goldens_match_fresh_emission() {
    let goldens = [
        ("AbpC2M2", include_str!("../tla/AbpC2M2.tla")),
        ("GoBackW2C2M2", include_str!("../tla/GoBackW2C2M2.tla")),
        (
            "StabilizingK2C2M2",
            include_str!("../tla/StabilizingK2C2M2.tla"),
        ),
    ];
    let specs = golden_specs();
    assert_eq!(specs.len(), goldens.len());
    for (spec, (module, on_disk)) in specs.iter().zip(goldens) {
        assert_eq!(spec.module, module);
        assert_eq!(
            spec.text, on_disk,
            "golden {module}.tla is stale; regenerate with \
             `cargo run -p dl-crosscheck --bin emit_tla -- --out crates/crosscheck/tla`"
        );
    }
}

#[test]
fn every_emitted_atom_classifies_through_the_memoized_signature() {
    for spec in golden_specs() {
        // Rebuild the instance's composed system and memoize its
        // signature over exactly the emitted atom set, as an executor
        // would; every atom must classify to its emitted class.
        let p = dl_protocols::abp::protocol();
        let sys = checked_system(
            p.transmitter,
            p.receiver,
            LossyFifoChannel::with_capacity(Dir::TR, LossMode::Nondet, 2),
            LossyFifoChannel::with_capacity(Dir::RT, LossMode::Nondet, 2),
        );
        let atoms: Vec<DlAction> = spec.atoms.iter().map(|a| a.action).collect();
        let sig = Signature::new(move |a: &DlAction| sys.classify(a)).memoized(atoms.clone());
        for atom in &spec.atoms {
            // Every zoo system shares the external interface, so the
            // ABP composition classifies all three specs' atoms.
            assert_eq!(
                sig.classify(&atom.action),
                Some(atom.class),
                "{} ({}) classifies differently through the memoized table",
                atom.name,
                atom.action
            );
        }
    }
}

/// Any nameable action, emitted or not: the parser must invert the
/// namer on the whole scheme, not just the golden instances.
fn nameable_action_strategy() -> impl Strategy<Value = DlAction> {
    let dir = prop_oneof![Just(Dir::TR), Just(Dir::RT)];
    let data = (0u64..64, 0u64..64).prop_map(|(s, m)| Packet::data(s, Msg(m)));
    let ack = (0u64..64).prop_map(Packet::ack);
    let pkt = prop_oneof![data, ack];
    prop_oneof![
        (0u64..256).prop_map(|m| DlAction::SendMsg(Msg(m))),
        (0u64..256).prop_map(|m| DlAction::ReceiveMsg(Msg(m))),
        (dir.clone(), pkt.clone()).prop_map(|(d, p)| DlAction::SendPkt(d, p)),
        (dir.clone(), pkt).prop_map(|(d, p)| DlAction::ReceivePkt(d, p)),
        dir.clone().prop_map(DlAction::Wake),
        dir.prop_map(DlAction::Fail),
        prop_oneof![Just(Station::T), Just(Station::R)].prop_map(DlAction::Crash),
    ]
}

proptest! {
    /// `parse_atom_name` inverts `atom_name` on every nameable action.
    #[test]
    fn atom_names_round_trip(action in nameable_action_strategy()) {
        let name = atom_name(&action).expect("strategy yields only nameable actions");
        prop_assert_eq!(parse_atom_name(&name), Some(action));
    }

    /// Internal steps are never named (they have no place in the
    /// external TLA+ interface).
    #[test]
    fn internal_actions_are_unnamed(station in prop_oneof![Just(Station::T), Just(Station::R)],
                                    code in 0u64..1000) {
        prop_assert_eq!(atom_name(&DlAction::Internal(station, code)), None);
    }
}
