//! The cross-formalism differential: every zoo instance run by both
//! engines, with field-by-field agreement asserted — reachable-state
//! counts, quiescent counts, diameter, per-layer statistics, and (for
//! the crash pump) the minimal DL4 counterexample action for action.

use dl_crosscheck::zoo;

#[test]
fn abp_cap2_agrees_across_thread_counts() {
    for threads in [1, 2, 4] {
        let outcome = zoo::abp_lossy(2, threads);
        outcome.assert_agree();
        assert!(
            !outcome.explorer.truncated,
            "zoo budgets must be exhaustive"
        );
        assert!(
            outcome.explorer.violation.is_none(),
            "crash-free ABP is safe"
        );
    }
}

#[test]
fn abp_capacity_sweep_agrees() {
    for capacity in 1..=3 {
        zoo::abp_lossy(capacity, 2).assert_agree();
    }
}

#[test]
fn abp_cap3_reproduces_the_e9_state_count() {
    let outcome = zoo::abp_lossy(3, 2);
    outcome.assert_agree();
    // The E9 experiment's published reachable-state count: if either
    // engine drifts from it, the ledger pins catch the explorer and
    // this pin catches the independent checker.
    assert_eq!(outcome.crosscheck.states, 1178);
    assert_eq!(outcome.explorer.states, 1178);
}

#[test]
fn go_back_n_agrees() {
    let outcome = zoo::go_back_n_lossy(2, 2, 2);
    outcome.assert_agree();
    assert!(outcome.explorer.violation.is_none());
}

#[test]
fn stabilizing_over_reorder_channels_agrees() {
    let outcome = zoo::stabilizing_reorder(2, 2);
    outcome.assert_agree();
    assert!(outcome.explorer.violation.is_none());
}

#[test]
fn stenning_over_reorder_channel_agrees() {
    zoo::stenning_reorder(2).assert_agree();
}

#[test]
fn crash_pump_agrees_on_the_minimal_counterexample() {
    let outcome = zoo::abp_crash_pump(2);
    outcome.assert_agree();
    let v = outcome
        .crosscheck
        .violation
        .as_ref()
        .expect("the Lemma 7.2 crash pump must reach DL4");
    assert_eq!(v.property, "invariant");
    assert!(!v.path.is_empty());
    // assert_agree already compared the traces action for action; spell
    // the guarantee out once more against the explorer's side.
    assert_eq!(
        outcome.explorer.violation.as_ref().unwrap().path,
        v.path,
        "minimal counterexamples must agree action for action"
    );
    assert!(
        v.path.iter().any(|a| a.starts_with("crash^")),
        "the minimal DL4 trace passes through a receiver crash: {:?}",
        v.path
    );
}
