---- MODULE GoBackW2C2M2 ----
\* Emitted by dl-crosscheck. DO NOT EDIT: regenerate with
\*   cargo run -p dl-crosscheck --bin emit_tla -- --out crates/crosscheck/tla
\* Instance: go-back-2 (modulus 3) over 2-slot lossy FIFO channels, 2 messages, crash-free and woken
\*
\* Action atoms of this finite instance (name : class : IOA rendering):
\*   SendMsg_m0 : input : send_msg^t,r(m0)
\*   SendMsg_m1 : input : send_msg^t,r(m1)
\*   ReceiveMsg_m0 : output : receive_msg^t,r(m0)
\*   ReceiveMsg_m1 : output : receive_msg^t,r(m1)
\*   SendPkt_tr_data0_m0 : output : send_pkt^t,r(⟨DATA#0 m0⟩)
\*   SendPkt_tr_data0_m1 : output : send_pkt^t,r(⟨DATA#0 m1⟩)
\*   SendPkt_tr_data1_m0 : output : send_pkt^t,r(⟨DATA#1 m0⟩)
\*   SendPkt_tr_data1_m1 : output : send_pkt^t,r(⟨DATA#1 m1⟩)
\*   SendPkt_tr_data2_m0 : output : send_pkt^t,r(⟨DATA#2 m0⟩)
\*   SendPkt_tr_data2_m1 : output : send_pkt^t,r(⟨DATA#2 m1⟩)
\*   ReceivePkt_tr_data0_m0 : output : receive_pkt^t,r(⟨DATA#0 m0⟩)
\*   ReceivePkt_tr_data0_m1 : output : receive_pkt^t,r(⟨DATA#0 m1⟩)
\*   ReceivePkt_tr_data1_m0 : output : receive_pkt^t,r(⟨DATA#1 m0⟩)
\*   ReceivePkt_tr_data1_m1 : output : receive_pkt^t,r(⟨DATA#1 m1⟩)
\*   ReceivePkt_tr_data2_m0 : output : receive_pkt^t,r(⟨DATA#2 m0⟩)
\*   ReceivePkt_tr_data2_m1 : output : receive_pkt^t,r(⟨DATA#2 m1⟩)
\*   SendPkt_rt_ack0 : output : send_pkt^r,t(⟨ACK#0⟩)
\*   SendPkt_rt_ack1 : output : send_pkt^r,t(⟨ACK#1⟩)
\*   SendPkt_rt_ack2 : output : send_pkt^r,t(⟨ACK#2⟩)
\*   ReceivePkt_rt_ack0 : output : receive_pkt^r,t(⟨ACK#0⟩)
\*   ReceivePkt_rt_ack1 : output : receive_pkt^r,t(⟨ACK#1⟩)
\*   ReceivePkt_rt_ack2 : output : receive_pkt^r,t(⟨ACK#2⟩)

EXTENDS Naturals, Sequences

Messages == 0 .. 1
Capacity == 2
Window == 2
Modulus == 3
MaxPendingAcks == 2

Min(a, b) == IF a < b THEN a ELSE b
Data(s, m) == [tag |-> "DATA", seq |-> s, msg |-> m]
Ack(s) == [tag |-> "ACK", seq |-> s]

VARIABLES
  txBase, txQueue,               \* SwTxState (active elided: TRUE)
  rxExpected, rxDeliver, rxAcks, \* SwRxState; rxExpected is absolute
  chTR, chRT,
  obsSent, obsReceived, obsFlag

vars == <<txBase, txQueue, rxExpected, rxDeliver, rxAcks, chTR, chRT,
          obsSent, obsReceived, obsFlag>>

Init ==
  /\ txBase = 0 /\ txQueue = <<>>
  /\ rxExpected = 0 /\ rxDeliver = <<>> /\ rxAcks = <<>>
  /\ chTR = <<>> /\ chRT = <<>>
  /\ obsSent = {} /\ obsReceived = {} /\ obsFlag = "ok"

(* Environment: the harness offers the least not-yet-sent message. *)
SendMsg(m) ==
  /\ m \notin obsSent
  /\ \A k \in Messages : (k < m) => (k \in obsSent)
  /\ txQueue' = Append(txQueue, m)
  /\ obsSent' = obsSent \cup {m}
  /\ UNCHANGED <<txBase, rxExpected, rxDeliver, rxAcks, chTR, chRT,
                obsReceived, obsFlag>>

(* Any in-window packet may be (re)transmitted; loss resolves at
   send time, and a full channel always drops. *)
SendPktTR ==
  /\ \E i \in 1 .. Min(Window, Len(txQueue)) :
       LET p == Data((txBase + i - 1) % Modulus, txQueue[i]) IN
         \/ /\ Len(chTR) < Capacity
            /\ chTR' = Append(chTR, p)
         \/ chTR' = chTR
  /\ UNCHANGED <<txBase, txQueue, rxExpected, rxDeliver, rxAcks, chRT,
                obsSent, obsReceived, obsFlag>>

(* FIFO delivery: accept exactly the next expected header, and
   always (re)acknowledge with the cumulative next-expected value
   into a bounded ack buffer. *)
RecvPktTR ==
  /\ chTR # <<>>
  /\ LET p == Head(chTR)
         fresh == p.seq = rxExpected % Modulus
         exp2 == IF fresh THEN rxExpected + 1 ELSE rxExpected
     IN /\ chTR' = Tail(chTR)
        /\ rxExpected' = exp2
        /\ rxDeliver' = IF fresh THEN Append(rxDeliver, p.msg) ELSE rxDeliver
        /\ rxAcks' = IF Len(rxAcks) < MaxPendingAcks
                     THEN Append(rxAcks, exp2 % Modulus)
                     ELSE rxAcks
  /\ UNCHANGED <<txBase, txQueue, chRT, obsSent, obsReceived, obsFlag>>

SendPktRT ==
  /\ rxAcks # <<>>
  /\ rxAcks' = Tail(rxAcks)
  /\ \/ /\ Len(chRT) < Capacity
        /\ chRT' = Append(chRT, Ack(Head(rxAcks)))
     \/ chRT' = chRT
  /\ UNCHANGED <<txBase, txQueue, rxExpected, rxDeliver, chTR,
                obsSent, obsReceived, obsFlag>>

(* Cumulative ack: seq names the receiver's next expected value;
   advance by the unique k with (base + k) % Modulus = seq when
   1 <= k <= min(Window, |queue|). *)
RecvPktRT ==
  /\ chRT # <<>>
  /\ chRT' = Tail(chRT)
  /\ LET k == (Head(chRT).seq + Modulus - (txBase % Modulus)) % Modulus IN
       IF k \in 1 .. Min(Window, Len(txQueue))
       THEN /\ txQueue' = SubSeq(txQueue, k + 1, Len(txQueue))
            /\ txBase' = txBase + k
       ELSE UNCHANGED <<txQueue, txBase>>
  /\ UNCHANGED <<rxExpected, rxDeliver, rxAcks, chTR,
                obsSent, obsReceived, obsFlag>>

(* Delivery to the environment, scored by the WDL observer: each message
   is offered at most once, so a repeated member of obsReceived is a
   duplicate (DL4) and a receive that was never sent is a phantom (DL5). *)
ReceiveMsg(m) ==
  /\ rxDeliver # <<>> /\ Head(rxDeliver) = m
  /\ rxDeliver' = Tail(rxDeliver)
  /\ obsFlag' = IF m \in obsReceived THEN "duplicate"
                ELSE IF m \notin obsSent THEN "phantom"
                ELSE obsFlag
  /\ obsReceived' = obsReceived \cup {m}
  /\ UNCHANGED <<txBase, txQueue, rxExpected, rxAcks, chTR, chRT, obsSent>>

Next ==
  \/ \E m \in Messages : SendMsg(m) \/ ReceiveMsg(m)
  \/ SendPktTR \/ RecvPktTR \/ SendPktRT \/ RecvPktRT

Spec == Init /\ [][Next]_vars

NoDuplicate == obsFlag # "duplicate"
NoPhantom == obsFlag # "phantom"
Safety == obsFlag = "ok"

THEOREM Spec => []Safety
====
