---- MODULE AbpC2M2 ----
\* Emitted by dl-crosscheck. DO NOT EDIT: regenerate with
\*   cargo run -p dl-crosscheck --bin emit_tla -- --out crates/crosscheck/tla
\* Instance: ABP over 2-slot lossy FIFO channels, 2 messages, crash-free and woken
\*
\* Action atoms of this finite instance (name : class : IOA rendering):
\*   SendMsg_m0 : input : send_msg^t,r(m0)
\*   SendMsg_m1 : input : send_msg^t,r(m1)
\*   ReceiveMsg_m0 : output : receive_msg^t,r(m0)
\*   ReceiveMsg_m1 : output : receive_msg^t,r(m1)
\*   SendPkt_tr_data0_m0 : output : send_pkt^t,r(⟨DATA#0 m0⟩)
\*   SendPkt_tr_data0_m1 : output : send_pkt^t,r(⟨DATA#0 m1⟩)
\*   SendPkt_tr_data1_m0 : output : send_pkt^t,r(⟨DATA#1 m0⟩)
\*   SendPkt_tr_data1_m1 : output : send_pkt^t,r(⟨DATA#1 m1⟩)
\*   ReceivePkt_tr_data0_m0 : output : receive_pkt^t,r(⟨DATA#0 m0⟩)
\*   ReceivePkt_tr_data0_m1 : output : receive_pkt^t,r(⟨DATA#0 m1⟩)
\*   ReceivePkt_tr_data1_m0 : output : receive_pkt^t,r(⟨DATA#1 m0⟩)
\*   ReceivePkt_tr_data1_m1 : output : receive_pkt^t,r(⟨DATA#1 m1⟩)
\*   SendPkt_rt_ack0 : output : send_pkt^r,t(⟨ACK#0⟩)
\*   SendPkt_rt_ack1 : output : send_pkt^r,t(⟨ACK#1⟩)
\*   ReceivePkt_rt_ack0 : output : receive_pkt^r,t(⟨ACK#0⟩)
\*   ReceivePkt_rt_ack1 : output : receive_pkt^r,t(⟨ACK#1⟩)

EXTENDS Naturals, Sequences

Messages == 0 .. 1
Capacity == 2
MaxPendingAcks == 2

Data(b, m) == [tag |-> "DATA", seq |-> b, msg |-> m]
Ack(b) == [tag |-> "ACK", seq |-> b]

VARIABLES
  txBit, txQueue,                 \* AbpTxState (active elided: TRUE)
  rxExpected, rxDeliver, rxAcks,  \* AbpRxState (active elided: TRUE)
  chTR, chRT,                     \* FIFO FlightState per direction
  obsSent, obsReceived, obsFlag   \* WDL observer

vars == <<txBit, txQueue, rxExpected, rxDeliver, rxAcks, chTR, chRT,
          obsSent, obsReceived, obsFlag>>

Init ==
  /\ txBit = 0 /\ txQueue = <<>>
  /\ rxExpected = 0 /\ rxDeliver = <<>> /\ rxAcks = <<>>
  /\ chTR = <<>> /\ chRT = <<>>
  /\ obsSent = {} /\ obsReceived = {} /\ obsFlag = "ok"

(* Environment: the harness offers the least not-yet-sent message. *)
SendMsg(m) ==
  /\ m \notin obsSent
  /\ \A k \in Messages : (k < m) => (k \in obsSent)
  /\ txQueue' = Append(txQueue, m)
  /\ obsSent' = obsSent \cup {m}
  /\ UNCHANGED <<txBit, rxExpected, rxDeliver, rxAcks, chTR, chRT,
                obsReceived, obsFlag>>

(* Retransmission of the front packet; loss resolves at send time:
   the kept and dropped branches are the two disjuncts, and a full
   channel always drops. *)
SendPktTR ==
  /\ txQueue # <<>>
  /\ \/ /\ Len(chTR) < Capacity
        /\ chTR' = Append(chTR, Data(txBit, Head(txQueue)))
     \/ chTR' = chTR
  /\ UNCHANGED <<txBit, txQueue, rxExpected, rxDeliver, rxAcks, chRT,
                obsSent, obsReceived, obsFlag>>

(* FIFO delivery to the receiver: deliver fresh data, acknowledge
   fresh and duplicate data alike into a bounded ack buffer. *)
RecvPktTR ==
  /\ chTR # <<>>
  /\ LET p == Head(chTR) IN
       /\ chTR' = Tail(chTR)
       /\ IF p.seq = rxExpected
          THEN /\ rxDeliver' = Append(rxDeliver, p.msg)
               /\ rxExpected' = 1 - rxExpected
          ELSE UNCHANGED <<rxDeliver, rxExpected>>
       /\ IF Len(rxAcks) < MaxPendingAcks
          THEN rxAcks' = Append(rxAcks, p.seq)
          ELSE UNCHANGED rxAcks
  /\ UNCHANGED <<txBit, txQueue, chRT, obsSent, obsReceived, obsFlag>>

SendPktRT ==
  /\ rxAcks # <<>>
  /\ rxAcks' = Tail(rxAcks)
  /\ \/ /\ Len(chRT) < Capacity
        /\ chRT' = Append(chRT, Ack(Head(rxAcks)))
     \/ chRT' = chRT
  /\ UNCHANGED <<txBit, txQueue, rxExpected, rxDeliver, chTR,
                obsSent, obsReceived, obsFlag>>

(* The matching ack bit retires the front message and flips the bit. *)
RecvPktRT ==
  /\ chRT # <<>>
  /\ chRT' = Tail(chRT)
  /\ IF (Head(chRT).seq = txBit) /\ (txQueue # <<>>)
     THEN /\ txQueue' = Tail(txQueue)
          /\ txBit' = 1 - txBit
     ELSE UNCHANGED <<txQueue, txBit>>
  /\ UNCHANGED <<rxExpected, rxDeliver, rxAcks, chTR,
                obsSent, obsReceived, obsFlag>>

(* Delivery to the environment, scored by the WDL observer: each message
   is offered at most once, so a repeated member of obsReceived is a
   duplicate (DL4) and a receive that was never sent is a phantom (DL5). *)
ReceiveMsg(m) ==
  /\ rxDeliver # <<>> /\ Head(rxDeliver) = m
  /\ rxDeliver' = Tail(rxDeliver)
  /\ obsFlag' = IF m \in obsReceived THEN "duplicate"
                ELSE IF m \notin obsSent THEN "phantom"
                ELSE obsFlag
  /\ obsReceived' = obsReceived \cup {m}
  /\ UNCHANGED <<txBit, txQueue, rxExpected, rxAcks, chTR, chRT, obsSent>>

Next ==
  \/ \E m \in Messages : SendMsg(m) \/ ReceiveMsg(m)
  \/ SendPktTR \/ RecvPktTR \/ SendPktRT \/ RecvPktRT

Spec == Init /\ [][Next]_vars

NoDuplicate == obsFlag # "duplicate"
NoPhantom == obsFlag # "phantom"
Safety == obsFlag = "ok"

THEOREM Spec => []Safety
====
