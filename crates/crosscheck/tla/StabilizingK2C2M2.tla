---- MODULE StabilizingK2C2M2 ----
\* Emitted by dl-crosscheck. DO NOT EDIT: regenerate with
\*   cargo run -p dl-crosscheck --bin emit_tla -- --out crates/crosscheck/tla
\* Instance: self-stabilizing protocol (K = 2) over 2-slot reordering channels, 2 messages, clean start, crash-free and woken
\*
\* Action atoms of this finite instance (name : class : IOA rendering):
\*   SendMsg_m0 : input : send_msg^t,r(m0)
\*   SendMsg_m1 : input : send_msg^t,r(m1)
\*   ReceiveMsg_m0 : output : receive_msg^t,r(m0)
\*   ReceiveMsg_m1 : output : receive_msg^t,r(m1)
\*   SendPkt_tr_data0_m0 : output : send_pkt^t,r(⟨DATA#0 m0⟩)
\*   SendPkt_tr_data0_m1 : output : send_pkt^t,r(⟨DATA#0 m1⟩)
\*   SendPkt_tr_data1_m0 : output : send_pkt^t,r(⟨DATA#1 m0⟩)
\*   SendPkt_tr_data1_m1 : output : send_pkt^t,r(⟨DATA#1 m1⟩)
\*   ReceivePkt_tr_data0_m0 : output : receive_pkt^t,r(⟨DATA#0 m0⟩)
\*   ReceivePkt_tr_data0_m1 : output : receive_pkt^t,r(⟨DATA#0 m1⟩)
\*   ReceivePkt_tr_data1_m0 : output : receive_pkt^t,r(⟨DATA#1 m0⟩)
\*   ReceivePkt_tr_data1_m1 : output : receive_pkt^t,r(⟨DATA#1 m1⟩)
\*   SendPkt_rt_ack0 : output : send_pkt^r,t(⟨ACK#0⟩)
\*   SendPkt_rt_ack1 : output : send_pkt^r,t(⟨ACK#1⟩)
\*   ReceivePkt_rt_ack0 : output : receive_pkt^r,t(⟨ACK#0⟩)
\*   ReceivePkt_rt_ack1 : output : receive_pkt^r,t(⟨ACK#1⟩)

EXTENDS Naturals, Sequences

Messages == 0 .. 1
Capacity == 2
K == 2  \* channel-capacity bound: commit needs K + 1 copies
MaxPendingAcks == 2

Data(s, m) == [tag |-> "DATA", seq |-> s, msg |-> m]
Ack(s) == [tag |-> "ACK", seq |-> s]
NoCand == [seq |-> -1, msg |-> -1]
RemoveAt(s, i) == SubSeq(s, 1, i - 1) \o SubSeq(s, i + 1, Len(s))

VARIABLES
  txSeq, txAcked, txQueue,       \* StabTxState (active elided: TRUE)
  rxExpected, rxCand, rxCopies,  \* StabRxState candidate counting
  rxDeliver, rxAcks,
  chTR, chRT,                    \* reordering bags (delivery by index)
  obsSent, obsReceived, obsFlag

vars == <<txSeq, txAcked, txQueue, rxExpected, rxCand, rxCopies,
          rxDeliver, rxAcks, chTR, chRT, obsSent, obsReceived, obsFlag>>

Init ==
  /\ txSeq = 0 /\ txAcked = 0 /\ txQueue = <<>>
  /\ rxExpected = 0 /\ rxCand = NoCand /\ rxCopies = 0
  /\ rxDeliver = <<>> /\ rxAcks = <<>>
  /\ chTR = <<>> /\ chRT = <<>>
  /\ obsSent = {} /\ obsReceived = {} /\ obsFlag = "ok"

(* Environment: the harness offers the least not-yet-sent message. *)
SendMsg(m) ==
  /\ m \notin obsSent
  /\ \A k \in Messages : (k < m) => (k \in obsSent)
  /\ txQueue' = Append(txQueue, m)
  /\ obsSent' = obsSent \cup {m}
  /\ UNCHANGED <<txSeq, txAcked, rxExpected, rxCand, rxCopies, rxDeliver,
                rxAcks, chTR, chRT, obsReceived, obsFlag>>

(* The transmitter repeats Data(txSeq, front); loss resolves at send
   time, and a full channel always drops. *)
SendPktTR ==
  /\ txQueue # <<>>
  /\ \/ /\ Len(chTR) < Capacity
        /\ chTR' = Append(chTR, Data(txSeq, Head(txQueue)))
     \/ chTR' = chTR
  /\ UNCHANGED <<txSeq, txAcked, txQueue, rxExpected, rxCand, rxCopies,
                rxDeliver, rxAcks, chRT, obsSent, obsReceived, obsFlag>>

(* Reordering delivery: any in-flight packet. Stale data is
   re-acknowledged only; non-stale data is counted — K + 1 identical
   copies outlast any ghost population and commit the message. *)
RecvPktTR ==
  /\ chTR # <<>>
  /\ \E i \in 1 .. Len(chTR) :
       LET p == chTR[i] IN
         /\ chTR' = RemoveAt(chTR, i)
         /\ IF p.seq < rxExpected
            THEN /\ rxAcks' = IF Len(rxAcks) < MaxPendingAcks
                              THEN Append(rxAcks, p.seq)
                              ELSE rxAcks
                 /\ UNCHANGED <<rxExpected, rxCand, rxCopies, rxDeliver>>
            ELSE LET match == rxCand = [seq |-> p.seq, msg |-> p.msg]
                     copies2 == IF match THEN rxCopies + 1 ELSE 1
                 IN IF copies2 > K
                    THEN /\ rxDeliver' = Append(rxDeliver, p.msg)
                         /\ rxExpected' = p.seq + 1
                         /\ rxCand' = NoCand /\ rxCopies' = 0
                         /\ rxAcks' = IF Len(rxAcks) < MaxPendingAcks
                                      THEN Append(rxAcks, p.seq)
                                      ELSE rxAcks
                    ELSE /\ rxCand' = [seq |-> p.seq, msg |-> p.msg]
                         /\ rxCopies' = copies2
                         /\ UNCHANGED <<rxExpected, rxDeliver, rxAcks>>
  /\ UNCHANGED <<txSeq, txAcked, txQueue, chRT, obsSent, obsReceived, obsFlag>>

SendPktRT ==
  /\ rxAcks # <<>>
  /\ rxAcks' = Tail(rxAcks)
  /\ \/ /\ Len(chRT) < Capacity
        /\ chRT' = Append(chRT, Ack(Head(rxAcks)))
     \/ chRT' = chRT
  /\ UNCHANGED <<txSeq, txAcked, txQueue, rxExpected, rxCand, rxCopies,
                rxDeliver, chTR, obsSent, obsReceived, obsFlag>>

(* Reordering ack consumption: matching acks are counted; the
   K + 1-th retires the front message and advances txSeq. *)
RecvPktRT ==
  /\ chRT # <<>>
  /\ \E i \in 1 .. Len(chRT) :
       LET p == chRT[i] IN
         /\ chRT' = RemoveAt(chRT, i)
         /\ IF (p.seq = txSeq) /\ (txQueue # <<>>)
            THEN IF txAcked >= K
                 THEN /\ txQueue' = Tail(txQueue)
                      /\ txSeq' = txSeq + 1
                      /\ txAcked' = 0
                 ELSE /\ txAcked' = txAcked + 1
                      /\ UNCHANGED <<txQueue, txSeq>>
            ELSE UNCHANGED <<txQueue, txSeq, txAcked>>
  /\ UNCHANGED <<rxExpected, rxCand, rxCopies, rxDeliver, rxAcks, chTR,
                obsSent, obsReceived, obsFlag>>

(* Delivery to the environment, scored by the WDL observer: each message
   is offered at most once, so a repeated member of obsReceived is a
   duplicate (DL4) and a receive that was never sent is a phantom (DL5). *)
ReceiveMsg(m) ==
  /\ rxDeliver # <<>> /\ Head(rxDeliver) = m
  /\ rxDeliver' = Tail(rxDeliver)
  /\ obsFlag' = IF m \in obsReceived THEN "duplicate"
                ELSE IF m \notin obsSent THEN "phantom"
                ELSE obsFlag
  /\ obsReceived' = obsReceived \cup {m}
  /\ UNCHANGED <<txSeq, txAcked, txQueue, rxExpected, rxCand, rxCopies,
                rxAcks, chTR, chRT, obsSent>>

Next ==
  \/ \E m \in Messages : SendMsg(m) \/ ReceiveMsg(m)
  \/ SendPktTR \/ RecvPktTR \/ SendPktRT \/ RecvPktRT

Spec == Init /\ [][Next]_vars

NoDuplicate == obsFlag # "duplicate"
NoPhantom == obsFlag # "phantom"
Safety == obsFlag = "ok"

THEOREM Spec => []Safety
====
