//! Data link protocols: station automata, their signatures, and the
//! constraints of §5.
//!
//! A data link protocol is a pair `(Aᵗ, Aʳ)` of a *transmitting automaton*
//! and a *receiving automaton* with the external signatures of §5.1
//! (enforced here by [`transmitter_classify`] / [`receiver_classify`],
//! which concrete protocols delegate their `classify` to, and audited by
//! [`check_station_signature`]).
//!
//! The constraints used by the impossibility results are exposed as
//! capabilities:
//!
//! * **message-independence** (§5.3.1) — the [`MessageIndependent`] trait
//!   lets the engines rename the messages stored in a state, realizing the
//!   equivalence relation of [`crate::equivalence`];
//! * **crashing** (§5.3.2) — audited by [`check_crashing`]: a unique start
//!   state that every state steps to on `crash`;
//! * **bounded headers / k-boundedness** (§5.3.1, §8.1) — declared in
//!   [`ProtocolInfo`] and exercised by the header-impossibility engine.

use ioa::action::ActionClass;
use ioa::automaton::Automaton;

use crate::action::{Dir, DlAction, Station};
use crate::equivalence::MsgRenaming;

/// The §5.1 signature of a transmitting automaton for `(t, r)`.
///
/// Inputs: `send_msg^{t,r}`, `receive_pkt^{r,t}`, `wake^{t,r}`,
/// `fail^{t,r}`, `crash^{t,r}`. Outputs: `send_pkt^{t,r}`. Internal actions
/// are tagged with the station.
#[must_use]
pub fn transmitter_classify(a: &DlAction) -> Option<ActionClass> {
    match a {
        DlAction::SendMsg(_)
        | DlAction::ReceivePkt(Dir::RT, _)
        | DlAction::Wake(Dir::TR)
        | DlAction::Fail(Dir::TR)
        | DlAction::Crash(Station::T) => Some(ActionClass::Input),
        DlAction::SendPkt(Dir::TR, _) => Some(ActionClass::Output),
        DlAction::Internal(Station::T, _) => Some(ActionClass::Internal),
        _ => None,
    }
}

/// The §5.1 signature of a receiving automaton for `(t, r)`.
///
/// Inputs: `receive_pkt^{t,r}`, `wake^{r,t}`, `fail^{r,t}`, `crash^{r,t}`.
/// Outputs: `send_pkt^{r,t}`, `receive_msg^{t,r}`.
#[must_use]
pub fn receiver_classify(a: &DlAction) -> Option<ActionClass> {
    match a {
        DlAction::ReceivePkt(Dir::TR, _)
        | DlAction::Wake(Dir::RT)
        | DlAction::Fail(Dir::RT)
        | DlAction::Crash(Station::R) => Some(ActionClass::Input),
        DlAction::SendPkt(Dir::RT, _) | DlAction::ReceiveMsg(_) => Some(ActionClass::Output),
        DlAction::Internal(Station::R, _) => Some(ActionClass::Internal),
        _ => None,
    }
}

/// The canonical §5.1 classifier for the given station.
#[must_use]
pub fn station_classify(station: Station, a: &DlAction) -> Option<ActionClass> {
    match station {
        Station::T => transmitter_classify(a),
        Station::R => receiver_classify(a),
    }
}

/// The signature of a physical channel in direction `d` (§3, Figure 1).
///
/// Inputs: `send_pkt^{d}`, `wake^{d}`, `fail^{d}`, `crash` of the sending
/// station. Outputs: `receive_pkt^{d}`.
#[must_use]
pub fn channel_classify(dir: Dir, a: &DlAction) -> Option<ActionClass> {
    match a {
        DlAction::SendPkt(d, _) if *d == dir => Some(ActionClass::Input),
        DlAction::Wake(d) | DlAction::Fail(d) if *d == dir => Some(ActionClass::Input),
        DlAction::Crash(s) if *s == dir.sender() => Some(ActionClass::Input),
        DlAction::ReceivePkt(d, _) if *d == dir => Some(ActionClass::Output),
        _ => None,
    }
}

/// The station whose protocol automaton has this action in its §5.1
/// signature. Every data-link action belongs to exactly one station
/// (channels share `send_pkt`/`receive_pkt` with stations, but each such
/// action names the station that controls or consumes it).
#[must_use]
pub fn owning_station(a: &DlAction) -> Station {
    match a {
        DlAction::SendMsg(_)
        | DlAction::Wake(Dir::TR)
        | DlAction::Fail(Dir::TR)
        | DlAction::Crash(Station::T)
        | DlAction::SendPkt(Dir::TR, _)
        | DlAction::ReceivePkt(Dir::RT, _)
        | DlAction::Internal(Station::T, _) => Station::T,
        DlAction::ReceiveMsg(_)
        | DlAction::Wake(Dir::RT)
        | DlAction::Fail(Dir::RT)
        | DlAction::Crash(Station::R)
        | DlAction::SendPkt(Dir::RT, _)
        | DlAction::ReceivePkt(Dir::TR, _)
        | DlAction::Internal(Station::R, _) => Station::R,
    }
}

/// A protocol automaton residing at one station.
///
/// This marker carries the station name so generic machinery (the sim
/// harness, the proof engines) can select the right signature, crash
/// action, and channel directions.
pub trait StationAutomaton: Automaton<Action = DlAction> {
    /// The station this automaton runs at.
    fn station(&self) -> Station;

    /// A **corrupted initial configuration** (the arXiv 1011.3632 fault
    /// class, generalized to the whole zoo): the start state with its
    /// protocol counters skewed by `seq`. Protocols override this to map
    /// `seq` into whatever sequence/window/bit machinery they keep;
    /// the default is the honest start state, and every implementation
    /// must satisfy `corrupted_start(0) == start_states()[0]` so that a
    /// zero skew is indistinguishable from no corruption at all.
    fn corrupted_start(&self, seq: u64) -> Self::State {
        let _ = seq;
        self.start_states()
            .into_iter()
            .next()
            .expect("station automata have a start state")
    }
}

/// An adapter placing a station automaton in a corrupted initial
/// configuration: identical to the inner automaton except that its unique
/// start state is [`StationAutomaton::corrupted_start`] of `seq`.
///
/// With `seq == 0` the adapter is behaviorally identical to the inner
/// automaton (see the `corrupted_start` contract), which is what lets the
/// fuzz targets wrap stations unconditionally without perturbing
/// corruption-free runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptedStart<A> {
    inner: A,
    seq: u64,
}

impl<A> CorruptedStart<A> {
    /// Wraps `inner` with its start state skewed by `seq`.
    pub fn new(inner: A, seq: u64) -> Self {
        CorruptedStart { inner, seq }
    }
}

impl<A: StationAutomaton> Automaton for CorruptedStart<A> {
    type Action = DlAction;
    type State = A::State;

    fn start_states(&self) -> Vec<A::State> {
        vec![self.inner.corrupted_start(self.seq)]
    }
    fn classify(&self, a: &DlAction) -> Option<ActionClass> {
        self.inner.classify(a)
    }
    fn successors(&self, s: &A::State, a: &DlAction) -> Vec<A::State> {
        self.inner.successors(s, a)
    }
    fn try_for_each_successor(
        &self,
        s: &A::State,
        a: &DlAction,
        f: &mut dyn FnMut(A::State) -> std::ops::ControlFlow<()>,
    ) -> std::ops::ControlFlow<()> {
        self.inner.try_for_each_successor(s, a, f)
    }
    fn step_first(&self, s: &A::State, a: &DlAction) -> Option<A::State> {
        self.inner.step_first(s, a)
    }
    fn enabled_local(&self, s: &A::State) -> Vec<DlAction> {
        self.inner.enabled_local(s)
    }
    fn for_each_enabled_local(
        &self,
        s: &A::State,
        f: &mut dyn FnMut(DlAction) -> std::ops::ControlFlow<()>,
    ) -> std::ops::ControlFlow<()> {
        self.inner.for_each_enabled_local(s, f)
    }
    fn task_of(&self, a: &DlAction) -> ioa::automaton::TaskId {
        self.inner.task_of(a)
    }
    fn task_count(&self) -> usize {
        self.inner.task_count()
    }
}

impl<A: StationAutomaton> StationAutomaton for CorruptedStart<A> {
    fn station(&self) -> Station {
        self.inner.station()
    }
    fn corrupted_start(&self, seq: u64) -> Self::State {
        self.inner.corrupted_start(seq)
    }
}

impl<A: StationAutomaton + MessageIndependent> MessageIndependent for CorruptedStart<A> {
    fn relabel_state(&self, state: &Self::State, renaming: &MsgRenaming) -> Self::State {
        self.inner.relabel_state(state, renaming)
    }
}

/// Message-independence (§5.3.1) as an executable capability: applying a
/// message renaming to a state substitutes every stored message and touches
/// nothing else.
///
/// Implementations must satisfy (and the workspace property-tests) the
/// paper's axioms in this concrete form: for every reachable state `s`,
/// renaming `ρ`, and action `a` enabled in `s`,
///
/// * `ρ(a)` is enabled in `ρ(s)` (axioms 2–4), and
/// * `ρ(step(s, a)) = step(ρ(s), ρ(a))` (axiom 5),
///
/// where `ρ(a)` is [`MsgRenaming::apply_action`].
pub trait MessageIndependent: Automaton<Action = DlAction> {
    /// Applies `renaming` to every message stored in `state`.
    fn relabel_state(&self, state: &Self::State, renaming: &MsgRenaming) -> Self::State;
}

/// Static metadata a protocol declares about itself; consumed by the proof
/// engines and the benchmarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolInfo {
    /// Human-readable protocol name.
    pub name: &'static str,
    /// `true` if both automata are *crashing* (§5.3.2): a crash resets them
    /// to their unique start state. Protocols with non-volatile memory are
    /// not crashing.
    pub crashing: bool,
    /// Number of distinct packet headers the protocol can ever send, if
    /// finite ("bounded headers", §5.3.1). `None` for protocols like
    /// Stenning's whose header space is unbounded.
    pub header_bound: Option<u64>,
    /// The paper's §8.1 `k`: some execution transmits any single message
    /// using at most `k` `receive_pkt^{t,r}` events, if such a bound is
    /// known. Most practical protocols are 1-bounded.
    pub k_bound: Option<usize>,
    /// The §9 extension: the protocol may interpret *simple* message
    /// content (e.g. length) as long as messages fall into finitely many
    /// equivalence classes, each infinite. `None` means fully
    /// message-independent (every message equivalent); `Some(c)` means
    /// messages are equivalent iff congruent modulo `c`, and the proof
    /// engines must draw fresh messages from the reference message's
    /// class.
    pub msg_class_modulus: Option<u64>,
}

/// A data link protocol: the pair `(Aᵗ, Aʳ)` plus its declared metadata.
#[derive(Debug, Clone)]
pub struct DataLinkProtocol<T, R> {
    /// The transmitting automaton `Aᵗ`.
    pub transmitter: T,
    /// The receiving automaton `Aʳ`.
    pub receiver: R,
    /// Declared constraints/capabilities.
    pub info: ProtocolInfo,
}

impl<T, R> DataLinkProtocol<T, R>
where
    T: StationAutomaton,
    R: StationAutomaton,
{
    /// Pairs a transmitter and receiver.
    ///
    /// # Panics
    ///
    /// Panics if `transmitter` is not at [`Station::T`] or `receiver` not
    /// at [`Station::R`].
    pub fn new(transmitter: T, receiver: R, info: ProtocolInfo) -> Self {
        assert_eq!(
            transmitter.station(),
            Station::T,
            "transmitter must be at station t"
        );
        assert_eq!(
            receiver.station(),
            Station::R,
            "receiver must be at station r"
        );
        DataLinkProtocol {
            transmitter,
            receiver,
            info,
        }
    }
}

/// Audits that an automaton's signature matches the canonical §5.1
/// signature for its station, on the given sample of actions.
///
/// # Errors
///
/// Returns the first action whose classification disagrees, with both
/// classifications.
pub fn check_station_signature<M>(
    automaton: &M,
    sample: &[DlAction],
) -> Result<(), (DlAction, Option<ActionClass>, Option<ActionClass>)>
where
    M: StationAutomaton,
{
    let station = automaton.station();
    for a in sample {
        let got = automaton.classify(a);
        let want = station_classify(station, a);
        if got != want {
            return Err((*a, got, want));
        }
    }
    Ok(())
}

/// Audits the *crashing* property (§5.3.2) on a sample of states: the
/// automaton must have a unique start state, and `crash` from every sample
/// state must step exactly to it.
///
/// # Errors
///
/// Returns a description of the first discrepancy.
pub fn check_crashing<M>(automaton: &M, sample: &[M::State]) -> Result<(), String>
where
    M: StationAutomaton,
{
    let starts = automaton.start_states();
    if starts.len() != 1 {
        return Err(format!(
            "crashing requires a unique start state; found {}",
            starts.len()
        ));
    }
    let q0 = &starts[0];
    let crash = DlAction::Crash(automaton.station());
    for s in sample {
        let succs = automaton.successors(s, &crash);
        if succs.as_slice() != std::slice::from_ref(q0) {
            return Err(format!(
                "crash from state {s:?} yields {succs:?}, expected exactly the start state {q0:?}"
            ));
        }
    }
    Ok(())
}

/// A sample of data-link actions covering every constructor, for signature
/// audits and compatibility checks.
#[must_use]
pub fn action_sample() -> Vec<DlAction> {
    use crate::action::{Msg, Packet};
    let p = Packet::data(0, Msg(0));
    let q = Packet::ack(1);
    let mut v = Vec::new();
    v.push(DlAction::SendMsg(Msg(0)));
    v.push(DlAction::ReceiveMsg(Msg(0)));
    for d in Dir::BOTH {
        v.push(DlAction::SendPkt(d, p));
        v.push(DlAction::SendPkt(d, q));
        v.push(DlAction::ReceivePkt(d, p));
        v.push(DlAction::ReceivePkt(d, q));
        v.push(DlAction::Wake(d));
        v.push(DlAction::Fail(d));
    }
    v.push(DlAction::Crash(Station::T));
    v.push(DlAction::Crash(Station::R));
    v.push(DlAction::Internal(Station::T, 0));
    v.push(DlAction::Internal(Station::R, 0));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Msg, Packet};
    use ioa::automaton::TaskId;

    #[test]
    fn transmitter_signature_matches_paper() {
        use ActionClass::*;
        let p = Packet::data(0, Msg(0));
        assert_eq!(
            transmitter_classify(&DlAction::SendMsg(Msg(0))),
            Some(Input)
        );
        assert_eq!(
            transmitter_classify(&DlAction::ReceivePkt(Dir::RT, p)),
            Some(Input)
        );
        assert_eq!(transmitter_classify(&DlAction::Wake(Dir::TR)), Some(Input));
        assert_eq!(transmitter_classify(&DlAction::Fail(Dir::TR)), Some(Input));
        assert_eq!(
            transmitter_classify(&DlAction::Crash(Station::T)),
            Some(Input)
        );
        assert_eq!(
            transmitter_classify(&DlAction::SendPkt(Dir::TR, p)),
            Some(Output)
        );
        assert_eq!(
            transmitter_classify(&DlAction::Internal(Station::T, 3)),
            Some(Internal)
        );
        // Not in the signature:
        assert_eq!(transmitter_classify(&DlAction::ReceiveMsg(Msg(0))), None);
        assert_eq!(transmitter_classify(&DlAction::SendPkt(Dir::RT, p)), None);
        assert_eq!(
            transmitter_classify(&DlAction::ReceivePkt(Dir::TR, p)),
            None
        );
        assert_eq!(transmitter_classify(&DlAction::Wake(Dir::RT)), None);
        assert_eq!(transmitter_classify(&DlAction::Crash(Station::R)), None);
        assert_eq!(
            transmitter_classify(&DlAction::Internal(Station::R, 0)),
            None
        );
    }

    #[test]
    fn receiver_signature_matches_paper() {
        use ActionClass::*;
        let p = Packet::data(0, Msg(0));
        assert_eq!(
            receiver_classify(&DlAction::ReceivePkt(Dir::TR, p)),
            Some(Input)
        );
        assert_eq!(receiver_classify(&DlAction::Wake(Dir::RT)), Some(Input));
        assert_eq!(receiver_classify(&DlAction::Fail(Dir::RT)), Some(Input));
        assert_eq!(receiver_classify(&DlAction::Crash(Station::R)), Some(Input));
        assert_eq!(
            receiver_classify(&DlAction::SendPkt(Dir::RT, p)),
            Some(Output)
        );
        assert_eq!(
            receiver_classify(&DlAction::ReceiveMsg(Msg(0))),
            Some(Output)
        );
        assert_eq!(receiver_classify(&DlAction::SendMsg(Msg(0))), None);
        assert_eq!(receiver_classify(&DlAction::SendPkt(Dir::TR, p)), None);
        assert_eq!(receiver_classify(&DlAction::Crash(Station::T)), None);
    }

    #[test]
    fn channel_signature_matches_paper() {
        use ActionClass::*;
        let p = Packet::data(0, Msg(0));
        assert_eq!(
            channel_classify(Dir::TR, &DlAction::SendPkt(Dir::TR, p)),
            Some(Input)
        );
        assert_eq!(
            channel_classify(Dir::TR, &DlAction::ReceivePkt(Dir::TR, p)),
            Some(Output)
        );
        assert_eq!(
            channel_classify(Dir::TR, &DlAction::Wake(Dir::TR)),
            Some(Input)
        );
        assert_eq!(
            channel_classify(Dir::TR, &DlAction::Fail(Dir::TR)),
            Some(Input)
        );
        // crash^{t,r} (the transmitting station) is an input of PL^{t,r}.
        assert_eq!(
            channel_classify(Dir::TR, &DlAction::Crash(Station::T)),
            Some(Input)
        );
        assert_eq!(
            channel_classify(Dir::TR, &DlAction::Crash(Station::R)),
            None
        );
        assert_eq!(
            channel_classify(Dir::TR, &DlAction::SendPkt(Dir::RT, p)),
            None
        );
        assert_eq!(channel_classify(Dir::TR, &DlAction::SendMsg(Msg(0))), None);
        // And symmetrically for r→t.
        assert_eq!(
            channel_classify(Dir::RT, &DlAction::Crash(Station::R)),
            Some(Input)
        );
    }

    /// A trivial conforming transmitter used to exercise the audits.
    #[derive(Clone)]
    struct NullTransmitter;
    impl Automaton for NullTransmitter {
        type Action = DlAction;
        type State = u8;

        fn start_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn classify(&self, a: &DlAction) -> Option<ActionClass> {
            transmitter_classify(a)
        }
        fn successors(&self, s: &u8, a: &DlAction) -> Vec<u8> {
            match self.classify(a) {
                Some(ActionClass::Input) => {
                    if *a == DlAction::Crash(Station::T) {
                        vec![0]
                    } else {
                        vec![s.wrapping_add(1)]
                    }
                }
                _ => vec![],
            }
        }
        fn enabled_local(&self, _s: &u8) -> Vec<DlAction> {
            vec![]
        }
        fn task_of(&self, _a: &DlAction) -> TaskId {
            TaskId(0)
        }
        fn task_count(&self) -> usize {
            1
        }
    }
    impl StationAutomaton for NullTransmitter {
        fn station(&self) -> Station {
            Station::T
        }
    }

    #[derive(Clone)]
    struct NullReceiver;
    impl Automaton for NullReceiver {
        type Action = DlAction;
        type State = u8;

        fn start_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn classify(&self, a: &DlAction) -> Option<ActionClass> {
            receiver_classify(a)
        }
        fn successors(&self, s: &u8, a: &DlAction) -> Vec<u8> {
            match self.classify(a) {
                Some(ActionClass::Input) => {
                    if *a == DlAction::Crash(Station::R) {
                        vec![0]
                    } else {
                        vec![*s]
                    }
                }
                _ => vec![],
            }
        }
        fn enabled_local(&self, _s: &u8) -> Vec<DlAction> {
            vec![]
        }
        fn task_of(&self, _a: &DlAction) -> TaskId {
            TaskId(0)
        }
        fn task_count(&self) -> usize {
            1
        }
    }
    impl StationAutomaton for NullReceiver {
        fn station(&self) -> Station {
            Station::R
        }
    }

    #[test]
    fn signature_audit_accepts_conforming_automaton() {
        assert!(check_station_signature(&NullTransmitter, &action_sample()).is_ok());
        assert!(check_station_signature(&NullReceiver, &action_sample()).is_ok());
    }

    #[test]
    fn crashing_audit() {
        assert!(check_crashing(&NullTransmitter, &[0, 1, 2, 255]).is_ok());
        assert!(check_crashing(&NullReceiver, &[0, 7]).is_ok());
    }

    #[test]
    fn protocol_pairing_validates_stations() {
        let info = ProtocolInfo {
            name: "null",
            crashing: true,
            header_bound: Some(0),
            k_bound: None,
            msg_class_modulus: None,
        };
        let p = DataLinkProtocol::new(NullTransmitter, NullReceiver, info);
        assert_eq!(p.info.name, "null");
    }

    #[test]
    #[should_panic(expected = "transmitter must be at station t")]
    fn protocol_pairing_rejects_swapped_stations() {
        let info = ProtocolInfo {
            name: "bad",
            crashing: true,
            header_bound: None,
            k_bound: None,
            msg_class_modulus: None,
        };
        let _ = DataLinkProtocol::new(NullReceiver, NullReceiver, info);
    }

    #[test]
    fn owning_station_partitions_the_universe() {
        for a in action_sample() {
            let x = owning_station(&a);
            // The owner's signature contains the action; the other
            // station's does not.
            assert!(station_classify(x, &a).is_some(), "{a}");
            assert!(station_classify(x.other(), &a).is_none(), "{a}");
        }
    }

    #[test]
    fn action_sample_covers_all_constructors() {
        let sample = action_sample();
        assert!(sample.iter().any(|a| matches!(a, DlAction::SendMsg(_))));
        assert!(sample.iter().any(|a| matches!(a, DlAction::ReceiveMsg(_))));
        assert!(sample.iter().any(|a| matches!(a, DlAction::SendPkt(..))));
        assert!(sample.iter().any(|a| matches!(a, DlAction::ReceivePkt(..))));
        assert!(sample.iter().any(|a| matches!(a, DlAction::Wake(_))));
        assert!(sample.iter().any(|a| matches!(a, DlAction::Fail(_))));
        assert!(sample.iter().any(|a| matches!(a, DlAction::Crash(_))));
        assert!(sample.iter().any(|a| matches!(a, DlAction::Internal(..))));
    }
}
