//! Executable specifications of the physical and data link layers.
//!
//! * [`wellformed`] — crash intervals and working intervals, shared by both
//!   layer specifications (paper §3 and §4 define them identically, once per
//!   medium direction);
//! * [`physical`] — the `PL` and `PL-FIFO` schedule modules (PL1–PL6);
//! * [`datalink`] — the `DL` and `WDL` schedule modules (DL1–DL8);
//! * [`monitor`] — the streaming [`monitor::TraceMonitor`] that judges all
//!   of the above in a single pass; the physical/datalink batch checkers
//!   are thin replay wrappers over it;
//! * [`reference`] — the frozen quadratic reference checkers, kept as the
//!   oracle for differential tests and the `checker_scaling` bench;
//! * [`liveness`] — patience monitors, the prefix surrogates of the
//!   liveness properties PL6 and DL8;
//! * [`stabilize`] — suffix-mode conformance ([`stabilize::SuffixMonitor`]):
//!   DL verdicts measured from the convergence point, for self-stabilizing
//!   protocols whose correctness is eventual.

pub mod datalink;
pub mod liveness;
pub mod monitor;
pub mod physical;
pub mod reference;
pub mod stabilize;
pub mod wellformed;
