//! Executable specifications of the physical and data link layers.
//!
//! * [`wellformed`] — crash intervals and working intervals, shared by both
//!   layer specifications (paper §3 and §4 define them identically, once per
//!   medium direction);
//! * [`physical`] — the `PL` and `PL-FIFO` schedule modules (PL1–PL6);
//! * [`datalink`] — the `DL` and `WDL` schedule modules (DL1–DL8);
//! * [`liveness`] — patience monitors, the prefix surrogates of the
//!   liveness properties PL6 and DL8.

pub mod datalink;
pub mod liveness;
pub mod physical;
pub mod wellformed;
