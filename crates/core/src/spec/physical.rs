//! The physical layer schedule modules `PL` and `PL-FIFO` (paper §3).
//!
//! A trace is judged as follows (matching the paper's conditional form):
//! if the trace is well-formed and satisfies the *environment* properties
//! PL1 and PL2, then the *channel* properties PL3, PL4 (and PL5 for the
//! FIFO module) must hold; PL6 is a liveness property that no finite trace
//! can violate (it requires *infinitely many* `send_pkt` events), so the
//! finite-trace checker treats it as satisfied and the workspace tests
//! liveness by running channels to quiescence instead.
//!
//! If the environment part fails, the verdict is [`Verdict::Vacuous`]: the
//! specification does not constrain the channel at all in that case.

use std::collections::{HashMap, HashSet};

use ioa::schedule_module::{ScheduleModule, TraceKind, Verdict, Violation};

use crate::action::{Dir, DlAction, Packet};
use crate::spec::wellformed::MediumTimeline;

/// The physical-layer specification for one channel direction: `PL^{d}` or
/// `PL-FIFO^{d}`.
///
/// ```
/// use dl_core::action::{Dir, DlAction, Msg, Packet};
/// use dl_core::spec::physical::PlModule;
/// use ioa::schedule_module::{ScheduleModule, TraceKind};
///
/// let p = Packet::data(0, Msg(1)).with_uid(1);
/// let trace = vec![
///     DlAction::Wake(Dir::TR),
///     DlAction::SendPkt(Dir::TR, p),
///     DlAction::ReceivePkt(Dir::TR, p),
/// ];
/// let verdict = PlModule::pl_fifo(Dir::TR).check(&trace, TraceKind::Complete);
/// assert!(verdict.is_allowed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlModule {
    dir: Dir,
    fifo: bool,
}

impl PlModule {
    /// The (possibly reordering) specification `PL^{dir}`.
    #[must_use]
    pub fn pl(dir: Dir) -> Self {
        PlModule { dir, fifo: false }
    }

    /// The FIFO specification `PL-FIFO^{dir}`.
    #[must_use]
    pub fn pl_fifo(dir: Dir) -> Self {
        PlModule { dir, fifo: true }
    }

    /// The direction this module specifies.
    #[must_use]
    pub fn dir(&self) -> Dir {
        self.dir
    }

    /// `true` if this is the FIFO variant.
    #[must_use]
    pub fn is_fifo(&self) -> bool {
        self.fifo
    }
}

impl ScheduleModule for PlModule {
    type Action = DlAction;

    fn check(&self, trace: &[DlAction], _kind: TraceKind) -> Verdict {
        let timeline = MediumTimeline::scan(trace, self.dir);

        // Hypotheses: well-formedness, PL1, PL2 (environment obligations).
        if let Some(e) = timeline.error() {
            return Verdict::Vacuous(Violation {
                property: "well-formedness",
                at: Some(e.at),
                reason: e.reason.to_string(),
            });
        }
        if let Some(v) = check_pl1(trace, &timeline, self.dir) {
            return Verdict::Vacuous(v);
        }
        if let Some(v) = check_pl2(trace, self.dir) {
            return Verdict::Vacuous(v);
        }

        // Conclusions: PL3, PL4, and PL5 for the FIFO module. (PL6 is not
        // falsifiable on finite traces.)
        if let Some(v) = check_pl3(trace, self.dir) {
            return Verdict::Violated(v);
        }
        if let Some(v) = check_pl4(trace, self.dir) {
            return Verdict::Violated(v);
        }
        if self.fifo {
            if let Some(v) = check_pl5(trace, self.dir) {
                return Verdict::Violated(v);
            }
        }
        Verdict::Satisfied
    }
}

/// PL1: every `send_pkt^{d}` event occurs in a working interval.
#[must_use]
pub fn check_pl1(trace: &[DlAction], timeline: &MediumTimeline, dir: Dir) -> Option<Violation> {
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::SendPkt(d, _) = a {
            if *d == dir && !timeline.in_working_interval(i) {
                return Some(Violation {
                    property: "PL1",
                    at: Some(i),
                    reason: format!("send_pkt^{dir} outside any working interval"),
                });
            }
        }
    }
    None
}

/// PL2: every packet is sent at most once (packets carry analysis-only
/// unique labels; see [`Packet::uid`]).
#[must_use]
pub fn check_pl2(trace: &[DlAction], dir: Dir) -> Option<Violation> {
    let mut seen: HashSet<&Packet> = HashSet::new();
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::SendPkt(d, p) = a {
            if *d == dir && !seen.insert(p) {
                return Some(Violation {
                    property: "PL2",
                    at: Some(i),
                    reason: format!("packet {p} sent twice"),
                });
            }
        }
    }
    None
}

/// PL3: every packet is received at most once.
#[must_use]
pub fn check_pl3(trace: &[DlAction], dir: Dir) -> Option<Violation> {
    let mut seen: HashSet<&Packet> = HashSet::new();
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::ReceivePkt(d, p) = a {
            if *d == dir && !seen.insert(p) {
                return Some(Violation {
                    property: "PL3",
                    at: Some(i),
                    reason: format!("packet {p} received twice"),
                });
            }
        }
    }
    None
}

/// PL4: every `receive_pkt^{d}(p)` is preceded by a `send_pkt^{d}(p)`.
#[must_use]
pub fn check_pl4(trace: &[DlAction], dir: Dir) -> Option<Violation> {
    let mut sent: HashSet<&Packet> = HashSet::new();
    for (i, a) in trace.iter().enumerate() {
        match a {
            DlAction::SendPkt(d, p) if *d == dir => {
                sent.insert(p);
            }
            DlAction::ReceivePkt(d, p) if *d == dir && !sent.contains(p) => {
                return Some(Violation {
                    property: "PL4",
                    at: Some(i),
                    reason: format!("packet {p} received but never sent"),
                });
            }
            _ => {}
        }
    }
    None
}

/// PL5 (FIFO): delivered packets are received in the order they were sent.
///
/// Assumes PL2–PL4 hold (checked first by [`PlModule`]); each received
/// packet is matched to its unique send position, and those positions must
/// be strictly increasing.
#[must_use]
pub fn check_pl5(trace: &[DlAction], dir: Dir) -> Option<Violation> {
    // First send position per packet value (PL2 guarantees uniqueness;
    // checked before PL5 by the module).
    let mut send_pos: HashMap<&Packet, usize> = HashMap::new();
    let mut sends = 0usize;
    let mut last_pos: Option<usize> = None;
    for (i, a) in trace.iter().enumerate() {
        match a {
            DlAction::SendPkt(d, p) if *d == dir => {
                send_pos.entry(p).or_insert(sends);
                sends += 1;
            }
            DlAction::ReceivePkt(d, p) if *d == dir => {
                let pos = *send_pos.get(p)?;
                if let Some(prev) = last_pos {
                    if pos < prev {
                        return Some(Violation {
                            property: "PL5 (FIFO)",
                            at: Some(i),
                            reason: format!(
                                "packet {p} (send position {pos}) received after a packet \
                                 with send position {prev}"
                            ),
                        });
                    }
                }
                last_pos = Some(pos);
            }
            _ => {}
        }
    }
    None
}

/// The indices and packets of in-flight packets: sent on `dir` but not (yet)
/// received. Used by the header-impossibility engine ("in transit", §8).
#[must_use]
pub fn in_transit(trace: &[DlAction], dir: Dir) -> Vec<Packet> {
    let mut sent: Vec<Packet> = Vec::new();
    for a in trace {
        match a {
            DlAction::SendPkt(d, p) if *d == dir => sent.push(*p),
            DlAction::ReceivePkt(d, p) if *d == dir => {
                if let Some(pos) = sent.iter().position(|q| q == p) {
                    sent.remove(pos);
                }
            }
            _ => {}
        }
    }
    sent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Msg, Station};
    use ioa::schedule_module::TraceKind;

    use DlAction::{Crash, Fail, ReceivePkt, SendPkt, Wake};

    fn pkt(seq: u64, uid: u64) -> Packet {
        Packet::data(seq, Msg(seq)).with_uid(uid)
    }

    fn good_trace() -> Vec<DlAction> {
        vec![
            Wake(Dir::TR),
            SendPkt(Dir::TR, pkt(0, 100)),
            SendPkt(Dir::TR, pkt(1, 101)),
            ReceivePkt(Dir::TR, pkt(0, 100)),
            ReceivePkt(Dir::TR, pkt(1, 101)),
        ]
    }

    #[test]
    fn good_trace_satisfies_both_modules() {
        for m in [PlModule::pl(Dir::TR), PlModule::pl_fifo(Dir::TR)] {
            assert_eq!(
                m.check(&good_trace(), TraceKind::Complete),
                Verdict::Satisfied
            );
        }
    }

    #[test]
    fn send_outside_working_interval_is_vacuous() {
        let trace = vec![SendPkt(Dir::TR, pkt(0, 1))];
        let v = PlModule::pl(Dir::TR).check(&trace, TraceKind::Prefix);
        match v {
            Verdict::Vacuous(v) => assert_eq!(v.property, "PL1"),
            other => panic!("expected vacuous, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_send_is_vacuous_pl2() {
        let trace = vec![
            Wake(Dir::TR),
            SendPkt(Dir::TR, pkt(0, 1)),
            SendPkt(Dir::TR, pkt(0, 1)),
        ];
        match PlModule::pl(Dir::TR).check(&trace, TraceKind::Prefix) {
            Verdict::Vacuous(v) => assert_eq!(v.property, "PL2"),
            other => panic!("expected vacuous, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_receive_violates_pl3() {
        let trace = vec![
            Wake(Dir::TR),
            SendPkt(Dir::TR, pkt(0, 1)),
            ReceivePkt(Dir::TR, pkt(0, 1)),
            ReceivePkt(Dir::TR, pkt(0, 1)),
        ];
        let v = PlModule::pl(Dir::TR).check(&trace, TraceKind::Prefix);
        assert_eq!(v.violation().unwrap().property, "PL3");
        assert_eq!(v.violation().unwrap().at, Some(3));
    }

    #[test]
    fn receive_without_send_violates_pl4() {
        let trace = vec![Wake(Dir::TR), ReceivePkt(Dir::TR, pkt(0, 1))];
        let v = PlModule::pl(Dir::TR).check(&trace, TraceKind::Prefix);
        assert_eq!(v.violation().unwrap().property, "PL4");
    }

    #[test]
    fn reordering_violates_fifo_only() {
        let trace = vec![
            Wake(Dir::TR),
            SendPkt(Dir::TR, pkt(0, 1)),
            SendPkt(Dir::TR, pkt(1, 2)),
            ReceivePkt(Dir::TR, pkt(1, 2)),
            ReceivePkt(Dir::TR, pkt(0, 1)),
        ];
        assert_eq!(
            PlModule::pl(Dir::TR).check(&trace, TraceKind::Prefix),
            Verdict::Satisfied
        );
        let v = PlModule::pl_fifo(Dir::TR).check(&trace, TraceKind::Prefix);
        assert_eq!(v.violation().unwrap().property, "PL5 (FIFO)");
    }

    #[test]
    fn losses_do_not_violate_fifo() {
        // Gaps are fine: packet 1 lost, 0 then 2 delivered in order.
        let trace = vec![
            Wake(Dir::TR),
            SendPkt(Dir::TR, pkt(0, 1)),
            SendPkt(Dir::TR, pkt(1, 2)),
            SendPkt(Dir::TR, pkt(2, 3)),
            ReceivePkt(Dir::TR, pkt(0, 1)),
            ReceivePkt(Dir::TR, pkt(2, 3)),
        ];
        assert_eq!(
            PlModule::pl_fifo(Dir::TR).check(&trace, TraceKind::Complete),
            Verdict::Satisfied
        );
    }

    #[test]
    fn crash_ends_working_interval() {
        let trace = vec![
            Wake(Dir::TR),
            Crash(Station::T),
            SendPkt(Dir::TR, pkt(0, 1)),
        ];
        match PlModule::pl(Dir::TR).check(&trace, TraceKind::Prefix) {
            Verdict::Vacuous(v) => assert_eq!(v.property, "PL1"),
            other => panic!("expected vacuous PL1, got {other:?}"),
        }
    }

    #[test]
    fn fail_ends_working_interval() {
        let trace = vec![Wake(Dir::TR), Fail(Dir::TR), SendPkt(Dir::TR, pkt(0, 1))];
        match PlModule::pl(Dir::TR).check(&trace, TraceKind::Prefix) {
            Verdict::Vacuous(v) => assert_eq!(v.property, "PL1"),
            other => panic!("expected vacuous PL1, got {other:?}"),
        }
    }

    #[test]
    fn other_direction_is_ignored() {
        // RT traffic doesn't affect the TR module.
        let trace = vec![
            Wake(Dir::TR),
            ReceivePkt(Dir::RT, pkt(9, 9)), // bogus, but out of scope
            SendPkt(Dir::TR, pkt(0, 1)),
        ];
        assert_eq!(
            PlModule::pl(Dir::TR).check(&trace, TraceKind::Prefix),
            Verdict::Satisfied
        );
    }

    #[test]
    fn in_transit_tracks_unreceived() {
        let trace = vec![
            Wake(Dir::TR),
            SendPkt(Dir::TR, pkt(0, 1)),
            SendPkt(Dir::TR, pkt(1, 2)),
            ReceivePkt(Dir::TR, pkt(0, 1)),
        ];
        assert_eq!(in_transit(&trace, Dir::TR), vec![pkt(1, 2)]);
        assert!(in_transit(&trace, Dir::RT).is_empty());
    }

    #[test]
    fn module_accessors() {
        let m = PlModule::pl_fifo(Dir::RT);
        assert_eq!(m.dir(), Dir::RT);
        assert!(m.is_fifo());
        assert!(!PlModule::pl(Dir::TR).is_fifo());
    }
}
