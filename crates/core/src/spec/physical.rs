//! The physical layer schedule modules `PL` and `PL-FIFO` (paper §3).
//!
//! A trace is judged as follows (matching the paper's conditional form):
//! if the trace is well-formed and satisfies the *environment* properties
//! PL1 and PL2, then the *channel* properties PL3, PL4 (and PL5 for the
//! FIFO module) must hold; PL6 is a liveness property that no finite trace
//! can violate (it requires *infinitely many* `send_pkt` events), so the
//! finite-trace checker treats it as satisfied and the workspace tests
//! liveness by running channels to quiescence instead.
//!
//! If the environment part fails, the verdict is [`Verdict::Vacuous`]: the
//! specification does not constrain the channel at all in that case.
//!
//! Since the streaming-checker rewrite, every function here is a thin
//! replay wrapper over [`crate::spec::monitor::TraceMonitor`]: one linear
//! pass over the trace, identical verdicts, and the same code path the
//! online monitor uses during simulation and exploration.

use ioa::schedule_module::{ScheduleModule, TraceKind, Verdict, Violation};

use crate::action::{Dir, DlAction, Packet};
use crate::spec::monitor::TraceMonitor;
use crate::spec::wellformed::MediumTimeline;

/// The physical-layer specification for one channel direction: `PL^{d}` or
/// `PL-FIFO^{d}`.
///
/// ```
/// use dl_core::action::{Dir, DlAction, Msg, Packet};
/// use dl_core::spec::physical::PlModule;
/// use ioa::schedule_module::{ScheduleModule, TraceKind};
///
/// let p = Packet::data(0, Msg(1)).with_uid(1);
/// let trace = vec![
///     DlAction::Wake(Dir::TR),
///     DlAction::SendPkt(Dir::TR, p),
///     DlAction::ReceivePkt(Dir::TR, p),
/// ];
/// let verdict = PlModule::pl_fifo(Dir::TR).check(&trace, TraceKind::Complete);
/// assert!(verdict.is_allowed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlModule {
    dir: Dir,
    fifo: bool,
}

impl PlModule {
    /// The (possibly reordering) specification `PL^{dir}`.
    #[must_use]
    pub fn pl(dir: Dir) -> Self {
        PlModule { dir, fifo: false }
    }

    /// The FIFO specification `PL-FIFO^{dir}`.
    #[must_use]
    pub fn pl_fifo(dir: Dir) -> Self {
        PlModule { dir, fifo: true }
    }

    /// The direction this module specifies.
    #[must_use]
    pub fn dir(&self) -> Dir {
        self.dir
    }

    /// `true` if this is the FIFO variant.
    #[must_use]
    pub fn is_fifo(&self) -> bool {
        self.fifo
    }
}

impl ScheduleModule for PlModule {
    type Action = DlAction;

    fn check(&self, trace: &[DlAction], _kind: TraceKind) -> Verdict {
        TraceMonitor::scan(trace).pl_verdict(self.dir, self.fifo)
    }
}

/// PL1: every `send_pkt^{d}` event occurs in a working interval.
#[must_use]
pub fn check_pl1(trace: &[DlAction], timeline: &MediumTimeline, dir: Dir) -> Option<Violation> {
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::SendPkt(d, _) = a {
            if *d == dir && !timeline.in_working_interval(i) {
                return Some(Violation {
                    property: "PL1",
                    at: Some(i),
                    reason: format!("send_pkt^{dir} outside any working interval"),
                });
            }
        }
    }
    None
}

/// PL2: every packet is sent at most once (packets carry analysis-only
/// unique labels; see [`Packet::uid`]).
#[must_use]
pub fn check_pl2(trace: &[DlAction], dir: Dir) -> Option<Violation> {
    TraceMonitor::scan(trace).pl_violation(dir, 2).cloned()
}

/// PL3: every packet is received at most once.
#[must_use]
pub fn check_pl3(trace: &[DlAction], dir: Dir) -> Option<Violation> {
    TraceMonitor::scan(trace).pl_violation(dir, 3).cloned()
}

/// PL4: every `receive_pkt^{d}(p)` is preceded by a `send_pkt^{d}(p)`.
#[must_use]
pub fn check_pl4(trace: &[DlAction], dir: Dir) -> Option<Violation> {
    TraceMonitor::scan(trace).pl_violation(dir, 4).cloned()
}

/// PL5 (FIFO): delivered packets are received in the order they were sent.
///
/// Assumes PL2–PL4 hold (checked first by [`PlModule`]): each received
/// packet is matched to its unique send position, and those positions must
/// be strictly increasing. A duplicate send (PL2's violation to report) or
/// a receive of a never-sent packet (PL4's) ends FIFO judgement —
/// violations found before that point stand, so a legal retransmission is
/// never misflagged as reordering.
#[must_use]
pub fn check_pl5(trace: &[DlAction], dir: Dir) -> Option<Violation> {
    TraceMonitor::scan(trace).pl_violation(dir, 5).cloned()
}

/// The packets in flight: sent on `dir` but not (yet) received, in send
/// order. Used by the header-impossibility engine ("in transit", §8).
///
/// Multiset semantics: each receive cancels the *earliest* still-pending
/// send of the same packet value, so under duplicate packet values the
/// in-transit count per value is `sends − receives` (clamped at zero) and
/// the surviving copies are the latest sends.
#[must_use]
pub fn in_transit(trace: &[DlAction], dir: Dir) -> Vec<Packet> {
    TraceMonitor::scan(trace).in_transit(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Msg, Station};
    use ioa::schedule_module::TraceKind;

    use DlAction::{Crash, Fail, ReceivePkt, SendPkt, Wake};

    fn pkt(seq: u64, uid: u64) -> Packet {
        Packet::data(seq, Msg(seq)).with_uid(uid)
    }

    fn good_trace() -> Vec<DlAction> {
        vec![
            Wake(Dir::TR),
            SendPkt(Dir::TR, pkt(0, 100)),
            SendPkt(Dir::TR, pkt(1, 101)),
            ReceivePkt(Dir::TR, pkt(0, 100)),
            ReceivePkt(Dir::TR, pkt(1, 101)),
        ]
    }

    #[test]
    fn good_trace_satisfies_both_modules() {
        for m in [PlModule::pl(Dir::TR), PlModule::pl_fifo(Dir::TR)] {
            assert_eq!(
                m.check(&good_trace(), TraceKind::Complete),
                Verdict::Satisfied
            );
        }
    }

    #[test]
    fn send_outside_working_interval_is_vacuous() {
        let trace = vec![SendPkt(Dir::TR, pkt(0, 1))];
        let v = PlModule::pl(Dir::TR).check(&trace, TraceKind::Prefix);
        match v {
            Verdict::Vacuous(v) => assert_eq!(v.property, "PL1"),
            other => panic!("expected vacuous, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_send_is_vacuous_pl2() {
        let trace = vec![
            Wake(Dir::TR),
            SendPkt(Dir::TR, pkt(0, 1)),
            SendPkt(Dir::TR, pkt(0, 1)),
        ];
        match PlModule::pl(Dir::TR).check(&trace, TraceKind::Prefix) {
            Verdict::Vacuous(v) => assert_eq!(v.property, "PL2"),
            other => panic!("expected vacuous, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_receive_violates_pl3() {
        let trace = vec![
            Wake(Dir::TR),
            SendPkt(Dir::TR, pkt(0, 1)),
            ReceivePkt(Dir::TR, pkt(0, 1)),
            ReceivePkt(Dir::TR, pkt(0, 1)),
        ];
        let v = PlModule::pl(Dir::TR).check(&trace, TraceKind::Prefix);
        assert_eq!(v.violation().unwrap().property, "PL3");
        assert_eq!(v.violation().unwrap().at, Some(3));
    }

    #[test]
    fn receive_without_send_violates_pl4() {
        let trace = vec![Wake(Dir::TR), ReceivePkt(Dir::TR, pkt(0, 1))];
        let v = PlModule::pl(Dir::TR).check(&trace, TraceKind::Prefix);
        assert_eq!(v.violation().unwrap().property, "PL4");
    }

    #[test]
    fn reordering_violates_fifo_only() {
        let trace = vec![
            Wake(Dir::TR),
            SendPkt(Dir::TR, pkt(0, 1)),
            SendPkt(Dir::TR, pkt(1, 2)),
            ReceivePkt(Dir::TR, pkt(1, 2)),
            ReceivePkt(Dir::TR, pkt(0, 1)),
        ];
        assert_eq!(
            PlModule::pl(Dir::TR).check(&trace, TraceKind::Prefix),
            Verdict::Satisfied
        );
        let v = PlModule::pl_fifo(Dir::TR).check(&trace, TraceKind::Prefix);
        assert_eq!(v.violation().unwrap().property, "PL5 (FIFO)");
    }

    #[test]
    fn losses_do_not_violate_fifo() {
        // Gaps are fine: packet 1 lost, 0 then 2 delivered in order.
        let trace = vec![
            Wake(Dir::TR),
            SendPkt(Dir::TR, pkt(0, 1)),
            SendPkt(Dir::TR, pkt(1, 2)),
            SendPkt(Dir::TR, pkt(2, 3)),
            ReceivePkt(Dir::TR, pkt(0, 1)),
            ReceivePkt(Dir::TR, pkt(2, 3)),
        ];
        assert_eq!(
            PlModule::pl_fifo(Dir::TR).check(&trace, TraceKind::Complete),
            Verdict::Satisfied
        );
    }

    #[test]
    fn crash_ends_working_interval() {
        let trace = vec![
            Wake(Dir::TR),
            Crash(Station::T),
            SendPkt(Dir::TR, pkt(0, 1)),
        ];
        match PlModule::pl(Dir::TR).check(&trace, TraceKind::Prefix) {
            Verdict::Vacuous(v) => assert_eq!(v.property, "PL1"),
            other => panic!("expected vacuous PL1, got {other:?}"),
        }
    }

    #[test]
    fn fail_ends_working_interval() {
        let trace = vec![Wake(Dir::TR), Fail(Dir::TR), SendPkt(Dir::TR, pkt(0, 1))];
        match PlModule::pl(Dir::TR).check(&trace, TraceKind::Prefix) {
            Verdict::Vacuous(v) => assert_eq!(v.property, "PL1"),
            other => panic!("expected vacuous PL1, got {other:?}"),
        }
    }

    #[test]
    fn other_direction_is_ignored() {
        // RT traffic doesn't affect the TR module.
        let trace = vec![
            Wake(Dir::TR),
            ReceivePkt(Dir::RT, pkt(9, 9)), // bogus, but out of scope
            SendPkt(Dir::TR, pkt(0, 1)),
        ];
        assert_eq!(
            PlModule::pl(Dir::TR).check(&trace, TraceKind::Prefix),
            Verdict::Satisfied
        );
    }

    #[test]
    fn in_transit_tracks_unreceived() {
        let trace = vec![
            Wake(Dir::TR),
            SendPkt(Dir::TR, pkt(0, 1)),
            SendPkt(Dir::TR, pkt(1, 2)),
            ReceivePkt(Dir::TR, pkt(0, 1)),
        ];
        assert_eq!(in_transit(&trace, Dir::TR), vec![pkt(1, 2)]);
        assert!(in_transit(&trace, Dir::RT).is_empty());
    }

    #[test]
    fn in_transit_pairs_duplicates_as_a_multiset() {
        // The same packet value sent twice, received once: exactly one copy
        // remains in transit (the old first-`position`-match code dropped
        // unmatched receives and could double-count).
        let p = pkt(0, 1);
        let trace = vec![
            Wake(Dir::TR),
            SendPkt(Dir::TR, p),
            SendPkt(Dir::TR, p),
            ReceivePkt(Dir::TR, p),
        ];
        assert_eq!(in_transit(&trace, Dir::TR), vec![p]);

        // An excess receive cancels the *next* send of the value: net count
        // stays sends − receives.
        let trace = vec![
            Wake(Dir::TR),
            SendPkt(Dir::TR, p),
            ReceivePkt(Dir::TR, p),
            ReceivePkt(Dir::TR, p),
            SendPkt(Dir::TR, p),
            SendPkt(Dir::TR, p),
        ];
        assert_eq!(in_transit(&trace, Dir::TR), vec![p]);
    }

    #[test]
    fn retransmission_does_not_count_as_reordering() {
        // p0 sent, delivered; p1 sent, delivered; p0 re-sent (a PL2
        // violation, but *not* reordering). The old checker matched the
        // re-send to p0's original position 0 < 1 and flagged PL5; the
        // duplicate now ends FIFO judgement instead, and the module verdict
        // is vacuous via PL2.
        let trace = vec![
            Wake(Dir::TR),
            SendPkt(Dir::TR, pkt(0, 1)),
            ReceivePkt(Dir::TR, pkt(0, 1)),
            SendPkt(Dir::TR, pkt(1, 2)),
            ReceivePkt(Dir::TR, pkt(1, 2)),
            SendPkt(Dir::TR, pkt(0, 1)),
            ReceivePkt(Dir::TR, pkt(0, 1)),
        ];
        assert_eq!(check_pl5(&trace, Dir::TR), None);
        match PlModule::pl_fifo(Dir::TR).check(&trace, TraceKind::Prefix) {
            Verdict::Vacuous(v) => assert_eq!(v.property, "PL2"),
            other => panic!("expected vacuous PL2, got {other:?}"),
        }
    }

    #[test]
    fn module_accessors() {
        let m = PlModule::pl_fifo(Dir::RT);
        assert_eq!(m.dir(), Dir::RT);
        assert!(m.is_fifo());
        assert!(!PlModule::pl(Dir::TR).is_fifo());
    }
}
