//! Crash intervals and working intervals (paper §3, §4).
//!
//! For one medium direction `d`, the relevant status events are `wake^d`,
//! `fail^d`, and `crash^x` where `x` is the station that *sends* on `d`
//! (the paper writes `crash^{t,r}` for the transmitter of the `(t,r)`
//! channel and `crash^{r,t}` for the receiver-side station, which transmits
//! on the reverse channel).
//!
//! A *crash interval* is a maximal contiguous subsequence containing no
//! crash event. A sequence is **well-formed** for `d` when, inside every
//! crash interval, the `fail` and `wake` events alternate strictly starting
//! with `wake`. A *working interval* runs from a `wake` to the next `fail`
//! or `crash` (exclusive at both ends); a `wake` with no later `fail`/
//! `crash` opens the (at most one) *unbounded* working interval.
//!
//! [`MediumTimeline`] computes all of this in one pass and answers the
//! queries the property checkers need: membership of an event index in a
//! working interval, and existence/start of the unbounded interval.

use crate::action::{Dir, DlAction};

/// Where a well-formedness scan failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WellFormednessError {
    /// Index of the offending event in the scanned trace.
    pub at: usize,
    /// What went wrong.
    pub reason: &'static str,
}

/// One working interval: the events strictly between `open` (a `wake`) and
/// `close` (the next `fail`/`crash`, or the end of the trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkingInterval {
    /// Index of the opening `wake` event.
    pub open: usize,
    /// Index of the closing `fail`/`crash` event; `None` if the interval is
    /// unbounded (extends to the end of the trace).
    pub close: Option<usize>,
}

impl WorkingInterval {
    /// `true` if event index `i` lies inside the interval (exclusive of the
    /// delimiting events themselves).
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        i > self.open && self.close.is_none_or(|c| i < c)
    }

    /// `true` if the interval has no closing event.
    #[must_use]
    pub fn is_unbounded(&self) -> bool {
        self.close.is_none()
    }
}

/// The wake/fail/crash structure of one medium direction over a trace.
///
/// ```
/// use dl_core::action::{Dir, DlAction};
/// use dl_core::spec::wellformed::MediumTimeline;
///
/// let trace = vec![
///     DlAction::Wake(Dir::TR),
///     DlAction::Fail(Dir::TR),
///     DlAction::Wake(Dir::TR),
/// ];
/// let tl = MediumTimeline::scan(&trace, Dir::TR);
/// assert!(tl.is_well_formed());
/// assert!(tl.unbounded().is_some()); // the second wake never fails
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediumTimeline {
    dir: Dir,
    error: Option<WellFormednessError>,
    intervals: Vec<WorkingInterval>,
}

impl MediumTimeline {
    /// Scans `trace` for the status events of direction `dir` and builds
    /// the timeline. Events of other directions/stations are ignored.
    #[must_use]
    pub fn scan(trace: &[DlAction], dir: Dir) -> Self {
        let station = dir.sender();
        let mut error = None;
        let mut intervals: Vec<WorkingInterval> = Vec::new();
        // `true` when the next status event in this crash interval must be
        // a wake (i.e. the medium is currently down).
        let mut expect_wake = true;

        for (i, a) in trace.iter().enumerate() {
            match a {
                DlAction::Wake(d) if *d == dir => {
                    if !expect_wake && error.is_none() {
                        error = Some(WellFormednessError {
                            at: i,
                            reason: "wake while medium already active",
                        });
                    }
                    expect_wake = false;
                    intervals.push(WorkingInterval {
                        open: i,
                        close: None,
                    });
                }
                DlAction::Fail(d) if *d == dir => {
                    if expect_wake && error.is_none() {
                        error = Some(WellFormednessError {
                            at: i,
                            reason: "fail while medium not active",
                        });
                    }
                    expect_wake = true;
                    if let Some(last) = intervals.last_mut() {
                        if last.close.is_none() {
                            last.close = Some(i);
                        }
                    }
                }
                DlAction::Crash(s) if *s == station => {
                    // A crash delimits crash intervals; it may follow a wake
                    // with no intervening fail ("a crash can be thought of
                    // as including a failure").
                    expect_wake = true;
                    if let Some(last) = intervals.last_mut() {
                        if last.close.is_none() {
                            last.close = Some(i);
                        }
                    }
                }
                _ => {}
            }
        }

        MediumTimeline {
            dir,
            error,
            intervals,
        }
    }

    /// The direction this timeline describes.
    #[must_use]
    pub fn dir(&self) -> Dir {
        self.dir
    }

    /// The first well-formedness violation, if any.
    #[must_use]
    pub fn error(&self) -> Option<&WellFormednessError> {
        self.error.as_ref()
    }

    /// `true` if the scanned trace is well-formed for this direction.
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        self.error.is_none()
    }

    /// All working intervals, in trace order.
    #[must_use]
    pub fn intervals(&self) -> &[WorkingInterval] {
        &self.intervals
    }

    /// `true` if event index `i` lies inside some working interval.
    ///
    /// `O(log n)` on well-formed traces (the intervals are sorted and
    /// disjoint, so binary search on the opening index suffices); falls
    /// back to a linear scan on malformed traces, whose intervals can
    /// overlap (e.g. a double wake leaves the first interval unbounded).
    #[must_use]
    pub fn in_working_interval(&self, i: usize) -> bool {
        if self.error.is_none() {
            // First interval whose wake is at or after `i` can't contain
            // `i` (the wake itself is excluded); check the one before it.
            let idx = self.intervals.partition_point(|w| w.open < i);
            idx > 0 && self.intervals[idx - 1].contains(i)
        } else {
            self.intervals.iter().any(|w| w.contains(i))
        }
    }

    /// The unbounded working interval, if the trace has one.
    #[must_use]
    pub fn unbounded(&self) -> Option<WorkingInterval> {
        self.intervals
            .last()
            .copied()
            .filter(WorkingInterval::is_unbounded)
    }

    /// `true` if event index `i` lies inside the unbounded working
    /// interval.
    #[must_use]
    pub fn in_unbounded_interval(&self, i: usize) -> bool {
        self.unbounded().is_some_and(|w| w.contains(i))
    }
}

/// Scans both directions at once: `(timeline(TR), timeline(RT))`.
#[must_use]
pub fn scan_both(trace: &[DlAction]) -> (MediumTimeline, MediumTimeline) {
    (
        MediumTimeline::scan(trace, Dir::TR),
        MediumTimeline::scan(trace, Dir::RT),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Msg, Station};

    use DlAction::{Crash, Fail, ReceiveMsg, SendMsg, Wake};

    #[test]
    fn empty_trace_is_well_formed() {
        let t = MediumTimeline::scan(&[], Dir::TR);
        assert!(t.is_well_formed());
        assert!(t.intervals().is_empty());
        assert!(t.unbounded().is_none());
    }

    #[test]
    fn alternation_accepted() {
        let trace = [
            Wake(Dir::TR),
            Fail(Dir::TR),
            Wake(Dir::TR),
            Fail(Dir::TR),
            Wake(Dir::TR),
        ];
        let t = MediumTimeline::scan(&trace, Dir::TR);
        assert!(t.is_well_formed());
        assert_eq!(t.intervals().len(), 3);
        assert!(t.unbounded().is_some());
        assert_eq!(t.unbounded().unwrap().open, 4);
    }

    #[test]
    fn double_wake_rejected() {
        let trace = [Wake(Dir::TR), Wake(Dir::TR)];
        let t = MediumTimeline::scan(&trace, Dir::TR);
        let e = t.error().unwrap();
        assert_eq!(e.at, 1);
        assert!(e.reason.contains("already active"));
    }

    #[test]
    fn fail_before_wake_rejected() {
        let trace = [Fail(Dir::TR)];
        let t = MediumTimeline::scan(&trace, Dir::TR);
        assert_eq!(t.error().unwrap().at, 0);
    }

    #[test]
    fn fail_right_after_crash_rejected() {
        // The crash starts a new crash interval, which must begin with wake.
        let trace = [Wake(Dir::TR), Crash(Station::T), Fail(Dir::TR)];
        let t = MediumTimeline::scan(&trace, Dir::TR);
        assert_eq!(t.error().unwrap().at, 2);
    }

    #[test]
    fn crash_includes_failure() {
        // wake then crash with no fail is well-formed, and after the crash a
        // new wake is fine.
        let trace = [Wake(Dir::TR), Crash(Station::T), Wake(Dir::TR)];
        let t = MediumTimeline::scan(&trace, Dir::TR);
        assert!(t.is_well_formed());
        assert_eq!(t.intervals().len(), 2);
        assert_eq!(t.intervals()[0].close, Some(1));
        assert!(t.intervals()[1].is_unbounded());
    }

    #[test]
    fn other_directions_ignored() {
        let trace = [Wake(Dir::RT), Fail(Dir::RT), Crash(Station::R)];
        let t = MediumTimeline::scan(&trace, Dir::TR);
        assert!(t.is_well_formed());
        assert!(t.intervals().is_empty());

        // But the RT scan sees them; crash^{r,t} is Crash(R).
        let r = MediumTimeline::scan(&trace, Dir::RT);
        assert!(r.is_well_formed());
        assert_eq!(r.intervals().len(), 1);
        assert_eq!(r.intervals()[0].close, Some(1));
    }

    #[test]
    fn working_interval_membership() {
        let trace = [
            Wake(Dir::TR),      // 0 opens
            SendMsg(Msg(1)),    // 1 inside
            Fail(Dir::TR),      // 2 closes
            SendMsg(Msg(2)),    // 3 outside
            Wake(Dir::TR),      // 4 opens unbounded
            ReceiveMsg(Msg(1)), // 5 inside unbounded
        ];
        let t = MediumTimeline::scan(&trace, Dir::TR);
        assert!(t.in_working_interval(1));
        assert!(!t.in_working_interval(0)); // the wake itself is excluded
        assert!(!t.in_working_interval(2)); // the fail itself is excluded
        assert!(!t.in_working_interval(3));
        assert!(t.in_working_interval(5));
        assert!(t.in_unbounded_interval(5));
        assert!(!t.in_unbounded_interval(1));
    }

    #[test]
    fn scan_both_directions() {
        let trace = [Wake(Dir::TR), Wake(Dir::RT)];
        let (tr, rt) = scan_both(&trace);
        assert_eq!(tr.dir(), Dir::TR);
        assert_eq!(rt.dir(), Dir::RT);
        assert!(tr.unbounded().is_some());
        assert!(rt.unbounded().is_some());
    }
}
