//! The data link layer schedule modules `DL` and `WDL` (paper §4).
//!
//! `DL^{t,r}` allows a trace β when: *if* β is well-formed and satisfies the
//! environment properties DL1–DL3, *then* β satisfies DL4–DL8. The weaker
//! `WDL^{t,r}` only demands DL4, DL5, and DL8 — and is all the
//! impossibility proofs need: a protocol that fails `WDL` certainly fails
//! `DL` (`scheds(DL) ⊆ scheds(WDL)`).
//!
//! DL8 is a liveness property ("every message sent in an unbounded
//! transmitter working interval is eventually received"). On a *complete*
//! trace — the whole behavior of a fair execution that ended quiescent —
//! "eventually" must already have happened, so DL8 is decidable and
//! checked; on a [`TraceKind::Prefix`] it is skipped.
//!
//! Since the streaming-checker rewrite, the module and the standalone
//! DL3–DL7 checkers are thin replay wrappers over
//! [`crate::spec::monitor::TraceMonitor`]: one linear pass, identical
//! verdicts, shared with the online monitor used during simulation.

use std::collections::HashSet;

use ioa::schedule_module::{ScheduleModule, TraceKind, Verdict, Violation};

use crate::action::{Dir, DlAction, Msg};
use crate::spec::monitor::TraceMonitor;
use crate::spec::wellformed::MediumTimeline;

/// The data-link-layer specification: `DL^{t,r}` or the weak `WDL^{t,r}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlModule {
    weak: bool,
}

impl DlModule {
    /// The full specification `DL^{t,r}` (DL4–DL8).
    #[must_use]
    pub fn full() -> Self {
        DlModule { weak: false }
    }

    /// The weak specification `WDL^{t,r}` (DL4, DL5, DL8 only).
    #[must_use]
    pub fn weak() -> Self {
        DlModule { weak: true }
    }

    /// `true` for the weak variant.
    #[must_use]
    pub fn is_weak(&self) -> bool {
        self.weak
    }
}

impl ScheduleModule for DlModule {
    type Action = DlAction;

    fn check(&self, trace: &[DlAction], kind: TraceKind) -> Verdict {
        TraceMonitor::scan(trace).dl_verdict(self.weak, kind)
    }
}

/// DL1: there is an unbounded transmitter working interval iff there is an
/// unbounded receiver working interval.
#[must_use]
pub fn check_dl1(tx: &MediumTimeline, rx: &MediumTimeline) -> Option<Violation> {
    match (tx.unbounded().is_some(), rx.unbounded().is_some()) {
        (true, false) => Some(Violation {
            property: "DL1",
            at: None,
            reason: "unbounded transmitter working interval without an unbounded receiver one"
                .into(),
        }),
        (false, true) => Some(Violation {
            property: "DL1",
            at: None,
            reason: "unbounded receiver working interval without an unbounded transmitter one"
                .into(),
        }),
        _ => None,
    }
}

/// DL2: every `send_msg^{t,r}` event occurs in a transmitter working
/// interval.
#[must_use]
pub fn check_dl2(trace: &[DlAction], tx: &MediumTimeline) -> Option<Violation> {
    debug_assert_eq!(tx.dir(), Dir::TR);
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::SendMsg(m) = a {
            if !tx.in_working_interval(i) {
                return Some(Violation {
                    property: "DL2",
                    at: Some(i),
                    reason: format!("send_msg({m}) outside any transmitter working interval"),
                });
            }
        }
    }
    None
}

/// DL3: for every message `m`, at most one `send_msg^{t,r}(m)` event.
#[must_use]
pub fn check_dl3(trace: &[DlAction]) -> Option<Violation> {
    TraceMonitor::scan(trace).dl_violation(3).cloned()
}

/// DL4: for every message `m`, at most one `receive_msg^{t,r}(m)` event.
#[must_use]
pub fn check_dl4(trace: &[DlAction]) -> Option<Violation> {
    TraceMonitor::scan(trace).dl_violation(4).cloned()
}

/// DL5: every `receive_msg^{t,r}(m)` is preceded by a `send_msg^{t,r}(m)`.
#[must_use]
pub fn check_dl5(trace: &[DlAction]) -> Option<Violation> {
    TraceMonitor::scan(trace).dl_violation(5).cloned()
}

/// DL6 (FIFO): messages that are both sent and received are received in the
/// order they were sent.
///
/// Each received message is matched to its unique send position (DL3,
/// checked before DL6 by the module, guarantees uniqueness); positions must
/// be non-decreasing. A duplicate send (DL3's violation to report) or a
/// receive of a not-yet-sent message (DL5's) ends FIFO judgement —
/// violations found before that point stand, so a legal retransmission is
/// never misflagged as reordering.
#[must_use]
pub fn check_dl6(trace: &[DlAction]) -> Option<Violation> {
    TraceMonitor::scan(trace).dl_violation(6).cloned()
}

/// DL7 (no gaps): if `m` is sent before `m'` within one transmitter working
/// interval and `m'` is received, then `m` is received too.
///
/// Judged against the transmitter (`t → r`) working intervals of `trace`
/// itself; on a trace that is not well-formed for the transmitter the
/// grouping of sends into intervals is best-effort (the module verdict is
/// vacuous in that case anyway).
#[must_use]
pub fn check_dl7(trace: &[DlAction]) -> Option<Violation> {
    TraceMonitor::scan(trace).dl7_violation()
}

/// DL8 (liveness; checked on complete traces only): every message sent in
/// an unbounded transmitter working interval is received.
#[must_use]
pub fn check_dl8(trace: &[DlAction], tx: &MediumTimeline) -> Option<Violation> {
    debug_assert_eq!(tx.dir(), Dir::TR);
    let unbounded = tx.unbounded()?;
    let received: HashSet<Msg> = trace
        .iter()
        .filter_map(|a| match a {
            DlAction::ReceiveMsg(m) => Some(*m),
            _ => None,
        })
        .collect();
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::SendMsg(m) = a {
            if unbounded.contains(i) && !received.contains(m) {
                return Some(Violation {
                    property: "DL8",
                    at: Some(i),
                    reason: format!(
                        "message {m} sent in the unbounded transmitter working interval but \
                         never received (trace is complete)"
                    ),
                });
            }
        }
    }
    None
}

/// A sequence is **valid** (paper §8.1): well-formed, satisfies DL1–DL5 and
/// DL8, and contains a `wake` but no `fail` or `crash` events.
///
/// Valid sequences are the setting of the header-impossibility proof; by
/// the paper's Lemma 8.1, in a valid sequence every sent message is
/// received.
#[must_use]
pub fn is_valid(trace: &[DlAction]) -> bool {
    let mon = TraceMonitor::scan(trace);
    // WDL on a complete trace checks exactly well-formedness, DL1–DL5 and
    // DL8; validity additionally demands a wake and no fail/crash.
    mon.saw_wake()
        && !mon.saw_fail_or_crash()
        && mon.dl_verdict(true, TraceKind::Complete) == Verdict::Satisfied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Station;

    use DlAction::{Crash, Fail, ReceiveMsg, SendMsg, Wake};

    fn preamble() -> Vec<DlAction> {
        vec![Wake(Dir::TR), Wake(Dir::RT)]
    }

    #[test]
    fn lemma_4_1_behavior_is_allowed() {
        let mut t = preamble();
        t.extend([SendMsg(Msg(1)), ReceiveMsg(Msg(1))]);
        assert_eq!(
            DlModule::weak().check(&t, TraceKind::Complete),
            Verdict::Satisfied
        );
        assert_eq!(
            DlModule::full().check(&t, TraceKind::Complete),
            Verdict::Satisfied
        );
    }

    #[test]
    fn duplicate_delivery_violates_dl4() {
        let mut t = preamble();
        t.extend([SendMsg(Msg(1)), ReceiveMsg(Msg(1)), ReceiveMsg(Msg(1))]);
        let v = DlModule::weak().check(&t, TraceKind::Complete);
        assert_eq!(v.violation().unwrap().property, "DL4");
    }

    #[test]
    fn phantom_delivery_violates_dl5() {
        let mut t = preamble();
        t.push(ReceiveMsg(Msg(9)));
        let v = DlModule::weak().check(&t, TraceKind::Prefix);
        assert_eq!(v.violation().unwrap().property, "DL5");
    }

    #[test]
    fn reordered_delivery_violates_dl6_in_full_only() {
        let mut t = preamble();
        t.extend([
            SendMsg(Msg(1)),
            SendMsg(Msg(2)),
            ReceiveMsg(Msg(2)),
            ReceiveMsg(Msg(1)),
        ]);
        assert!(DlModule::weak().check(&t, TraceKind::Prefix).is_allowed());
        let v = DlModule::full().check(&t, TraceKind::Prefix);
        assert_eq!(v.violation().unwrap().property, "DL6 (FIFO)");
    }

    #[test]
    fn gap_violates_dl7_in_full_only() {
        // m1 lost, m2 (same working interval) delivered.
        let t = vec![
            Wake(Dir::TR),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            SendMsg(Msg(2)),
            ReceiveMsg(Msg(2)),
            Fail(Dir::TR),
            Fail(Dir::RT),
        ];
        assert!(DlModule::weak().check(&t, TraceKind::Prefix).is_allowed());
        let v = DlModule::full().check(&t, TraceKind::Prefix);
        assert_eq!(v.violation().unwrap().property, "DL7");
    }

    #[test]
    fn gap_across_working_intervals_is_fine() {
        // m1 sent in a working interval that failed; losing it is allowed
        // even though the later m2 is delivered.
        let t = vec![
            Wake(Dir::TR),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            Fail(Dir::TR),
            Wake(Dir::TR),
            SendMsg(Msg(2)),
            ReceiveMsg(Msg(2)),
        ];
        assert_eq!(
            DlModule::full().check(&t, TraceKind::Complete),
            Verdict::Satisfied
        );
    }

    #[test]
    fn undelivered_message_violates_dl8_on_complete_traces() {
        let mut t = preamble();
        t.push(SendMsg(Msg(1)));
        assert!(DlModule::weak().check(&t, TraceKind::Prefix).is_allowed());
        let v = DlModule::weak().check(&t, TraceKind::Complete);
        assert_eq!(v.violation().unwrap().property, "DL8");
    }

    #[test]
    fn dl8_not_required_after_fail() {
        // The working interval is bounded (ends in fail), so the loss is
        // allowed even on a complete trace.
        let t = vec![
            Wake(Dir::TR),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            Fail(Dir::TR),
            Fail(Dir::RT),
        ];
        assert_eq!(
            DlModule::weak().check(&t, TraceKind::Complete),
            Verdict::Satisfied
        );
    }

    #[test]
    fn send_outside_working_interval_is_vacuous_dl2() {
        let t = vec![SendMsg(Msg(1))];
        match DlModule::weak().check(&t, TraceKind::Prefix) {
            Verdict::Vacuous(v) => assert_eq!(v.property, "DL2"),
            other => panic!("expected vacuous DL2, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_send_is_vacuous_dl3() {
        let mut t = preamble();
        t.extend([SendMsg(Msg(1)), SendMsg(Msg(1))]);
        match DlModule::weak().check(&t, TraceKind::Prefix) {
            Verdict::Vacuous(v) => assert_eq!(v.property, "DL3"),
            other => panic!("expected vacuous DL3, got {other:?}"),
        }
    }

    #[test]
    fn asymmetric_unbounded_interval_is_vacuous_dl1() {
        let t = vec![Wake(Dir::TR)];
        match DlModule::weak().check(&t, TraceKind::Prefix) {
            Verdict::Vacuous(v) => assert_eq!(v.property, "DL1"),
            other => panic!("expected vacuous DL1, got {other:?}"),
        }
    }

    #[test]
    fn malformed_environment_is_vacuous() {
        let t = vec![Fail(Dir::TR)];
        match DlModule::weak().check(&t, TraceKind::Prefix) {
            Verdict::Vacuous(v) => assert_eq!(v.property, "well-formedness"),
            other => panic!("expected vacuous, got {other:?}"),
        }
    }

    #[test]
    fn crash_resets_receiver_timeline_too() {
        let t = vec![
            Wake(Dir::TR),
            Wake(Dir::RT),
            Crash(Station::R),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            ReceiveMsg(Msg(1)),
        ];
        assert_eq!(
            DlModule::weak().check(&t, TraceKind::Complete),
            Verdict::Satisfied
        );
    }

    #[test]
    fn validity_definition() {
        let mut t = preamble();
        t.extend([SendMsg(Msg(1)), ReceiveMsg(Msg(1))]);
        assert!(is_valid(&t));

        // No wake: not valid.
        assert!(!is_valid(&[]));

        // Contains fail: not valid.
        let mut t2 = preamble();
        t2.push(Fail(Dir::TR));
        assert!(!is_valid(&t2));

        // Sent but unreceived message: violates DL8, not valid.
        let mut t3 = preamble();
        t3.push(SendMsg(Msg(1)));
        assert!(!is_valid(&t3));
    }

    #[test]
    fn lemma_8_2_extension_preserves_validity() {
        // A valid sequence extended with send(m) receive(m) stays valid.
        let mut t = preamble();
        t.extend([SendMsg(Msg(1)), ReceiveMsg(Msg(1))]);
        assert!(is_valid(&t));
        t.extend([SendMsg(Msg(2)), ReceiveMsg(Msg(2))]);
        assert!(is_valid(&t));
    }
}
