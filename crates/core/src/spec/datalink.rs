//! The data link layer schedule modules `DL` and `WDL` (paper §4).
//!
//! `DL^{t,r}` allows a trace β when: *if* β is well-formed and satisfies the
//! environment properties DL1–DL3, *then* β satisfies DL4–DL8. The weaker
//! `WDL^{t,r}` only demands DL4, DL5, and DL8 — and is all the
//! impossibility proofs need: a protocol that fails `WDL` certainly fails
//! `DL` (`scheds(DL) ⊆ scheds(WDL)`).
//!
//! DL8 is a liveness property ("every message sent in an unbounded
//! transmitter working interval is eventually received"). On a *complete*
//! trace — the whole behavior of a fair execution that ended quiescent —
//! "eventually" must already have happened, so DL8 is decidable and
//! checked; on a [`TraceKind::Prefix`] it is skipped.

use std::collections::{HashMap, HashSet};

use ioa::schedule_module::{ScheduleModule, TraceKind, Verdict, Violation};

use crate::action::{Dir, DlAction, Msg};
use crate::spec::wellformed::{scan_both, MediumTimeline};

/// The data-link-layer specification: `DL^{t,r}` or the weak `WDL^{t,r}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlModule {
    weak: bool,
}

impl DlModule {
    /// The full specification `DL^{t,r}` (DL4–DL8).
    #[must_use]
    pub fn full() -> Self {
        DlModule { weak: false }
    }

    /// The weak specification `WDL^{t,r}` (DL4, DL5, DL8 only).
    #[must_use]
    pub fn weak() -> Self {
        DlModule { weak: true }
    }

    /// `true` for the weak variant.
    #[must_use]
    pub fn is_weak(&self) -> bool {
        self.weak
    }
}

impl ScheduleModule for DlModule {
    type Action = DlAction;

    fn check(&self, trace: &[DlAction], kind: TraceKind) -> Verdict {
        let (tx, rx) = scan_both(trace);

        // Hypotheses: well-formedness and DL1–DL3.
        if let Some(e) = tx.error().or_else(|| rx.error()) {
            return Verdict::Vacuous(Violation {
                property: "well-formedness",
                at: Some(e.at),
                reason: e.reason.to_string(),
            });
        }
        if let Some(v) = check_dl1(&tx, &rx) {
            return Verdict::Vacuous(v);
        }
        if let Some(v) = check_dl2(trace, &tx) {
            return Verdict::Vacuous(v);
        }
        if let Some(v) = check_dl3(trace) {
            return Verdict::Vacuous(v);
        }

        // Conclusions.
        if let Some(v) = check_dl4(trace) {
            return Verdict::Violated(v);
        }
        if let Some(v) = check_dl5(trace) {
            return Verdict::Violated(v);
        }
        if !self.weak {
            if let Some(v) = check_dl6(trace) {
                return Verdict::Violated(v);
            }
            if let Some(v) = check_dl7(trace, &tx) {
                return Verdict::Violated(v);
            }
        }
        if kind == TraceKind::Complete {
            if let Some(v) = check_dl8(trace, &tx) {
                return Verdict::Violated(v);
            }
        }
        Verdict::Satisfied
    }
}

/// DL1: there is an unbounded transmitter working interval iff there is an
/// unbounded receiver working interval.
#[must_use]
pub fn check_dl1(tx: &MediumTimeline, rx: &MediumTimeline) -> Option<Violation> {
    match (tx.unbounded().is_some(), rx.unbounded().is_some()) {
        (true, false) => Some(Violation {
            property: "DL1",
            at: None,
            reason: "unbounded transmitter working interval without an unbounded receiver one"
                .into(),
        }),
        (false, true) => Some(Violation {
            property: "DL1",
            at: None,
            reason: "unbounded receiver working interval without an unbounded transmitter one"
                .into(),
        }),
        _ => None,
    }
}

/// DL2: every `send_msg^{t,r}` event occurs in a transmitter working
/// interval.
#[must_use]
pub fn check_dl2(trace: &[DlAction], tx: &MediumTimeline) -> Option<Violation> {
    debug_assert_eq!(tx.dir(), Dir::TR);
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::SendMsg(m) = a {
            if !tx.in_working_interval(i) {
                return Some(Violation {
                    property: "DL2",
                    at: Some(i),
                    reason: format!("send_msg({m}) outside any transmitter working interval"),
                });
            }
        }
    }
    None
}

/// DL3: for every message `m`, at most one `send_msg^{t,r}(m)` event.
#[must_use]
pub fn check_dl3(trace: &[DlAction]) -> Option<Violation> {
    let mut seen: HashSet<Msg> = HashSet::new();
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::SendMsg(m) = a {
            if !seen.insert(*m) {
                return Some(Violation {
                    property: "DL3",
                    at: Some(i),
                    reason: format!("message {m} sent twice"),
                });
            }
        }
    }
    None
}

/// DL4: for every message `m`, at most one `receive_msg^{t,r}(m)` event.
#[must_use]
pub fn check_dl4(trace: &[DlAction]) -> Option<Violation> {
    let mut seen: HashSet<Msg> = HashSet::new();
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::ReceiveMsg(m) = a {
            if !seen.insert(*m) {
                return Some(Violation {
                    property: "DL4",
                    at: Some(i),
                    reason: format!("message {m} received twice"),
                });
            }
        }
    }
    None
}

/// DL5: every `receive_msg^{t,r}(m)` is preceded by a `send_msg^{t,r}(m)`.
#[must_use]
pub fn check_dl5(trace: &[DlAction]) -> Option<Violation> {
    let mut sent: Vec<Msg> = Vec::new();
    for (i, a) in trace.iter().enumerate() {
        match a {
            DlAction::SendMsg(m) => sent.push(*m),
            DlAction::ReceiveMsg(m) if !sent.contains(m) => {
                return Some(Violation {
                    property: "DL5",
                    at: Some(i),
                    reason: format!("message {m} received but never sent"),
                });
            }
            _ => {}
        }
    }
    None
}

/// DL6 (FIFO): messages that are both sent and received are received in the
/// order they were sent.
#[must_use]
pub fn check_dl6(trace: &[DlAction]) -> Option<Violation> {
    // First send position per message (DL3, checked before DL6 by the
    // module, guarantees uniqueness).
    let mut send_pos: HashMap<Msg, usize> = HashMap::new();
    let mut sends = 0usize;
    for a in trace {
        if let DlAction::SendMsg(m) = a {
            send_pos.entry(*m).or_insert(sends);
            sends += 1;
        }
    }
    let mut last_pos: Option<usize> = None;
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::ReceiveMsg(m) = a {
            let pos = *send_pos.get(m)?;
            if let Some(prev) = last_pos {
                if pos < prev {
                    return Some(Violation {
                        property: "DL6 (FIFO)",
                        at: Some(i),
                        reason: format!(
                            "message {m} (send position {pos}) received after a message with \
                             send position {prev}"
                        ),
                    });
                }
            }
            last_pos = Some(pos);
        }
    }
    None
}

/// DL7 (no gaps): if `m` is sent before `m'` within one transmitter working
/// interval and `m'` is received, then `m` is received too.
#[must_use]
pub fn check_dl7(trace: &[DlAction], tx: &MediumTimeline) -> Option<Violation> {
    debug_assert_eq!(tx.dir(), Dir::TR);
    let received: HashSet<Msg> = trace
        .iter()
        .filter_map(|a| match a {
            DlAction::ReceiveMsg(m) => Some(*m),
            _ => None,
        })
        .collect();
    for w in tx.intervals() {
        // Track the first lost (unreceived) send in this interval; any
        // later delivered send in the same interval then violates DL7.
        let mut first_lost: Option<(usize, Msg)> = None;
        for (i, a) in trace.iter().enumerate() {
            if !w.contains(i) {
                continue;
            }
            if let DlAction::SendMsg(m) = a {
                if received.contains(m) {
                    if let Some((j, lost)) = first_lost {
                        return Some(Violation {
                            property: "DL7",
                            at: Some(j),
                            reason: format!(
                                "message {lost} (sent at {j}) lost, but later message {m} \
                                 from the same working interval was delivered"
                            ),
                        });
                    }
                } else if first_lost.is_none() {
                    first_lost = Some((i, *m));
                }
            }
        }
    }
    None
}

/// DL8 (liveness; checked on complete traces only): every message sent in
/// an unbounded transmitter working interval is received.
#[must_use]
pub fn check_dl8(trace: &[DlAction], tx: &MediumTimeline) -> Option<Violation> {
    debug_assert_eq!(tx.dir(), Dir::TR);
    let unbounded = tx.unbounded()?;
    let received: HashSet<Msg> = trace
        .iter()
        .filter_map(|a| match a {
            DlAction::ReceiveMsg(m) => Some(*m),
            _ => None,
        })
        .collect();
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::SendMsg(m) = a {
            if unbounded.contains(i) && !received.contains(m) {
                return Some(Violation {
                    property: "DL8",
                    at: Some(i),
                    reason: format!(
                        "message {m} sent in the unbounded transmitter working interval but \
                         never received (trace is complete)"
                    ),
                });
            }
        }
    }
    None
}

/// A sequence is **valid** (paper §8.1): well-formed, satisfies DL1–DL5 and
/// DL8, and contains a `wake` but no `fail` or `crash` events.
///
/// Valid sequences are the setting of the header-impossibility proof; by
/// the paper's Lemma 8.1, in a valid sequence every sent message is
/// received.
#[must_use]
pub fn is_valid(trace: &[DlAction]) -> bool {
    let has_wake = trace.iter().any(|a| matches!(a, DlAction::Wake(_)));
    let has_fail_or_crash = trace
        .iter()
        .any(|a| matches!(a, DlAction::Fail(_) | DlAction::Crash(_)));
    if !has_wake || has_fail_or_crash {
        return false;
    }
    let (tx, rx) = scan_both(trace);
    tx.is_well_formed()
        && rx.is_well_formed()
        && check_dl1(&tx, &rx).is_none()
        && check_dl2(trace, &tx).is_none()
        && check_dl3(trace).is_none()
        && check_dl4(trace).is_none()
        && check_dl5(trace).is_none()
        && check_dl8(trace, &tx).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Station;

    use DlAction::{Crash, Fail, ReceiveMsg, SendMsg, Wake};

    fn preamble() -> Vec<DlAction> {
        vec![Wake(Dir::TR), Wake(Dir::RT)]
    }

    #[test]
    fn lemma_4_1_behavior_is_allowed() {
        let mut t = preamble();
        t.extend([SendMsg(Msg(1)), ReceiveMsg(Msg(1))]);
        assert_eq!(
            DlModule::weak().check(&t, TraceKind::Complete),
            Verdict::Satisfied
        );
        assert_eq!(
            DlModule::full().check(&t, TraceKind::Complete),
            Verdict::Satisfied
        );
    }

    #[test]
    fn duplicate_delivery_violates_dl4() {
        let mut t = preamble();
        t.extend([SendMsg(Msg(1)), ReceiveMsg(Msg(1)), ReceiveMsg(Msg(1))]);
        let v = DlModule::weak().check(&t, TraceKind::Complete);
        assert_eq!(v.violation().unwrap().property, "DL4");
    }

    #[test]
    fn phantom_delivery_violates_dl5() {
        let mut t = preamble();
        t.push(ReceiveMsg(Msg(9)));
        let v = DlModule::weak().check(&t, TraceKind::Prefix);
        assert_eq!(v.violation().unwrap().property, "DL5");
    }

    #[test]
    fn reordered_delivery_violates_dl6_in_full_only() {
        let mut t = preamble();
        t.extend([
            SendMsg(Msg(1)),
            SendMsg(Msg(2)),
            ReceiveMsg(Msg(2)),
            ReceiveMsg(Msg(1)),
        ]);
        assert!(DlModule::weak().check(&t, TraceKind::Prefix).is_allowed());
        let v = DlModule::full().check(&t, TraceKind::Prefix);
        assert_eq!(v.violation().unwrap().property, "DL6 (FIFO)");
    }

    #[test]
    fn gap_violates_dl7_in_full_only() {
        // m1 lost, m2 (same working interval) delivered.
        let t = vec![
            Wake(Dir::TR),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            SendMsg(Msg(2)),
            ReceiveMsg(Msg(2)),
            Fail(Dir::TR),
            Fail(Dir::RT),
        ];
        assert!(DlModule::weak().check(&t, TraceKind::Prefix).is_allowed());
        let v = DlModule::full().check(&t, TraceKind::Prefix);
        assert_eq!(v.violation().unwrap().property, "DL7");
    }

    #[test]
    fn gap_across_working_intervals_is_fine() {
        // m1 sent in a working interval that failed; losing it is allowed
        // even though the later m2 is delivered.
        let t = vec![
            Wake(Dir::TR),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            Fail(Dir::TR),
            Wake(Dir::TR),
            SendMsg(Msg(2)),
            ReceiveMsg(Msg(2)),
        ];
        assert_eq!(
            DlModule::full().check(&t, TraceKind::Complete),
            Verdict::Satisfied
        );
    }

    #[test]
    fn undelivered_message_violates_dl8_on_complete_traces() {
        let mut t = preamble();
        t.push(SendMsg(Msg(1)));
        assert!(DlModule::weak().check(&t, TraceKind::Prefix).is_allowed());
        let v = DlModule::weak().check(&t, TraceKind::Complete);
        assert_eq!(v.violation().unwrap().property, "DL8");
    }

    #[test]
    fn dl8_not_required_after_fail() {
        // The working interval is bounded (ends in fail), so the loss is
        // allowed even on a complete trace.
        let t = vec![
            Wake(Dir::TR),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            Fail(Dir::TR),
            Fail(Dir::RT),
        ];
        assert_eq!(
            DlModule::weak().check(&t, TraceKind::Complete),
            Verdict::Satisfied
        );
    }

    #[test]
    fn send_outside_working_interval_is_vacuous_dl2() {
        let t = vec![SendMsg(Msg(1))];
        match DlModule::weak().check(&t, TraceKind::Prefix) {
            Verdict::Vacuous(v) => assert_eq!(v.property, "DL2"),
            other => panic!("expected vacuous DL2, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_send_is_vacuous_dl3() {
        let mut t = preamble();
        t.extend([SendMsg(Msg(1)), SendMsg(Msg(1))]);
        match DlModule::weak().check(&t, TraceKind::Prefix) {
            Verdict::Vacuous(v) => assert_eq!(v.property, "DL3"),
            other => panic!("expected vacuous DL3, got {other:?}"),
        }
    }

    #[test]
    fn asymmetric_unbounded_interval_is_vacuous_dl1() {
        let t = vec![Wake(Dir::TR)];
        match DlModule::weak().check(&t, TraceKind::Prefix) {
            Verdict::Vacuous(v) => assert_eq!(v.property, "DL1"),
            other => panic!("expected vacuous DL1, got {other:?}"),
        }
    }

    #[test]
    fn malformed_environment_is_vacuous() {
        let t = vec![Fail(Dir::TR)];
        match DlModule::weak().check(&t, TraceKind::Prefix) {
            Verdict::Vacuous(v) => assert_eq!(v.property, "well-formedness"),
            other => panic!("expected vacuous, got {other:?}"),
        }
    }

    #[test]
    fn crash_resets_receiver_timeline_too() {
        let t = vec![
            Wake(Dir::TR),
            Wake(Dir::RT),
            Crash(Station::R),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            ReceiveMsg(Msg(1)),
        ];
        assert_eq!(
            DlModule::weak().check(&t, TraceKind::Complete),
            Verdict::Satisfied
        );
    }

    #[test]
    fn validity_definition() {
        let mut t = preamble();
        t.extend([SendMsg(Msg(1)), ReceiveMsg(Msg(1))]);
        assert!(is_valid(&t));

        // No wake: not valid.
        assert!(!is_valid(&[]));

        // Contains fail: not valid.
        let mut t2 = preamble();
        t2.push(Fail(Dir::TR));
        assert!(!is_valid(&t2));

        // Sent but unreceived message: violates DL8, not valid.
        let mut t3 = preamble();
        t3.push(SendMsg(Msg(1)));
        assert!(!is_valid(&t3));
    }

    #[test]
    fn lemma_8_2_extension_preserves_validity() {
        // A valid sequence extended with send(m) receive(m) stays valid.
        let mut t = preamble();
        t.extend([SendMsg(Msg(1)), ReceiveMsg(Msg(1))]);
        assert!(is_valid(&t));
        t.extend([SendMsg(Msg(2)), ReceiveMsg(Msg(2))]);
        assert!(is_valid(&t));
    }
}
