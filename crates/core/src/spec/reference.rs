//! Frozen **reference** checkers: the executable specification.
//!
//! These are the original batch checkers, kept as a clarity-first,
//! independently-written second implementation (with the same
//! duplicate-poisoning semantics the streaming monitor uses — see
//! [`crate::spec::monitor`]). They deliberately retain the quadratic value
//! scans of the originals (`Vec::contains`, per-interval trace scans,
//! linear interval membership), which makes them:
//!
//! * the oracle of the differential test suite — the streaming
//!   [`TraceMonitor`](crate::spec::monitor::TraceMonitor) must agree with
//!   them on every trace, and the two implementations share no code; and
//! * the baseline of the `checker_scaling` bench, which demonstrates the
//!   linear monitor's speedup on long traces.
//!
//! Production code should use the monitor-backed wrappers in
//! [`crate::spec::physical`] and [`crate::spec::datalink`]; nothing outside
//! tests and benches should need this module.

use std::collections::{HashMap, HashSet};

use ioa::schedule_module::{TraceKind, Verdict, Violation};

use crate::action::{Dir, DlAction, Msg, Packet};
use crate::spec::wellformed::{scan_both, MediumTimeline, WorkingInterval};

/// Linear-scan interval membership, as the original checkers did it (the
/// [`MediumTimeline`] method itself is optimized now).
fn in_any_interval(tl: &MediumTimeline, i: usize) -> bool {
    tl.intervals().iter().any(|w| w.contains(i))
}

/// Reference PL1: every `send_pkt^{d}` occurs in a working interval.
#[must_use]
pub fn check_pl1(trace: &[DlAction], timeline: &MediumTimeline, dir: Dir) -> Option<Violation> {
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::SendPkt(d, _) = a {
            if *d == dir && !in_any_interval(timeline, i) {
                return Some(Violation {
                    property: "PL1",
                    at: Some(i),
                    reason: format!("send_pkt^{dir} outside any working interval"),
                });
            }
        }
    }
    None
}

/// Reference PL2: every packet is sent at most once.
#[must_use]
pub fn check_pl2(trace: &[DlAction], dir: Dir) -> Option<Violation> {
    let mut seen: Vec<&Packet> = Vec::new();
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::SendPkt(d, p) = a {
            if *d == dir {
                if seen.contains(&p) {
                    return Some(Violation {
                        property: "PL2",
                        at: Some(i),
                        reason: format!("packet {p} sent twice"),
                    });
                }
                seen.push(p);
            }
        }
    }
    None
}

/// Reference PL3: every packet is received at most once.
#[must_use]
pub fn check_pl3(trace: &[DlAction], dir: Dir) -> Option<Violation> {
    let mut seen: Vec<&Packet> = Vec::new();
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::ReceivePkt(d, p) = a {
            if *d == dir {
                if seen.contains(&p) {
                    return Some(Violation {
                        property: "PL3",
                        at: Some(i),
                        reason: format!("packet {p} received twice"),
                    });
                }
                seen.push(p);
            }
        }
    }
    None
}

/// Reference PL4: every received packet was previously sent.
#[must_use]
pub fn check_pl4(trace: &[DlAction], dir: Dir) -> Option<Violation> {
    let mut sent: Vec<&Packet> = Vec::new();
    for (i, a) in trace.iter().enumerate() {
        match a {
            DlAction::SendPkt(d, p) if *d == dir => sent.push(p),
            DlAction::ReceivePkt(d, p) if *d == dir && !sent.contains(&p) => {
                return Some(Violation {
                    property: "PL4",
                    at: Some(i),
                    reason: format!("packet {p} received but never sent"),
                });
            }
            _ => {}
        }
    }
    None
}

/// Reference PL5 (FIFO): delivered packets arrive in send order.
///
/// Duplicate-poisoning semantics: a duplicate send or a receive of a
/// never-sent packet ends FIFO judgement (violations found before that
/// point were already returned).
#[must_use]
pub fn check_pl5(trace: &[DlAction], dir: Dir) -> Option<Violation> {
    let mut send_pos: HashMap<&Packet, usize> = HashMap::new();
    let mut sends = 0usize;
    let mut last_pos: Option<usize> = None;
    for (i, a) in trace.iter().enumerate() {
        match a {
            DlAction::SendPkt(d, p) if *d == dir => {
                if send_pos.insert(p, sends).is_some() {
                    return None; // duplicate send: PL2's violation to report
                }
                sends += 1;
            }
            DlAction::ReceivePkt(d, p) if *d == dir => {
                let pos = *send_pos.get(p)?; // never sent: PL4's violation
                if let Some(prev) = last_pos {
                    if pos < prev {
                        return Some(Violation {
                            property: "PL5 (FIFO)",
                            at: Some(i),
                            reason: format!(
                                "packet {p} (send position {pos}) received after a packet \
                                 with send position {prev}"
                            ),
                        });
                    }
                }
                last_pos = Some(pos);
            }
            _ => {}
        }
    }
    None
}

/// Reference in-transit multiset: for each packet value, the last
/// `sends − receives` copies (clamped at zero) are pending, in send order.
#[must_use]
pub fn in_transit(trace: &[DlAction], dir: Dir) -> Vec<Packet> {
    let mut recv_count: HashMap<Packet, usize> = HashMap::new();
    for a in trace {
        if let DlAction::ReceivePkt(d, p) = a {
            if *d == dir {
                *recv_count.entry(*p).or_insert(0) += 1;
            }
        }
    }
    let mut pending = Vec::new();
    for a in trace {
        if let DlAction::SendPkt(d, p) = a {
            if *d == dir {
                match recv_count.get_mut(p) {
                    Some(n) if *n > 0 => *n -= 1, // cancelled by a receive
                    _ => pending.push(*p),
                }
            }
        }
    }
    pending
}

/// Reference DL2: every `send_msg` occurs in a transmitter working
/// interval.
#[must_use]
pub fn check_dl2(trace: &[DlAction], tx: &MediumTimeline) -> Option<Violation> {
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::SendMsg(m) = a {
            if !in_any_interval(tx, i) {
                return Some(Violation {
                    property: "DL2",
                    at: Some(i),
                    reason: format!("send_msg({m}) outside any transmitter working interval"),
                });
            }
        }
    }
    None
}

/// Reference DL3: every message is sent at most once.
#[must_use]
pub fn check_dl3(trace: &[DlAction]) -> Option<Violation> {
    let mut seen: Vec<Msg> = Vec::new();
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::SendMsg(m) = a {
            if seen.contains(m) {
                return Some(Violation {
                    property: "DL3",
                    at: Some(i),
                    reason: format!("message {m} sent twice"),
                });
            }
            seen.push(*m);
        }
    }
    None
}

/// Reference DL4: every message is received at most once.
#[must_use]
pub fn check_dl4(trace: &[DlAction]) -> Option<Violation> {
    let mut seen: Vec<Msg> = Vec::new();
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::ReceiveMsg(m) = a {
            if seen.contains(m) {
                return Some(Violation {
                    property: "DL4",
                    at: Some(i),
                    reason: format!("message {m} received twice"),
                });
            }
            seen.push(*m);
        }
    }
    None
}

/// Reference DL5: every received message was previously sent.
#[must_use]
pub fn check_dl5(trace: &[DlAction]) -> Option<Violation> {
    let mut sent: Vec<Msg> = Vec::new();
    for (i, a) in trace.iter().enumerate() {
        match a {
            DlAction::SendMsg(m) => sent.push(*m),
            DlAction::ReceiveMsg(m) if !sent.contains(m) => {
                return Some(Violation {
                    property: "DL5",
                    at: Some(i),
                    reason: format!("message {m} received but never sent"),
                });
            }
            _ => {}
        }
    }
    None
}

/// Reference DL6 (FIFO): messages are received in send order, with the
/// same duplicate-poisoning semantics as [`check_pl5`].
#[must_use]
pub fn check_dl6(trace: &[DlAction]) -> Option<Violation> {
    let mut send_pos: HashMap<Msg, usize> = HashMap::new();
    let mut sends = 0usize;
    let mut last_pos: Option<usize> = None;
    for (i, a) in trace.iter().enumerate() {
        match a {
            DlAction::SendMsg(m) => {
                if send_pos.insert(*m, sends).is_some() {
                    return None; // duplicate send: DL3's violation to report
                }
                sends += 1;
            }
            DlAction::ReceiveMsg(m) => {
                let pos = *send_pos.get(m)?; // never sent: DL5's violation
                if let Some(prev) = last_pos {
                    if pos < prev {
                        return Some(Violation {
                            property: "DL6 (FIFO)",
                            at: Some(i),
                            reason: format!(
                                "message {m} (send position {pos}) received after a message \
                                 with send position {prev}"
                            ),
                        });
                    }
                }
                last_pos = Some(pos);
            }
            _ => {}
        }
    }
    None
}

/// Reference DL7 (no gaps): per transmitter working interval, a full-trace
/// scan looking for a delivered send after a lost one.
#[must_use]
pub fn check_dl7(trace: &[DlAction], tx: &MediumTimeline) -> Option<Violation> {
    let received: HashSet<Msg> = trace
        .iter()
        .filter_map(|a| match a {
            DlAction::ReceiveMsg(m) => Some(*m),
            _ => None,
        })
        .collect();
    for w in tx.intervals() {
        let mut first_lost: Option<(usize, Msg)> = None;
        for (i, a) in trace.iter().enumerate() {
            if !w.contains(i) {
                continue;
            }
            if let DlAction::SendMsg(m) = a {
                if received.contains(m) {
                    if let Some((j, lost)) = first_lost {
                        return Some(Violation {
                            property: "DL7",
                            at: Some(j),
                            reason: format!(
                                "message {lost} (sent at {j}) lost, but later message {m} \
                                 from the same working interval was delivered"
                            ),
                        });
                    }
                } else if first_lost.is_none() {
                    first_lost = Some((i, *m));
                }
            }
        }
    }
    None
}

/// Reference DL8 (on complete traces): every message sent in the unbounded
/// transmitter working interval is received.
#[must_use]
pub fn check_dl8(trace: &[DlAction], tx: &MediumTimeline) -> Option<Violation> {
    let unbounded: WorkingInterval = tx.unbounded()?;
    let received: HashSet<Msg> = trace
        .iter()
        .filter_map(|a| match a {
            DlAction::ReceiveMsg(m) => Some(*m),
            _ => None,
        })
        .collect();
    for (i, a) in trace.iter().enumerate() {
        if let DlAction::SendMsg(m) = a {
            if unbounded.contains(i) && !received.contains(m) {
                return Some(Violation {
                    property: "DL8",
                    at: Some(i),
                    reason: format!(
                        "message {m} sent in the unbounded transmitter working interval but \
                         never received (trace is complete)"
                    ),
                });
            }
        }
    }
    None
}

/// The reference physical-layer module verdict (`PL^{dir}` /
/// `PL-FIFO^{dir}`), assembled exactly like
/// [`crate::spec::physical::PlModule::check`].
#[must_use]
pub fn pl_check(trace: &[DlAction], dir: Dir, fifo: bool) -> Verdict {
    let timeline = MediumTimeline::scan(trace, dir);
    if let Some(e) = timeline.error() {
        return Verdict::Vacuous(Violation {
            property: "well-formedness",
            at: Some(e.at),
            reason: e.reason.to_string(),
        });
    }
    if let Some(v) = check_pl1(trace, &timeline, dir) {
        return Verdict::Vacuous(v);
    }
    if let Some(v) = check_pl2(trace, dir) {
        return Verdict::Vacuous(v);
    }
    if let Some(v) = check_pl3(trace, dir) {
        return Verdict::Violated(v);
    }
    if let Some(v) = check_pl4(trace, dir) {
        return Verdict::Violated(v);
    }
    if fifo {
        if let Some(v) = check_pl5(trace, dir) {
            return Verdict::Violated(v);
        }
    }
    Verdict::Satisfied
}

/// The reference data-link module verdict (`DL` / `WDL`), assembled exactly
/// like [`crate::spec::datalink::DlModule::check`].
#[must_use]
pub fn dl_check(trace: &[DlAction], weak: bool, kind: TraceKind) -> Verdict {
    let (tx, rx) = scan_both(trace);
    if let Some(e) = tx.error().or_else(|| rx.error()) {
        return Verdict::Vacuous(Violation {
            property: "well-formedness",
            at: Some(e.at),
            reason: e.reason.to_string(),
        });
    }
    if let Some(v) = crate::spec::datalink::check_dl1(&tx, &rx) {
        return Verdict::Vacuous(v);
    }
    if let Some(v) = check_dl2(trace, &tx) {
        return Verdict::Vacuous(v);
    }
    if let Some(v) = check_dl3(trace) {
        return Verdict::Vacuous(v);
    }
    if let Some(v) = check_dl4(trace) {
        return Verdict::Violated(v);
    }
    if let Some(v) = check_dl5(trace) {
        return Verdict::Violated(v);
    }
    if !weak {
        if let Some(v) = check_dl6(trace) {
            return Verdict::Violated(v);
        }
        if let Some(v) = check_dl7(trace, &tx) {
            return Verdict::Violated(v);
        }
    }
    if kind == TraceKind::Complete {
        if let Some(v) = check_dl8(trace, &tx) {
            return Verdict::Violated(v);
        }
    }
    Verdict::Satisfied
}
