//! Streaming, single-pass conformance monitor for the layer specifications.
//!
//! [`TraceMonitor`] consumes [`DlAction`]s — one at a time via
//! [`observe`](TraceMonitor::observe) or a slice at a time via
//! [`observe_all`](TraceMonitor::observe_all) — and maintains just enough
//! state to judge the physical-layer properties PL1–PL5 (per direction),
//! the data-link properties DL1–DL8, well-formedness, and the in-transit
//! packet multiset — all in amortized `O(1)` per action. The batch
//! checkers in [`crate::spec::physical`] and [`crate::spec::datalink`] are
//! thin replay wrappers over this monitor, so there is exactly one code
//! path and every verdict (property name, trace index, reason string)
//! matches what the original quadratic checkers produced.
//!
//! # State layout
//!
//! Packet and message values are interned through
//! [`ioa::intern::StateTable`] keyed by the deterministic
//! [`FxBuildHasher`], so each observed action pays **one** hash-and-probe
//! and every per-value fact afterwards is an array index on the dense
//! `u32` id. The facts themselves are struct-of-arrays columns aligned
//! with the interner: a sent/received bit-flag column and a first-send
//! ordinal column (the FIFO checkers' send-position map). The in-transit
//! multiset is a slot arena threaded by two intrusive lists — a per-value
//! FIFO chain (which pending copy a receive cancels) and a global
//! send-order list (what [`in_transit`](TraceMonitor::in_transit)
//! enumerates) — with cancelled slots recycled through a free list, so
//! monitor memory is bounded by the **live** in-transit population plus
//! the distinct-value tables, never by total sends.
//!
//! Two kinds of properties coexist:
//!
//! * **online** properties (PL2–PL5, DL2–DL6, well-formedness) are decided
//!   the moment the offending action is observed; the monitor records the
//!   *first* violation of each and [`TraceMonitor::online_violation`]
//!   reports the earliest conclusion-class one — the hook the simulator
//!   uses to abort a run on the offending prefix;
//! * **end-of-trace** properties (PL1 is online too, but DL1, DL7 and DL8
//!   quantify over the *final* received set and the *unbounded* working
//!   interval) are evaluated lazily at verdict-query time, "as if the trace
//!   ended now". Querying is `O(sends)` for DL7/DL8 and `O(1)` for the
//!   rest; observing stays `O(1)`.
//!
//! Duplicate-send semantics (see `spec::physical::check_pl5` /
//! `spec::datalink::check_dl6`): a duplicate packet (resp. message) send
//! *poisons* the FIFO checker — PL2 (resp. DL3) already makes the module
//! verdict vacuous in that case, so PL5/DL6 stop judging rather than
//! misattribute a legal retransmission to reordering. A receive of a
//! never-sent value likewise poisons FIFO checking (it is PL4/DL5's
//! violation to report). Violations recorded *before* the poisoning event
//! stand.

use ioa::intern::{FxBuildHasher, StateId, StateTable};
use ioa::schedule_module::{TraceKind, Verdict, Violation};

use crate::action::{Dir, DlAction, Msg, Packet};

/// Null link/slot marker in the intrusive lists and id columns.
const NONE: u32 = u32::MAX;

/// "No send position recorded" sentinel in the FIFO ordinal column.
const NO_POS: u64 = u64::MAX;

/// `flags` bit: the value has been sent at least once.
const SENT: u8 = 1;

/// `flags` bit: the value has been received at least once.
const RECEIVED: u8 = 2;

/// Batches below this length skip the reserve pre-scan: the scan only
/// pays off when a slice is long enough for mid-stream table doublings.
const RESERVE_THRESHOLD: usize = 4096;

/// Online well-formedness state for one medium direction: the streaming
/// equivalent of [`crate::spec::wellformed::MediumTimeline`].
#[derive(Debug, Clone, Default)]
struct StatusState {
    /// `true` between a `wake` and the next `fail`/`crash`.
    up: bool,
    /// First well-formedness violation (index + reason), if any.
    error: Option<(usize, &'static str)>,
}

impl StatusState {
    fn wake(&mut self, i: usize) {
        if self.up && self.error.is_none() {
            self.error = Some((i, "wake while medium already active"));
        }
        self.up = true;
    }

    fn fail(&mut self, i: usize) {
        if !self.up && self.error.is_none() {
            self.error = Some((i, "fail while medium not active"));
        }
        self.up = false;
    }

    fn crash(&mut self) {
        // A crash may follow a wake with no intervening fail and starts a
        // new crash interval; never a well-formedness error by itself.
        self.up = false;
    }

    fn violation(&self) -> Option<Violation> {
        self.error.map(|(at, reason)| Violation {
            property: "well-formedness",
            at: Some(at),
            reason: reason.to_string(),
        })
    }
}

/// Per-value history columns, indexed by interned value id.
#[derive(Debug, Clone, Default)]
struct ValueCols {
    /// [`SENT`] / [`RECEIVED`] bit-flags.
    flags: Vec<u8>,
    /// First-send ordinal for the FIFO checker, [`NO_POS`] if none.
    /// Written only while the checker is unpoisoned, mirroring the
    /// insertion discipline of the old `send_pos` map.
    send_pos: Vec<u64>,
}

impl ValueCols {
    /// Appends the columns for a freshly interned id.
    #[inline]
    fn push_value(&mut self) {
        self.flags.push(0);
        self.send_pos.push(NO_POS);
    }

    fn reserve(&mut self, additional: usize) {
        self.flags.reserve(additional);
        self.send_pos.reserve(additional);
    }

    fn approx_bytes(&self) -> usize {
        self.flags.capacity() + self.send_pos.capacity() * std::mem::size_of::<u64>()
    }
}

/// In-transit packet tracking with **multiset** semantics: each receive
/// cancels the earliest still-pending send of the same packet value, and a
/// receive with no pending copy pre-cancels the *next* send of that value
/// (net in-transit count per value = sends − receives, clamped at zero,
/// surviving copies being the latest sends).
///
/// Struct-of-arrays slot arena. A pending send occupies one slot carrying
/// its value id; slots are threaded onto two intrusive lists — the
/// per-value FIFO chain rooted at `q_head`/`q_tail` and the global
/// send-order list rooted at `ord_head`/`ord_tail`. A cancelled slot is
/// unlinked from both and pushed on the free list (reusing the
/// `next_same` column as the link), so the arena never outgrows the
/// **peak live** in-transit population.
#[derive(Debug, Clone)]
struct TransitState {
    /// Interned value id of each slot.
    slot_val: Vec<u32>,
    /// Live slot: next pending slot of the same value, oldest first.
    /// Freed slot: next entry on the free list.
    next_same: Vec<u32>,
    /// Global send-order doubly-linked list.
    ord_prev: Vec<u32>,
    ord_next: Vec<u32>,
    ord_head: u32,
    ord_tail: u32,
    free_head: u32,
    live: u32,
    /// Per-value (id-indexed): oldest/newest pending slot of that value.
    q_head: Vec<u32>,
    q_tail: Vec<u32>,
    /// Per-value: receives observed with no pending matching send.
    unmatched: Vec<u32>,
}

impl Default for TransitState {
    fn default() -> Self {
        TransitState {
            slot_val: Vec::new(),
            next_same: Vec::new(),
            ord_prev: Vec::new(),
            ord_next: Vec::new(),
            ord_head: NONE,
            ord_tail: NONE,
            free_head: NONE,
            live: 0,
            q_head: Vec::new(),
            q_tail: Vec::new(),
            unmatched: Vec::new(),
        }
    }
}

impl TransitState {
    /// Appends the per-value columns for a freshly interned id.
    #[inline]
    fn push_value(&mut self) {
        self.q_head.push(NONE);
        self.q_tail.push(NONE);
        self.unmatched.push(0);
    }

    fn send(&mut self, id: u32) {
        let v = id as usize;
        if self.unmatched[v] > 0 {
            self.unmatched[v] -= 1;
            return;
        }
        let slot = if self.free_head == NONE {
            let s = u32::try_from(self.slot_val.len()).expect("transit arena overflowed u32");
            self.slot_val.push(id);
            self.next_same.push(NONE);
            self.ord_prev.push(NONE);
            self.ord_next.push(NONE);
            s
        } else {
            let s = self.free_head;
            self.free_head = self.next_same[s as usize];
            self.slot_val[s as usize] = id;
            self.next_same[s as usize] = NONE;
            s
        };
        let si = slot as usize;
        // Append to this value's FIFO chain…
        if self.q_tail[v] == NONE {
            self.q_head[v] = slot;
        } else {
            self.next_same[self.q_tail[v] as usize] = slot;
        }
        self.q_tail[v] = slot;
        // …and to the global send-order list.
        self.ord_prev[si] = self.ord_tail;
        self.ord_next[si] = NONE;
        if self.ord_tail == NONE {
            self.ord_head = slot;
        } else {
            self.ord_next[self.ord_tail as usize] = slot;
        }
        self.ord_tail = slot;
        self.live += 1;
    }

    fn receive(&mut self, id: u32) {
        let v = id as usize;
        let slot = self.q_head[v];
        if slot == NONE {
            self.unmatched[v] += 1;
            return;
        }
        let si = slot as usize;
        // Pop the oldest pending copy off the value chain…
        self.q_head[v] = self.next_same[si];
        if self.q_head[v] == NONE {
            self.q_tail[v] = NONE;
        }
        // …unlink it from the send-order list…
        let (p, n) = (self.ord_prev[si], self.ord_next[si]);
        if p == NONE {
            self.ord_head = n;
        } else {
            self.ord_next[p as usize] = n;
        }
        if n == NONE {
            self.ord_tail = p;
        } else {
            self.ord_prev[n as usize] = p;
        }
        // …and recycle the slot.
        self.next_same[si] = self.free_head;
        self.free_head = slot;
        self.live -= 1;
    }

    fn reserve(&mut self, additional: usize) {
        self.q_head.reserve(additional);
        self.q_tail.reserve(additional);
        self.unmatched.reserve(additional);
    }

    fn approx_bytes(&self) -> usize {
        (self.slot_val.capacity()
            + self.next_same.capacity()
            + self.ord_prev.capacity()
            + self.ord_next.capacity()
            + self.q_head.capacity()
            + self.q_tail.capacity()
            + self.unmatched.capacity())
            * std::mem::size_of::<u32>()
    }
}

/// Per-direction physical-layer monitor state (PL1–PL5 + in-transit).
#[derive(Debug, Clone, Default)]
struct PlState {
    status: StatusState,
    /// Packet value interner: every send/receive pays one probe here and
    /// indexes the columns below with the resulting dense id.
    values: StateTable<Packet, FxBuildHasher>,
    vals: ValueCols,
    transit: TransitState,
    sends: u64,
    last_recv_pos: Option<u64>,
    /// PL5 stops judging after a duplicate send or a receive-of-unsent.
    fifo_poisoned: bool,
    pl1: Option<Violation>,
    pl2: Option<Violation>,
    pl3: Option<Violation>,
    pl4: Option<Violation>,
    pl5: Option<Violation>,
}

impl PlState {
    #[inline]
    fn intern(&mut self, p: &Packet) -> u32 {
        let (id, fresh) = self.values.intern(*p);
        if fresh {
            self.vals.push_value();
            self.transit.push_value();
        }
        id.0
    }

    fn send(&mut self, i: usize, dir: Dir, p: &Packet) {
        if !self.status.up && self.pl1.is_none() {
            self.pl1 = Some(Violation {
                property: "PL1",
                at: Some(i),
                reason: format!("send_pkt^{dir} outside any working interval"),
            });
        }
        let v = self.intern(p) as usize;
        if self.vals.flags[v] & SENT != 0 {
            if self.pl2.is_none() {
                self.pl2 = Some(Violation {
                    property: "PL2",
                    at: Some(i),
                    reason: format!("packet {p} sent twice"),
                });
            }
        } else {
            self.vals.flags[v] |= SENT;
        }
        if !self.fifo_poisoned {
            if self.vals.send_pos[v] == NO_POS {
                self.vals.send_pos[v] = self.sends;
            } else {
                self.fifo_poisoned = true;
            }
        }
        self.sends += 1;
        self.transit.send(v as u32);
    }

    fn receive(&mut self, i: usize, p: &Packet) {
        let v = self.intern(p) as usize;
        if self.vals.flags[v] & RECEIVED != 0 {
            if self.pl3.is_none() {
                self.pl3 = Some(Violation {
                    property: "PL3",
                    at: Some(i),
                    reason: format!("packet {p} received twice"),
                });
            }
        } else {
            self.vals.flags[v] |= RECEIVED;
        }
        if self.vals.flags[v] & SENT == 0 && self.pl4.is_none() {
            self.pl4 = Some(Violation {
                property: "PL4",
                at: Some(i),
                reason: format!("packet {p} received but never sent"),
            });
        }
        if !self.fifo_poisoned && self.pl5.is_none() {
            let pos = self.vals.send_pos[v];
            if pos == NO_POS {
                self.fifo_poisoned = true;
            } else {
                if let Some(prev) = self.last_recv_pos {
                    if pos < prev {
                        self.pl5 = Some(Violation {
                            property: "PL5 (FIFO)",
                            at: Some(i),
                            reason: format!(
                                "packet {p} (send position {pos}) received after a packet \
                                 with send position {prev}"
                            ),
                        });
                    }
                }
                self.last_recv_pos = Some(pos);
            }
        }
        self.transit.receive(v as u32);
    }

    fn approx_bytes(&self) -> usize {
        self.values.approx_bytes() + self.vals.approx_bytes() + self.transit.approx_bytes()
    }
}

/// Data-link-layer monitor state (DL2–DL8; DL1 is derived from the status
/// monitors at query time).
#[derive(Debug, Clone, Default)]
struct DlState {
    /// Message value interner; columns below are indexed by its dense ids.
    values: StateTable<Msg, FxBuildHasher>,
    vals: ValueCols,
    sends: u64,
    last_recv_pos: Option<u64>,
    /// DL6 stops judging after a duplicate send or a receive-of-unsent.
    fifo_poisoned: bool,
    /// `(trace index, message id)` of each `send_msg` inside a *closed*
    /// transmitter working interval, grouped per interval in trace order.
    closed_interval_sends: Vec<Vec<(usize, u32)>>,
    /// Sends inside the currently open transmitter working interval.
    open_interval_sends: Vec<(usize, u32)>,
    dl2: Option<Violation>,
    dl3: Option<Violation>,
    dl4: Option<Violation>,
    dl5: Option<Violation>,
    dl6: Option<Violation>,
}

impl DlState {
    #[inline]
    fn intern(&mut self, m: Msg) -> u32 {
        let (id, fresh) = self.values.intern(m);
        if fresh {
            self.vals.push_value();
        }
        id.0
    }

    fn on_tx_wake(&mut self) {
        // On a malformed double wake the previous interval's sends are
        // sealed off as well; the module verdict is vacuous then anyway.
        self.on_tx_down();
        self.open_interval_sends = Vec::new();
    }

    fn on_tx_down(&mut self) {
        if !self.open_interval_sends.is_empty() {
            self.closed_interval_sends
                .push(std::mem::take(&mut self.open_interval_sends));
        }
    }

    fn send(&mut self, i: usize, m: Msg, tx_up: bool) {
        let v = self.intern(m) as usize;
        if tx_up {
            self.open_interval_sends.push((i, v as u32));
        } else if self.dl2.is_none() {
            self.dl2 = Some(Violation {
                property: "DL2",
                at: Some(i),
                reason: format!("send_msg({m}) outside any transmitter working interval"),
            });
        }
        if self.vals.flags[v] & SENT != 0 {
            if self.dl3.is_none() {
                self.dl3 = Some(Violation {
                    property: "DL3",
                    at: Some(i),
                    reason: format!("message {m} sent twice"),
                });
            }
        } else {
            self.vals.flags[v] |= SENT;
        }
        if !self.fifo_poisoned {
            if self.vals.send_pos[v] == NO_POS {
                self.vals.send_pos[v] = self.sends;
            } else {
                self.fifo_poisoned = true;
            }
        }
        self.sends += 1;
    }

    fn receive(&mut self, i: usize, m: Msg) {
        let v = self.intern(m) as usize;
        if self.vals.flags[v] & RECEIVED != 0 {
            if self.dl4.is_none() {
                self.dl4 = Some(Violation {
                    property: "DL4",
                    at: Some(i),
                    reason: format!("message {m} received twice"),
                });
            }
        } else {
            self.vals.flags[v] |= RECEIVED;
        }
        if self.vals.flags[v] & SENT == 0 && self.dl5.is_none() {
            self.dl5 = Some(Violation {
                property: "DL5",
                at: Some(i),
                reason: format!("message {m} received but never sent"),
            });
        }
        if !self.fifo_poisoned && self.dl6.is_none() {
            let pos = self.vals.send_pos[v];
            if pos == NO_POS {
                self.fifo_poisoned = true;
            } else {
                if let Some(prev) = self.last_recv_pos {
                    if pos < prev {
                        self.dl6 = Some(Violation {
                            property: "DL6 (FIFO)",
                            at: Some(i),
                            reason: format!(
                                "message {m} (send position {pos}) received after a \
                                 message with send position {prev}"
                            ),
                        });
                    }
                }
                self.last_recv_pos = Some(pos);
            }
        }
    }

    /// `true` if the message with interned id `id` has been received.
    #[inline]
    fn is_received(&self, id: u32) -> bool {
        self.vals.flags[id as usize] & RECEIVED != 0
    }

    #[inline]
    fn msg(&self, id: u32) -> Msg {
        *self.values.get(StateId(id))
    }

    fn approx_bytes(&self) -> usize {
        let pair = std::mem::size_of::<(usize, u32)>();
        self.values.approx_bytes()
            + self.vals.approx_bytes()
            + self.open_interval_sends.capacity() * pair
            + self
                .closed_interval_sends
                .iter()
                .map(|v| v.capacity() * pair)
                .sum::<usize>()
            + self.closed_interval_sends.capacity() * std::mem::size_of::<Vec<(usize, u32)>>()
    }
}

/// Of two recorded violations, the one observed earlier (first argument
/// wins ties) — the allocation-free core of the online candidate filter.
fn earlier<'a>(best: Option<&'a Violation>, cand: Option<&'a Violation>) -> Option<&'a Violation> {
    match (best, cand) {
        (Some(b), Some(c)) if c.at < b.at => Some(c),
        (Some(b), _) => Some(b),
        (None, c) => c,
    }
}

/// A single-pass, incremental conformance checker over `DlAction` traces.
///
/// Feed it a trace one action at a time with [`observe`](Self::observe)
/// (or slice-at-a-time with [`observe_all`](Self::observe_all) /
/// [`scan`](Self::scan)) and query verdicts at any prefix. Verdicts are
/// exactly those of the batch schedule modules
/// [`crate::spec::physical::PlModule`] and
/// [`crate::spec::datalink::DlModule`] on the observed prefix.
///
/// ```
/// use dl_core::action::{Dir, DlAction, Msg};
/// use dl_core::spec::monitor::TraceMonitor;
/// use ioa::schedule_module::{TraceKind, Verdict};
///
/// let mut mon = TraceMonitor::new();
/// for a in [
///     DlAction::Wake(Dir::TR),
///     DlAction::Wake(Dir::RT),
///     DlAction::SendMsg(Msg(1)),
///     DlAction::ReceiveMsg(Msg(1)),
/// ] {
///     mon.observe(&a);
/// }
/// assert_eq!(mon.dl_verdict(true, TraceKind::Complete), Verdict::Satisfied);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceMonitor {
    next_index: usize,
    saw_wake: bool,
    saw_fail_or_crash: bool,
    /// Physical-layer state, indexed by `Dir::BOTH` order (TR, RT).
    dirs: [PlState; 2],
    dl: DlState,
}

fn dir_index(dir: Dir) -> usize {
    match dir {
        Dir::TR => 0,
        Dir::RT => 1,
    }
}

/// Iterator over the pending in-transit packets of one direction, oldest
/// (earliest surviving send) first. See
/// [`TraceMonitor::in_transit_iter`].
pub struct InTransit<'a> {
    pl: &'a PlState,
    slot: u32,
}

impl Iterator for InTransit<'_> {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        if self.slot == NONE {
            return None;
        }
        let si = self.slot as usize;
        self.slot = self.pl.transit.ord_next[si];
        Some(*self.pl.values.get(StateId(self.pl.transit.slot_val[si])))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Exact only when fresh; after partial consumption still an
        // upper bound (the list never grows mid-iteration).
        let n = self.pl.transit.live as usize;
        (0, Some(n))
    }
}

impl TraceMonitor {
    /// A monitor that has observed the empty trace.
    #[must_use]
    pub fn new() -> Self {
        TraceMonitor::default()
    }

    /// A monitor that has observed all of `trace`, in order.
    #[must_use]
    pub fn scan(trace: &[DlAction]) -> Self {
        let mut mon = TraceMonitor::new();
        mon.observe_all(trace);
        mon
    }

    /// Observes one action. Amortized `O(1)`.
    pub fn observe(&mut self, a: &DlAction) {
        let i = self.next_index;
        self.next_index = i + 1;
        self.ingest(i, a);
    }

    /// Observes a slice of actions, in order — the batched fast path.
    ///
    /// Equivalent to calling [`observe`](Self::observe) per action (the
    /// differential suites pin this), but long slices first take a
    /// counting pre-scan that reserves the value tables and columns up
    /// front, so ingestion never pauses for a mid-stream rehash.
    pub fn observe_all(&mut self, trace: &[DlAction]) {
        if trace.len() >= RESERVE_THRESHOLD {
            self.reserve_for(trace);
        }
        let mut i = self.next_index;
        for a in trace {
            self.ingest(i, a);
            i += 1;
        }
        self.next_index = i;
    }

    /// Sizes tables for a pending batch: each packet/message action can
    /// introduce at most one fresh value, so the per-kind action counts
    /// are a safe (if loose) reservation bound.
    fn reserve_for(&mut self, trace: &[DlAction]) {
        let mut pkts = [0usize; 2];
        let mut msgs = 0usize;
        for a in trace {
            match a {
                DlAction::SendPkt(d, _) | DlAction::ReceivePkt(d, _) => {
                    pkts[dir_index(*d)] += 1;
                }
                DlAction::SendMsg(_) | DlAction::ReceiveMsg(_) => msgs += 1,
                _ => {}
            }
        }
        for (k, d) in self.dirs.iter_mut().enumerate() {
            if pkts[k] > 0 {
                d.values.reserve(pkts[k]);
                d.vals.reserve(pkts[k]);
                d.transit.reserve(pkts[k]);
            }
        }
        if msgs > 0 {
            self.dl.values.reserve(msgs);
            self.dl.vals.reserve(msgs);
        }
    }

    #[inline]
    fn ingest(&mut self, i: usize, a: &DlAction) {
        match a {
            DlAction::Wake(d) => {
                self.saw_wake = true;
                self.dirs[dir_index(*d)].status.wake(i);
                if *d == Dir::TR {
                    self.dl.on_tx_wake();
                }
            }
            DlAction::Fail(d) => {
                self.saw_fail_or_crash = true;
                self.dirs[dir_index(*d)].status.fail(i);
                if *d == Dir::TR {
                    self.dl.on_tx_down();
                }
            }
            DlAction::Crash(s) => {
                self.saw_fail_or_crash = true;
                self.dirs[dir_index(s.sends_on())].status.crash();
                if s.sends_on() == Dir::TR {
                    self.dl.on_tx_down();
                }
            }
            DlAction::SendPkt(d, p) => self.dirs[dir_index(*d)].send(i, *d, p),
            DlAction::ReceivePkt(d, p) => self.dirs[dir_index(*d)].receive(i, p),
            DlAction::SendMsg(m) => {
                let tx_up = self.dirs[0].status.up;
                self.dl.send(i, *m, tx_up);
            }
            DlAction::ReceiveMsg(m) => self.dl.receive(i, *m),
            DlAction::Internal(..) => {}
        }
    }

    /// How many actions have been observed so far.
    #[must_use]
    pub fn actions_observed(&self) -> usize {
        self.next_index
    }

    /// `true` if any `wake` event was observed (either direction).
    #[must_use]
    pub fn saw_wake(&self) -> bool {
        self.saw_wake
    }

    /// `true` if any `fail` or `crash` event was observed.
    #[must_use]
    pub fn saw_fail_or_crash(&self) -> bool {
        self.saw_fail_or_crash
    }

    /// Approximate resident heap bytes of the monitor state: value
    /// interners, per-value columns, transit arena, and interval lists.
    /// Bounded by distinct observed values plus **peak live** in-transit
    /// packets — independent of trace length (the allocation-ceiling
    /// regression test pins this).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.dirs.iter().map(PlState::approx_bytes).sum::<usize>() + self.dl.approx_bytes()
    }

    /// First well-formedness violation for `dir`, if any.
    #[must_use]
    pub fn wellformedness_violation(&self, dir: Dir) -> Option<Violation> {
        self.dirs[dir_index(dir)].status.violation()
    }

    /// First violation of the given PL property (1–5) for `dir` on the
    /// observed prefix. PL1–PL4 are exact; PL5 is judged under the
    /// duplicate-poisoning semantics documented on the module.
    #[must_use]
    pub fn pl_violation(&self, dir: Dir, property: u8) -> Option<&Violation> {
        let d = &self.dirs[dir_index(dir)];
        match property {
            1 => d.pl1.as_ref(),
            2 => d.pl2.as_ref(),
            3 => d.pl3.as_ref(),
            4 => d.pl4.as_ref(),
            5 => d.pl5.as_ref(),
            _ => None,
        }
    }

    /// First violation of the given DL property (2–6) on the observed
    /// prefix. DL1/DL7/DL8 are end-of-trace properties; use
    /// [`dl1_violation`](Self::dl1_violation),
    /// [`dl7_violation`](Self::dl7_violation) and
    /// [`dl8_violation`](Self::dl8_violation).
    #[must_use]
    pub fn dl_violation(&self, property: u8) -> Option<&Violation> {
        match property {
            2 => self.dl.dl2.as_ref(),
            3 => self.dl.dl3.as_ref(),
            4 => self.dl.dl4.as_ref(),
            5 => self.dl.dl5.as_ref(),
            6 => self.dl.dl6.as_ref(),
            _ => None,
        }
    }

    /// DL1 as if the trace ended now: an unbounded transmitter working
    /// interval iff an unbounded receiver one (i.e. both media currently up
    /// or both down).
    #[must_use]
    pub fn dl1_violation(&self) -> Option<Violation> {
        match (self.dirs[0].status.up, self.dirs[1].status.up) {
            (true, false) => Some(Violation {
                property: "DL1",
                at: None,
                reason: "unbounded transmitter working interval without an unbounded receiver one"
                    .into(),
            }),
            (false, true) => Some(Violation {
                property: "DL1",
                at: None,
                reason: "unbounded receiver working interval without an unbounded transmitter one"
                    .into(),
            }),
            _ => None,
        }
    }

    /// DL7 as if the trace ended now: within each transmitter working
    /// interval, no delivered send may follow a lost one. `O(sends)`.
    #[must_use]
    pub fn dl7_violation(&self) -> Option<Violation> {
        let intervals = self
            .dl
            .closed_interval_sends
            .iter()
            .chain(std::iter::once(&self.dl.open_interval_sends));
        for sends in intervals {
            let mut first_lost: Option<(usize, u32)> = None;
            for &(i, id) in sends {
                if self.dl.is_received(id) {
                    if let Some((j, lost_id)) = first_lost {
                        let lost = self.dl.msg(lost_id);
                        let m = self.dl.msg(id);
                        return Some(Violation {
                            property: "DL7",
                            at: Some(j),
                            reason: format!(
                                "message {lost} (sent at {j}) lost, but later message {m} \
                                 from the same working interval was delivered"
                            ),
                        });
                    }
                } else if first_lost.is_none() {
                    first_lost = Some((i, id));
                }
            }
        }
        None
    }

    /// DL8 as if the trace were complete now: every message sent in the
    /// (currently) unbounded transmitter working interval must have been
    /// received. `O(sends in that interval)`.
    #[must_use]
    pub fn dl8_violation(&self) -> Option<Violation> {
        if !self.dirs[0].status.up {
            return None;
        }
        for &(i, id) in &self.dl.open_interval_sends {
            if !self.dl.is_received(id) {
                let m = self.dl.msg(id);
                return Some(Violation {
                    property: "DL8",
                    at: Some(i),
                    reason: format!(
                        "message {m} sent in the unbounded transmitter working interval but \
                         never received (trace is complete)"
                    ),
                });
            }
        }
        None
    }

    /// The packets currently in transit on `dir`: sent but not (yet)
    /// received, under multiset semantics, in send order.
    ///
    /// Allocates a fresh `Vec`; on hot paths prefer
    /// [`in_transit_iter`](Self::in_transit_iter) or
    /// [`in_transit_count`](Self::in_transit_count).
    #[must_use]
    pub fn in_transit(&self, dir: Dir) -> Vec<Packet> {
        self.in_transit_iter(dir).collect()
    }

    /// Iterates the in-transit packets of `dir` in send order without
    /// allocating.
    #[must_use]
    pub fn in_transit_iter(&self, dir: Dir) -> InTransit<'_> {
        let pl = &self.dirs[dir_index(dir)];
        InTransit {
            pl,
            slot: pl.transit.ord_head,
        }
    }

    /// How many packets are currently in transit on `dir`. `O(1)`.
    #[must_use]
    pub fn in_transit_count(&self, dir: Dir) -> usize {
        self.dirs[dir_index(dir)].transit.live as usize
    }

    /// The physical-layer module verdict (`PL^{dir}` or `PL-FIFO^{dir}`)
    /// on the observed prefix. Identical to
    /// [`crate::spec::physical::PlModule::check`].
    #[must_use]
    pub fn pl_verdict(&self, dir: Dir, fifo: bool) -> Verdict {
        let d = &self.dirs[dir_index(dir)];
        // Hypotheses: well-formedness, PL1, PL2.
        if let Some(v) = d.status.violation() {
            return Verdict::Vacuous(v);
        }
        if let Some(v) = &d.pl1 {
            return Verdict::Vacuous(v.clone());
        }
        if let Some(v) = &d.pl2 {
            return Verdict::Vacuous(v.clone());
        }
        // Conclusions: PL3, PL4, and PL5 for the FIFO module.
        if let Some(v) = &d.pl3 {
            return Verdict::Violated(v.clone());
        }
        if let Some(v) = &d.pl4 {
            return Verdict::Violated(v.clone());
        }
        if fifo {
            if let Some(v) = &d.pl5 {
                return Verdict::Violated(v.clone());
            }
        }
        Verdict::Satisfied
    }

    /// The data-link module verdict (`DL` when `weak == false`, `WDL` when
    /// `weak == true`) on the observed prefix. Identical to
    /// [`crate::spec::datalink::DlModule::check`].
    #[must_use]
    pub fn dl_verdict(&self, weak: bool, kind: TraceKind) -> Verdict {
        // Hypotheses: well-formedness (transmitter direction preferred, as
        // in the batch module) and DL1–DL3.
        if let Some(v) = self.dirs[0]
            .status
            .violation()
            .or_else(|| self.dirs[1].status.violation())
        {
            return Verdict::Vacuous(v);
        }
        if let Some(v) = self.dl1_violation() {
            return Verdict::Vacuous(v);
        }
        if let Some(v) = &self.dl.dl2 {
            return Verdict::Vacuous(v.clone());
        }
        if let Some(v) = &self.dl.dl3 {
            return Verdict::Vacuous(v.clone());
        }
        // Conclusions.
        if let Some(v) = &self.dl.dl4 {
            return Verdict::Violated(v.clone());
        }
        if let Some(v) = &self.dl.dl5 {
            return Verdict::Violated(v.clone());
        }
        if !weak {
            if let Some(v) = &self.dl.dl6 {
                return Verdict::Violated(v.clone());
            }
            if let Some(v) = self.dl7_violation() {
                return Verdict::Violated(v);
            }
        }
        if kind == TraceKind::Complete {
            if let Some(v) = self.dl8_violation() {
                return Verdict::Violated(v);
            }
        }
        Verdict::Satisfied
    }

    /// The earliest *conclusion-class* violation on the observed prefix —
    /// the online abort signal for the simulator and explorer.
    ///
    /// A violation is reported only while its module's hypotheses still
    /// hold on the prefix (a direction with a well-formedness/PL1/PL2
    /// failure, or a data link with a well-formedness/DL2/DL3 failure, is
    /// unconstrained — its conclusions are suppressed, matching the batch
    /// verdict's vacuity). End-of-trace properties (DL1, DL7, DL8) are
    /// never reported online: they can only be judged once the trace is
    /// complete, and the post-run batch verdict covers them. `O(1)` and
    /// allocation-free — it runs after every simulated action.
    #[must_use]
    pub fn online_violation(&self, full_dl: bool, fifo: bool) -> Option<&Violation> {
        let mut best: Option<&Violation> = None;
        for d in &self.dirs {
            if d.status.error.is_some() || d.pl1.is_some() || d.pl2.is_some() {
                continue;
            }
            best = earlier(best, d.pl3.as_ref());
            best = earlier(best, d.pl4.as_ref());
            if fifo {
                best = earlier(best, d.pl5.as_ref());
            }
        }
        earlier(best, self.online_dl_violation(full_dl))
    }

    /// The earliest *data-link* conclusion-class violation on the observed
    /// prefix, ignoring the physical-layer modules entirely.
    ///
    /// For monitoring runs over deliberately misbehaving media: a
    /// duplicating channel (e.g. the `dup` knob of `dl-channels`'
    /// `FaultyChannel`) violates PL3 by design, so the combined
    /// [`TraceMonitor::online_violation`] would abort every such run
    /// before the protocol under test gets a chance to misbehave. The
    /// data-link hypotheses (directional well-formedness, DL2, DL3) are
    /// untouched by physical-layer violations, so DL conclusions remain
    /// meaningful on their own. Same gating and `O(1)` cost as the
    /// combined check; end-of-trace properties are likewise never
    /// reported online.
    #[must_use]
    pub fn online_dl_violation(&self, full_dl: bool) -> Option<&Violation> {
        let hypotheses_hold = self.dirs[0].status.error.is_none()
            && self.dirs[1].status.error.is_none()
            && self.dl.dl2.is_none()
            && self.dl.dl3.is_none();
        if !hypotheses_hold {
            return None;
        }
        let mut best = earlier(self.dl.dl4.as_ref(), self.dl.dl5.as_ref());
        if full_dl {
            best = earlier(best, self.dl.dl6.as_ref());
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Station;

    use DlAction::{Crash, Fail, ReceiveMsg, ReceivePkt, SendMsg, SendPkt, Wake};

    fn pkt(seq: u64, uid: u64) -> Packet {
        Packet::data(seq, Msg(seq)).with_uid(uid)
    }

    #[test]
    fn prefix_verdicts_track_the_trace() {
        let mut mon = TraceMonitor::new();
        mon.observe(&Wake(Dir::TR));
        assert!(matches!(
            mon.dl_verdict(true, TraceKind::Prefix),
            Verdict::Vacuous(_) // DL1: only tx unbounded
        ));
        mon.observe(&Wake(Dir::RT));
        assert_eq!(mon.dl_verdict(true, TraceKind::Prefix), Verdict::Satisfied);
        mon.observe(&SendMsg(Msg(1)));
        // DL8 pending on a complete trace, fine on a prefix.
        assert_eq!(mon.dl_verdict(true, TraceKind::Prefix), Verdict::Satisfied);
        assert!(matches!(
            mon.dl_verdict(true, TraceKind::Complete),
            Verdict::Violated(_)
        ));
        mon.observe(&ReceiveMsg(Msg(1)));
        assert_eq!(
            mon.dl_verdict(true, TraceKind::Complete),
            Verdict::Satisfied
        );
    }

    #[test]
    fn online_violation_fires_on_duplicate_delivery() {
        let mut mon = TraceMonitor::new();
        for a in [
            Wake(Dir::TR),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            ReceiveMsg(Msg(1)),
        ] {
            mon.observe(&a);
            assert!(mon.online_violation(true, true).is_none());
        }
        mon.observe(&ReceiveMsg(Msg(1)));
        let v = mon.online_violation(false, false).expect("DL4 online");
        assert_eq!(v.property, "DL4");
        assert_eq!(v.at, Some(4));
    }

    #[test]
    fn online_violation_suppressed_when_hypotheses_fail() {
        // Duplicate *send* (DL3, a hypothesis) before the duplicate
        // delivery: the module verdict is vacuous, so no online alarm.
        let mut mon = TraceMonitor::scan(&[
            Wake(Dir::TR),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            SendMsg(Msg(1)),
            ReceiveMsg(Msg(1)),
            ReceiveMsg(Msg(1)),
        ]);
        assert!(mon.online_violation(true, true).is_none());
        assert!(matches!(
            mon.dl_verdict(true, TraceKind::Prefix),
            Verdict::Vacuous(_)
        ));
        // The PL side of the same monitor is unaffected.
        mon.observe(&SendPkt(Dir::TR, pkt(0, 1)));
        mon.observe(&ReceivePkt(Dir::TR, pkt(0, 1)));
        mon.observe(&ReceivePkt(Dir::TR, pkt(0, 1)));
        let v = mon.online_violation(true, true).expect("PL3 online");
        assert_eq!(v.property, "PL3");
    }

    #[test]
    fn online_dl_violation_ignores_physical_faults() {
        // A duplicating medium: the same stamped packet delivered twice is
        // a PL3 violation, but the data link itself is still clean.
        let mut mon = TraceMonitor::scan(&[
            Wake(Dir::TR),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            SendPkt(Dir::TR, pkt(0, 1)),
            ReceivePkt(Dir::TR, pkt(0, 1)),
            ReceivePkt(Dir::TR, pkt(0, 1)),
            ReceiveMsg(Msg(1)),
        ]);
        assert_eq!(
            mon.online_violation(true, true).map(|v| v.property),
            Some("PL3")
        );
        assert!(mon.online_dl_violation(true).is_none());
        // A subsequent duplicate delivery is a DL4 conclusion, visible to
        // the DL-only check (and earliest overall is still PL3).
        mon.observe(&ReceiveMsg(Msg(1)));
        let v = mon.online_dl_violation(false).expect("DL4 online");
        assert_eq!(v.property, "DL4");
        assert_eq!(v.at, Some(7));
        assert_eq!(
            mon.online_violation(true, true).map(|v| v.property),
            Some("PL3")
        );
    }

    #[test]
    fn in_transit_multiset_semantics() {
        // send p, recv p, recv p (unmatched), send p, send p: the unmatched
        // receive cancels the next send; one copy (the last) remains.
        let p = pkt(0, 7);
        let mon = TraceMonitor::scan(&[
            Wake(Dir::TR),
            SendPkt(Dir::TR, p),
            ReceivePkt(Dir::TR, p),
            ReceivePkt(Dir::TR, p),
            SendPkt(Dir::TR, p),
            SendPkt(Dir::TR, p),
        ]);
        assert_eq!(mon.in_transit(Dir::TR), vec![p]);
        assert!(mon.in_transit(Dir::RT).is_empty());
        assert_eq!(mon.in_transit_count(Dir::TR), 1);
        assert_eq!(mon.in_transit_count(Dir::RT), 0);
        assert_eq!(mon.in_transit_iter(Dir::TR).collect::<Vec<_>>(), vec![p]);
    }

    #[test]
    fn crash_affects_the_direction_its_station_sends_on() {
        let mut mon = TraceMonitor::scan(&[Wake(Dir::TR), Wake(Dir::RT), Crash(Station::R)]);
        // rx (RT) is down, tx (TR) still up: DL1 vacuous.
        assert!(mon.dl1_violation().is_some());
        mon.observe(&Wake(Dir::RT));
        assert!(mon.dl1_violation().is_none());
    }

    #[test]
    fn dl7_and_dl8_are_end_of_trace() {
        let mut mon = TraceMonitor::scan(&[
            Wake(Dir::TR),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            SendMsg(Msg(2)),
            ReceiveMsg(Msg(2)),
        ]);
        // m1 lost so far, m2 delivered: DL7 violated "as of now"...
        assert_eq!(mon.dl7_violation().unwrap().at, Some(2));
        // ...but never reported online (a later ReceiveMsg(m1) can cure it).
        assert!(mon.online_violation(true, true).is_none());
        mon.observe(&ReceiveMsg(Msg(1)));
        assert!(mon.dl7_violation().is_none());
        // DL6: m1 (pos 0) after m2 (pos 1) — reordered, caught online under
        // the full spec.
        assert_eq!(
            mon.online_violation(true, false).unwrap().property,
            "DL6 (FIFO)"
        );
        assert!(mon.online_violation(false, false).is_none());
        assert!(mon.dl8_violation().is_none());
        mon.observe(&SendMsg(Msg(3)));
        assert_eq!(mon.dl8_violation().unwrap().at, Some(6));
        mon.observe(&Fail(Dir::TR));
        // Bounded interval now: DL8 no longer applies.
        assert!(mon.dl8_violation().is_none());
    }

    #[test]
    fn fifo_poisoning_keeps_prior_violations() {
        let mut mon = TraceMonitor::new();
        for a in [
            Wake(Dir::TR),
            SendPkt(Dir::TR, pkt(0, 1)),
            SendPkt(Dir::TR, pkt(1, 2)),
            ReceivePkt(Dir::TR, pkt(1, 2)),
            ReceivePkt(Dir::TR, pkt(0, 1)), // PL5 violation at 4
        ] {
            mon.observe(&a);
        }
        assert_eq!(mon.pl_violation(Dir::TR, 5).unwrap().at, Some(4));
        // A later duplicate send poisons PL5 but the recorded violation
        // stands (and PL2 now makes the module verdict vacuous anyway).
        mon.observe(&SendPkt(Dir::TR, pkt(0, 1)));
        assert_eq!(mon.pl_violation(Dir::TR, 5).unwrap().at, Some(4));
        assert!(matches!(mon.pl_verdict(Dir::TR, true), Verdict::Vacuous(_)));
    }

    #[test]
    fn transit_free_list_recycles_cancelled_slots() {
        // A long alternating send/receive stream over one recurring value
        // keeps exactly one live slot: the arena must stop growing after
        // the first round trip instead of growing with total sends.
        let p = pkt(0, 9);
        let mut mon = TraceMonitor::new();
        mon.observe(&Wake(Dir::TR));
        mon.observe(&SendPkt(Dir::TR, p));
        let bytes_after_first = mon.approx_bytes();
        for _ in 0..10_000 {
            mon.observe(&ReceivePkt(Dir::TR, p));
            mon.observe(&SendPkt(Dir::TR, p));
        }
        assert_eq!(mon.in_transit(Dir::TR), vec![p]);
        assert_eq!(
            mon.approx_bytes(),
            bytes_after_first,
            "recycled transit slots must not grow the arena"
        );
    }

    #[test]
    fn in_transit_order_survives_slot_reuse() {
        // Interleave cancellations so recycled slots land mid-stream; the
        // order list must still report pure send order.
        let (a, b, c) = (pkt(0, 1), pkt(1, 2), pkt(2, 3));
        let mut mon = TraceMonitor::new();
        mon.observe(&Wake(Dir::TR));
        mon.observe(&SendPkt(Dir::TR, a));
        mon.observe(&SendPkt(Dir::TR, b));
        mon.observe(&ReceivePkt(Dir::TR, a)); // slot of `a` freed
        mon.observe(&SendPkt(Dir::TR, c)); // reuses it
        assert_eq!(mon.in_transit(Dir::TR), vec![b, c]);
        assert_eq!(mon.in_transit_count(Dir::TR), 2);
        mon.observe(&ReceivePkt(Dir::TR, b));
        assert_eq!(mon.in_transit(Dir::TR), vec![c]);
    }

    #[test]
    fn chunked_observe_all_equals_per_action_observe() {
        let p = pkt(0, 1);
        let trace = [
            Wake(Dir::TR),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            SendPkt(Dir::TR, p),
            ReceivePkt(Dir::TR, p),
            ReceiveMsg(Msg(1)),
            SendMsg(Msg(2)),
            Fail(Dir::TR),
        ];
        for split in 0..=trace.len() {
            let mut chunked = TraceMonitor::new();
            chunked.observe_all(&trace[..split]);
            chunked.observe_all(&trace[split..]);
            let mut stepped = TraceMonitor::new();
            for a in &trace {
                stepped.observe(a);
            }
            assert_eq!(chunked.actions_observed(), stepped.actions_observed());
            for weak in [false, true] {
                for kind in [TraceKind::Prefix, TraceKind::Complete] {
                    assert_eq!(
                        chunked.dl_verdict(weak, kind),
                        stepped.dl_verdict(weak, kind)
                    );
                }
            }
            for dir in Dir::BOTH {
                for fifo in [false, true] {
                    assert_eq!(chunked.pl_verdict(dir, fifo), stepped.pl_verdict(dir, fifo));
                }
                assert_eq!(chunked.in_transit(dir), stepped.in_transit(dir));
            }
        }
    }
}
