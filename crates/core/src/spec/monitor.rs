//! Streaming, single-pass conformance monitor for the layer specifications.
//!
//! [`TraceMonitor`] consumes one [`DlAction`] at a time and maintains just
//! enough hash-indexed state to judge the physical-layer properties PL1–PL5
//! (per direction), the data-link properties DL1–DL8, well-formedness, and
//! the in-transit packet multiset — all in amortized `O(1)` per action.
//! The batch checkers in [`crate::spec::physical`] and
//! [`crate::spec::datalink`] are thin replay wrappers over this monitor, so
//! there is exactly one code path and every verdict (property name, trace
//! index, reason string) matches what the original quadratic checkers
//! produced.
//!
//! Two kinds of properties coexist:
//!
//! * **online** properties (PL2–PL5, DL2–DL6, well-formedness) are decided
//!   the moment the offending action is observed; the monitor records the
//!   *first* violation of each and [`TraceMonitor::online_violation`]
//!   reports the earliest conclusion-class one — the hook the simulator
//!   uses to abort a run on the offending prefix;
//! * **end-of-trace** properties (PL1 is online too, but DL1, DL7 and DL8
//!   quantify over the *final* received set and the *unbounded* working
//!   interval) are evaluated lazily at verdict-query time, "as if the trace
//!   ended now". Querying is `O(sends)` for DL7/DL8 and `O(1)` for the
//!   rest; observing stays `O(1)`.
//!
//! Duplicate-send semantics (see `spec::physical::check_pl5` /
//! `spec::datalink::check_dl6`): a duplicate packet (resp. message) send
//! *poisons* the FIFO checker — PL2 (resp. DL3) already makes the module
//! verdict vacuous in that case, so PL5/DL6 stop judging rather than
//! misattribute a legal retransmission to reordering. A receive of a
//! never-sent value likewise poisons FIFO checking (it is PL4/DL5's
//! violation to report). Violations recorded *before* the poisoning event
//! stand.

use std::collections::{HashMap, HashSet, VecDeque};

use ioa::schedule_module::{TraceKind, Verdict, Violation};

use crate::action::{Dir, DlAction, Msg, Packet};

/// Online well-formedness state for one medium direction: the streaming
/// equivalent of [`crate::spec::wellformed::MediumTimeline`].
#[derive(Debug, Clone, Default)]
struct StatusState {
    /// `true` between a `wake` and the next `fail`/`crash`.
    up: bool,
    /// First well-formedness violation (index + reason), if any.
    error: Option<(usize, &'static str)>,
}

impl StatusState {
    fn wake(&mut self, i: usize) {
        if self.up && self.error.is_none() {
            self.error = Some((i, "wake while medium already active"));
        }
        self.up = true;
    }

    fn fail(&mut self, i: usize) {
        if !self.up && self.error.is_none() {
            self.error = Some((i, "fail while medium not active"));
        }
        self.up = false;
    }

    fn crash(&mut self) {
        // A crash may follow a wake with no intervening fail and starts a
        // new crash interval; never a well-formedness error by itself.
        self.up = false;
    }

    fn violation(&self) -> Option<Violation> {
        self.error.map(|(at, reason)| Violation {
            property: "well-formedness",
            at: Some(at),
            reason: reason.to_string(),
        })
    }
}

/// In-transit packet tracking with **multiset** semantics: each receive
/// cancels the earliest still-pending send of the same packet value, and a
/// receive with no pending copy pre-cancels the *next* send of that value
/// (net in-transit count per value = sends − receives, clamped at zero,
/// surviving copies being the latest sends).
#[derive(Debug, Clone, Default)]
struct TransitState {
    /// Pending sends in send order; cancelled entries become `None`.
    slots: Vec<Option<Packet>>,
    /// Live slot indices per packet value, oldest first.
    live: HashMap<Packet, VecDeque<usize>>,
    /// Receives observed with no pending matching send, per packet value.
    unmatched: HashMap<Packet, usize>,
}

impl TransitState {
    fn send(&mut self, p: Packet) {
        if let Some(n) = self.unmatched.get_mut(&p) {
            *n -= 1;
            if *n == 0 {
                self.unmatched.remove(&p);
            }
            return;
        }
        let idx = self.slots.len();
        self.slots.push(Some(p));
        self.live.entry(p).or_default().push_back(idx);
    }

    fn receive(&mut self, p: &Packet) {
        match self.live.get_mut(p).and_then(VecDeque::pop_front) {
            Some(idx) => self.slots[idx] = None,
            None => *self.unmatched.entry(*p).or_insert(0) += 1,
        }
    }

    fn pending(&self) -> Vec<Packet> {
        self.slots.iter().flatten().copied().collect()
    }
}

/// Per-direction physical-layer monitor state (PL1–PL5 + in-transit).
#[derive(Debug, Clone, Default)]
struct PlState {
    status: StatusState,
    sent: HashSet<Packet>,
    received: HashSet<Packet>,
    /// Send position (0-based ordinal among this direction's sends) per
    /// packet value, for PL5.
    send_pos: HashMap<Packet, usize>,
    sends: usize,
    last_recv_pos: Option<usize>,
    /// PL5 stops judging after a duplicate send or a receive-of-unsent.
    fifo_poisoned: bool,
    transit: TransitState,
    pl1: Option<Violation>,
    pl2: Option<Violation>,
    pl3: Option<Violation>,
    pl4: Option<Violation>,
    pl5: Option<Violation>,
}

impl PlState {
    fn send(&mut self, i: usize, dir: Dir, p: &Packet) {
        if !self.status.up && self.pl1.is_none() {
            self.pl1 = Some(Violation {
                property: "PL1",
                at: Some(i),
                reason: format!("send_pkt^{dir} outside any working interval"),
            });
        }
        if !self.sent.insert(*p) && self.pl2.is_none() {
            self.pl2 = Some(Violation {
                property: "PL2",
                at: Some(i),
                reason: format!("packet {p} sent twice"),
            });
        }
        if !self.fifo_poisoned {
            if self.send_pos.contains_key(p) {
                self.fifo_poisoned = true;
            } else {
                self.send_pos.insert(*p, self.sends);
            }
        }
        self.sends += 1;
        self.transit.send(*p);
    }

    fn receive(&mut self, i: usize, p: &Packet) {
        if !self.received.insert(*p) && self.pl3.is_none() {
            self.pl3 = Some(Violation {
                property: "PL3",
                at: Some(i),
                reason: format!("packet {p} received twice"),
            });
        }
        if !self.sent.contains(p) && self.pl4.is_none() {
            self.pl4 = Some(Violation {
                property: "PL4",
                at: Some(i),
                reason: format!("packet {p} received but never sent"),
            });
        }
        if !self.fifo_poisoned && self.pl5.is_none() {
            match self.send_pos.get(p) {
                None => self.fifo_poisoned = true,
                Some(&pos) => {
                    if let Some(prev) = self.last_recv_pos {
                        if pos < prev {
                            self.pl5 = Some(Violation {
                                property: "PL5 (FIFO)",
                                at: Some(i),
                                reason: format!(
                                    "packet {p} (send position {pos}) received after a packet \
                                     with send position {prev}"
                                ),
                            });
                        }
                    }
                    self.last_recv_pos = Some(pos);
                }
            }
        }
        self.transit.receive(p);
    }
}

/// Data-link-layer monitor state (DL2–DL8; DL1 is derived from the status
/// monitors at query time).
#[derive(Debug, Clone, Default)]
struct DlState {
    sent: HashSet<Msg>,
    received: HashSet<Msg>,
    /// Send position per message, for DL6.
    send_pos: HashMap<Msg, usize>,
    sends: usize,
    last_recv_pos: Option<usize>,
    /// DL6 stops judging after a duplicate send or a receive-of-unsent.
    fifo_poisoned: bool,
    /// `(trace index, message)` of each `send_msg` inside a *closed*
    /// transmitter working interval, grouped per interval in trace order.
    closed_interval_sends: Vec<Vec<(usize, Msg)>>,
    /// Sends inside the currently open transmitter working interval.
    open_interval_sends: Vec<(usize, Msg)>,
    dl2: Option<Violation>,
    dl3: Option<Violation>,
    dl4: Option<Violation>,
    dl5: Option<Violation>,
    dl6: Option<Violation>,
}

impl DlState {
    fn on_tx_wake(&mut self) {
        // On a malformed double wake the previous interval's sends are
        // sealed off as well; the module verdict is vacuous then anyway.
        self.on_tx_down();
        self.open_interval_sends = Vec::new();
    }

    fn on_tx_down(&mut self) {
        if !self.open_interval_sends.is_empty() {
            self.closed_interval_sends
                .push(std::mem::take(&mut self.open_interval_sends));
        }
    }

    fn send(&mut self, i: usize, m: Msg, tx_up: bool) {
        if tx_up {
            self.open_interval_sends.push((i, m));
        } else if self.dl2.is_none() {
            self.dl2 = Some(Violation {
                property: "DL2",
                at: Some(i),
                reason: format!("send_msg({m}) outside any transmitter working interval"),
            });
        }
        if !self.sent.insert(m) && self.dl3.is_none() {
            self.dl3 = Some(Violation {
                property: "DL3",
                at: Some(i),
                reason: format!("message {m} sent twice"),
            });
        }
        if !self.fifo_poisoned {
            if self.send_pos.contains_key(&m) {
                self.fifo_poisoned = true;
            } else {
                self.send_pos.insert(m, self.sends);
            }
        }
        self.sends += 1;
    }

    fn receive(&mut self, i: usize, m: Msg) {
        if !self.received.insert(m) && self.dl4.is_none() {
            self.dl4 = Some(Violation {
                property: "DL4",
                at: Some(i),
                reason: format!("message {m} received twice"),
            });
        }
        if !self.sent.contains(&m) && self.dl5.is_none() {
            self.dl5 = Some(Violation {
                property: "DL5",
                at: Some(i),
                reason: format!("message {m} received but never sent"),
            });
        }
        if !self.fifo_poisoned && self.dl6.is_none() {
            match self.send_pos.get(&m) {
                None => self.fifo_poisoned = true,
                Some(&pos) => {
                    if let Some(prev) = self.last_recv_pos {
                        if pos < prev {
                            self.dl6 = Some(Violation {
                                property: "DL6 (FIFO)",
                                at: Some(i),
                                reason: format!(
                                    "message {m} (send position {pos}) received after a \
                                     message with send position {prev}"
                                ),
                            });
                        }
                    }
                    self.last_recv_pos = Some(pos);
                }
            }
        }
    }
}

/// A single-pass, incremental conformance checker over `DlAction` traces.
///
/// Feed it a trace one action at a time with [`observe`](Self::observe)
/// (or all at once with [`scan`](Self::scan)) and query verdicts at any
/// prefix. Verdicts are exactly those of the batch schedule modules
/// [`crate::spec::physical::PlModule`] and
/// [`crate::spec::datalink::DlModule`] on the observed prefix.
///
/// ```
/// use dl_core::action::{Dir, DlAction, Msg};
/// use dl_core::spec::monitor::TraceMonitor;
/// use ioa::schedule_module::{TraceKind, Verdict};
///
/// let mut mon = TraceMonitor::new();
/// for a in [
///     DlAction::Wake(Dir::TR),
///     DlAction::Wake(Dir::RT),
///     DlAction::SendMsg(Msg(1)),
///     DlAction::ReceiveMsg(Msg(1)),
/// ] {
///     mon.observe(&a);
/// }
/// assert_eq!(mon.dl_verdict(true, TraceKind::Complete), Verdict::Satisfied);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceMonitor {
    next_index: usize,
    saw_wake: bool,
    saw_fail_or_crash: bool,
    /// Physical-layer state, indexed by `Dir::BOTH` order (TR, RT).
    dirs: [PlState; 2],
    dl: DlState,
}

fn dir_index(dir: Dir) -> usize {
    match dir {
        Dir::TR => 0,
        Dir::RT => 1,
    }
}

impl TraceMonitor {
    /// A monitor that has observed the empty trace.
    #[must_use]
    pub fn new() -> Self {
        TraceMonitor::default()
    }

    /// A monitor that has observed all of `trace`, in order.
    #[must_use]
    pub fn scan(trace: &[DlAction]) -> Self {
        let mut mon = TraceMonitor::new();
        mon.observe_all(trace);
        mon
    }

    /// Observes one action. Amortized `O(1)`.
    pub fn observe(&mut self, a: &DlAction) {
        let i = self.next_index;
        self.next_index += 1;
        match a {
            DlAction::Wake(d) => {
                self.saw_wake = true;
                self.dirs[dir_index(*d)].status.wake(i);
                if *d == Dir::TR {
                    self.dl.on_tx_wake();
                }
            }
            DlAction::Fail(d) => {
                self.saw_fail_or_crash = true;
                self.dirs[dir_index(*d)].status.fail(i);
                if *d == Dir::TR {
                    self.dl.on_tx_down();
                }
            }
            DlAction::Crash(s) => {
                self.saw_fail_or_crash = true;
                self.dirs[dir_index(s.sends_on())].status.crash();
                if s.sends_on() == Dir::TR {
                    self.dl.on_tx_down();
                }
            }
            DlAction::SendPkt(d, p) => self.dirs[dir_index(*d)].send(i, *d, p),
            DlAction::ReceivePkt(d, p) => self.dirs[dir_index(*d)].receive(i, p),
            DlAction::SendMsg(m) => {
                let tx_up = self.dirs[0].status.up;
                self.dl.send(i, *m, tx_up);
            }
            DlAction::ReceiveMsg(m) => self.dl.receive(i, *m),
            DlAction::Internal(..) => {}
        }
    }

    /// Observes a slice of actions, in order.
    pub fn observe_all(&mut self, trace: &[DlAction]) {
        for a in trace {
            self.observe(a);
        }
    }

    /// How many actions have been observed so far.
    #[must_use]
    pub fn actions_observed(&self) -> usize {
        self.next_index
    }

    /// `true` if any `wake` event was observed (either direction).
    #[must_use]
    pub fn saw_wake(&self) -> bool {
        self.saw_wake
    }

    /// `true` if any `fail` or `crash` event was observed.
    #[must_use]
    pub fn saw_fail_or_crash(&self) -> bool {
        self.saw_fail_or_crash
    }

    /// First well-formedness violation for `dir`, if any.
    #[must_use]
    pub fn wellformedness_violation(&self, dir: Dir) -> Option<Violation> {
        self.dirs[dir_index(dir)].status.violation()
    }

    /// First violation of the given PL property (1–5) for `dir` on the
    /// observed prefix. PL1–PL4 are exact; PL5 is judged under the
    /// duplicate-poisoning semantics documented on the module.
    #[must_use]
    pub fn pl_violation(&self, dir: Dir, property: u8) -> Option<&Violation> {
        let d = &self.dirs[dir_index(dir)];
        match property {
            1 => d.pl1.as_ref(),
            2 => d.pl2.as_ref(),
            3 => d.pl3.as_ref(),
            4 => d.pl4.as_ref(),
            5 => d.pl5.as_ref(),
            _ => None,
        }
    }

    /// First violation of the given DL property (2–6) on the observed
    /// prefix. DL1/DL7/DL8 are end-of-trace properties; use
    /// [`dl1_violation`](Self::dl1_violation),
    /// [`dl7_violation`](Self::dl7_violation) and
    /// [`dl8_violation`](Self::dl8_violation).
    #[must_use]
    pub fn dl_violation(&self, property: u8) -> Option<&Violation> {
        match property {
            2 => self.dl.dl2.as_ref(),
            3 => self.dl.dl3.as_ref(),
            4 => self.dl.dl4.as_ref(),
            5 => self.dl.dl5.as_ref(),
            6 => self.dl.dl6.as_ref(),
            _ => None,
        }
    }

    /// DL1 as if the trace ended now: an unbounded transmitter working
    /// interval iff an unbounded receiver one (i.e. both media currently up
    /// or both down).
    #[must_use]
    pub fn dl1_violation(&self) -> Option<Violation> {
        match (self.dirs[0].status.up, self.dirs[1].status.up) {
            (true, false) => Some(Violation {
                property: "DL1",
                at: None,
                reason: "unbounded transmitter working interval without an unbounded receiver one"
                    .into(),
            }),
            (false, true) => Some(Violation {
                property: "DL1",
                at: None,
                reason: "unbounded receiver working interval without an unbounded transmitter one"
                    .into(),
            }),
            _ => None,
        }
    }

    /// DL7 as if the trace ended now: within each transmitter working
    /// interval, no delivered send may follow a lost one. `O(sends)`.
    #[must_use]
    pub fn dl7_violation(&self) -> Option<Violation> {
        let intervals = self
            .dl
            .closed_interval_sends
            .iter()
            .chain(std::iter::once(&self.dl.open_interval_sends));
        for sends in intervals {
            let mut first_lost: Option<(usize, Msg)> = None;
            for &(i, m) in sends {
                if self.dl.received.contains(&m) {
                    if let Some((j, lost)) = first_lost {
                        return Some(Violation {
                            property: "DL7",
                            at: Some(j),
                            reason: format!(
                                "message {lost} (sent at {j}) lost, but later message {m} \
                                 from the same working interval was delivered"
                            ),
                        });
                    }
                } else if first_lost.is_none() {
                    first_lost = Some((i, m));
                }
            }
        }
        None
    }

    /// DL8 as if the trace were complete now: every message sent in the
    /// (currently) unbounded transmitter working interval must have been
    /// received. `O(sends in that interval)`.
    #[must_use]
    pub fn dl8_violation(&self) -> Option<Violation> {
        if !self.dirs[0].status.up {
            return None;
        }
        for &(i, m) in &self.dl.open_interval_sends {
            if !self.dl.received.contains(&m) {
                return Some(Violation {
                    property: "DL8",
                    at: Some(i),
                    reason: format!(
                        "message {m} sent in the unbounded transmitter working interval but \
                         never received (trace is complete)"
                    ),
                });
            }
        }
        None
    }

    /// The packets currently in transit on `dir`: sent but not (yet)
    /// received, under multiset semantics, in send order.
    #[must_use]
    pub fn in_transit(&self, dir: Dir) -> Vec<Packet> {
        self.dirs[dir_index(dir)].transit.pending()
    }

    /// The physical-layer module verdict (`PL^{dir}` or `PL-FIFO^{dir}`)
    /// on the observed prefix. Identical to
    /// [`crate::spec::physical::PlModule::check`].
    #[must_use]
    pub fn pl_verdict(&self, dir: Dir, fifo: bool) -> Verdict {
        let d = &self.dirs[dir_index(dir)];
        // Hypotheses: well-formedness, PL1, PL2.
        if let Some(v) = d.status.violation() {
            return Verdict::Vacuous(v);
        }
        if let Some(v) = &d.pl1 {
            return Verdict::Vacuous(v.clone());
        }
        if let Some(v) = &d.pl2 {
            return Verdict::Vacuous(v.clone());
        }
        // Conclusions: PL3, PL4, and PL5 for the FIFO module.
        if let Some(v) = &d.pl3 {
            return Verdict::Violated(v.clone());
        }
        if let Some(v) = &d.pl4 {
            return Verdict::Violated(v.clone());
        }
        if fifo {
            if let Some(v) = &d.pl5 {
                return Verdict::Violated(v.clone());
            }
        }
        Verdict::Satisfied
    }

    /// The data-link module verdict (`DL` when `weak == false`, `WDL` when
    /// `weak == true`) on the observed prefix. Identical to
    /// [`crate::spec::datalink::DlModule::check`].
    #[must_use]
    pub fn dl_verdict(&self, weak: bool, kind: TraceKind) -> Verdict {
        // Hypotheses: well-formedness (transmitter direction preferred, as
        // in the batch module) and DL1–DL3.
        if let Some(v) = self.dirs[0]
            .status
            .violation()
            .or_else(|| self.dirs[1].status.violation())
        {
            return Verdict::Vacuous(v);
        }
        if let Some(v) = self.dl1_violation() {
            return Verdict::Vacuous(v);
        }
        if let Some(v) = &self.dl.dl2 {
            return Verdict::Vacuous(v.clone());
        }
        if let Some(v) = &self.dl.dl3 {
            return Verdict::Vacuous(v.clone());
        }
        // Conclusions.
        if let Some(v) = &self.dl.dl4 {
            return Verdict::Violated(v.clone());
        }
        if let Some(v) = &self.dl.dl5 {
            return Verdict::Violated(v.clone());
        }
        if !weak {
            if let Some(v) = &self.dl.dl6 {
                return Verdict::Violated(v.clone());
            }
            if let Some(v) = self.dl7_violation() {
                return Verdict::Violated(v);
            }
        }
        if kind == TraceKind::Complete {
            if let Some(v) = self.dl8_violation() {
                return Verdict::Violated(v);
            }
        }
        Verdict::Satisfied
    }

    /// The earliest *conclusion-class* violation on the observed prefix —
    /// the online abort signal for the simulator and explorer.
    ///
    /// A violation is reported only while its module's hypotheses still
    /// hold on the prefix (a direction with a well-formedness/PL1/PL2
    /// failure, or a data link with a well-formedness/DL2/DL3 failure, is
    /// unconstrained — its conclusions are suppressed, matching the batch
    /// verdict's vacuity). End-of-trace properties (DL1, DL7, DL8) are
    /// never reported online: they can only be judged once the trace is
    /// complete, and the post-run batch verdict covers them. `O(1)`.
    #[must_use]
    pub fn online_violation(&self, full_dl: bool, fifo: bool) -> Option<&Violation> {
        let mut candidates: Vec<&Violation> = Vec::new();
        for d in &self.dirs {
            if d.status.error.is_some() || d.pl1.is_some() || d.pl2.is_some() {
                continue;
            }
            candidates.extend(d.pl3.iter());
            candidates.extend(d.pl4.iter());
            if fifo {
                candidates.extend(d.pl5.iter());
            }
        }
        candidates.extend(self.online_dl_violation(full_dl));
        candidates.into_iter().min_by_key(|v| v.at)
    }

    /// The earliest *data-link* conclusion-class violation on the observed
    /// prefix, ignoring the physical-layer modules entirely.
    ///
    /// For monitoring runs over deliberately misbehaving media: a
    /// duplicating channel (e.g. the `dup` knob of `dl-channels`'
    /// `FaultyChannel`) violates PL3 by design, so the combined
    /// [`TraceMonitor::online_violation`] would abort every such run
    /// before the protocol under test gets a chance to misbehave. The
    /// data-link hypotheses (directional well-formedness, DL2, DL3) are
    /// untouched by physical-layer violations, so DL conclusions remain
    /// meaningful on their own. Same gating and `O(1)` cost as the
    /// combined check; end-of-trace properties are likewise never
    /// reported online.
    #[must_use]
    pub fn online_dl_violation(&self, full_dl: bool) -> Option<&Violation> {
        let hypotheses_hold = self.dirs[0].status.error.is_none()
            && self.dirs[1].status.error.is_none()
            && self.dl.dl2.is_none()
            && self.dl.dl3.is_none();
        if !hypotheses_hold {
            return None;
        }
        let mut candidates: Vec<&Violation> = Vec::new();
        candidates.extend(self.dl.dl4.iter());
        candidates.extend(self.dl.dl5.iter());
        if full_dl {
            candidates.extend(self.dl.dl6.iter());
        }
        candidates.into_iter().min_by_key(|v| v.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Station;

    use DlAction::{Crash, Fail, ReceiveMsg, ReceivePkt, SendMsg, SendPkt, Wake};

    fn pkt(seq: u64, uid: u64) -> Packet {
        Packet::data(seq, Msg(seq)).with_uid(uid)
    }

    #[test]
    fn prefix_verdicts_track_the_trace() {
        let mut mon = TraceMonitor::new();
        mon.observe(&Wake(Dir::TR));
        assert!(matches!(
            mon.dl_verdict(true, TraceKind::Prefix),
            Verdict::Vacuous(_) // DL1: only tx unbounded
        ));
        mon.observe(&Wake(Dir::RT));
        assert_eq!(mon.dl_verdict(true, TraceKind::Prefix), Verdict::Satisfied);
        mon.observe(&SendMsg(Msg(1)));
        // DL8 pending on a complete trace, fine on a prefix.
        assert_eq!(mon.dl_verdict(true, TraceKind::Prefix), Verdict::Satisfied);
        assert!(matches!(
            mon.dl_verdict(true, TraceKind::Complete),
            Verdict::Violated(_)
        ));
        mon.observe(&ReceiveMsg(Msg(1)));
        assert_eq!(
            mon.dl_verdict(true, TraceKind::Complete),
            Verdict::Satisfied
        );
    }

    #[test]
    fn online_violation_fires_on_duplicate_delivery() {
        let mut mon = TraceMonitor::new();
        for a in [
            Wake(Dir::TR),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            ReceiveMsg(Msg(1)),
        ] {
            mon.observe(&a);
            assert!(mon.online_violation(true, true).is_none());
        }
        mon.observe(&ReceiveMsg(Msg(1)));
        let v = mon.online_violation(false, false).expect("DL4 online");
        assert_eq!(v.property, "DL4");
        assert_eq!(v.at, Some(4));
    }

    #[test]
    fn online_violation_suppressed_when_hypotheses_fail() {
        // Duplicate *send* (DL3, a hypothesis) before the duplicate
        // delivery: the module verdict is vacuous, so no online alarm.
        let mut mon = TraceMonitor::scan(&[
            Wake(Dir::TR),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            SendMsg(Msg(1)),
            ReceiveMsg(Msg(1)),
            ReceiveMsg(Msg(1)),
        ]);
        assert!(mon.online_violation(true, true).is_none());
        assert!(matches!(
            mon.dl_verdict(true, TraceKind::Prefix),
            Verdict::Vacuous(_)
        ));
        // The PL side of the same monitor is unaffected.
        mon.observe(&SendPkt(Dir::TR, pkt(0, 1)));
        mon.observe(&ReceivePkt(Dir::TR, pkt(0, 1)));
        mon.observe(&ReceivePkt(Dir::TR, pkt(0, 1)));
        let v = mon.online_violation(true, true).expect("PL3 online");
        assert_eq!(v.property, "PL3");
    }

    #[test]
    fn online_dl_violation_ignores_physical_faults() {
        // A duplicating medium: the same stamped packet delivered twice is
        // a PL3 violation, but the data link itself is still clean.
        let mut mon = TraceMonitor::scan(&[
            Wake(Dir::TR),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            SendPkt(Dir::TR, pkt(0, 1)),
            ReceivePkt(Dir::TR, pkt(0, 1)),
            ReceivePkt(Dir::TR, pkt(0, 1)),
            ReceiveMsg(Msg(1)),
        ]);
        assert_eq!(
            mon.online_violation(true, true).map(|v| v.property),
            Some("PL3")
        );
        assert!(mon.online_dl_violation(true).is_none());
        // A subsequent duplicate delivery is a DL4 conclusion, visible to
        // the DL-only check (and earliest overall is still PL3).
        mon.observe(&ReceiveMsg(Msg(1)));
        let v = mon.online_dl_violation(false).expect("DL4 online");
        assert_eq!(v.property, "DL4");
        assert_eq!(v.at, Some(7));
        assert_eq!(
            mon.online_violation(true, true).map(|v| v.property),
            Some("PL3")
        );
    }

    #[test]
    fn in_transit_multiset_semantics() {
        // send p, recv p, recv p (unmatched), send p, send p: the unmatched
        // receive cancels the next send; one copy (the last) remains.
        let p = pkt(0, 7);
        let mon = TraceMonitor::scan(&[
            Wake(Dir::TR),
            SendPkt(Dir::TR, p),
            ReceivePkt(Dir::TR, p),
            ReceivePkt(Dir::TR, p),
            SendPkt(Dir::TR, p),
            SendPkt(Dir::TR, p),
        ]);
        assert_eq!(mon.in_transit(Dir::TR), vec![p]);
        assert!(mon.in_transit(Dir::RT).is_empty());
    }

    #[test]
    fn crash_affects_the_direction_its_station_sends_on() {
        let mut mon = TraceMonitor::scan(&[Wake(Dir::TR), Wake(Dir::RT), Crash(Station::R)]);
        // rx (RT) is down, tx (TR) still up: DL1 vacuous.
        assert!(mon.dl1_violation().is_some());
        mon.observe(&Wake(Dir::RT));
        assert!(mon.dl1_violation().is_none());
    }

    #[test]
    fn dl7_and_dl8_are_end_of_trace() {
        let mut mon = TraceMonitor::scan(&[
            Wake(Dir::TR),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            SendMsg(Msg(2)),
            ReceiveMsg(Msg(2)),
        ]);
        // m1 lost so far, m2 delivered: DL7 violated "as of now"...
        assert_eq!(mon.dl7_violation().unwrap().at, Some(2));
        // ...but never reported online (a later ReceiveMsg(m1) can cure it).
        assert!(mon.online_violation(true, true).is_none());
        mon.observe(&ReceiveMsg(Msg(1)));
        assert!(mon.dl7_violation().is_none());
        // DL6: m1 (pos 0) after m2 (pos 1) — reordered, caught online under
        // the full spec.
        assert_eq!(
            mon.online_violation(true, false).unwrap().property,
            "DL6 (FIFO)"
        );
        assert!(mon.online_violation(false, false).is_none());
        assert!(mon.dl8_violation().is_none());
        mon.observe(&SendMsg(Msg(3)));
        assert_eq!(mon.dl8_violation().unwrap().at, Some(6));
        mon.observe(&Fail(Dir::TR));
        // Bounded interval now: DL8 no longer applies.
        assert!(mon.dl8_violation().is_none());
    }

    #[test]
    fn fifo_poisoning_keeps_prior_violations() {
        let mut mon = TraceMonitor::new();
        for a in [
            Wake(Dir::TR),
            SendPkt(Dir::TR, pkt(0, 1)),
            SendPkt(Dir::TR, pkt(1, 2)),
            ReceivePkt(Dir::TR, pkt(1, 2)),
            ReceivePkt(Dir::TR, pkt(0, 1)), // PL5 violation at 4
        ] {
            mon.observe(&a);
        }
        assert_eq!(mon.pl_violation(Dir::TR, 5).unwrap().at, Some(4));
        // A later duplicate send poisons PL5 but the recorded violation
        // stands (and PL2 now makes the module verdict vacuous anyway).
        mon.observe(&SendPkt(Dir::TR, pkt(0, 1)));
        assert_eq!(mon.pl_violation(Dir::TR, 5).unwrap().at, Some(4));
        assert!(matches!(mon.pl_verdict(Dir::TR, true), Verdict::Vacuous(_)));
    }
}
