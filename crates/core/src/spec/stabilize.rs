//! Suffix-mode conformance: data-link verdicts measured **from the
//! convergence point**, for protocols whose correctness is eventual.
//!
//! A self-stabilizing protocol started in a corrupted configuration is
//! allowed to misbehave for a finite prefix; its contract is that every
//! execution has a *suffix* satisfying the data-link specification. The
//! [`SuffixMonitor`] makes that contract checkable in one streaming
//! pass:
//!
//! * it feeds every action to an inner [`TraceMonitor`];
//! * whenever the inner monitor concludes a data-link violation (or one
//!   of the DL hypotheses is poisoned), the offense is attributed to the
//!   divergent prefix: the candidate convergence point moves past the
//!   offending action and the inner monitor restarts *primed* with the
//!   carried-over configuration — the media that are currently up and
//!   the messages accepted but not yet delivered, replayed as a
//!   well-formed stub prefix so the restarted monitor judges the suffix
//!   under the correct hypotheses rather than vacuously;
//! * at end of trace, liveness is judged in stabilizing form: a message
//!   must be delivered iff it was *sent at or after the convergence
//!   point* — messages accepted during the divergent prefix may be lost
//!   (that loss is exactly what "eventual" correctness permits), and if
//!   an undelivered message was sent after the current candidate point,
//!   the convergence point moves past that send.
//!
//! The result ([`SuffixReport`]) reports the **convergence index** (the
//! trace index where the conforming suffix begins — equivalently the
//! stabilization time in actions) and the number of monitor resets the
//! divergent prefix forced. A trace that is clean from the start
//! converges at index 0 with 0 resets, so suffix-mode conformance of a
//! from-initial-state-correct protocol degenerates to ordinary
//! conformance — the monitors agree on the zoo's classic members.
//!
//! Hypothesis: environment messages are pairwise distinct (the DL3
//! hypothesis the batch modules already impose).

use crate::action::{Dir, DlAction, Msg};
use crate::spec::monitor::TraceMonitor;
use ioa::schedule_module::{TraceKind, Verdict, Violation};

/// Where `dir` sits in little fixed arrays.
fn dir_index(dir: Dir) -> usize {
    match dir {
        Dir::TR => 0,
        Dir::RT => 1,
    }
}

/// The streaming suffix-mode conformance monitor (see the module docs).
#[derive(Debug, Clone)]
pub struct SuffixMonitor {
    inner: TraceMonitor,
    /// Judge the full `DL` module on the suffix (`true`) or the weak
    /// `WDL` variant (`false`, the usual posture over faulty media).
    full_dl: bool,
    /// Global actions observed so far.
    observed: usize,
    /// Global index of the first action of the current candidate suffix.
    suffix_start: usize,
    /// Monitor restarts forced by the divergent prefix.
    resets: u64,
    /// Tracked medium status, for priming restarted monitors.
    up: [bool; 2],
    /// Messages sent but not yet delivered, with their global send
    /// indices (insertion order = send order).
    pending: Vec<(Msg, usize)>,
}

/// The outcome of suffix-mode conformance checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuffixReport {
    /// Global trace index where the conforming suffix begins. This *is*
    /// the stabilization time measured in trace actions: the divergent
    /// prefix has exactly this many actions.
    pub convergence_index: usize,
    /// Monitor restarts the divergent prefix forced (0 for a trace that
    /// is clean from the start).
    pub resets: u64,
    /// Property violated *within the final suffix*, if any — `None`
    /// means the trace genuinely converged. On complete traces this
    /// includes the stabilizing liveness check (`"DL8"`): every message
    /// sent at or after [`SuffixReport::convergence_index`] must have
    /// been delivered.
    pub violation: Option<&'static str>,
}

impl SuffixReport {
    /// `true` if the trace reached a conforming suffix (no violation
    /// survives in it).
    #[must_use]
    pub fn converged(&self) -> bool {
        self.violation.is_none()
    }

    /// The stabilization time in actions — an alias for
    /// [`SuffixReport::convergence_index`], named for what it measures.
    #[must_use]
    pub fn stabilization_actions(&self) -> usize {
        self.convergence_index
    }
}

impl Default for SuffixMonitor {
    fn default() -> Self {
        SuffixMonitor::new(false)
    }
}

impl SuffixMonitor {
    /// A suffix monitor that has observed the empty trace. `full_dl`
    /// selects the `DL` module for suffix verdicts; `false` selects
    /// `WDL` (the right posture whenever the medium may lose packets).
    #[must_use]
    pub fn new(full_dl: bool) -> Self {
        SuffixMonitor {
            inner: TraceMonitor::new(),
            full_dl,
            observed: 0,
            suffix_start: 0,
            resets: 0,
            up: [false; 2],
            pending: Vec::new(),
        }
    }

    /// Scans a whole trace and returns the complete-trace report.
    #[must_use]
    pub fn scan(trace: &[DlAction], full_dl: bool) -> SuffixReport {
        let mut mon = SuffixMonitor::new(full_dl);
        for a in trace {
            mon.observe(a);
        }
        mon.finish(TraceKind::Complete)
    }

    /// Observes one action. Amortized `O(1)` away from resets; a reset
    /// costs `O(pending)` and at most one happens per prefix violation.
    pub fn observe(&mut self, a: &DlAction) {
        match a {
            DlAction::Wake(d) => self.up[dir_index(*d)] = true,
            DlAction::Fail(d) => self.up[dir_index(*d)] = false,
            DlAction::SendMsg(m) => self.pending.push((*m, self.observed)),
            DlAction::ReceiveMsg(m) => {
                if let Some(i) = self.pending.iter().position(|(p, _)| p == m) {
                    self.pending.remove(i);
                }
            }
            _ => {}
        }
        self.inner.observe(a);
        self.observed += 1;
        if self.suffix_poisoned() {
            self.reset();
        }
    }

    /// `true` when the inner monitor has concluded a DL violation on the
    /// current suffix, or had a DL hypothesis poisoned — either way the
    /// offense belongs to the divergent prefix and forces a restart.
    fn suffix_poisoned(&self) -> bool {
        self.inner.online_dl_violation(self.full_dl).is_some()
            || self.inner.dl_violation(2).is_some()
            || self.inner.dl_violation(3).is_some()
            || self.inner.wellformedness_violation(Dir::TR).is_some()
            || self.inner.wellformedness_violation(Dir::RT).is_some()
    }

    /// Moves the candidate convergence point past the offending action
    /// and restarts the inner monitor primed with the carried-over
    /// configuration.
    fn reset(&mut self) {
        self.resets += 1;
        self.suffix_start = self.observed;
        self.inner = TraceMonitor::new();
        // Prime the configuration at the convergence candidate: media
        // status first (so DL1/DL2 judge the suffix, not a vacuum), then
        // the messages still owed to the receiver, inside a transmitter
        // working interval. If the transmitter medium happens to be down,
        // sandwich the sends in a wake/fail pair so the stub prefix stays
        // well-formed.
        let tx_up = self.up[0];
        if tx_up || !self.pending.is_empty() {
            self.inner.observe(&DlAction::Wake(Dir::TR));
        }
        if self.up[1] {
            self.inner.observe(&DlAction::Wake(Dir::RT));
        }
        for (m, _) in &self.pending {
            self.inner.observe(&DlAction::SendMsg(*m));
        }
        if !tx_up && !self.pending.is_empty() {
            self.inner.observe(&DlAction::Fail(Dir::TR));
        }
    }

    /// Global actions observed so far.
    #[must_use]
    pub fn actions_observed(&self) -> usize {
        self.observed
    }

    /// The current candidate convergence index: the global trace index
    /// where the present violation-free suffix begins.
    #[must_use]
    pub fn convergence_index(&self) -> usize {
        self.suffix_start
    }

    /// Monitor restarts so far.
    #[must_use]
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// The inner monitor judging the current suffix (verdict indices are
    /// suffix-local, offset by the priming stub).
    #[must_use]
    pub fn suffix_monitor(&self) -> &TraceMonitor {
        &self.inner
    }

    /// Concludes suffix-mode conformance.
    ///
    /// With [`TraceKind::Complete`], stabilizing liveness is included:
    /// an undelivered message sent *before* the candidate convergence
    /// point is forgiven (and, if sent after it, pushes the convergence
    /// point past its send — the suffix must start after the last lost
    /// acceptance); an undelivered message can therefore never make a
    /// complete trace fail, but it can move where convergence is deemed
    /// to have happened — unless nothing sent afterwards was delivered
    /// either, in which case the report pins `"DL8"` on the suffix.
    #[must_use]
    pub fn finish(&self, kind: TraceKind) -> SuffixReport {
        let mut convergence_index = self.suffix_start;
        let mut violation = match self.inner.dl_verdict(!self.full_dl, TraceKind::Prefix) {
            Verdict::Satisfied => None,
            Verdict::Violated(v) | Verdict::Vacuous(v) => Some(v.property),
        };
        if violation.is_none() && kind == TraceKind::Complete {
            // Stabilizing liveness: the conforming suffix must begin
            // after the last send that was never delivered.
            if let Some(last_lost) = self
                .pending
                .iter()
                .map(|&(_, at)| at)
                .max()
                .filter(|&at| at >= self.suffix_start)
            {
                if last_lost + 1 >= self.observed {
                    // The very last action lost a message — there is no
                    // nonempty conforming suffix behind it.
                    violation = Some("DL8");
                } else {
                    convergence_index = last_lost + 1;
                }
            }
        }
        SuffixReport {
            convergence_index,
            resets: self.resets,
            violation,
        }
    }

    /// The first violation the *current suffix* would report online, in
    /// suffix-local coordinates (primer stub included), for callers that
    /// want the reason string.
    #[must_use]
    pub fn suffix_violation(&self) -> Option<&Violation> {
        self.inner.online_dl_violation(self.full_dl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Packet, Station};

    use DlAction::{Crash, ReceiveMsg, ReceivePkt, SendMsg, SendPkt, Wake};

    fn wake_both() -> Vec<DlAction> {
        vec![Wake(Dir::TR), Wake(Dir::RT)]
    }

    #[test]
    fn clean_trace_converges_at_zero() {
        let mut trace = wake_both();
        trace.extend([SendMsg(Msg(1)), ReceiveMsg(Msg(1))]);
        let report = SuffixMonitor::scan(&trace, false);
        assert_eq!(
            report,
            SuffixReport {
                convergence_index: 0,
                resets: 0,
                violation: None,
            }
        );
        assert!(report.converged());
        assert_eq!(report.stabilization_actions(), 0);
    }

    #[test]
    fn ghost_delivery_moves_the_convergence_point() {
        // A corrupted receiver hands the environment a message that was
        // never sent (DL5), then behaves. The suffix after the ghost
        // delivery conforms.
        let mut trace = wake_both();
        trace.push(ReceiveMsg(Msg(999))); // index 2: ghost — DL5
        trace.extend([SendMsg(Msg(1)), ReceiveMsg(Msg(1))]);
        let report = SuffixMonitor::scan(&trace, false);
        assert_eq!(report.convergence_index, 3);
        assert_eq!(report.resets, 1);
        assert_eq!(report.violation, None);
    }

    #[test]
    fn duplicate_delivery_resets_and_recovers() {
        // DL4 mid-trace: the second delivery of Msg(1) is prefix noise;
        // afterwards Msg(2) flows cleanly.
        let mut trace = wake_both();
        trace.extend([
            SendMsg(Msg(1)),
            ReceiveMsg(Msg(1)),
            ReceiveMsg(Msg(1)), // index 4: DL4
            SendMsg(Msg(2)),
            ReceiveMsg(Msg(2)),
        ]);
        let report = SuffixMonitor::scan(&trace, false);
        assert_eq!(report.convergence_index, 5);
        assert_eq!(report.resets, 1);
        assert!(report.converged());
    }

    #[test]
    fn pending_messages_survive_a_reset() {
        // Msg(1) is accepted before the reset and delivered after it:
        // the restarted monitor must not call that delivery DL5.
        let mut trace = wake_both();
        trace.extend([
            SendMsg(Msg(1)),
            ReceiveMsg(Msg(777)), // ghost: reset at index 3
            ReceiveMsg(Msg(1)),   // delivery of the carried-over pending
        ]);
        let report = SuffixMonitor::scan(&trace, false);
        assert_eq!(report.resets, 1);
        assert_eq!(report.convergence_index, 4);
        assert_eq!(report.violation, None, "carried-over delivery is legal");
    }

    #[test]
    fn prefix_losses_are_forgiven_but_move_convergence() {
        // Msg(1) is accepted at index 2 and never delivered; Msg(2)
        // flows. No online violation ever fires, but the conforming
        // suffix can only start after the lost acceptance.
        let mut trace = wake_both();
        trace.extend([
            SendMsg(Msg(1)), // index 2: will be lost
            SendMsg(Msg(2)),
            ReceiveMsg(Msg(2)),
        ]);
        let report = SuffixMonitor::scan(&trace, false);
        assert_eq!(report.resets, 0);
        assert_eq!(report.convergence_index, 3);
        assert_eq!(report.violation, None);
    }

    #[test]
    fn losing_the_last_acceptance_is_a_liveness_violation() {
        let mut trace = wake_both();
        trace.push(SendMsg(Msg(1)));
        let report = SuffixMonitor::scan(&trace, false);
        assert_eq!(report.violation, Some("DL8"));
        assert!(!report.converged());
    }

    #[test]
    fn prefix_kind_skips_liveness() {
        let mut mon = SuffixMonitor::new(false);
        for a in wake_both() {
            mon.observe(&a);
        }
        mon.observe(&SendMsg(Msg(1)));
        let report = mon.finish(TraceKind::Prefix);
        assert_eq!(report.violation, None, "prefixes owe no deliveries yet");
        assert_eq!(report.convergence_index, 0);
    }

    #[test]
    fn crash_poisons_are_absorbed_like_any_prefix_noise() {
        // A crash drops the transmitter working interval; a send while
        // everything is down poisons DL2. The monitor restarts and the
        // suffix still converges.
        let mut trace = wake_both();
        trace.extend([
            SendMsg(Msg(1)),
            ReceiveMsg(Msg(1)),
            Crash(Station::T),
            SendMsg(Msg(2)), // DL2: outside any working interval
            Wake(Dir::TR),
            SendMsg(Msg(3)),
            ReceiveMsg(Msg(3)),
        ]);
        let report = SuffixMonitor::scan(&trace, false);
        assert!(report.resets >= 1);
        assert!(report.converged(), "report: {report:?}");
    }

    #[test]
    fn packet_level_noise_is_invisible_to_suffix_dl() {
        // Ghost packet receives violate PL4, not DL — the suffix monitor
        // must not reset on them (it judges the data link only).
        let ghost = Packet::data(7, Msg(12345)).with_uid(1 << 62);
        let mut trace = wake_both();
        trace.extend([
            ReceivePkt(Dir::TR, ghost),
            SendMsg(Msg(1)),
            SendPkt(Dir::TR, Packet::data(0, Msg(1)).with_uid(0)),
            ReceivePkt(Dir::TR, Packet::data(0, Msg(1)).with_uid(0)),
            ReceiveMsg(Msg(1)),
        ]);
        let report = SuffixMonitor::scan(&trace, false);
        assert_eq!(report.resets, 0);
        assert_eq!(report.convergence_index, 0);
        assert!(report.converged());
    }

    #[test]
    fn streaming_matches_scan() {
        let mut trace = wake_both();
        trace.extend([
            ReceiveMsg(Msg(50)),
            SendMsg(Msg(1)),
            ReceiveMsg(Msg(1)),
            ReceiveMsg(Msg(1)),
            SendMsg(Msg(2)),
            ReceiveMsg(Msg(2)),
        ]);
        let mut mon = SuffixMonitor::new(false);
        for a in &trace {
            mon.observe(a);
        }
        assert_eq!(
            mon.finish(TraceKind::Complete),
            SuffixMonitor::scan(&trace, false)
        );
        assert_eq!(mon.actions_observed(), trace.len());
    }
}
