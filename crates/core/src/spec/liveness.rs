//! Bounded liveness monitors for finite trace *prefixes*.
//!
//! The liveness properties PL6 and DL8 quantify over infinite behaviors:
//! no finite prefix can violate them, and the complete-trace convention of
//! [`crate::spec::datalink`] only decides them for quiescent fair runs.
//! When watching a *running* system (a prefix that will extend), the
//! practical question is "is progress being made?" — answered here by
//! **patience monitors**: if an obligation stays undischarged for more
//! than `patience` subsequent events while its working interval persists,
//! the monitor flags it.
//!
//! A flag is *not* a specification violation — it is an alarm with a
//! tunable false-positive rate (a slow but live protocol trips a small
//! patience). The workspace uses these monitors in soak tests to catch
//! livelocks that the step-bounded quiescence checks would misreport as
//! "still running".

use ioa::schedule_module::Violation;

use crate::action::{Dir, DlAction, Msg};
use crate::spec::wellformed::MediumTimeline;

/// Flags messages that stay undelivered for more than `patience` events
/// while the transmitter working interval they were sent in persists — the
/// prefix surrogate of DL8.
///
/// Returns the first overdue obligation found.
#[must_use]
pub fn dl8_monitor(trace: &[DlAction], patience: usize) -> Option<Violation> {
    let tx = MediumTimeline::scan(trace, Dir::TR);
    let mut pending: Vec<(usize, Msg)> = Vec::new();
    for (i, a) in trace.iter().enumerate() {
        match a {
            DlAction::SendMsg(m) => pending.push((i, *m)),
            DlAction::ReceiveMsg(m) => pending.retain(|(_, x)| x != m),
            _ => {}
        }
        // Obligations die when their working interval ends; surviving ones
        // age.
        pending.retain(|(at, _)| {
            tx.intervals()
                .iter()
                .any(|w| w.contains(*at) && w.close.is_none_or(|c| c > i))
        });
        if let Some((at, m)) = pending.iter().find(|(at, _)| i - at > patience) {
            return Some(Violation {
                property: "DL8 (patience monitor)",
                at: Some(*at),
                reason: format!(
                    "message {m} sent at event {at} still undelivered after {patience} \
                     further events in a persisting working interval"
                ),
            });
        }
    }
    None
}

/// Flags a direction whose channel has accepted `patience` consecutive
/// `send_pkt` events without a single `receive_pkt` inside one working
/// interval — the prefix surrogate of PL6.
#[must_use]
pub fn pl6_monitor(trace: &[DlAction], dir: Dir, patience: usize) -> Option<Violation> {
    let tl = MediumTimeline::scan(trace, dir);
    let mut since_receive = 0usize;
    for (i, a) in trace.iter().enumerate() {
        match a {
            DlAction::SendPkt(d, _) if *d == dir && tl.in_working_interval(i) => {
                since_receive += 1;
                if since_receive > patience {
                    return Some(Violation {
                        property: "PL6 (patience monitor)",
                        at: Some(i),
                        reason: format!(
                            "{since_receive} consecutive send_pkt^{dir} events without a \
                             delivery"
                        ),
                    });
                }
            }
            DlAction::ReceivePkt(d, _) if *d == dir => since_receive = 0,
            DlAction::Fail(d) if *d == dir => since_receive = 0,
            DlAction::Crash(x) if *x == dir.sender() => since_receive = 0,
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Packet;

    use DlAction::{Fail, ReceiveMsg, ReceivePkt, SendMsg, SendPkt, Wake};

    #[test]
    fn delivered_messages_do_not_trip_dl8_monitor() {
        let t = vec![
            Wake(Dir::TR),
            Wake(Dir::RT),
            SendMsg(Msg(1)),
            ReceiveMsg(Msg(1)),
        ];
        assert!(dl8_monitor(&t, 1).is_none());
    }

    #[test]
    fn overdue_message_trips_dl8_monitor() {
        let mut t = vec![Wake(Dir::TR), Wake(Dir::RT), SendMsg(Msg(1))];
        for i in 0..10 {
            t.push(SendPkt(Dir::TR, Packet::data(0, Msg(1)).with_uid(i)));
        }
        let v = dl8_monitor(&t, 5).expect("monitor should fire");
        assert_eq!(v.property, "DL8 (patience monitor)");
        assert_eq!(v.at, Some(2));
        // A patient monitor does not fire.
        assert!(dl8_monitor(&t, 50).is_none());
    }

    #[test]
    fn link_failure_cancels_the_obligation() {
        let mut t = vec![Wake(Dir::TR), Wake(Dir::RT), SendMsg(Msg(1)), Fail(Dir::TR)];
        for _ in 0..20 {
            t.push(Wake(Dir::RT)); // filler events in the other scope
            t.pop();
            t.push(ReceivePkt(Dir::RT, Packet::ack(0)));
        }
        assert!(dl8_monitor(&t, 3).is_none());
    }

    #[test]
    fn pl6_monitor_counts_consecutive_sends() {
        let mut t = vec![Wake(Dir::TR)];
        for i in 0..4 {
            t.push(SendPkt(Dir::TR, Packet::data(0, Msg(i)).with_uid(i)));
        }
        assert!(pl6_monitor(&t, Dir::TR, 5).is_none());
        assert!(pl6_monitor(&t, Dir::TR, 3).is_some());
    }

    #[test]
    fn pl6_monitor_resets_on_delivery() {
        // 3 sends, a delivery, 3 more sends: never exceeds patience 3.
        let mut t = vec![Wake(Dir::TR)];
        for i in 0..3 {
            t.push(SendPkt(Dir::TR, Packet::data(0, Msg(i)).with_uid(i)));
        }
        t.push(ReceivePkt(Dir::TR, Packet::data(0, Msg(0)).with_uid(0)));
        for i in 3..6 {
            t.push(SendPkt(Dir::TR, Packet::data(0, Msg(i)).with_uid(i)));
        }
        assert!(pl6_monitor(&t, Dir::TR, 3).is_none());
    }

    #[test]
    fn pl6_monitor_ignores_sends_outside_working_intervals() {
        let mut t = vec![];
        for i in 0..10 {
            t.push(SendPkt(Dir::TR, Packet::data(0, Msg(i)).with_uid(i)));
        }
        // No wake: nothing counted (environment misbehaving is PL1's
        // problem, not liveness).
        assert!(pl6_monitor(&t, Dir::TR, 3).is_none());
    }
}
