//! The formal vocabulary of *The Data Link Layer: Two Impossibility
//! Results* (Lynch, Mansour, Fekete — PODC 1988 / MIT-LCS-TM-355).
//!
//! This crate defines, executably and independently of any particular
//! protocol or channel implementation:
//!
//! * the **action universe** shared by every automaton in a data link
//!   implementation ([`action`]): `send_msg` / `receive_msg` at the data
//!   link interface, `send_pkt` / `receive_pkt` at the physical interface,
//!   and the `wake` / `fail` / `crash` status notifications;
//! * **well-formedness** of environments — crash intervals with strictly
//!   alternating `wake`/`fail` events ([`spec::wellformed`], paper §3–4);
//! * the **physical layer** schedule modules `PL` and `PL-FIFO` with
//!   properties PL1–PL6 ([`spec::physical`], paper §3);
//! * the **data link layer** schedule modules `DL` and the weaker `WDL`
//!   with properties DL1–DL8 ([`spec::datalink`], paper §4);
//! * **data link protocols** — the transmitting/receiving automaton
//!   signatures of §5.1, correctness notions of §5.2, and the *crashing*
//!   constraint of §5.3.2 ([`protocol`]);
//! * **message-independence** (§5.3.1) as a concrete relabeling API over
//!   messages and packets ([`equivalence`]).
//!
//! The specifications are pure trace checkers implementing
//! [`ioa::ScheduleModule`], so the same code judges simulator output,
//! property-test samples, and the counterexample traces constructed by the
//! `dl-impossibility` engines.
//!
//! # Example: checking a behavior against `WDL`
//!
//! ```
//! use dl_core::action::{Dir, DlAction, Msg};
//! use dl_core::spec::datalink::DlModule;
//! use ioa::schedule_module::{ScheduleModule, TraceKind};
//!
//! // The fair behavior from the paper's Lemma 4.1:
//! let beh = vec![
//!     DlAction::Wake(Dir::TR),
//!     DlAction::Wake(Dir::RT),
//!     DlAction::SendMsg(Msg(1)),
//!     DlAction::ReceiveMsg(Msg(1)),
//! ];
//! assert!(DlModule::weak().check(&beh, TraceKind::Complete).is_allowed());
//!
//! // Receiving a message that was never sent violates DL5:
//! let bad = vec![
//!     DlAction::Wake(Dir::TR),
//!     DlAction::Wake(Dir::RT),
//!     DlAction::ReceiveMsg(Msg(7)),
//! ];
//! let verdict = DlModule::weak().check(&bad, TraceKind::Complete);
//! assert_eq!(verdict.violation().unwrap().property, "DL5");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod equivalence;
pub mod observer;
pub mod protocol;
pub mod spec;
pub mod symmetry;

pub use action::{Dir, DlAction, Header, Msg, Packet, Station, Tag};
pub use equivalence::MsgRenaming;
pub use observer::WdlObserver;
pub use protocol::{CorruptedStart, DataLinkProtocol, ProtocolInfo};
pub use symmetry::{MsgRelabel, MsgVisit, Quotient};
