//! The shared action universe of a data link implementation.
//!
//! The paper parameterizes everything by an ordered pair `(t, r)` of station
//! names; we fix the two stations [`Station::T`] (transmitter) and
//! [`Station::R`] (receiver) and the two channel directions [`Dir::TR`] and
//! [`Dir::RT`]. All automata in a data link implementation — the two
//! protocol automata and the two physical channels — share the single
//! action type [`DlAction`], which makes the composition operator of `ioa`
//! directly applicable.

use std::fmt;

use ioa::intern::{read_varint, write_varint, PackedCodec};

/// A station name: the transmitter `t` or the receiver `r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Station {
    /// The transmitting station `t`.
    T,
    /// The receiving station `r`.
    R,
}

impl Station {
    /// The other station (`x̄` in the paper's notation).
    #[must_use]
    pub fn other(self) -> Station {
        match self {
            Station::T => Station::R,
            Station::R => Station::T,
        }
    }

    /// The channel direction on which this station transmits packets:
    /// `t` sends on `t→r`, `r` sends on `r→t`.
    #[must_use]
    pub fn sends_on(self) -> Dir {
        match self {
            Station::T => Dir::TR,
            Station::R => Dir::RT,
        }
    }

    /// The channel direction on which this station receives packets.
    #[must_use]
    pub fn receives_on(self) -> Dir {
        self.sends_on().reverse()
    }
}

impl fmt::Display for Station {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Station::T => f.write_str("t"),
            Station::R => f.write_str("r"),
        }
    }
}

/// A physical channel direction: transmitter-to-receiver or back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dir {
    /// The `t → r` direction.
    TR,
    /// The `r → t` direction.
    RT,
}

impl Dir {
    /// Both directions, in `(TR, RT)` order.
    pub const BOTH: [Dir; 2] = [Dir::TR, Dir::RT];

    /// The opposite direction.
    #[must_use]
    pub fn reverse(self) -> Dir {
        match self {
            Dir::TR => Dir::RT,
            Dir::RT => Dir::TR,
        }
    }

    /// The station that sends packets in this direction.
    #[must_use]
    pub fn sender(self) -> Station {
        match self {
            Dir::TR => Station::T,
            Dir::RT => Station::R,
        }
    }

    /// The station that receives packets sent in this direction.
    #[must_use]
    pub fn receiver(self) -> Station {
        self.sender().other()
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dir::TR => f.write_str("t,r"),
            Dir::RT => f.write_str("r,t"),
        }
    }
}

/// A message from the paper's fixed **infinite** alphabet `M`.
///
/// Messages are opaque identities; message-independent protocols never
/// branch on the value (see [`crate::equivalence`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Msg(pub u64);

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl PackedCodec for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.0);
    }
    fn decode(input: &mut &[u8]) -> Self {
        Msg(read_varint(input))
    }
}

/// The protocol-interpreted part of a packet header: its role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tag {
    /// Carries a message payload.
    Data,
    /// Acknowledges received data.
    Ack,
    /// Link-initialization request (used by the Baratz–Segall-style
    /// protocol).
    Init,
    /// Link-initialization acknowledgement.
    InitAck,
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tag::Data => "DATA",
            Tag::Ack => "ACK",
            Tag::Init => "INIT",
            Tag::InitAck => "INIT-ACK",
        };
        f.write_str(s)
    }
}

impl PackedCodec for Tag {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Tag::Data => 0,
            Tag::Ack => 1,
            Tag::Init => 2,
            Tag::InitAck => 3,
        });
    }
    fn decode(input: &mut &[u8]) -> Self {
        match u8::decode(input) {
            0 => Tag::Data,
            1 => Tag::Ack,
            2 => Tag::Init,
            3 => Tag::InitAck,
            other => panic!("invalid Tag discriminant {other}"),
        }
    }
}

/// A packet header: the information a data link protocol adds to a message
/// before sending it on the physical channel (§1, §5.3.1).
///
/// The set of *distinct header values a protocol ever sends* is the paper's
/// `headers(A, ≡)`; a protocol has **bounded headers** when that set is
/// finite. Sliding-window protocols keep `seq` modulo a constant (bounded);
/// Stenning's protocol lets `seq` grow without bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Header {
    /// The packet's role.
    pub tag: Tag,
    /// Sequence number (modulo some constant for bounded-header protocols).
    pub seq: u64,
}

impl Header {
    /// Convenience constructor.
    #[must_use]
    pub fn new(tag: Tag, seq: u64) -> Self {
        Header { tag, seq }
    }

    /// A data header with the given sequence number.
    #[must_use]
    pub fn data(seq: u64) -> Self {
        Header::new(Tag::Data, seq)
    }

    /// An ack header with the given sequence number.
    #[must_use]
    pub fn ack(seq: u64) -> Self {
        Header::new(Tag::Ack, seq)
    }
}

impl fmt::Display for Header {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.tag, self.seq)
    }
}

impl PackedCodec for Header {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tag.encode(out);
        write_varint(out, self.seq);
    }
    fn decode(input: &mut &[u8]) -> Self {
        Header {
            tag: Tag::decode(input),
            seq: read_varint(input),
        }
    }
}

/// A packet from the paper's alphabet `P`.
///
/// Following §3 (footnote 4), each packet carries a **unique label** `uid`
/// that exists "for ease of analysis" only: it models the packet's identity
/// so that PL2–PL5 can correlate sends with receives, but it does not
/// correspond to bits on the wire and **no protocol may interpret it**.
///
/// Protocol automata emit packets with `uid == Packet::UNSTAMPED` and accept
/// any uid on input; executors stamp globally fresh uids at send time (see
/// `dl-sim`). Two packets are *equivalent* (same header class, §5.3.1) when
/// they agree on everything except `uid` and payload identity — see
/// [`crate::equivalence::packets_equivalent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Packet {
    /// Analysis-only unique label (paper §3, footnote 4).
    pub uid: u64,
    /// The protocol-interpreted header.
    pub header: Header,
    /// Message payload, if this packet carries one.
    pub payload: Option<Msg>,
}

impl Packet {
    /// The uid protocol automata use when emitting a packet; executors
    /// replace it with a globally fresh value.
    pub const UNSTAMPED: u64 = u64::MAX;

    /// An unstamped packet with the given header and payload.
    #[must_use]
    pub fn new(header: Header, payload: Option<Msg>) -> Self {
        Packet {
            uid: Packet::UNSTAMPED,
            header,
            payload,
        }
    }

    /// An unstamped data packet.
    #[must_use]
    pub fn data(seq: u64, msg: Msg) -> Self {
        Packet::new(Header::data(seq), Some(msg))
    }

    /// An unstamped ack packet.
    #[must_use]
    pub fn ack(seq: u64) -> Self {
        Packet::new(Header::ack(seq), None)
    }

    /// A copy of this packet with the given uid.
    #[must_use]
    pub fn with_uid(mut self, uid: u64) -> Self {
        self.uid = uid;
        self
    }

    /// A copy with the uid reset to [`Packet::UNSTAMPED`] — the packet's
    /// protocol-visible content.
    #[must_use]
    pub fn content(mut self) -> Self {
        self.uid = Packet::UNSTAMPED;
        self
    }
}

impl PackedCodec for Packet {
    fn encode(&self, out: &mut Vec<u8>) {
        // Unstamped packets are the common case in explorer states; the
        // +1 wrap folds `UNSTAMPED` (u64::MAX) to a one-byte varint.
        write_varint(out, self.uid.wrapping_add(1));
        self.header.encode(out);
        self.payload.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Self {
        Packet {
            uid: read_varint(input).wrapping_sub(1),
            header: Header::decode(input),
            payload: Option::<Msg>::decode(input),
        }
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}", self.header)?;
        if let Some(m) = self.payload {
            write!(f, " {m}")?;
        }
        if self.uid != Packet::UNSTAMPED {
            write!(f, " u{}", self.uid)?;
        }
        f.write_str("⟩")
    }
}

/// The shared action universe (paper Figures 1–3).
///
/// `send_msg`/`receive_msg` are fixed to the `t → r` data link (the paper's
/// `send_msg^{t,r}` / `receive_msg^{t,r}`); packets flow on both directed
/// physical channels. `wake`/`fail` are indexed by medium direction and
/// `crash` by the station that crashed (the paper writes `crash^{t,r}` for a
/// transmitter crash and `crash^{r,t}` for a receiver crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DlAction {
    /// `send_msg^{t,r}(m)` — the environment hands a message to the data
    /// link at the transmitting station.
    SendMsg(Msg),
    /// `receive_msg^{t,r}(m)` — the data link delivers a message to the
    /// environment at the receiving station.
    ReceiveMsg(Msg),
    /// `send_pkt^{d}(p)` — a protocol automaton puts a packet on the
    /// physical channel in direction `d`.
    SendPkt(Dir, Packet),
    /// `receive_pkt^{d}(p)` — the physical channel in direction `d`
    /// delivers a packet.
    ReceivePkt(Dir, Packet),
    /// `wake^{d}` — notification that the medium in direction `d` became
    /// active.
    Wake(Dir),
    /// `fail^{d}` — notification that the medium in direction `d` became
    /// inactive.
    Fail(Dir),
    /// `crash^{x}` — notification that station `x` suffered a hardware
    /// crash.
    Crash(Station),
    /// An internal action of the protocol automaton at the given station,
    /// identified by an opaque code.
    Internal(Station, u64),
}

impl DlAction {
    /// The packet carried by a `send_pkt`/`receive_pkt` action.
    #[must_use]
    pub fn packet(&self) -> Option<&Packet> {
        match self {
            DlAction::SendPkt(_, p) | DlAction::ReceivePkt(_, p) => Some(p),
            _ => None,
        }
    }

    /// The message carried by a `send_msg`/`receive_msg` action.
    #[must_use]
    pub fn message(&self) -> Option<Msg> {
        match self {
            DlAction::SendMsg(m) | DlAction::ReceiveMsg(m) => Some(*m),
            _ => None,
        }
    }

    /// `true` for `send_pkt`/`receive_pkt` — the actions hidden by
    /// `hide_Φ` in the correctness definition (§5.2).
    #[must_use]
    pub fn is_packet_action(&self) -> bool {
        matches!(self, DlAction::SendPkt(..) | DlAction::ReceivePkt(..))
    }

    /// A copy with any carried packet's uid replaced by `uid`.
    #[must_use]
    pub fn with_packet_uid(self, uid: u64) -> DlAction {
        match self {
            DlAction::SendPkt(d, p) => DlAction::SendPkt(d, p.with_uid(uid)),
            DlAction::ReceivePkt(d, p) => DlAction::ReceivePkt(d, p.with_uid(uid)),
            other => other,
        }
    }
}

impl fmt::Display for DlAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlAction::SendMsg(m) => write!(f, "send_msg^t,r({m})"),
            DlAction::ReceiveMsg(m) => write!(f, "receive_msg^t,r({m})"),
            DlAction::SendPkt(d, p) => write!(f, "send_pkt^{d}({p})"),
            DlAction::ReceivePkt(d, p) => write!(f, "receive_pkt^{d}({p})"),
            DlAction::Wake(d) => write!(f, "wake^{d}"),
            DlAction::Fail(d) => write!(f, "fail^{d}"),
            DlAction::Crash(Station::T) => f.write_str("crash^t,r"),
            DlAction::Crash(Station::R) => f.write_str("crash^r,t"),
            DlAction::Internal(s, c) => write!(f, "internal^{s}({c})"),
        }
    }
}

/// Renders a trace one action per line, for diagnostics and examples.
#[must_use]
pub fn format_trace(trace: &[DlAction]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, a) in trace.iter().enumerate() {
        let _ = writeln!(out, "{i:>4}  {a}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn station_duality() {
        assert_eq!(Station::T.other(), Station::R);
        assert_eq!(Station::R.other(), Station::T);
        assert_eq!(Station::T.sends_on(), Dir::TR);
        assert_eq!(Station::T.receives_on(), Dir::RT);
        assert_eq!(Station::R.sends_on(), Dir::RT);
        assert_eq!(Station::R.receives_on(), Dir::TR);
    }

    #[test]
    fn dir_duality() {
        assert_eq!(Dir::TR.reverse(), Dir::RT);
        assert_eq!(Dir::RT.reverse(), Dir::TR);
        assert_eq!(Dir::TR.sender(), Station::T);
        assert_eq!(Dir::TR.receiver(), Station::R);
        assert_eq!(Dir::RT.sender(), Station::R);
        for d in Dir::BOTH {
            assert_eq!(d.sender().sends_on(), d);
        }
    }

    #[test]
    fn packet_constructors() {
        let p = Packet::data(3, Msg(9));
        assert_eq!(p.uid, Packet::UNSTAMPED);
        assert_eq!(p.header, Header::new(Tag::Data, 3));
        assert_eq!(p.payload, Some(Msg(9)));

        let a = Packet::ack(4);
        assert_eq!(a.header.tag, Tag::Ack);
        assert_eq!(a.payload, None);

        let stamped = p.with_uid(17);
        assert_eq!(stamped.uid, 17);
        assert_eq!(stamped.content(), p);
    }

    #[test]
    fn action_accessors() {
        let p = Packet::data(0, Msg(1)).with_uid(5);
        let send = DlAction::SendPkt(Dir::TR, p);
        assert_eq!(send.packet(), Some(&p));
        assert!(send.is_packet_action());
        assert_eq!(send.message(), None);
        assert_eq!(send.with_packet_uid(9).packet().unwrap().uid, 9);

        let sm = DlAction::SendMsg(Msg(2));
        assert_eq!(sm.message(), Some(Msg(2)));
        assert!(!sm.is_packet_action());
        assert_eq!(sm.with_packet_uid(9), sm);
    }

    #[test]
    fn display_round_trip_is_readable() {
        assert_eq!(DlAction::Wake(Dir::TR).to_string(), "wake^t,r");
        assert_eq!(DlAction::Crash(Station::R).to_string(), "crash^r,t");
        assert_eq!(DlAction::SendMsg(Msg(3)).to_string(), "send_msg^t,r(m3)");
        let p = Packet::data(1, Msg(2)).with_uid(7);
        assert_eq!(
            DlAction::SendPkt(Dir::TR, p).to_string(),
            "send_pkt^t,r(⟨DATA#1 m2 u7⟩)"
        );
        assert_eq!(Packet::ack(0).to_string(), "⟨ACK#0⟩");
    }

    #[test]
    fn format_trace_numbers_lines() {
        let t = vec![DlAction::Wake(Dir::TR), DlAction::Fail(Dir::TR)];
        let s = format_trace(&t);
        assert!(s.contains("   0  wake^t,r"));
        assert!(s.contains("   1  fail^t,r"));
    }
}
