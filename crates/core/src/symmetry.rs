//! Message-symmetry quotients: canonical renamings, a quotient automaton,
//! and counterexample lifting.
//!
//! §5.3.1's message-independence axiom says protocol automata commute with
//! message renamings: if `s —a→ t` then `ρ(s) —ρ(a)→ ρ(t)` for any
//! bijective renaming `ρ` of the message universe. Exploration engines can
//! therefore identify states that differ only by which concrete messages
//! occupy which protocol slots — the *orbit* of a state under the renaming
//! group — and explore one representative per orbit.
//!
//! This module provides the machinery:
//!
//! * [`MsgVisit`] / [`MsgRelabel`] — structural traits letting a state
//!   enumerate the messages it mentions (in a fixed traversal order) and
//!   rebuild itself under a message substitution;
//! * [`canonical_renaming`] / [`canonicalize`] — the first-occurrence
//!   canonical form: traversing the state, the `j`-th distinct message of
//!   residue class `r` (classes modulo [`ProtocolInfo::msg_class_modulus`],
//!   or the single class when unbounded) is renamed to `Msg(r + j·c)`;
//! * [`Quotient`] — an automaton wrapper that canonicalizes start states
//!   and every successor, so a downstream explorer visits orbit
//!   representatives only;
//! * [`lift_canonical_path`] — replays a canonical-level counterexample
//!   into a concrete execution of the unquotiented system, so minimal
//!   claims stay checkable against the real automaton.
//!
//! # Soundness and completeness
//!
//! Canonicalization is a pure function of the state, so quotient runs are
//! deterministic and independent of thread count. Soundness (every
//! canonical trace lifts to a concrete trace) follows from
//! message-independence; [`lift_canonical_path`] realizes the lift
//! constructively. Completeness is *up to renaming*: a property violated
//! by some concrete execution is violated by a canonical one **provided**
//! the property itself is renaming-invariant (the WDL observer flags are)
//! and the environment offers inputs symmetrically.
//!
//! One deliberate approximation: containers with content-dependent
//! iteration order (`BTreeSet`) traverse in *sorted* order, which is not
//! equivariant under renaming — two orbit-equivalent states can
//! canonicalize differently when their sorted orders interleave
//! differently. The quotient then merges only part of each orbit. That
//! costs reduction, never correctness: canonical states are still genuine
//! reachable-modulo-renaming states, and the visited-set semantics is
//! unchanged.
//!
//! [`ProtocolInfo::msg_class_modulus`]: crate::protocol::ProtocolInfo::msg_class_modulus

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ioa::action::ActionClass;
use ioa::automaton::{Automaton, TaskId};
use ioa::composition::Pair;

use crate::action::{DlAction, Msg, Packet};
use crate::equivalence::MsgRenaming;
use crate::observer::ObserverState;

/// Enumerates the messages a value mentions, in a deterministic traversal
/// order (field order, then container order).
///
/// The traversal order defines the canonical form, so implementations must
/// be stable: same value, same sequence of callbacks.
pub trait MsgVisit {
    /// Calls `f` once per message *occurrence* (duplicates included).
    fn visit_msgs(&self, f: &mut dyn FnMut(Msg));
}

/// Rebuilds a value with every message passed through a substitution.
///
/// The substitution is an arbitrary function, not necessarily a
/// [`MsgRenaming`]; callers (canonicalization, lifting) guarantee
/// injectivity on the messages the value actually mentions.
pub trait MsgRelabel: Sized {
    /// Returns a copy of `self` with each message `m` replaced by `f(m)`.
    fn relabel_msgs(&self, f: &mut dyn FnMut(Msg) -> Msg) -> Self;
}

impl MsgVisit for Msg {
    fn visit_msgs(&self, f: &mut dyn FnMut(Msg)) {
        f(*self);
    }
}

impl MsgRelabel for Msg {
    fn relabel_msgs(&self, f: &mut dyn FnMut(Msg) -> Msg) -> Self {
        f(*self)
    }
}

impl MsgVisit for Packet {
    fn visit_msgs(&self, f: &mut dyn FnMut(Msg)) {
        if let Some(m) = self.payload {
            f(m);
        }
    }
}

impl MsgRelabel for Packet {
    fn relabel_msgs(&self, f: &mut dyn FnMut(Msg) -> Msg) -> Self {
        Packet {
            uid: self.uid,
            header: self.header,
            payload: self.payload.map(&mut *f),
        }
    }
}

/// Scalars mention no messages; blanket-style impls keep generic container
/// impls usable for fields like `VecDeque<bool>`.
macro_rules! msg_opaque {
    ($($t:ty),* $(,)?) => {$(
        impl MsgVisit for $t {
            fn visit_msgs(&self, _f: &mut dyn FnMut(Msg)) {}
        }
        impl MsgRelabel for $t {
            fn relabel_msgs(&self, _f: &mut dyn FnMut(Msg) -> Msg) -> Self {
                *self
            }
        }
    )*};
}

msg_opaque!(bool, u8, u16, u32, u64, usize, i64);

impl<T: MsgVisit> MsgVisit for Option<T> {
    fn visit_msgs(&self, f: &mut dyn FnMut(Msg)) {
        if let Some(x) = self {
            x.visit_msgs(f);
        }
    }
}

impl<T: MsgRelabel> MsgRelabel for Option<T> {
    fn relabel_msgs(&self, f: &mut dyn FnMut(Msg) -> Msg) -> Self {
        self.as_ref().map(|x| x.relabel_msgs(f))
    }
}

impl<T: MsgVisit> MsgVisit for Vec<T> {
    fn visit_msgs(&self, f: &mut dyn FnMut(Msg)) {
        for x in self {
            x.visit_msgs(f);
        }
    }
}

impl<T: MsgRelabel> MsgRelabel for Vec<T> {
    fn relabel_msgs(&self, f: &mut dyn FnMut(Msg) -> Msg) -> Self {
        self.iter().map(|x| x.relabel_msgs(f)).collect()
    }
}

impl<T: MsgVisit> MsgVisit for VecDeque<T> {
    fn visit_msgs(&self, f: &mut dyn FnMut(Msg)) {
        for x in self {
            x.visit_msgs(f);
        }
    }
}

impl<T: MsgRelabel> MsgRelabel for VecDeque<T> {
    fn relabel_msgs(&self, f: &mut dyn FnMut(Msg) -> Msg) -> Self {
        self.iter().map(|x| x.relabel_msgs(f)).collect()
    }
}

impl<T: MsgVisit, const N: usize> MsgVisit for [T; N] {
    fn visit_msgs(&self, f: &mut dyn FnMut(Msg)) {
        for x in self {
            x.visit_msgs(f);
        }
    }
}

impl<T: MsgRelabel, const N: usize> MsgRelabel for [T; N] {
    fn relabel_msgs(&self, f: &mut dyn FnMut(Msg) -> Msg) -> Self {
        std::array::from_fn(|i| self[i].relabel_msgs(f))
    }
}

/// Sequence-number sets carry no messages.
impl MsgVisit for BTreeSet<u64> {
    fn visit_msgs(&self, _f: &mut dyn FnMut(Msg)) {}
}

impl MsgRelabel for BTreeSet<u64> {
    fn relabel_msgs(&self, _f: &mut dyn FnMut(Msg) -> Msg) -> Self {
        self.clone()
    }
}

/// Reassembly buffers visit payloads in key order (keys are sequence
/// numbers, not messages, so the traversal *is* equivariant here).
impl MsgVisit for BTreeMap<u64, Msg> {
    fn visit_msgs(&self, f: &mut dyn FnMut(Msg)) {
        for m in self.values() {
            f(*m);
        }
    }
}

impl MsgRelabel for BTreeMap<u64, Msg> {
    fn relabel_msgs(&self, f: &mut dyn FnMut(Msg) -> Msg) -> Self {
        self.iter().map(|(&k, m)| (k, f(*m))).collect()
    }
}

impl<A: MsgVisit, B: MsgVisit> MsgVisit for (A, B) {
    fn visit_msgs(&self, f: &mut dyn FnMut(Msg)) {
        self.0.visit_msgs(f);
        self.1.visit_msgs(f);
    }
}

impl<A: MsgRelabel, B: MsgRelabel> MsgRelabel for (A, B) {
    fn relabel_msgs(&self, f: &mut dyn FnMut(Msg) -> Msg) -> Self {
        (self.0.relabel_msgs(f), self.1.relabel_msgs(f))
    }
}

impl<L: MsgVisit, R: MsgVisit> MsgVisit for Pair<L, R> {
    fn visit_msgs(&self, f: &mut dyn FnMut(Msg)) {
        self.left.visit_msgs(f);
        self.right.visit_msgs(f);
    }
}

impl<L: MsgRelabel, R: MsgRelabel> MsgRelabel for Pair<L, R> {
    fn relabel_msgs(&self, f: &mut dyn FnMut(Msg) -> Msg) -> Self {
        Pair {
            left: self.left.relabel_msgs(f),
            right: self.right.relabel_msgs(f),
        }
    }
}

/// `BTreeSet<Msg>` visits in sorted order — deterministic, but *not*
/// equivariant under renaming (see the module docs on partial orbit
/// merging).
impl MsgVisit for BTreeSet<Msg> {
    fn visit_msgs(&self, f: &mut dyn FnMut(Msg)) {
        for m in self {
            f(*m);
        }
    }
}

impl MsgRelabel for BTreeSet<Msg> {
    fn relabel_msgs(&self, f: &mut dyn FnMut(Msg) -> Msg) -> Self {
        self.iter().map(|m| f(*m)).collect()
    }
}

impl MsgVisit for ObserverState {
    fn visit_msgs(&self, f: &mut dyn FnMut(Msg)) {
        self.sent.visit_msgs(f);
        self.received.visit_msgs(f);
        if let Some(flag) = &self.flag {
            match flag {
                crate::observer::SafetyFlag::Duplicate(m)
                | crate::observer::SafetyFlag::Phantom(m) => f(*m),
            }
        }
    }
}

impl MsgRelabel for ObserverState {
    fn relabel_msgs(&self, f: &mut dyn FnMut(Msg) -> Msg) -> Self {
        ObserverState {
            sent: self.sent.relabel_msgs(f),
            received: self.received.relabel_msgs(f),
            flag: self.flag.map(|flag| match flag {
                crate::observer::SafetyFlag::Duplicate(m) => {
                    crate::observer::SafetyFlag::Duplicate(f(m))
                }
                crate::observer::SafetyFlag::Phantom(m) => {
                    crate::observer::SafetyFlag::Phantom(f(m))
                }
            }),
        }
    }
}

impl MsgVisit for DlAction {
    fn visit_msgs(&self, f: &mut dyn FnMut(Msg)) {
        match self {
            DlAction::SendMsg(m) | DlAction::ReceiveMsg(m) => f(*m),
            DlAction::SendPkt(_, p) | DlAction::ReceivePkt(_, p) => p.visit_msgs(f),
            _ => {}
        }
    }
}

impl MsgRelabel for DlAction {
    fn relabel_msgs(&self, f: &mut dyn FnMut(Msg) -> Msg) -> Self {
        match self {
            DlAction::SendMsg(m) => DlAction::SendMsg(f(*m)),
            DlAction::ReceiveMsg(m) => DlAction::ReceiveMsg(f(*m)),
            DlAction::SendPkt(d, p) => DlAction::SendPkt(*d, p.relabel_msgs(f)),
            DlAction::ReceivePkt(d, p) => DlAction::ReceivePkt(*d, p.relabel_msgs(f)),
            other => *other,
        }
    }
}

/// The canonical renaming of `state`: traversing via [`MsgVisit`], the
/// `j`-th distinct message of residue class `r = m mod c` maps to
/// `Msg(r + j·c)` (with `c = class_modulus.unwrap_or(1)`, a single class).
///
/// The result is injective on the messages the state mentions; its action
/// off that set is unspecified (and never used).
#[must_use]
pub fn canonical_renaming(state: &impl MsgVisit, class_modulus: Option<u64>) -> MsgRenaming {
    let c = class_modulus.unwrap_or(1).max(1);
    let mut next: BTreeMap<u64, u64> = BTreeMap::new();
    let mut seen: BTreeSet<Msg> = BTreeSet::new();
    let mut rho = MsgRenaming::identity();
    state.visit_msgs(&mut |m| {
        if !seen.insert(m) {
            return;
        }
        let r = m.0 % c;
        let j = next.entry(r).or_insert(0);
        let target = Msg(r + *j * c);
        *j += 1;
        if target != m {
            rho.insert(m, target)
                .expect("first-occurrence targets are distinct per class");
        }
    });
    rho
}

/// Canonicalizes a state: returns the orbit representative together with
/// the renaming `ρ` that produced it (`canon = ρ(state)`).
#[must_use]
pub fn canonicalize<S: MsgVisit + MsgRelabel>(
    state: &S,
    class_modulus: Option<u64>,
) -> (S, MsgRenaming) {
    let rho = canonical_renaming(state, class_modulus);
    let canon = state.relabel_msgs(&mut |m| rho.apply(m));
    (canon, rho)
}

/// An automaton whose states are the canonical orbit representatives of an
/// inner automaton's states: start states and successors are passed
/// through [`canonicalize`] before being handed to the caller.
///
/// With `class_modulus = None` and states whose messages already appear in
/// first-occurrence order, canonicalization is the identity and the
/// quotient explores exactly the inner graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quotient<M> {
    inner: M,
    class_modulus: Option<u64>,
}

impl<M> Quotient<M> {
    /// Wraps `inner`, canonicalizing modulo `class_modulus` message
    /// classes (`None` = one class).
    pub fn new(inner: M, class_modulus: Option<u64>) -> Self {
        Quotient {
            inner,
            class_modulus,
        }
    }

    /// The wrapped automaton.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The class modulus used for canonicalization.
    #[must_use]
    pub fn class_modulus(&self) -> Option<u64> {
        self.class_modulus
    }
}

impl<M> Automaton for Quotient<M>
where
    M: Automaton<Action = DlAction>,
    M::State: MsgVisit + MsgRelabel,
{
    type Action = DlAction;
    type State = M::State;

    fn start_states(&self) -> Vec<M::State> {
        self.inner
            .start_states()
            .into_iter()
            .map(|s| canonicalize(&s, self.class_modulus).0)
            .collect()
    }

    fn classify(&self, a: &DlAction) -> Option<ActionClass> {
        self.inner.classify(a)
    }

    fn successors(&self, s: &M::State, a: &DlAction) -> Vec<M::State> {
        self.inner
            .successors(s, a)
            .into_iter()
            .map(|t| canonicalize(&t, self.class_modulus).0)
            .collect()
    }

    fn try_for_each_successor(
        &self,
        s: &M::State,
        a: &DlAction,
        f: &mut dyn FnMut(M::State) -> std::ops::ControlFlow<()>,
    ) -> std::ops::ControlFlow<()> {
        let c = self.class_modulus;
        self.inner
            .try_for_each_successor(s, a, &mut |t| f(canonicalize(&t, c).0))
    }

    fn enabled_local(&self, s: &M::State) -> Vec<DlAction> {
        self.inner.enabled_local(s)
    }

    fn for_each_enabled_local(
        &self,
        s: &M::State,
        f: &mut dyn FnMut(DlAction) -> std::ops::ControlFlow<()>,
    ) -> std::ops::ControlFlow<()> {
        self.inner.for_each_enabled_local(s, f)
    }

    fn task_of(&self, a: &DlAction) -> TaskId {
        self.inner.task_of(a)
    }

    fn task_count(&self) -> usize {
        self.inner.task_count()
    }
}

/// A concrete execution recovered from a canonical-level action path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiftedPath<S> {
    /// The concrete start state (an actual inner start state).
    pub start: S,
    /// The concrete steps: action taken, state reached.
    pub steps: Vec<(DlAction, S)>,
}

/// Substitution state threaded through the lift: a canonical→concrete
/// message map for the *current* step plus the set of concrete messages
/// ever used (so fresh picks never collide with history).
struct Sigma {
    map: BTreeMap<Msg, Msg>,
    used: BTreeSet<Msg>,
    class_modulus: u64,
}

impl Sigma {
    /// Resolves a canonical message, minting a fresh class-preserving
    /// concrete message for canonically-new ones.
    fn resolve(&mut self, m: Msg) -> Msg {
        if let Some(&v) = self.map.get(&m) {
            return v;
        }
        let c = self.class_modulus;
        let r = m.0 % c;
        let mut j = 0u64;
        let fresh = loop {
            let cand = Msg(r + j * c);
            if !self.used.contains(&cand) {
                break cand;
            }
            j += 1;
        };
        self.map.insert(m, fresh);
        self.used.insert(fresh);
        fresh
    }
}

/// Lifts a canonical-level counterexample path back to a concrete
/// execution of `inner`.
///
/// `actions` is the action sequence of a path in
/// [`Quotient`]`(inner, class_modulus)` starting from one of its start
/// states; `accept` judges the *final concrete state* (it must be
/// renaming-invariant, as the WDL observer flags are). The lift replays
/// the path by depth-first search over the inner automaton's
/// nondeterministic successor choices, threading the canonical→concrete
/// substitution `σ` across steps: at each transition the raw successor `t`
/// canonicalizes via `ρ`, the new substitution is `σ ∘ ρ⁻¹` restricted to
/// the messages of `ρ(t)`, and the concrete successor is `σ(t)` — a real
/// successor of the concrete state by message-independence. Canonically
/// fresh messages are mapped to fresh concrete messages of the same class,
/// so the concrete trace never conflates two canonical messages.
///
/// Returns the first concrete execution whose final state satisfies
/// `accept`, or `None` if no successor resolution realizes the path. When
/// the quotient is trivial (canonicalization fixed every state on the
/// path), the lifted path is byte-identical to the canonical one.
pub fn lift_canonical_path<M>(
    inner: &M,
    class_modulus: Option<u64>,
    actions: &[DlAction],
    accept: &dyn Fn(&M::State) -> bool,
) -> Option<LiftedPath<M::State>>
where
    M: Automaton<Action = DlAction>,
    M::State: MsgVisit + MsgRelabel,
{
    let c = class_modulus.unwrap_or(1).max(1);
    for concrete_start in inner.start_states() {
        let (canon_start, rho) = canonicalize(&concrete_start, class_modulus);
        // σ₀ sends each canonical message back to the concrete one it
        // came from; `used` seeds with the start's concrete messages.
        let mut sigma = Sigma {
            map: BTreeMap::new(),
            used: BTreeSet::new(),
            class_modulus: c,
        };
        concrete_start.visit_msgs(&mut |m| {
            sigma.map.insert(rho.apply(m), m);
            sigma.used.insert(m);
        });
        if let Some(steps) = lift_dfs(inner, class_modulus, &canon_start, sigma, actions, accept) {
            return Some(LiftedPath {
                start: concrete_start,
                steps,
            });
        }
    }
    None
}

fn lift_dfs<M>(
    inner: &M,
    class_modulus: Option<u64>,
    canon: &M::State,
    mut sigma: Sigma,
    rest: &[DlAction],
    accept: &dyn Fn(&M::State) -> bool,
) -> Option<Vec<(DlAction, M::State)>>
where
    M: Automaton<Action = DlAction>,
    M::State: MsgVisit + MsgRelabel,
{
    let Some((action, tail)) = rest.split_first() else {
        let concrete = canon.relabel_msgs(&mut |m| sigma.resolve(m));
        return accept(&concrete).then(Vec::new);
    };
    // Bind the action's messages first so the concrete action and the
    // concrete successor agree on fresh picks.
    let concrete_action = action.relabel_msgs(&mut |m| sigma.resolve(m));
    for t in inner.successors(canon, action) {
        // Extend σ over everything `t` mentions (it can only add the
        // action's messages, already bound above, but stay defensive),
        // then rebase it through this successor's canonical renaming.
        let mut fork = Sigma {
            map: sigma.map.clone(),
            used: sigma.used.clone(),
            class_modulus: sigma.class_modulus,
        };
        let concrete_t = t.relabel_msgs(&mut |m| fork.resolve(m));
        let (canon_t, rho) = canonicalize(&t, class_modulus);
        let mut rebased: BTreeMap<Msg, Msg> = BTreeMap::new();
        t.visit_msgs(&mut |m| {
            rebased.insert(rho.apply(m), *fork.map.get(&m).expect("σ is total on t"));
        });
        let next = Sigma {
            map: rebased,
            used: fork.used,
            class_modulus: fork.class_modulus,
        };
        if let Some(mut steps) = lift_dfs(inner, class_modulus, &canon_t, next, tail, accept) {
            let mut out = Vec::with_capacity(steps.len() + 1);
            out.push((concrete_action, concrete_t));
            out.append(&mut steps);
            return Some(out);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Dir, Header, Tag};

    #[test]
    fn canonical_renaming_is_first_occurrence_order() {
        // Visit order 7, 3, 7, 9 → 7↦0, 3↦1, 9↦2.
        let state = vec![Msg(7), Msg(3), Msg(7), Msg(9)];
        let rho = canonical_renaming(&state, None);
        assert_eq!(rho.apply(Msg(7)), Msg(0));
        assert_eq!(rho.apply(Msg(3)), Msg(1));
        assert_eq!(rho.apply(Msg(9)), Msg(2));
        let (canon, _) = canonicalize(&state, None);
        assert_eq!(canon, vec![Msg(0), Msg(1), Msg(0), Msg(2)]);
    }

    #[test]
    fn canonical_renaming_preserves_classes() {
        // Modulus 3: class 1 gets 1, 4, 7…; class 2 gets 2, 5, 8….
        let state = vec![Msg(10), Msg(5), Msg(4)];
        let (canon, _) = canonicalize(&state, Some(3));
        assert_eq!(canon, vec![Msg(1), Msg(2), Msg(4)]);
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let state = vec![Msg(42), Msg(17), Msg(42), Msg(5)];
        let (canon, _) = canonicalize(&state, None);
        let (again, rho) = canonicalize(&canon, None);
        assert_eq!(canon, again);
        assert_eq!(rho.support_len(), 0);
    }

    #[test]
    fn orbit_equivalent_states_share_a_canonical_form() {
        let a = vec![Msg(2), Msg(9)];
        let b = vec![Msg(100), Msg(3)];
        assert_eq!(canonicalize(&a, None).0, canonicalize(&b, None).0);
    }

    #[test]
    fn packets_relabel_payload_only() {
        let p = Packet {
            uid: 12,
            header: Header {
                tag: Tag::Data,
                seq: 1,
            },
            payload: Some(Msg(9)),
        };
        let q = p.relabel_msgs(&mut |m| Msg(m.0 + 1));
        assert_eq!(q.uid, 12);
        assert_eq!(q.header, p.header);
        assert_eq!(q.payload, Some(Msg(10)));
        let mut seen = Vec::new();
        p.visit_msgs(&mut |m| seen.push(m));
        assert_eq!(seen, vec![Msg(9)]);
    }

    #[test]
    fn composition_after_applies_right_then_left() {
        let mut r1 = MsgRenaming::identity();
        r1.insert(Msg(0), Msg(1)).unwrap();
        r1.insert(Msg(1), Msg(0)).unwrap();
        let mut r2 = MsgRenaming::identity();
        r2.insert(Msg(5), Msg(0)).unwrap();
        r2.insert(Msg(0), Msg(5)).unwrap();
        let composed = r1.after(&r2).unwrap();
        // 5 →(r2) 0 →(r1) 1.
        assert_eq!(composed.apply(Msg(5)), Msg(1));
        // 0 →(r2) 5 →(r1) 5.
        assert_eq!(composed.apply(Msg(0)), Msg(5));
        // 1 →(r2) 1 →(r1) 0.
        assert_eq!(composed.apply(Msg(1)), Msg(0));
    }

    #[test]
    fn composition_with_inverse_cancels() {
        let state = vec![Msg(8), Msg(2), Msg(11)];
        let rho = canonical_renaming(&state, None);
        let id = rho.inverse().after(&rho).unwrap();
        for m in &state {
            assert_eq!(id.apply(*m), *m);
        }
    }

    /// A toy 1-place channel: `send_pkt` stores the packet, `receive_pkt`
    /// emits it. Nondeterministic start (empty or pre-loaded) to exercise
    /// the DFS in [`lift_canonical_path`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Cell;

    impl Automaton for Cell {
        type Action = DlAction;
        type State = Option<Packet>;

        fn start_states(&self) -> Vec<Self::State> {
            vec![None]
        }
        fn classify(&self, a: &DlAction) -> Option<ActionClass> {
            match a {
                DlAction::SendPkt(Dir::TR, _) => Some(ActionClass::Input),
                DlAction::ReceivePkt(Dir::TR, _) => Some(ActionClass::Output),
                _ => None,
            }
        }
        fn successors(&self, s: &Self::State, a: &DlAction) -> Vec<Self::State> {
            match a {
                DlAction::SendPkt(Dir::TR, p) => vec![Some(*p)],
                DlAction::ReceivePkt(Dir::TR, p) if s.as_ref() == Some(p) => vec![None],
                _ => vec![],
            }
        }
        fn enabled_local(&self, s: &Self::State) -> Vec<DlAction> {
            s.iter()
                .map(|p| DlAction::ReceivePkt(Dir::TR, *p))
                .collect()
        }
        fn task_of(&self, _a: &DlAction) -> TaskId {
            TaskId(0)
        }
        fn task_count(&self) -> usize {
            1
        }
    }

    fn pkt(m: u64) -> Packet {
        Packet {
            uid: Packet::UNSTAMPED,
            header: Header {
                tag: Tag::Data,
                seq: 0,
            },
            payload: Some(Msg(m)),
        }
    }

    #[test]
    fn quotient_canonicalizes_successors() {
        let q = Quotient::new(Cell, None);
        let s = q.start_states().remove(0);
        let succ = q.successors(&s, &DlAction::SendPkt(Dir::TR, pkt(77)));
        // The stored payload canonicalizes to the least message.
        assert_eq!(succ, vec![Some(pkt(0))]);
    }

    #[test]
    fn lift_recovers_a_concrete_execution() {
        // Canonical path: send pkt(0); receive pkt(0).
        let actions = vec![
            DlAction::SendPkt(Dir::TR, pkt(0)),
            DlAction::ReceivePkt(Dir::TR, pkt(0)),
        ];
        let lifted =
            lift_canonical_path(&Cell, None, &actions, &|s| s.is_none()).expect("path lifts");
        assert_eq!(lifted.start, None);
        assert_eq!(lifted.steps.len(), 2);
        // Concrete actions stay consistent: the packet received is the
        // packet sent.
        let (a0, s0) = &lifted.steps[0];
        let (a1, s1) = &lifted.steps[1];
        let DlAction::SendPkt(Dir::TR, p_sent) = a0 else {
            panic!("expected send, got {a0:?}");
        };
        assert_eq!(*s0, Some(*p_sent));
        assert_eq!(*a1, DlAction::ReceivePkt(Dir::TR, *p_sent));
        assert_eq!(*s1, None);
        // Each concrete step really is a step of the inner automaton.
        let mut cur = lifted.start;
        for (a, s) in &lifted.steps {
            assert!(Cell.successors(&cur, a).contains(s), "invalid step {a:?}");
            cur = *s;
        }
    }

    #[test]
    fn trivial_quotient_lift_is_byte_identical() {
        // Messages already in canonical order: the lift must reproduce
        // the canonical path exactly.
        let actions = vec![DlAction::SendPkt(Dir::TR, pkt(0))];
        let lifted = lift_canonical_path(&Cell, None, &actions, &|s| s.is_some()).unwrap();
        assert_eq!(
            lifted.steps,
            vec![(DlAction::SendPkt(Dir::TR, pkt(0)), Some(pkt(0)))]
        );
    }
}
