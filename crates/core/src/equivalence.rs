//! Message-independence (paper §5.3.1) as a concrete relabeling API.
//!
//! The paper defines message-independence abstractly: an equivalence
//! relation `≡` over messages, packets, states, and actions satisfying five
//! axioms, under which the protocol treats messages as uninterpreted data.
//! For the executable engines we realize the canonical such relation:
//!
//! * **all messages are equivalent** (axiom 2);
//! * two **packets** are equivalent iff they agree on the header and on
//!   *whether* they carry a payload — the payload message itself and the
//!   analysis-only uid are don't-cares ([`packets_equivalent`]). The
//!   equivalence classes of packets are exactly the paper's
//!   `headers(A, ≡)`;
//! * two **actions** are equivalent iff they are identical except possibly
//!   for their message/packet parameter, with packet parameters equivalent
//!   as above ([`actions_equivalent`], axioms 1–3);
//! * two **states** are equivalent iff some [`MsgRenaming`] maps one to the
//!   other; protocols expose the renaming action on their states via
//!   [`crate::protocol::MessageIndependent`], and axioms 4–5 (equivalent
//!   states enable equivalent actions with equivalent successors) become
//!   testable properties of that implementation.
//!
//! A [`MsgRenaming`] is a finitely-supported bijection on the message
//! alphabet; applying it to a state/action substitutes messages wherever
//! they are stored. This is how the impossibility engines replay reference
//! executions "with fresh messages", exactly as the proofs of Lemmas 7.2
//! and 8.3 do.

use std::collections::BTreeMap;
use std::fmt;

use crate::action::{DlAction, Msg, Packet};

/// Error from building an inconsistent renaming.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RenamingError {
    /// The source message is already mapped to a different target.
    SourceTaken(Msg),
    /// The target message is already the image of a different source.
    TargetTaken(Msg),
}

impl fmt::Display for RenamingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenamingError::SourceTaken(m) => write!(f, "message {m} is already renamed"),
            RenamingError::TargetTaken(m) => {
                write!(f, "message {m} is already the image of another message")
            }
        }
    }
}

impl std::error::Error for RenamingError {}

/// A finitely-supported bijection on the message alphabet `M`; identity
/// outside its support.
///
/// ```
/// use dl_core::action::{DlAction, Msg};
/// use dl_core::equivalence::MsgRenaming;
///
/// # fn main() -> Result<(), dl_core::equivalence::RenamingError> {
/// let mut rho = MsgRenaming::identity();
/// rho.insert(Msg(1), Msg(100))?;
/// assert_eq!(
///     rho.apply_action(&DlAction::SendMsg(Msg(1))),
///     DlAction::SendMsg(Msg(100)),
/// );
/// assert_eq!(rho.inverse().apply(Msg(100)), Msg(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MsgRenaming {
    forward: BTreeMap<Msg, Msg>,
    backward: BTreeMap<Msg, Msg>,
}

impl MsgRenaming {
    /// The identity renaming.
    #[must_use]
    pub fn identity() -> Self {
        MsgRenaming::default()
    }

    /// Adds the mapping `from ↦ to`, keeping the renaming a bijection.
    ///
    /// Mapping a message to itself is allowed and is a no-op. Note that a
    /// mapping `a ↦ b` without an explicit `b ↦ …` leaves `b` mapped to
    /// `b` only if that keeps bijectivity; [`apply`](Self::apply) resolves
    /// this lazily (a message that is a target but not a source maps to
    /// itself only when unambiguous, otherwise the renaming would not be a
    /// bijection — `insert` rejects such conflicts eagerly for sources).
    ///
    /// # Errors
    ///
    /// [`RenamingError::SourceTaken`] if `from` already maps elsewhere;
    /// [`RenamingError::TargetTaken`] if `to` is already an image.
    pub fn insert(&mut self, from: Msg, to: Msg) -> Result<(), RenamingError> {
        match self.forward.get(&from) {
            Some(existing) if *existing == to => return Ok(()),
            Some(_) => return Err(RenamingError::SourceTaken(from)),
            None => {}
        }
        if self.backward.contains_key(&to) {
            return Err(RenamingError::TargetTaken(to));
        }
        self.forward.insert(from, to);
        self.backward.insert(to, from);
        Ok(())
    }

    /// Looks up the image of `m` (identity outside the support).
    #[must_use]
    pub fn apply(&self, m: Msg) -> Msg {
        *self.forward.get(&m).unwrap_or(&m)
    }

    /// The image of `m`, if `m` is explicitly in the support.
    #[must_use]
    pub fn image_of(&self, m: Msg) -> Option<Msg> {
        self.forward.get(&m).copied()
    }

    /// The inverse renaming.
    #[must_use]
    pub fn inverse(&self) -> MsgRenaming {
        MsgRenaming {
            forward: self.backward.clone(),
            backward: self.forward.clone(),
        }
    }

    /// Number of explicit mappings.
    #[must_use]
    pub fn support_len(&self) -> usize {
        self.forward.len()
    }

    /// The composition `self ∘ other` — the renaming that applies `other`
    /// first and then `self`; identity pairs produced by cancellation are
    /// dropped from the support.
    ///
    /// A renaming is a *partial* injection read as the identity off its
    /// support, and composing two of those is not always injective (e.g.
    /// `{5→0}` after `{0→5}⁻¹ = {5→0}` is fine, but `{3→0}` composed with
    /// a map that also sends `5` through `0` collides). When the composite
    /// would conflate two messages this returns the offending
    /// [`RenamingError`] instead of a renaming.
    pub fn after(&self, other: &MsgRenaming) -> Result<MsgRenaming, RenamingError> {
        let mut out = MsgRenaming::identity();
        for &m in other.forward.keys() {
            let img = self.apply(other.apply(m));
            if img != m {
                out.insert(m, img)?;
            }
        }
        for &m in self.forward.keys() {
            if other.forward.contains_key(&m) {
                continue;
            }
            let img = self.apply(m);
            if img != m {
                out.insert(m, img)?;
            }
        }
        Ok(out)
    }

    /// Applies the renaming to a packet's payload; header and uid are
    /// untouched.
    #[must_use]
    pub fn apply_packet(&self, p: &Packet) -> Packet {
        Packet {
            uid: p.uid,
            header: p.header,
            payload: p.payload.map(|m| self.apply(m)),
        }
    }

    /// Applies the renaming to an action's message or packet-payload
    /// parameter.
    #[must_use]
    pub fn apply_action(&self, a: &DlAction) -> DlAction {
        match a {
            DlAction::SendMsg(m) => DlAction::SendMsg(self.apply(*m)),
            DlAction::ReceiveMsg(m) => DlAction::ReceiveMsg(self.apply(*m)),
            DlAction::SendPkt(d, p) => DlAction::SendPkt(*d, self.apply_packet(p)),
            DlAction::ReceivePkt(d, p) => DlAction::ReceivePkt(*d, self.apply_packet(p)),
            other => *other,
        }
    }
}

/// Packet equivalence `p ≡ p'`: same header, same payload *presence*
/// (message identity and uid are don't-cares). The equivalence classes are
/// the paper's headers.
#[must_use]
pub fn packets_equivalent(p: &Packet, q: &Packet) -> bool {
    p.header == q.header && p.payload.is_some() == q.payload.is_some()
}

/// Action equivalence `a ≡ a'` (§5.3.1 axioms 1–3): identical except
/// possibly for the message/packet parameter, with packets compared by
/// [`packets_equivalent`] and messages unconstrained.
#[must_use]
pub fn actions_equivalent(a: &DlAction, b: &DlAction) -> bool {
    match (a, b) {
        (DlAction::SendMsg(_), DlAction::SendMsg(_)) => true,
        (DlAction::ReceiveMsg(_), DlAction::ReceiveMsg(_)) => true,
        (DlAction::SendPkt(d, p), DlAction::SendPkt(e, q))
        | (DlAction::ReceivePkt(d, p), DlAction::ReceivePkt(e, q)) => {
            d == e && packets_equivalent(p, q)
        }
        (x, y) => x == y,
    }
}

/// `true` if two sequences are element-wise equivalent (the paper's
/// "equivalent with respect to ≡" for sequences).
#[must_use]
pub fn sequences_equivalent(xs: &[DlAction], ys: &[DlAction]) -> bool {
    xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| actions_equivalent(x, y))
}

/// `true` if `replay` is exactly `renaming` applied to `reference`, up to
/// packet uids. This is the *checked* form of equivalence the proof engines
/// use: they know which renaming they constructed, so they can demand the
/// replay match it precisely rather than merely be ≡.
#[must_use]
pub fn action_matches_under(
    reference: &DlAction,
    replay: &DlAction,
    renaming: &MsgRenaming,
) -> bool {
    let expected = renaming.apply_action(reference);
    match (&expected, replay) {
        (DlAction::SendPkt(d, p), DlAction::SendPkt(e, q))
        | (DlAction::ReceivePkt(d, p), DlAction::ReceivePkt(e, q)) => {
            d == e && p.content() == q.content()
        }
        (x, y) => *x == *y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Dir, Header};

    #[test]
    fn identity_renaming_is_noop() {
        let r = MsgRenaming::identity();
        assert_eq!(r.apply(Msg(5)), Msg(5));
        assert_eq!(r.support_len(), 0);
        assert_eq!(r.image_of(Msg(5)), None);
    }

    #[test]
    fn insert_and_apply() {
        let mut r = MsgRenaming::identity();
        r.insert(Msg(1), Msg(10)).unwrap();
        assert_eq!(r.apply(Msg(1)), Msg(10));
        assert_eq!(r.apply(Msg(2)), Msg(2));
        assert_eq!(r.image_of(Msg(1)), Some(Msg(10)));
        // Re-inserting the same mapping is fine.
        r.insert(Msg(1), Msg(10)).unwrap();
        assert_eq!(r.support_len(), 1);
    }

    #[test]
    fn bijectivity_enforced() {
        let mut r = MsgRenaming::identity();
        r.insert(Msg(1), Msg(10)).unwrap();
        assert_eq!(
            r.insert(Msg(1), Msg(11)),
            Err(RenamingError::SourceTaken(Msg(1)))
        );
        assert_eq!(
            r.insert(Msg(2), Msg(10)),
            Err(RenamingError::TargetTaken(Msg(10)))
        );
    }

    #[test]
    fn inverse_round_trips() {
        let mut r = MsgRenaming::identity();
        r.insert(Msg(1), Msg(10)).unwrap();
        r.insert(Msg(2), Msg(20)).unwrap();
        let inv = r.inverse();
        assert_eq!(inv.apply(Msg(10)), Msg(1));
        assert_eq!(inv.apply(r.apply(Msg(2))), Msg(2));
    }

    #[test]
    fn renaming_error_display() {
        assert!(RenamingError::SourceTaken(Msg(1))
            .to_string()
            .contains("already renamed"));
        assert!(RenamingError::TargetTaken(Msg(1))
            .to_string()
            .contains("image"));
    }

    #[test]
    fn packet_renaming_touches_payload_only() {
        let mut r = MsgRenaming::identity();
        r.insert(Msg(1), Msg(10)).unwrap();
        let p = Packet::data(3, Msg(1)).with_uid(7);
        let q = r.apply_packet(&p);
        assert_eq!(q.payload, Some(Msg(10)));
        assert_eq!(q.header, p.header);
        assert_eq!(q.uid, 7);
        let ack = Packet::ack(0);
        assert_eq!(r.apply_packet(&ack), ack);
    }

    #[test]
    fn action_renaming() {
        let mut r = MsgRenaming::identity();
        r.insert(Msg(1), Msg(10)).unwrap();
        assert_eq!(
            r.apply_action(&DlAction::SendMsg(Msg(1))),
            DlAction::SendMsg(Msg(10))
        );
        assert_eq!(
            r.apply_action(&DlAction::ReceiveMsg(Msg(2))),
            DlAction::ReceiveMsg(Msg(2))
        );
        assert_eq!(
            r.apply_action(&DlAction::Wake(Dir::TR)),
            DlAction::Wake(Dir::TR)
        );
        let p = Packet::data(0, Msg(1));
        match r.apply_action(&DlAction::SendPkt(Dir::TR, p)) {
            DlAction::SendPkt(Dir::TR, q) => assert_eq!(q.payload, Some(Msg(10))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn packet_equivalence_ignores_payload_identity_and_uid() {
        let a = Packet::data(3, Msg(1)).with_uid(100);
        let b = Packet::data(3, Msg(2)).with_uid(200);
        assert!(packets_equivalent(&a, &b));

        // Different header: not equivalent.
        let c = Packet::data(4, Msg(1));
        assert!(!packets_equivalent(&a, &c));

        // Payload presence matters.
        let d = Packet::new(Header::data(3), None);
        assert!(!packets_equivalent(&a, &d));
    }

    #[test]
    fn action_equivalence() {
        assert!(actions_equivalent(
            &DlAction::SendMsg(Msg(1)),
            &DlAction::SendMsg(Msg(99))
        ));
        assert!(!actions_equivalent(
            &DlAction::SendMsg(Msg(1)),
            &DlAction::ReceiveMsg(Msg(1))
        ));
        assert!(actions_equivalent(
            &DlAction::SendPkt(Dir::TR, Packet::data(0, Msg(1)).with_uid(5)),
            &DlAction::SendPkt(Dir::TR, Packet::data(0, Msg(2)).with_uid(6)),
        ));
        assert!(!actions_equivalent(
            &DlAction::SendPkt(Dir::TR, Packet::data(0, Msg(1))),
            &DlAction::SendPkt(Dir::RT, Packet::data(0, Msg(1))),
        ));
        assert!(actions_equivalent(
            &DlAction::Crash(crate::action::Station::T),
            &DlAction::Crash(crate::action::Station::T)
        ));
        assert!(!actions_equivalent(
            &DlAction::Wake(Dir::TR),
            &DlAction::Wake(Dir::RT)
        ));
    }

    #[test]
    fn sequence_equivalence() {
        let xs = vec![DlAction::SendMsg(Msg(1)), DlAction::ReceiveMsg(Msg(1))];
        let ys = vec![DlAction::SendMsg(Msg(7)), DlAction::ReceiveMsg(Msg(8))];
        assert!(sequences_equivalent(&xs, &ys));
        assert!(!sequences_equivalent(&xs, &ys[..1]));
    }

    #[test]
    fn action_matches_under_renaming() {
        let mut r = MsgRenaming::identity();
        r.insert(Msg(1), Msg(10)).unwrap();
        assert!(action_matches_under(
            &DlAction::SendMsg(Msg(1)),
            &DlAction::SendMsg(Msg(10)),
            &r
        ));
        assert!(!action_matches_under(
            &DlAction::SendMsg(Msg(1)),
            &DlAction::SendMsg(Msg(11)),
            &r
        ));
        // Uids are ignored in the packet comparison.
        assert!(action_matches_under(
            &DlAction::SendPkt(Dir::TR, Packet::data(0, Msg(1)).with_uid(3)),
            &DlAction::SendPkt(Dir::TR, Packet::data(0, Msg(10)).with_uid(9)),
            &r
        ));
        // Header must match exactly.
        assert!(!action_matches_under(
            &DlAction::SendPkt(Dir::TR, Packet::data(0, Msg(1))),
            &DlAction::SendPkt(Dir::TR, Packet::data(1, Msg(10))),
            &r
        ));
    }
}
