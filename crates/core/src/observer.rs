//! A WDL-safety observer automaton, for exhaustive model checking.
//!
//! The trace checkers of [`crate::spec`] judge recorded behaviors; for
//! *state-space exploration* it is more convenient to compose the system
//! with an observer whose state carries the verdict, so that an invariant
//! over composed states ("the observer has not flagged anything") captures
//! the safety part of `WDL`.
//!
//! [`WdlObserver`] watches `send_msg`/`receive_msg` and flags:
//!
//! * **DL4** — a message delivered twice;
//! * **DL5** — a message delivered that was never sent.
//!
//! It is an ordinary I/O automaton with only input actions, so it is
//! strongly compatible with any data link implementation (it shares
//! `send_msg` as an input with the transmitter and takes the receiver's
//! `receive_msg` output as input).

use std::collections::BTreeSet;

use ioa::action::ActionClass;
use ioa::automaton::{Automaton, TaskId};
use ioa::intern::{read_delta_seq, write_delta_seq, PackedCodec};

use crate::action::{DlAction, Msg};

/// Which safety property the observer saw violated first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SafetyFlag {
    /// DL4: duplicate delivery.
    Duplicate(Msg),
    /// DL5: phantom delivery.
    Phantom(Msg),
}

/// Observer state: the messages seen so far plus the first violation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ObserverState {
    /// Messages handed to the data link so far.
    pub sent: BTreeSet<Msg>,
    /// Messages delivered by the data link so far.
    pub received: BTreeSet<Msg>,
    /// First safety violation observed, if any (sticky).
    pub flag: Option<SafetyFlag>,
}

impl ObserverState {
    /// `true` while no violation has been observed.
    #[must_use]
    pub fn is_safe(&self) -> bool {
        self.flag.is_none()
    }
}

impl PackedCodec for SafetyFlag {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SafetyFlag::Duplicate(m) => {
                out.push(0);
                m.encode(out);
            }
            SafetyFlag::Phantom(m) => {
                out.push(1);
                m.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Self {
        match u8::decode(input) {
            0 => SafetyFlag::Duplicate(Msg::decode(input)),
            1 => SafetyFlag::Phantom(Msg::decode(input)),
            other => panic!("invalid SafetyFlag discriminant {other}"),
        }
    }
}

impl PackedCodec for ObserverState {
    fn encode(&self, out: &mut Vec<u8>) {
        // The message sets are sorted by construction — exactly the
        // shape delta coding wants.
        write_delta_seq(out, self.sent.len(), self.sent.iter().map(|m| m.0));
        write_delta_seq(out, self.received.len(), self.received.iter().map(|m| m.0));
        self.flag.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Self {
        let mut sent = BTreeSet::new();
        read_delta_seq(input, |v| {
            sent.insert(Msg(v));
        });
        let mut received = BTreeSet::new();
        read_delta_seq(input, |v| {
            received.insert(Msg(v));
        });
        ObserverState {
            sent,
            received,
            flag: Option::<SafetyFlag>::decode(input),
        }
    }
}

/// The WDL-safety observer automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WdlObserver;

impl Automaton for WdlObserver {
    type Action = DlAction;
    type State = ObserverState;

    fn start_states(&self) -> Vec<ObserverState> {
        vec![ObserverState::default()]
    }

    fn classify(&self, a: &DlAction) -> Option<ActionClass> {
        match a {
            DlAction::SendMsg(_) | DlAction::ReceiveMsg(_) => Some(ActionClass::Input),
            _ => None,
        }
    }

    fn successors(&self, s: &ObserverState, a: &DlAction) -> Vec<ObserverState> {
        let mut t = s.clone();
        match a {
            DlAction::SendMsg(m) => {
                t.sent.insert(*m);
            }
            DlAction::ReceiveMsg(m) => {
                if t.flag.is_none() {
                    if t.received.contains(m) {
                        t.flag = Some(SafetyFlag::Duplicate(*m));
                    } else if !t.sent.contains(m) {
                        t.flag = Some(SafetyFlag::Phantom(*m));
                    }
                }
                t.received.insert(*m);
            }
            _ => return vec![],
        }
        vec![t]
    }

    fn enabled_local(&self, _s: &ObserverState) -> Vec<DlAction> {
        vec![]
    }

    fn task_of(&self, _a: &DlAction) -> TaskId {
        TaskId(0)
    }

    fn task_count(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(actions: &[DlAction]) -> ObserverState {
        let o = WdlObserver;
        let mut s = o.start_states().remove(0);
        for a in actions {
            s = o.step_first(&s, a).unwrap();
        }
        s
    }

    #[test]
    fn clean_exchange_is_safe() {
        let s = drive(&[
            DlAction::SendMsg(Msg(1)),
            DlAction::ReceiveMsg(Msg(1)),
            DlAction::SendMsg(Msg(2)),
            DlAction::ReceiveMsg(Msg(2)),
        ]);
        assert!(s.is_safe());
        assert_eq!(s.sent.len(), 2);
        assert_eq!(s.received.len(), 2);
    }

    #[test]
    fn duplicate_delivery_flags_dl4() {
        let s = drive(&[
            DlAction::SendMsg(Msg(1)),
            DlAction::ReceiveMsg(Msg(1)),
            DlAction::ReceiveMsg(Msg(1)),
        ]);
        assert_eq!(s.flag, Some(SafetyFlag::Duplicate(Msg(1))));
    }

    #[test]
    fn phantom_delivery_flags_dl5() {
        let s = drive(&[DlAction::ReceiveMsg(Msg(9))]);
        assert_eq!(s.flag, Some(SafetyFlag::Phantom(Msg(9))));
    }

    #[test]
    fn first_flag_is_sticky() {
        let s = drive(&[
            DlAction::ReceiveMsg(Msg(9)),
            DlAction::SendMsg(Msg(1)),
            DlAction::ReceiveMsg(Msg(1)),
            DlAction::ReceiveMsg(Msg(1)),
        ]);
        assert_eq!(s.flag, Some(SafetyFlag::Phantom(Msg(9))));
    }

    #[test]
    fn other_actions_out_of_signature() {
        let o = WdlObserver;
        assert_eq!(o.classify(&DlAction::Wake(crate::action::Dir::TR)), None);
        assert!(o
            .successors(
                &ObserverState::default(),
                &DlAction::Wake(crate::action::Dir::TR)
            )
            .is_empty());
        assert!(o.enabled_local(&ObserverState::default()).is_empty());
    }
}
