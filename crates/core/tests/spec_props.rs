//! Property tests for the layer specifications: structural laws the
//! checkers must satisfy regardless of protocol behavior.

use proptest::prelude::*;

use dl_core::action::{Dir, DlAction, Msg, Packet, Station};
use dl_core::equivalence::{actions_equivalent, packets_equivalent, MsgRenaming};
use dl_core::spec::datalink::DlModule;
use dl_core::spec::physical::PlModule;
use dl_core::spec::wellformed::MediumTimeline;
use ioa::schedule_module::{ScheduleModule, TraceKind, Verdict};

/// Arbitrary data-link actions over small alphabets.
fn action_strategy() -> impl Strategy<Value = DlAction> {
    let msg = (0u64..4).prop_map(Msg);
    let pkt = (0u64..3, 0u64..4, any::<bool>()).prop_map(|(seq, m, data)| {
        if data {
            Packet::data(seq, Msg(m)).with_uid(seq * 10 + m)
        } else {
            Packet::ack(seq).with_uid(100 + seq)
        }
    });
    prop_oneof![
        msg.clone().prop_map(DlAction::SendMsg),
        msg.prop_map(DlAction::ReceiveMsg),
        (prop_oneof![Just(Dir::TR), Just(Dir::RT)], pkt.clone())
            .prop_map(|(d, p)| DlAction::SendPkt(d, p)),
        (prop_oneof![Just(Dir::TR), Just(Dir::RT)], pkt)
            .prop_map(|(d, p)| DlAction::ReceivePkt(d, p)),
        prop_oneof![Just(Dir::TR), Just(Dir::RT)].prop_map(DlAction::Wake),
        prop_oneof![Just(Dir::TR), Just(Dir::RT)].prop_map(DlAction::Fail),
        prop_oneof![Just(Station::T), Just(Station::R)].prop_map(DlAction::Crash),
    ]
}

fn trace_strategy() -> impl Strategy<Value = Vec<DlAction>> {
    prop::collection::vec(action_strategy(), 0..24)
}

proptest! {
    /// Safety verdicts are *prefix-monotone*: once a prefix is Violated,
    /// every extension is Violated too (on Prefix kind, where only safety
    /// is judged).
    #[test]
    fn dl_safety_is_prefix_monotone(trace in trace_strategy(), cut in any::<prop::sample::Index>()) {
        let cut = cut.index(trace.len() + 1);
        let prefix = &trace[..cut];
        for module in [DlModule::weak(), DlModule::full()] {
            if matches!(module.check(prefix, TraceKind::Prefix), Verdict::Violated(_)) {
                let full = module.check(&trace, TraceKind::Prefix);
                prop_assert!(
                    !matches!(full, Verdict::Satisfied),
                    "violated prefix but satisfied extension: {:?}", full
                );
            }
        }
    }

    /// Same for the physical modules.
    #[test]
    fn pl_safety_is_prefix_monotone(trace in trace_strategy(), cut in any::<prop::sample::Index>()) {
        let cut = cut.index(trace.len() + 1);
        let prefix = &trace[..cut];
        for module in [PlModule::pl(Dir::TR), PlModule::pl_fifo(Dir::TR)] {
            if matches!(module.check(prefix, TraceKind::Prefix), Verdict::Violated(_)) {
                let full = module.check(&trace, TraceKind::Prefix);
                prop_assert!(!matches!(full, Verdict::Satisfied));
            }
        }
    }

    /// The weak module allows everything the full module allows
    /// (scheds(DL) ⊆ scheds(WDL), §4).
    #[test]
    fn wdl_is_weaker_than_dl(trace in trace_strategy(), complete in any::<bool>()) {
        let kind = if complete { TraceKind::Complete } else { TraceKind::Prefix };
        if DlModule::full().check(&trace, kind).is_allowed() {
            prop_assert!(DlModule::weak().check(&trace, kind).is_allowed());
        }
    }

    /// PL allows everything PL-FIFO allows.
    #[test]
    fn pl_is_weaker_than_pl_fifo(trace in trace_strategy()) {
        if PlModule::pl_fifo(Dir::TR).check(&trace, TraceKind::Complete).is_allowed() {
            prop_assert!(PlModule::pl(Dir::TR).check(&trace, TraceKind::Complete).is_allowed());
        }
    }

    /// Verdicts only depend on the module's own actions: appending actions
    /// of the *other* direction never changes a PL verdict.
    #[test]
    fn pl_ignores_other_direction(trace in trace_strategy()) {
        let filtered: Vec<DlAction> = trace
            .iter()
            .filter(|a| match a {
                DlAction::SendPkt(d, _) | DlAction::ReceivePkt(d, _) => *d == Dir::TR,
                DlAction::Wake(d) | DlAction::Fail(d) => *d == Dir::TR,
                DlAction::Crash(x) => *x == Station::T,
                _ => false,
            })
            .copied()
            .collect();
        let a = PlModule::pl(Dir::TR).check(&trace, TraceKind::Complete);
        let b = PlModule::pl(Dir::TR).check(&filtered, TraceKind::Complete);
        // Event indices shift under filtering; the verdict kind and the
        // violated property must agree.
        let kind = |v: &Verdict| match v {
            Verdict::Satisfied => ("satisfied", ""),
            Verdict::Vacuous(x) => ("vacuous", x.property),
            Verdict::Violated(x) => ("violated", x.property),
        };
        prop_assert_eq!(kind(&a), kind(&b));
    }

    /// Well-formedness scanning agrees with a simple reference
    /// implementation driven by a three-state machine.
    #[test]
    fn wellformedness_reference(trace in trace_strategy()) {
        let tl = MediumTimeline::scan(&trace, Dir::TR);
        // Reference: walk with "medium up" flag, crash resets it.
        let mut up = false;
        let mut ok = true;
        for a in &trace {
            match a {
                DlAction::Wake(Dir::TR) => {
                    if up { ok = false; break; }
                    up = true;
                }
                DlAction::Fail(Dir::TR) => {
                    if !up { ok = false; break; }
                    up = false;
                }
                DlAction::Crash(Station::T) => up = false,
                _ => {}
            }
        }
        prop_assert_eq!(tl.is_well_formed(), ok);
    }

    /// Action equivalence is reflexive and symmetric on random actions,
    /// and respects packet-class structure.
    #[test]
    fn equivalence_laws(a in action_strategy(), b in action_strategy()) {
        prop_assert!(actions_equivalent(&a, &a));
        prop_assert_eq!(actions_equivalent(&a, &b), actions_equivalent(&b, &a));
    }

    /// Renaming preserves equivalence: a ≡ ρ(a) for every action and
    /// renaming (all messages are equivalent).
    #[test]
    fn renaming_stays_in_class(a in action_strategy(), from in 0u64..4, to in 100u64..104) {
        let mut rho = MsgRenaming::identity();
        rho.insert(Msg(from), Msg(to)).unwrap();
        let b = rho.apply_action(&a);
        prop_assert!(actions_equivalent(&a, &b));
        // And packet classes are preserved exactly.
        if let (Some(p), Some(q)) = (a.packet(), b.packet()) {
            prop_assert!(packets_equivalent(p, q));
        }
    }

    /// Inverse renamings cancel.
    #[test]
    fn inverse_renaming_cancels(a in action_strategy()) {
        let mut rho = MsgRenaming::identity();
        rho.insert(Msg(0), Msg(100)).unwrap();
        rho.insert(Msg(1), Msg(0)).unwrap();
        let back = rho.inverse().apply_action(&rho.apply_action(&a));
        prop_assert_eq!(back, a);
    }
}
