//! Differential tests: the streaming [`TraceMonitor`] and the
//! monitor-backed batch checkers against the frozen quadratic reference
//! implementation in `dl_core::spec::reference`.
//!
//! Three trace populations drive the comparison:
//!
//! * purely random action soup (adversarial: malformed wake/fail
//!   alternation, receives of unsent packets, duplicate uids, crashes);
//! * structured traces from a legality-biased builder (wake/fail cycles,
//!   FIFO-matched packet and message traffic — the deep, mostly
//!   well-formed paths batch checkers see in practice);
//! * structured traces with a random adversarial suffix spliced on.
//!
//! Every population must produce *identical* verdicts — including
//! violation payloads (property, index, reason) — between the streaming
//! and reference code paths, on the full trace and on every prefix.

use std::time::Instant;

use proptest::prelude::*;

use dl_core::action::{Dir, DlAction, Msg, Packet, Station};
use dl_core::spec::monitor::TraceMonitor;
use dl_core::spec::reference;
use dl_core::spec::wellformed::MediumTimeline;
use dl_core::spec::{datalink, physical};
use dl_core::spec::{datalink::DlModule, physical::PlModule};
use ioa::schedule_module::{ScheduleModule, TraceKind, Verdict};

// ---------------------------------------------------------------------
// Trace generators.
// ---------------------------------------------------------------------

/// Arbitrary data-link actions over small alphabets (the adversarial
/// population; same shape as `spec_props.rs`).
fn action_strategy() -> impl Strategy<Value = DlAction> {
    let msg = (0u64..4).prop_map(Msg);
    let pkt = (0u64..3, 0u64..4, any::<bool>()).prop_map(|(seq, m, data)| {
        if data {
            Packet::data(seq, Msg(m)).with_uid(seq * 10 + m)
        } else {
            Packet::ack(seq).with_uid(100 + seq)
        }
    });
    prop_oneof![
        msg.clone().prop_map(DlAction::SendMsg),
        msg.prop_map(DlAction::ReceiveMsg),
        (prop_oneof![Just(Dir::TR), Just(Dir::RT)], pkt.clone())
            .prop_map(|(d, p)| DlAction::SendPkt(d, p)),
        (prop_oneof![Just(Dir::TR), Just(Dir::RT)], pkt)
            .prop_map(|(d, p)| DlAction::ReceivePkt(d, p)),
        prop_oneof![Just(Dir::TR), Just(Dir::RT)].prop_map(DlAction::Wake),
        prop_oneof![Just(Dir::TR), Just(Dir::RT)].prop_map(DlAction::Fail),
        prop_oneof![Just(Station::T), Just(Station::R)].prop_map(DlAction::Crash),
    ]
}

fn dir_index(d: Dir) -> usize {
    match d {
        Dir::TR => 0,
        Dir::RT => 1,
    }
}

/// Expands a byte string of choices into a legality-biased trace:
/// packet traffic only on up media and received in FIFO order, messages
/// delivered in send order, wake/fail strictly alternating, occasional
/// crashes. Shared (by construction, not linkage) with the
/// `checker_scaling` bench.
fn structured_trace(choices: &[u8]) -> Vec<DlAction> {
    let mut out = vec![DlAction::Wake(Dir::TR), DlAction::Wake(Dir::RT)];
    let mut up = [true, true];
    let mut pending: [Vec<Packet>; 2] = [Vec::new(), Vec::new()];
    let mut undelivered: Vec<Msg> = Vec::new();
    let mut next_msg = 0u64;
    let mut uid = 0u64;
    for &c in choices {
        let d = if c & 1 == 0 { Dir::TR } else { Dir::RT };
        let di = dir_index(d);
        match (c >> 1) % 6 {
            0 => {
                out.push(DlAction::SendMsg(Msg(next_msg)));
                undelivered.push(Msg(next_msg));
                next_msg += 1;
            }
            1 => {
                if !undelivered.is_empty() {
                    out.push(DlAction::ReceiveMsg(undelivered.remove(0)));
                }
            }
            2 => {
                if up[di] {
                    uid += 1;
                    let p = Packet::data(uid % 5, Msg(uid % 7)).with_uid(uid);
                    pending[di].push(p);
                    out.push(DlAction::SendPkt(d, p));
                }
            }
            3 => {
                if up[di] && !pending[di].is_empty() {
                    out.push(DlAction::ReceivePkt(d, pending[di].remove(0)));
                }
            }
            4 => {
                if up[di] {
                    out.push(DlAction::Fail(d));
                } else {
                    out.push(DlAction::Wake(d));
                }
                up[di] = !up[di];
            }
            _ => {
                // Rare crash: downs the station's outgoing medium.
                if c.is_multiple_of(31) {
                    let s = if d == Dir::TR { Station::T } else { Station::R };
                    out.push(DlAction::Crash(s));
                    up[di] = false;
                }
            }
        }
    }
    out
}

/// Structured traces, optionally with an adversarial random suffix.
fn mixed_trace_strategy() -> impl Strategy<Value = Vec<DlAction>> {
    (
        prop::collection::vec(any::<u8>(), 0..48),
        prop::collection::vec(action_strategy(), 0..8),
    )
        .prop_map(|(choices, suffix)| {
            let mut t = structured_trace(&choices);
            t.extend(suffix);
            t
        })
}

fn random_trace_strategy() -> impl Strategy<Value = Vec<DlAction>> {
    prop::collection::vec(action_strategy(), 0..24)
}

/// Either population, so one proptest covers both.
fn any_trace_strategy() -> impl Strategy<Value = Vec<DlAction>> {
    prop_oneof![random_trace_strategy(), mixed_trace_strategy()]
}

/// Deterministic xorshift-driven structured trace of at least `n`
/// actions, for the scaling smoke test (and mirrored in the bench). The
/// builder drops infeasible choices, so choices are over-provisioned
/// until the trace is long enough.
fn synthetic_trace(n: usize, seed: u64) -> Vec<DlAction> {
    let mut budget = n + n / 2;
    loop {
        let mut s = seed;
        let mut choices = Vec::with_capacity(budget);
        while choices.len() < budget {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            choices.push((s >> 24) as u8);
        }
        let trace = structured_trace(&choices);
        if trace.len() >= n {
            return trace;
        }
        budget *= 2;
    }
}

// ---------------------------------------------------------------------
// Differential properties.
// ---------------------------------------------------------------------

proptest! {
    /// The monitor-backed `PlModule` equals the quadratic reference —
    /// verdict kind *and* violation payload — on both directions and
    /// both FIFO settings.
    #[test]
    fn pl_module_matches_reference(trace in any_trace_strategy()) {
        for dir in [Dir::TR, Dir::RT] {
            for fifo in [false, true] {
                let module = if fifo { PlModule::pl_fifo(dir) } else { PlModule::pl(dir) };
                let streaming = module.check(&trace, TraceKind::Complete);
                let oracle = reference::pl_check(&trace, dir, fifo);
                prop_assert_eq!(streaming, oracle, "dir {:?} fifo {}", dir, fifo);
            }
        }
    }

    /// The monitor-backed `DlModule` equals the reference on both
    /// strengths and both trace kinds.
    #[test]
    fn dl_module_matches_reference(trace in any_trace_strategy()) {
        for weak in [false, true] {
            let module = if weak { DlModule::weak() } else { DlModule::full() };
            for kind in [TraceKind::Prefix, TraceKind::Complete] {
                let streaming = module.check(&trace, kind);
                let oracle = reference::dl_check(&trace, weak, kind);
                prop_assert_eq!(streaming, oracle, "weak {} kind {:?}", weak, kind);
            }
        }
    }

    /// The standalone checker functions equal their reference twins,
    /// including the multiset `in_transit`.
    #[test]
    fn standalone_checkers_match_reference(trace in any_trace_strategy()) {
        for dir in [Dir::TR, Dir::RT] {
            let tl = MediumTimeline::scan(&trace, dir);
            prop_assert_eq!(physical::check_pl1(&trace, &tl, dir), reference::check_pl1(&trace, &tl, dir));
            prop_assert_eq!(physical::check_pl2(&trace, dir), reference::check_pl2(&trace, dir));
            prop_assert_eq!(physical::check_pl3(&trace, dir), reference::check_pl3(&trace, dir));
            prop_assert_eq!(physical::check_pl4(&trace, dir), reference::check_pl4(&trace, dir));
            prop_assert_eq!(physical::check_pl5(&trace, dir), reference::check_pl5(&trace, dir));
            prop_assert_eq!(physical::in_transit(&trace, dir), reference::in_transit(&trace, dir));
        }
        let tx = MediumTimeline::scan(&trace, Dir::TR);
        prop_assert_eq!(datalink::check_dl2(&trace, &tx), reference::check_dl2(&trace, &tx));
        prop_assert_eq!(datalink::check_dl3(&trace), reference::check_dl3(&trace));
        prop_assert_eq!(datalink::check_dl4(&trace), reference::check_dl4(&trace));
        prop_assert_eq!(datalink::check_dl5(&trace), reference::check_dl5(&trace));
        prop_assert_eq!(datalink::check_dl6(&trace), reference::check_dl6(&trace));
        prop_assert_eq!(datalink::check_dl8(&trace, &tx), reference::check_dl8(&trace, &tx));
        // DL7's interval grouping matches the reference on well-formed
        // transmitter timelines; on malformed ones the module verdict is
        // vacuous before DL7 is consulted, and the standalone function
        // is documented best-effort.
        if tx.is_well_formed() {
            prop_assert_eq!(datalink::check_dl7(&trace), reference::check_dl7(&trace, &tx));
        }
    }

    /// One incrementally-fed monitor reproduces the reference verdicts
    /// at *every* prefix — the tentpole guarantee that batch-on-prefix
    /// and streaming are the same judgement.
    #[test]
    fn incremental_monitor_matches_reference_on_every_prefix(trace in any_trace_strategy()) {
        let mut mon = TraceMonitor::new();
        for (i, a) in trace.iter().enumerate() {
            mon.observe(a);
            let prefix = &trace[..=i];
            for dir in [Dir::TR, Dir::RT] {
                for fifo in [false, true] {
                    prop_assert_eq!(
                        mon.pl_verdict(dir, fifo),
                        reference::pl_check(prefix, dir, fifo),
                        "prefix {} dir {:?} fifo {}", i, dir, fifo
                    );
                }
            }
            for weak in [false, true] {
                for kind in [TraceKind::Prefix, TraceKind::Complete] {
                    prop_assert_eq!(
                        mon.dl_verdict(weak, kind),
                        reference::dl_check(prefix, weak, kind),
                        "prefix {} weak {} kind {:?}", i, weak, kind
                    );
                }
            }
        }
    }

    /// When the online filter fires mid-trace, the violation it hands
    /// back is exactly the `Violated` payload some batch module reports
    /// on that prefix — or, for DL conclusions, the batch verdict is at
    /// worst `Vacuous(DL1)` (the one end-of-trace hypothesis the online
    /// filter deliberately ignores, since a later wake restores it while
    /// the violation persists).
    #[test]
    fn online_violation_agrees_with_some_batch_module(
        trace in any_trace_strategy(),
        full_dl in any::<bool>(),
        fifo in any::<bool>(),
    ) {
        let mut mon = TraceMonitor::new();
        for (i, a) in trace.iter().enumerate() {
            mon.observe(a);
            let Some(v) = mon.online_violation(full_dl, fifo) else { continue };
            let v = v.clone();
            let prefix = &trace[..=i];
            let mut matched = false;
            for dir in [Dir::TR, Dir::RT] {
                let module = if fifo { PlModule::pl_fifo(dir) } else { PlModule::pl(dir) };
                if let Verdict::Violated(x) = module.check(prefix, TraceKind::Prefix) {
                    matched |= x == v;
                }
            }
            let dl_module = if full_dl { DlModule::full() } else { DlModule::weak() };
            match dl_module.check(prefix, TraceKind::Prefix) {
                Verdict::Violated(x) => matched |= x == v,
                Verdict::Vacuous(x) => matched |= x.property == "DL1",
                Verdict::Satisfied => {}
            }
            prop_assert!(matched, "online {:?} unexplained by batch at prefix {}", v, i);
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Scaling smoke: linear growth guard for `scripts/check.sh`.
// ---------------------------------------------------------------------

/// One full monitor pass (all verdict families) over a 10⁵-action
/// structured trace must be fast — the quadratic legacy checkers took
/// seconds-to-minutes here. The bound is deliberately loose (CI noise,
/// debug builds); a quadratic regression overshoots it by orders of
/// magnitude.
#[test]
fn scaling_smoke() {
    let trace = synthetic_trace(100_000, 0x5eed);
    assert!(trace.len() >= 100_000, "builder emitted {}", trace.len());
    let t0 = Instant::now();
    let mon = TraceMonitor::scan(&trace);
    let mut verdicts = Vec::new();
    for dir in [Dir::TR, Dir::RT] {
        for fifo in [false, true] {
            verdicts.push(mon.pl_verdict(dir, fifo));
        }
    }
    for weak in [false, true] {
        for kind in [TraceKind::Prefix, TraceKind::Complete] {
            verdicts.push(mon.dl_verdict(weak, kind));
        }
    }
    let elapsed = t0.elapsed();
    assert_eq!(verdicts.len(), 8);
    assert!(
        elapsed.as_secs_f64() < 10.0,
        "streaming pass over {} actions took {elapsed:?} — linear checkers regressed",
        trace.len()
    );
}
