//! The parameterized fault-injection channel: the fuzzer's configurable
//! adversarial medium.
//!
//! [`LossyFifoChannel`](crate::simulated::LossyFifoChannel) and friends
//! each hard-code one failure mode. [`FaultyChannel`] instead exposes a
//! knob block ([`FaultSpec`]) covering the failure modes a schedule fuzzer
//! wants to sweep — uniform loss, duplication, bounded reordering, and
//! Gilbert–Elliott burst windows — while staying **fully deterministic**:
//! every per-send fault decision is a pure hash of `(salt, send counter)`,
//! both of which live in the automaton's state or the channel's immutable
//! configuration. Two runs over the same channel with the same scheduler
//! seed produce byte-identical traces, which is what makes fuzzer
//! counterexamples replayable from a `(seed, genome)` pair alone.
//!
//! Spec posture:
//!
//! * loss and burst windows stay within `PL-FIFO` (losing packets is what
//!   physical channels do);
//! * a reorder window `w > 1` stays within `PL` but violates `PL-FIFO`
//!   when a reordering actually happens;
//! * **duplication deliberately steps outside `PL`**: the duplicate copy
//!   carries the same analysis uid, so delivering both violates PL3
//!   ("every packet received at most once"). That is the point — it
//!   models a misbehaving medium. Judge such runs with data-link-only
//!   monitoring (`TraceMonitor::online_dl_violation`); the DL
//!   hypotheses (well-formedness, DL1–DL3) are unaffected by PL
//!   violations, so protocol-level verdicts remain meaningful.

use std::ops::ControlFlow;

use ioa::action::ActionClass;
use ioa::automaton::{Automaton, TaskId};

use dl_core::action::{Dir, DlAction, Header, Msg, Packet, Tag};
use dl_core::protocol::channel_classify;

use crate::simulated::FlightState;

/// Deterministic splitmix64-style mix of the fault salt and a send index.
fn mix(salt: u64, n: u64) -> u64 {
    let mut z = salt
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(n.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fault-injection knobs for one [`FaultyChannel`].
///
/// Rates are expressed per-256 (`loss = 64` ≈ 25% of sends dropped) so the
/// whole block is `Copy + Eq + Hash` and can live inside fuzzer genomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// Per-256 probability that a send is dropped.
    pub loss: u8,
    /// Per-256 probability that a *kept* send is enqueued twice (same
    /// analysis uid — violates PL3 by design; see the module docs).
    pub dup: u8,
    /// Delivery window: the first `max(reorder, 1)` in-flight packets are
    /// eligible for delivery. `0`/`1` is FIFO; larger windows allow
    /// bounded reordering (solves `PL` but not `PL-FIFO`).
    pub reorder: u8,
    /// Length of the loss-free stretch of the burst cycle, in sends.
    /// Burst windows are disabled while [`FaultSpec::burst_bad`] is 0.
    pub burst_good: u16,
    /// Length of the drop-everything stretch of the burst cycle, in sends.
    pub burst_bad: u16,
    /// Decorrelates the per-send fault decisions of different channels
    /// (and of different fuzzer genomes).
    pub salt: u64,
}

impl FaultSpec {
    /// A fault-free specification: perfect FIFO delivery.
    #[must_use]
    pub fn none() -> Self {
        FaultSpec {
            loss: 0,
            dup: 0,
            reorder: 0,
            burst_good: 0,
            burst_bad: 0,
            salt: 0,
        }
    }

    /// The effective delivery window (at least 1).
    #[must_use]
    pub fn window(&self) -> usize {
        self.reorder.max(1) as usize
    }

    /// `true` if the channel stays within `PL` (no duplication).
    #[must_use]
    pub fn respects_pl(&self) -> bool {
        self.dup == 0
    }

    /// `true` if the channel stays within `PL-FIFO` (no duplication and
    /// no reordering).
    #[must_use]
    pub fn respects_fifo(&self) -> bool {
        self.respects_pl() && self.window() == 1
    }

    /// `true` if send number `n` (0-based) falls in a burst-loss stretch.
    #[must_use]
    pub fn in_bad_burst(&self, n: u64) -> bool {
        if self.burst_bad == 0 || self.burst_good == 0 {
            return false;
        }
        let cycle = u64::from(self.burst_good) + u64::from(self.burst_bad);
        n % cycle >= u64::from(self.burst_good)
    }

    /// Derives the per-session variant of this specification: the same
    /// knobs, with the salt replaced by a documented pure function of
    /// `(self.salt, salt, session_id)`.
    ///
    /// This is the one sanctioned way to fan a single fleet seed out into
    /// decorrelated per-session fault streams — `dl-fleet` calls it once
    /// per channel with `salt` set to the fleet seed and `session_id` set
    /// to `2·id` (`t→r`) or `2·id + 1` (`r→t`), so a whole fleet is
    /// replayable from `(fleet seed, fleet spec)` with no ad-hoc hashing
    /// at call sites. Deriving is stable (same inputs, same spec),
    /// injective in practice over the avalanche mix, and keeps the base
    /// spec's own salt in the mix so two template specs that differ only
    /// by salt stay decorrelated after derivation.
    #[must_use]
    pub fn derive(&self, salt: u64, session_id: u64) -> FaultSpec {
        FaultSpec {
            salt: mix(mix(salt, self.salt), session_id),
            ..*self
        }
    }

    /// The deterministic fate of send number `n`: `(dropped, duplicated)`.
    #[must_use]
    pub fn fate(&self, n: u64) -> (bool, bool) {
        let h = mix(self.salt, n);
        let dropped = self.in_bad_burst(n) || (h & 0xFF) < u64::from(self.loss);
        let duplicated = !dropped && ((h >> 8) & 0xFF) < u64::from(self.dup);
        (dropped, duplicated)
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

/// A deterministic preload of *ghost packets*: the channel half of the
/// corrupted-configuration fault class (arXiv 1011.3632). A corrupted
/// configuration may place arbitrary packets in flight before the run
/// starts; `GhostSpec` generates them as a pure function of `(seed, i)`,
/// so a corrupted start is replayable from the spec alone — the same
/// posture as [`FaultSpec::fate`] for in-run faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GhostSpec {
    /// How many ghost packets to preload (in generation order).
    pub count: u8,
    /// Decorrelates ghost streams across channels and genomes.
    pub seed: u64,
}

impl GhostSpec {
    /// No ghosts: the honest empty-channel start.
    #[must_use]
    pub fn none() -> Self {
        GhostSpec { count: 0, seed: 0 }
    }

    /// `true` when no ghosts are preloaded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `i`-th ghost packet: tag, sequence number, and payload message
    /// are all drawn from the avalanche mix of `(seed, i)`; the uid is
    /// `u64::MAX - 1 - i`, far above any uid a run-stamping monitor
    /// assigns (and distinct from [`Packet::UNSTAMPED`]), so ghosts never
    /// collide with genuine traffic in uid-keyed analyses.
    #[must_use]
    pub fn packet(&self, i: u8) -> Packet {
        let h = mix(self.seed, u64::from(i));
        let tag = match h & 3 {
            0 => Tag::Data,
            1 => Tag::Ack,
            2 => Tag::Init,
            _ => Tag::InitAck,
        };
        let payload = (tag == Tag::Data).then_some(Msg((h >> 4) & 3));
        Packet {
            uid: u64::MAX - 1 - u64::from(i),
            header: Header {
                tag,
                seq: (h >> 2) & 3,
            },
            payload,
        }
    }
}

impl Default for GhostSpec {
    fn default() -> Self {
        GhostSpec::none()
    }
}

/// A deterministic fault-injecting channel parameterized by [`FaultSpec`].
///
/// State is the shared [`FlightState`] (in-flight packets + send counter);
/// every transition has exactly one successor, so the channel adds no
/// nondeterminism of its own — all schedule variation comes from the
/// executor, all fault variation from the spec. That keeps composed runs
/// reproducible from the runner seed and the spec alone.
///
/// An optional [`GhostSpec`] preloads the start state with in-flight ghost
/// packets, modeling the channel part of a corrupted configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultyChannel {
    dir: Dir,
    spec: FaultSpec,
    ghosts: GhostSpec,
}

impl FaultyChannel {
    /// A channel in `dir` with the given fault knobs and no ghosts.
    #[must_use]
    pub fn new(dir: Dir, spec: FaultSpec) -> Self {
        FaultyChannel {
            dir,
            spec,
            ghosts: GhostSpec::none(),
        }
    }

    /// The same channel starting from a corrupted configuration: `ghosts`
    /// are already in flight when the run begins.
    #[must_use]
    pub fn with_ghosts(mut self, ghosts: GhostSpec) -> Self {
        self.ghosts = ghosts;
        self
    }

    /// This channel's ghost preload.
    #[must_use]
    pub fn ghosts(&self) -> GhostSpec {
        self.ghosts
    }

    /// A fault-free (perfect FIFO) channel.
    #[must_use]
    pub fn perfect(dir: Dir) -> Self {
        FaultyChannel::new(dir, FaultSpec::none())
    }

    /// This channel's direction.
    #[must_use]
    pub fn dir(&self) -> Dir {
        self.dir
    }

    /// This channel's fault knobs.
    #[must_use]
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }
}

impl FaultyChannel {
    /// Deterministic transition function: the unique post-state of `a`
    /// from `s`, or `None` when `a` is not enabled.
    fn next(&self, s: &FlightState, a: &DlAction) -> Option<FlightState> {
        match a {
            DlAction::SendPkt(d, p) if *d == self.dir => {
                let (dropped, duplicated) = self.spec.fate(s.sends);
                let mut t = s.clone();
                t.sends += 1;
                if !dropped {
                    t.in_flight.push(*p);
                    if duplicated {
                        t.in_flight.push(*p);
                    }
                }
                Some(t)
            }
            DlAction::ReceivePkt(d, p) if *d == self.dir => {
                let window = self.spec.window().min(s.in_flight.len());
                match s.in_flight[..window].iter().position(|q| q == p) {
                    Some(k) => {
                        let mut t = s.clone();
                        t.in_flight.remove(k);
                        Some(t)
                    }
                    None => None,
                }
            }
            DlAction::Wake(d) | DlAction::Fail(d) if *d == self.dir => Some(s.clone()),
            DlAction::Crash(x) if *x == self.dir.sender() => Some(s.clone()),
            _ => None,
        }
    }
}

impl Automaton for FaultyChannel {
    type Action = DlAction;
    type State = FlightState;

    fn start_states(&self) -> Vec<FlightState> {
        let mut s = FlightState::default();
        for i in 0..self.ghosts.count {
            s.in_flight.push(self.ghosts.packet(i));
        }
        vec![s]
    }

    fn classify(&self, a: &DlAction) -> Option<ActionClass> {
        channel_classify(self.dir, a)
    }

    fn successors(&self, s: &FlightState, a: &DlAction) -> Vec<FlightState> {
        self.next(s, a).into_iter().collect()
    }

    fn try_for_each_successor(
        &self,
        s: &FlightState,
        a: &DlAction,
        f: &mut dyn FnMut(FlightState) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        match self.next(s, a) {
            Some(t) => f(t),
            None => ControlFlow::Continue(()),
        }
    }

    fn step_first(&self, s: &FlightState, a: &DlAction) -> Option<FlightState> {
        self.next(s, a)
    }

    fn enabled_local(&self, s: &FlightState) -> Vec<DlAction> {
        let window = self.spec.window().min(s.in_flight.len());
        let mut out = Vec::with_capacity(window);
        for p in &s.in_flight[..window] {
            let a = DlAction::ReceivePkt(self.dir, *p);
            if !out.contains(&a) {
                out.push(a);
            }
        }
        out
    }

    fn for_each_enabled_local(
        &self,
        s: &FlightState,
        f: &mut dyn FnMut(DlAction) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        // Same first-occurrence dedup as `enabled_local`, without the
        // scratch Vec: windows are tiny (≤ 255), the quadratic scan is
        // cheaper than an allocation.
        let window = self.spec.window().min(s.in_flight.len());
        let eligible = &s.in_flight[..window];
        for (i, p) in eligible.iter().enumerate() {
            if eligible[..i].iter().any(|q| q == p) {
                continue;
            }
            f(DlAction::ReceivePkt(self.dir, *p))?;
        }
        ControlFlow::Continue(())
    }

    fn task_of(&self, _a: &DlAction) -> TaskId {
        TaskId(0)
    }

    fn task_count(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_core::action::{Msg, Packet};

    fn pkt(n: u64) -> Packet {
        Packet::data(n, Msg(n)).with_uid(n + 100)
    }

    fn feed(ch: &FaultyChannel, n: u64) -> FlightState {
        let mut s = ch.start_states().remove(0);
        for i in 0..n {
            s = ch
                .step_first(&s, &DlAction::SendPkt(ch.dir(), pkt(i)))
                .unwrap();
        }
        s
    }

    #[test]
    fn fault_free_spec_is_perfect_fifo() {
        let ch = FaultyChannel::perfect(Dir::TR);
        assert!(ch.spec().respects_fifo());
        let s = feed(&ch, 4);
        assert_eq!(s.in_flight.len(), 4);
        // Only the head is deliverable.
        assert_eq!(
            ch.enabled_local(&s),
            vec![DlAction::ReceivePkt(Dir::TR, pkt(0))]
        );
        assert!(ch
            .successors(&s, &DlAction::ReceivePkt(Dir::TR, pkt(1)))
            .is_empty());
    }

    #[test]
    fn fault_decisions_are_deterministic_and_salted() {
        let spec = FaultSpec {
            loss: 128,
            dup: 64,
            salt: 7,
            ..FaultSpec::none()
        };
        for n in 0..64 {
            assert_eq!(spec.fate(n), spec.fate(n));
        }
        let resalted = FaultSpec { salt: 8, ..spec };
        let differs = (0..64).any(|n| spec.fate(n) != resalted.fate(n));
        assert!(differs, "salt must decorrelate fault streams");
        // Roughly half the sends dropped at loss = 128.
        let drops = (0..256).filter(|&n| spec.fate(n).0).count();
        assert!((64..192).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn derive_is_a_pure_decorrelating_function_of_its_inputs() {
        let base = FaultSpec {
            loss: 64,
            dup: 16,
            reorder: 2,
            burst_good: 8,
            burst_bad: 2,
            salt: 3,
        };
        // Stable: same (base, salt, session) → same spec.
        assert_eq!(base.derive(9, 41), base.derive(9, 41));
        // Only the salt moves; every knob survives derivation.
        let d = base.derive(9, 41);
        assert_eq!(
            (d.loss, d.dup, d.reorder, d.burst_good, d.burst_bad),
            (
                base.loss,
                base.dup,
                base.reorder,
                base.burst_good,
                base.burst_bad
            )
        );
        // Decorrelated along every argument: fleet seed, session id, and
        // the template's own salt all separate the derived streams.
        assert_ne!(base.derive(9, 41).salt, base.derive(10, 41).salt);
        assert_ne!(base.derive(9, 41).salt, base.derive(9, 42).salt);
        let resalted = FaultSpec { salt: 4, ..base };
        assert_ne!(base.derive(9, 41).salt, resalted.derive(9, 41).salt);
        // Neighboring sessions draw visibly different fault streams.
        let a = base.derive(9, 0);
        let b = base.derive(9, 1);
        assert!((0..64).any(|n| a.fate(n) != b.fate(n)));
    }

    #[test]
    fn loss_drops_the_decided_sends() {
        let spec = FaultSpec {
            loss: 128,
            salt: 3,
            ..FaultSpec::none()
        };
        let ch = FaultyChannel::new(Dir::TR, spec);
        let s = feed(&ch, 32);
        let expected: Vec<u64> = (0..32).filter(|&n| !spec.fate(n).0).collect();
        let kept: Vec<u64> = s.in_flight.iter().map(|p| p.header.seq).collect();
        assert_eq!(kept, expected);
        assert_eq!(s.sends, 32);
    }

    #[test]
    fn duplication_enqueues_the_same_uid_twice() {
        let spec = FaultSpec {
            dup: 255,
            ..FaultSpec::none()
        };
        assert!(!spec.respects_pl());
        let ch = FaultyChannel::new(Dir::TR, spec);
        let s = feed(&ch, 1);
        assert_eq!(s.in_flight, vec![pkt(0), pkt(0)]);
        // Both copies delivered, one at a time, via the same action.
        let a = DlAction::ReceivePkt(Dir::TR, pkt(0));
        assert_eq!(ch.enabled_local(&s), vec![a]);
        let s = ch.step_first(&s, &a).unwrap();
        assert_eq!(s.in_flight, vec![pkt(0)]);
        let s = ch.step_first(&s, &a).unwrap();
        assert!(s.in_flight.is_empty());
    }

    #[test]
    fn reorder_window_bounds_delivery_choice() {
        let spec = FaultSpec {
            reorder: 2,
            ..FaultSpec::none()
        };
        assert!(spec.respects_pl() && !spec.respects_fifo());
        let ch = FaultyChannel::new(Dir::TR, spec);
        let s = feed(&ch, 3);
        // Packets 0 and 1 are eligible; 2 is beyond the window.
        assert_eq!(
            ch.enabled_local(&s),
            vec![
                DlAction::ReceivePkt(Dir::TR, pkt(0)),
                DlAction::ReceivePkt(Dir::TR, pkt(1)),
            ]
        );
        assert!(ch
            .successors(&s, &DlAction::ReceivePkt(Dir::TR, pkt(2)))
            .is_empty());
        // Delivering 1 first is a genuine reordering.
        let s = ch
            .step_first(&s, &DlAction::ReceivePkt(Dir::TR, pkt(1)))
            .unwrap();
        assert_eq!(s.in_flight, vec![pkt(0), pkt(2)]);
    }

    #[test]
    fn burst_windows_drop_in_stretches() {
        let spec = FaultSpec {
            burst_good: 2,
            burst_bad: 2,
            ..FaultSpec::none()
        };
        let ch = FaultyChannel::new(Dir::TR, spec);
        let s = feed(&ch, 8);
        // Cycle of 4: sends 0,1 kept; 2,3 dropped; 4,5 kept; 6,7 dropped.
        let kept: Vec<u64> = s.in_flight.iter().map(|p| p.header.seq).collect();
        assert_eq!(kept, vec![0, 1, 4, 5]);
    }

    #[test]
    fn burst_disabled_when_bad_is_zero() {
        let spec = FaultSpec {
            burst_good: 3,
            burst_bad: 0,
            ..FaultSpec::none()
        };
        assert!((0..32).all(|n| !spec.in_bad_burst(n)));
        assert!(spec.respects_fifo());
    }

    #[test]
    fn status_actions_are_noops() {
        let ch = FaultyChannel::perfect(Dir::RT);
        let s = ch.start_states().remove(0);
        assert_eq!(ch.successors(&s, &DlAction::Wake(Dir::RT)), vec![s.clone()]);
        assert_eq!(
            ch.successors(&s, &DlAction::Crash(dl_core::action::Station::R)),
            vec![s.clone()]
        );
        assert!(ch.successors(&s, &DlAction::Wake(Dir::TR)).is_empty());
        assert_eq!(ch.dir(), Dir::RT);
    }

    #[test]
    fn ghost_preload_models_a_corrupted_configuration() {
        let ghosts = GhostSpec { count: 3, seed: 9 };
        let ch = FaultyChannel::perfect(Dir::TR).with_ghosts(ghosts);
        let s = ch.start_states().remove(0);
        // Deterministic, replayable from the spec alone.
        assert_eq!(s, ch.start_states().remove(0));
        assert_eq!(s.in_flight.len(), 3);
        assert_eq!(s.sends, 0);
        // Ghost uids sit in their reserved band, away from UNSTAMPED.
        for p in &s.in_flight {
            assert!(p.uid >= u64::MAX - 3 && p.uid != Packet::UNSTAMPED);
        }
        // Seeds decorrelate ghost streams.
        let other = FaultyChannel::perfect(Dir::TR).with_ghosts(GhostSpec { count: 3, seed: 10 });
        assert_ne!(other.start_states(), ch.start_states());
        // No ghosts ≡ the honest start.
        assert_eq!(
            FaultyChannel::perfect(Dir::TR)
                .with_ghosts(GhostSpec::none())
                .start_states(),
            FaultyChannel::perfect(Dir::TR).start_states()
        );
        // Ghosts are genuine in-flight packets: the head is deliverable.
        let head = s.in_flight[0];
        let t = ch
            .step_first(&s, &DlAction::ReceivePkt(Dir::TR, head))
            .expect("ghost head deliverable");
        assert_eq!(t.in_flight.len(), 2);
    }

    #[test]
    fn transitions_are_deterministic() {
        let spec = FaultSpec {
            loss: 64,
            dup: 64,
            reorder: 3,
            burst_good: 4,
            burst_bad: 2,
            salt: 11,
        };
        let ch = FaultyChannel::new(Dir::TR, spec);
        let mut s = ch.start_states().remove(0);
        for i in 0..16 {
            let succs = ch.successors(&s, &DlAction::SendPkt(Dir::TR, pkt(i)));
            assert_eq!(succs.len(), 1, "send transitions must be deterministic");
            s = succs.into_iter().next().unwrap();
        }
    }
}
