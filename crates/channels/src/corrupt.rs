//! The corrupted-initial-configuration channel: bounded capacity,
//! non-FIFO delivery, and **arbitrary initial contents**.
//!
//! [`FaultyChannel`](crate::faulty::FaultyChannel) models a misbehaving
//! medium that starts empty. [`CorruptChannel`] models the strictly
//! richer fault class of the self-stabilization literature (arXiv
//! 1011.3632): at time zero the channel already holds up to `capacity`
//! arbitrary "ghost" packets — debris of a corrupted initial
//! configuration — and delivery is non-FIFO over the *whole* in-flight
//! multiset. Three properties are load-bearing for the stabilizing
//! protocol's counting argument and are guaranteed here by construction:
//!
//! * **bounded capacity** — a send while `capacity` packets are in
//!   flight is dropped, so the in-flight population never exceeds the
//!   bound the protocol's `capacity + 1` counting discipline assumes;
//! * **no duplication** — every in-flight packet is delivered at most
//!   once, so at most `capacity` copies of any value can ever be ghosts;
//! * **determinism** — ghost contents and per-send loss decisions are
//!   pure hashes of the [`CorruptSpec`], so corrupted runs replay
//!   byte-identically from `(seed, spec)` exactly like `FaultyChannel`
//!   runs do.
//!
//! Ghost receives are physical-layer violations by design (a ghost was
//! never sent, so PL4 trips): judge corrupted runs with data-link-only
//! monitoring in suffix mode (`dl_core::spec::stabilize`).

use std::ops::ControlFlow;

use ioa::action::ActionClass;
use ioa::automaton::{Automaton, TaskId};

use dl_core::action::{Dir, DlAction, Msg, Packet};
use dl_core::protocol::channel_classify;

use crate::simulated::FlightState;

/// Deterministic splitmix64-style mix (same family as
/// [`crate::faulty::FaultSpec`] fate decisions).
fn mix(salt: u64, n: u64) -> u64 {
    let mut z = salt
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(n.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ghost uids live far above any uid a runner will ever stamp, so a
/// ghost never cancels a genuine send in the monitor's transit multiset.
const GHOST_UID_BASE: u64 = 1 << 62;

/// Ghost payloads live in their own message-value space, so a ghost
/// delivery is visibly a never-sent message (DL5 — pre-convergence noise
/// the suffix monitor absorbs) rather than a spurious hit on real
/// traffic.
const GHOST_MSG_BASE: u64 = 0x6005_7000;

/// Configuration of one [`CorruptChannel`].
///
/// `Copy + Eq + Hash` so the whole block can ride inside fuzzer genomes,
/// exactly like [`crate::faulty::FaultSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CorruptSpec {
    /// Capacity bound `C`: the in-flight population never exceeds it
    /// (overflow sends are dropped), and at most `C` ghosts exist.
    pub capacity: u8,
    /// How many ghost packets the channel starts with (truncated to
    /// `capacity`).
    pub ghosts: u8,
    /// Per-256 probability that a (non-overflow) send is dropped.
    pub loss: u8,
    /// Seeds both the ghost contents and the per-send loss stream.
    pub seed: u64,
}

impl CorruptSpec {
    /// An empty-start, loss-free specification: a perfect bounded
    /// non-FIFO channel.
    #[must_use]
    pub fn clean(capacity: u8) -> Self {
        CorruptSpec {
            capacity,
            ghosts: 0,
            loss: 0,
            seed: 0,
        }
    }

    /// Derives the per-session variant of this specification: the same
    /// knobs with the seed replaced by a pure function of
    /// `(self.seed, salt, session_id)` — the same sanctioned fan-out
    /// contract as [`crate::faulty::FaultSpec::derive`].
    #[must_use]
    pub fn derive(&self, salt: u64, session_id: u64) -> CorruptSpec {
        CorruptSpec {
            seed: mix(mix(salt, self.seed), session_id),
            ..*self
        }
    }

    /// The effective ghost count (never above capacity).
    #[must_use]
    pub fn ghost_count(&self) -> usize {
        self.ghosts.min(self.capacity) as usize
    }

    /// The deterministic ghost packets this spec starts `dir` with.
    ///
    /// Ghosts are adversarial along both axes the stabilizing protocol
    /// must defend: data ghosts carry small sequence numbers (so they
    /// compete with real candidates at the receiver) but never-sent
    /// payloads; ack ghosts carry small sequence numbers (so they count
    /// toward — but can never complete — the transmitter's `C + 1` ack
    /// tally).
    #[must_use]
    pub fn ghost_packets(&self, dir: Dir) -> Vec<Packet> {
        let dir_sep = match dir {
            Dir::TR => 0x7121,
            Dir::RT => 0x1217,
        };
        (0..self.ghost_count() as u64)
            .map(|i| {
                let h = mix(self.seed ^ dir_sep, i);
                let seq = h & 0x7;
                let p = if h & 0x8 == 0 {
                    Packet::data(seq, Msg(GHOST_MSG_BASE + (h >> 4 & 0x7)))
                } else {
                    Packet::ack(seq)
                };
                p.with_uid(GHOST_UID_BASE + (h >> 1))
            })
            .collect()
    }

    /// `true` if send number `n` (0-based) is dropped by the loss knob.
    #[must_use]
    pub fn dropped(&self, n: u64) -> bool {
        (mix(self.seed ^ 0x1055, n) & 0xFF) < u64::from(self.loss)
    }
}

/// A bounded-capacity non-FIFO channel that may start corrupted (see the
/// module docs). State is the shared [`FlightState`]; every transition
/// has exactly one successor, so — like every simulated channel — it
/// adds no nondeterminism beyond the executor's delivery choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptChannel {
    dir: Dir,
    spec: CorruptSpec,
}

impl CorruptChannel {
    /// A channel in `dir` with the given corruption spec.
    #[must_use]
    pub fn new(dir: Dir, spec: CorruptSpec) -> Self {
        CorruptChannel { dir, spec }
    }

    /// This channel's direction.
    #[must_use]
    pub fn dir(&self) -> Dir {
        self.dir
    }

    /// This channel's corruption spec.
    #[must_use]
    pub fn spec(&self) -> CorruptSpec {
        self.spec
    }

    /// Deterministic transition function: the unique post-state of `a`
    /// from `s`, or `None` when `a` is not enabled.
    fn next(&self, s: &FlightState, a: &DlAction) -> Option<FlightState> {
        match a {
            DlAction::SendPkt(d, p) if *d == self.dir => {
                let mut t = s.clone();
                let overflow = t.in_flight.len() >= self.spec.capacity as usize;
                if !overflow && !self.spec.dropped(s.sends) {
                    t.in_flight.push(*p);
                }
                t.sends += 1;
                Some(t)
            }
            // Non-FIFO: any in-flight packet is deliverable; the first
            // match is removed (delivered at most once — no duplication).
            DlAction::ReceivePkt(d, p) if *d == self.dir => {
                match s.in_flight.iter().position(|q| q == p) {
                    Some(k) => {
                        let mut t = s.clone();
                        t.in_flight.remove(k);
                        Some(t)
                    }
                    None => None,
                }
            }
            DlAction::Wake(d) | DlAction::Fail(d) if *d == self.dir => Some(s.clone()),
            DlAction::Crash(x) if *x == self.dir.sender() => Some(s.clone()),
            _ => None,
        }
    }
}

impl Automaton for CorruptChannel {
    type Action = DlAction;
    type State = FlightState;

    fn start_states(&self) -> Vec<FlightState> {
        vec![FlightState {
            in_flight: self.spec.ghost_packets(self.dir),
            sends: 0,
        }]
    }

    fn classify(&self, a: &DlAction) -> Option<ActionClass> {
        channel_classify(self.dir, a)
    }

    fn successors(&self, s: &FlightState, a: &DlAction) -> Vec<FlightState> {
        self.next(s, a).into_iter().collect()
    }

    fn try_for_each_successor(
        &self,
        s: &FlightState,
        a: &DlAction,
        f: &mut dyn FnMut(FlightState) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        match self.next(s, a) {
            Some(t) => f(t),
            None => ControlFlow::Continue(()),
        }
    }

    fn step_first(&self, s: &FlightState, a: &DlAction) -> Option<FlightState> {
        self.next(s, a)
    }

    fn enabled_local(&self, s: &FlightState) -> Vec<DlAction> {
        let mut out = Vec::with_capacity(s.in_flight.len());
        for p in &s.in_flight {
            let a = DlAction::ReceivePkt(self.dir, *p);
            if !out.contains(&a) {
                out.push(a);
            }
        }
        out
    }

    fn for_each_enabled_local(
        &self,
        s: &FlightState,
        f: &mut dyn FnMut(DlAction) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        // First-occurrence dedup without a scratch Vec: in-flight
        // populations are capacity-bounded (≤ 255), so the quadratic
        // scan is cheaper than an allocation.
        for (i, p) in s.in_flight.iter().enumerate() {
            if s.in_flight[..i].iter().any(|q| q == p) {
                continue;
            }
            f(DlAction::ReceivePkt(self.dir, *p))?;
        }
        ControlFlow::Continue(())
    }

    fn task_of(&self, _a: &DlAction) -> TaskId {
        TaskId(0)
    }

    fn task_count(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(n: u64) -> Packet {
        Packet::data(n, Msg(n)).with_uid(n + 100)
    }

    fn corrupted(ghosts: u8) -> CorruptChannel {
        CorruptChannel::new(
            Dir::TR,
            CorruptSpec {
                capacity: 4,
                ghosts,
                loss: 0,
                seed: 11,
            },
        )
    }

    #[test]
    fn starts_with_deterministic_ghosts() {
        let ch = corrupted(3);
        let a = ch.start_states().remove(0);
        let b = ch.start_states().remove(0);
        assert_eq!(a, b, "ghost contents must be a pure function of the spec");
        assert_eq!(a.in_flight.len(), 3);
        for g in &a.in_flight {
            assert!(g.uid >= GHOST_UID_BASE, "ghost uid collides: {g}");
        }
        // A different seed draws different debris.
        let other = CorruptChannel::new(
            Dir::TR,
            CorruptSpec {
                seed: 12,
                ..ch.spec()
            },
        );
        assert_ne!(other.start_states().remove(0).in_flight, a.in_flight);
    }

    #[test]
    fn ghost_count_is_capacity_bounded() {
        let ch = CorruptChannel::new(
            Dir::TR,
            CorruptSpec {
                capacity: 2,
                ghosts: 200,
                loss: 0,
                seed: 5,
            },
        );
        assert_eq!(ch.start_states().remove(0).in_flight.len(), 2);
    }

    #[test]
    fn capacity_bounds_the_in_flight_population() {
        let ch = CorruptChannel::new(Dir::TR, CorruptSpec::clean(2));
        let mut s = ch.start_states().remove(0);
        for i in 0..5 {
            s = ch
                .step_first(&s, &DlAction::SendPkt(Dir::TR, pkt(i)))
                .unwrap();
        }
        assert_eq!(s.in_flight.len(), 2, "overflow sends are dropped");
        assert_eq!(s.sends, 5, "the send counter still advances");
        assert_eq!(s.in_flight, vec![pkt(0), pkt(1)]);
    }

    #[test]
    fn delivery_is_non_fifo_and_never_duplicates() {
        let ch = CorruptChannel::new(Dir::TR, CorruptSpec::clean(4));
        let mut s = ch.start_states().remove(0);
        for i in 0..3 {
            s = ch
                .step_first(&s, &DlAction::SendPkt(Dir::TR, pkt(i)))
                .unwrap();
        }
        // Every in-flight packet is deliverable, not just the head.
        assert_eq!(ch.enabled_local(&s).len(), 3);
        let t = ch
            .step_first(&s, &DlAction::ReceivePkt(Dir::TR, pkt(2)))
            .unwrap();
        assert_eq!(t.in_flight, vec![pkt(0), pkt(1)]);
        // Delivered at most once: the same receive is now disabled.
        assert!(ch
            .successors(&t, &DlAction::ReceivePkt(Dir::TR, pkt(2)))
            .is_empty());
    }

    #[test]
    fn loss_is_deterministic_per_send_index() {
        let spec = CorruptSpec {
            capacity: 8,
            ghosts: 0,
            loss: 128,
            seed: 3,
        };
        let drops = (0..256).filter(|&n| spec.dropped(n)).count();
        assert!((64..192).contains(&drops), "drops = {drops}");
        let ch = CorruptChannel::new(Dir::TR, spec);
        let mut s = ch.start_states().remove(0);
        for i in 0..8 {
            s = ch
                .step_first(&s, &DlAction::SendPkt(Dir::TR, pkt(i)))
                .unwrap();
        }
        let survivors: Vec<u64> = (0..8).filter(|&n| !spec.dropped(n)).collect();
        assert_eq!(
            s.in_flight,
            survivors.iter().map(|&n| pkt(n)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn derive_decorrelates_sessions_and_keeps_knobs() {
        let base = CorruptSpec {
            capacity: 3,
            ghosts: 2,
            loss: 32,
            seed: 9,
        };
        assert_eq!(base.derive(1, 2), base.derive(1, 2));
        let d = base.derive(1, 2);
        assert_eq!(
            (d.capacity, d.ghosts, d.loss),
            (base.capacity, base.ghosts, base.loss)
        );
        assert_ne!(d.seed, base.derive(1, 3).seed);
        assert_ne!(d.seed, base.derive(2, 2).seed);
    }

    #[test]
    fn ghosts_are_direction_separated() {
        let spec = CorruptSpec {
            capacity: 4,
            ghosts: 4,
            loss: 0,
            seed: 21,
        };
        assert_ne!(spec.ghost_packets(Dir::TR), spec.ghost_packets(Dir::RT));
    }
}
