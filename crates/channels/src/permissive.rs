//! The permissive physical channels `C̄` and `Ĉ` (paper §6).
//!
//! [`PermissiveChannel`] implements both: constructed with
//! [`PermissiveChannel::universal`] it is the paper's `C̄` (arbitrary
//! delivery sets — not FIFO); with [`PermissiveChannel::fifo`] it is `Ĉ`
//! (start states restricted to monotone delivery sets).
//!
//! The channel state holds the two counters, the packets sent so far
//! (`packet(i)`), and the [`DeliverySet`]. A `receive_pkt(p)` is enabled
//! exactly when `packet(i) = p` for the `i` with `(i, counter₂+1) ∈ S` and
//! `i ≤ counter₁`; `wake`, `fail`, and `crash` have no effect — matching
//! §6.1 verbatim.
//!
//! The start-state nondeterminism of the paper (any delivery set) is
//! exposed as *state surgery*: [`ChannelState::make_clean`] (Lemma 6.3),
//! [`ChannelState::set_waiting`] (Lemmas 6.5–6.7), and
//! [`ChannelState::lose`] (Lemma 6.6) rewrite the not-yet-observed part of
//! `S`. Each returns a state the same schedule "can leave the channel in",
//! which is precisely how the impossibility proofs use the channels.

use ioa::action::ActionClass;
use ioa::automaton::{Automaton, TaskId};

use dl_core::action::{Dir, DlAction, Packet};
use dl_core::protocol::channel_classify;

use crate::delivery_set::{DeliverySet, DeliverySetError};

/// State of a permissive channel.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChannelState {
    /// Packets sent so far; `sent[i-1]` is the paper's `packet(i)`.
    /// `counter₁ = sent.len()`.
    sent: Vec<Packet>,
    /// Number of `receive_pkt` events so far (`counter₂`).
    delivered: u64,
    /// The delivery set `S`.
    set: DeliverySet,
}

impl ChannelState {
    /// Initial state with the given delivery set (counters at zero, no
    /// packets).
    #[must_use]
    pub fn with_set(set: DeliverySet) -> Self {
        ChannelState {
            sent: Vec::new(),
            delivered: 0,
            set,
        }
    }

    /// `counter₁`: number of `send_pkt` events so far.
    #[must_use]
    pub fn counter1(&self) -> u64 {
        self.sent.len() as u64
    }

    /// `counter₂`: number of `receive_pkt` events so far.
    #[must_use]
    pub fn counter2(&self) -> u64 {
        self.delivered
    }

    /// The paper's `packet(i)` (1-based), if `i ≤ counter₁`.
    #[must_use]
    pub fn packet(&self, i: u64) -> Option<&Packet> {
        if i == 0 {
            None
        } else {
            self.sent.get((i - 1) as usize)
        }
    }

    /// The delivery set.
    #[must_use]
    pub fn delivery_set(&self) -> &DeliverySet {
        &self.set
    }

    /// The packet the next `receive_pkt` would deliver, if its send has
    /// already happened.
    #[must_use]
    pub fn next_delivery(&self) -> Option<&Packet> {
        let i = self.set.source_for(self.delivered + 1);
        self.packet(i)
    }

    /// `true` if the state is *clean* (§6.3): nothing sent is still
    /// pending, and the future is loss-free FIFO.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.set.is_clean(self.counter1(), self.counter2())
    }

    /// Lemma 6.3: rewrites the pending part of `S` so the state is clean.
    /// The delivered prefix — the only part any schedule has observed — is
    /// untouched.
    pub fn make_clean(&mut self) {
        self.set
            .set_future(self.delivered, &[], self.counter1())
            .expect("empty future cannot conflict");
        debug_assert!(self.is_clean());
    }

    /// The sequence of packets *waiting* in this state (§6.3): the packets
    /// the next deliveries would hand over, up to the first pending
    /// position whose source has not been sent yet.
    #[must_use]
    pub fn waiting(&self) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut j = self.delivered + 1;
        loop {
            let i = self.set.source_for(j);
            match self.packet(i) {
                Some(p) => out.push(*p),
                None => break,
            }
            j += 1;
        }
        out
    }

    /// Send indices (1-based) of packets that are in transit: sent but not
    /// scheduled in any delivered position.
    #[must_use]
    pub fn in_transit_indices(&self) -> Vec<u64> {
        (1..=self.counter1())
            .filter(|&i| match self.set.position_of(i) {
                Some(j) => j > self.delivered,
                None => true,
            })
            .collect()
    }

    /// Lemmas 6.5–6.7: rewrites the pending part of `S` so that exactly the
    /// packets at the given send indices are waiting, in that order,
    /// followed by a clean FIFO tail.
    ///
    /// For `C̄` (Lemma 6.7) the indices may be any distinct in-transit
    /// indices in any order; for `Ĉ` they must be increasing (the monotone
    /// restriction) — pass `require_monotone` accordingly; the
    /// [`PermissiveChannel`] wrapper chooses based on its own FIFO flag.
    ///
    /// # Errors
    ///
    /// Rejects indices that are unsent, already delivered, duplicated, or
    /// (when required) non-monotone.
    pub fn set_waiting(
        &mut self,
        indices: &[u64],
        require_monotone: bool,
    ) -> Result<(), SurgeryError> {
        for (k, &i) in indices.iter().enumerate() {
            if i == 0 || i > self.counter1() {
                return Err(SurgeryError::NotSent(i));
            }
            if self.set.position_of(i).is_some_and(|j| j <= self.delivered) {
                return Err(SurgeryError::AlreadyDelivered(i));
            }
            if indices[..k].contains(&i) {
                return Err(SurgeryError::Duplicate(i));
            }
            if require_monotone && k > 0 && indices[k - 1] >= i {
                return Err(SurgeryError::NotMonotone(indices[k - 1], i));
            }
        }
        if require_monotone {
            // The delivered prefix of a FIFO channel is increasing; the new
            // future must continue above it.
            if let Some(&first) = indices.first() {
                if let Some(last_delivered) = self.last_delivered_source() {
                    if first <= last_delivered {
                        return Err(SurgeryError::NotMonotone(last_delivered, first));
                    }
                }
            }
        }
        self.set
            .set_future(self.delivered, indices, self.counter1())
            .map_err(SurgeryError::Set)?;
        Ok(())
    }

    /// Lemma 6.6: of the currently waiting packets, keeps only the
    /// subsequence at the given waiting-positions (0-based within
    /// [`waiting`](Self::waiting)), losing the rest.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range or non-increasing positions.
    pub fn lose(&mut self, keep: &[usize]) -> Result<(), SurgeryError> {
        let w = self.waiting();
        let mut prev: Option<usize> = None;
        for &k in keep {
            if k >= w.len() {
                return Err(SurgeryError::NoSuchWaiting(k));
            }
            if prev.is_some_and(|p| p >= k) {
                return Err(SurgeryError::KeepNotSubsequence);
            }
            prev = Some(k);
        }
        let kept_indices: Vec<u64> = keep
            .iter()
            .map(|&k| self.set.source_for(self.delivered + 1 + k as u64))
            .collect();
        self.set
            .set_future(self.delivered, &kept_indices, self.counter1())
            .map_err(SurgeryError::Set)?;
        Ok(())
    }

    fn last_delivered_source(&self) -> Option<u64> {
        if self.delivered == 0 {
            None
        } else {
            Some(self.set.source_for(self.delivered))
        }
    }
}

impl Default for ChannelState {
    fn default() -> Self {
        ChannelState::with_set(DeliverySet::fifo())
    }
}

/// Error from channel state surgery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SurgeryError {
    /// Index refers to a packet that was never sent.
    NotSent(u64),
    /// Index refers to a packet already delivered.
    AlreadyDelivered(u64),
    /// Index appears twice.
    Duplicate(u64),
    /// FIFO channel requires increasing indices; these two are out of
    /// order.
    NotMonotone(u64, u64),
    /// `lose` keep-position out of range.
    NoSuchWaiting(usize),
    /// `lose` keep-positions must be strictly increasing.
    KeepNotSubsequence,
    /// Underlying delivery-set error.
    Set(DeliverySetError),
}

impl std::fmt::Display for SurgeryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SurgeryError::NotSent(i) => write!(f, "packet index {i} was never sent"),
            SurgeryError::AlreadyDelivered(i) => {
                write!(f, "packet index {i} was already delivered")
            }
            SurgeryError::Duplicate(i) => write!(f, "packet index {i} appears twice"),
            SurgeryError::NotMonotone(a, b) => write!(
                f,
                "FIFO channel requires increasing send indices, got {a} before {b}"
            ),
            SurgeryError::NoSuchWaiting(k) => write!(f, "no waiting packet at position {k}"),
            SurgeryError::KeepNotSubsequence => {
                f.write_str("keep positions must be strictly increasing")
            }
            SurgeryError::Set(e) => write!(f, "delivery set: {e}"),
        }
    }
}

impl std::error::Error for SurgeryError {}

/// The permissive physical channel automaton for one direction: `C̄` (any
/// delivery set) or `Ĉ` (monotone delivery sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PermissiveChannel {
    dir: Dir,
    fifo: bool,
}

impl PermissiveChannel {
    /// The paper's `C̄^{dir}`: the universal, possibly-reordering channel.
    #[must_use]
    pub fn universal(dir: Dir) -> Self {
        PermissiveChannel { dir, fifo: false }
    }

    /// The paper's `Ĉ^{dir}`: start states restricted to monotone delivery
    /// sets, making it a FIFO physical channel.
    #[must_use]
    pub fn fifo(dir: Dir) -> Self {
        PermissiveChannel { dir, fifo: true }
    }

    /// The channel's direction.
    #[must_use]
    pub fn dir(&self) -> Dir {
        self.dir
    }

    /// `true` for the FIFO variant `Ĉ`.
    #[must_use]
    pub fn is_fifo(&self) -> bool {
        self.fifo
    }

    /// An initial state with the given delivery set.
    ///
    /// # Panics
    ///
    /// Panics if this is the FIFO variant and `set` is not monotone.
    #[must_use]
    pub fn initial_state(&self, set: DeliverySet) -> ChannelState {
        assert!(
            !self.fifo || set.is_monotone(),
            "Ĉ start states must have monotone delivery sets"
        );
        ChannelState::with_set(set)
    }

    /// State surgery honoring this channel's FIFO restriction; see
    /// [`ChannelState::set_waiting`].
    ///
    /// # Errors
    ///
    /// Propagates [`SurgeryError`] from the state operation.
    pub fn set_waiting(
        &self,
        state: &mut ChannelState,
        indices: &[u64],
    ) -> Result<(), SurgeryError> {
        state.set_waiting(indices, self.fifo)
    }
}

impl Automaton for PermissiveChannel {
    type Action = DlAction;
    type State = ChannelState;

    fn start_states(&self) -> Vec<ChannelState> {
        // Canonical representative; the full start set (all delivery sets)
        // is reachable through `initial_state`.
        vec![ChannelState::default()]
    }

    fn classify(&self, a: &DlAction) -> Option<ActionClass> {
        channel_classify(self.dir, a)
    }

    fn successors(&self, s: &ChannelState, a: &DlAction) -> Vec<ChannelState> {
        match a {
            DlAction::SendPkt(d, p) if *d == self.dir => {
                let mut t = s.clone();
                t.sent.push(*p);
                vec![t]
            }
            DlAction::ReceivePkt(d, p) if *d == self.dir => {
                // Precondition: ∃i. packet(i) = p ∧ (i, counter₂+1) ∈ S.
                match s.next_delivery() {
                    Some(q) if q == p => {
                        let mut t = s.clone();
                        t.delivered += 1;
                        vec![t]
                    }
                    _ => vec![],
                }
            }
            DlAction::Wake(d) | DlAction::Fail(d) if *d == self.dir => vec![s.clone()],
            DlAction::Crash(x) if *x == self.dir.sender() => vec![s.clone()],
            _ => vec![],
        }
    }

    fn enabled_local(&self, s: &ChannelState) -> Vec<DlAction> {
        s.next_delivery()
            .map(|p| DlAction::ReceivePkt(self.dir, *p))
            .into_iter()
            .collect()
    }

    fn task_of(&self, _a: &DlAction) -> TaskId {
        TaskId(0)
    }

    fn task_count(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_core::action::Msg;

    fn pkt(n: u64) -> Packet {
        Packet::data(n, Msg(n)).with_uid(n + 100)
    }

    fn send(ch: &PermissiveChannel, s: &ChannelState, p: Packet) -> ChannelState {
        ch.step_first(s, &DlAction::SendPkt(ch.dir(), p)).unwrap()
    }

    #[test]
    fn fifo_channel_delivers_in_order() {
        let ch = PermissiveChannel::fifo(Dir::TR);
        let mut s = ch.start_states().remove(0);
        s = send(&ch, &s, pkt(0));
        s = send(&ch, &s, pkt(1));
        assert_eq!(s.counter1(), 2);
        assert_eq!(
            ch.enabled_local(&s),
            vec![DlAction::ReceivePkt(Dir::TR, pkt(0))]
        );
        let s = ch
            .step_first(&s, &DlAction::ReceivePkt(Dir::TR, pkt(0)))
            .unwrap();
        assert_eq!(s.counter2(), 1);
        assert_eq!(
            ch.enabled_local(&s),
            vec![DlAction::ReceivePkt(Dir::TR, pkt(1))]
        );
    }

    #[test]
    fn wrong_packet_receive_disabled() {
        let ch = PermissiveChannel::fifo(Dir::TR);
        let s = send(&ch, &ch.start_states().remove(0), pkt(0));
        assert!(!ch.is_enabled(&s, &DlAction::ReceivePkt(Dir::TR, pkt(1))));
    }

    #[test]
    fn reordering_set_delivers_out_of_order() {
        let ch = PermissiveChannel::universal(Dir::TR);
        let set = DeliverySet::new(vec![2, 1], 2).unwrap();
        let mut s = ch.initial_state(set);
        s = send(&ch, &s, pkt(0)); // index 1
        assert!(ch.enabled_local(&s).is_empty()); // wants index 2 first
        s = send(&ch, &s, pkt(1)); // index 2
        assert_eq!(
            ch.enabled_local(&s),
            vec![DlAction::ReceivePkt(Dir::TR, pkt(1))]
        );
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn fifo_variant_rejects_reordering_start_state() {
        let set = DeliverySet::new(vec![2, 1], 2).unwrap();
        let _ = PermissiveChannel::fifo(Dir::TR).initial_state(set);
    }

    #[test]
    fn status_inputs_are_noops() {
        let ch = PermissiveChannel::universal(Dir::TR);
        let s = send(&ch, &ch.start_states().remove(0), pkt(0));
        for a in [
            DlAction::Wake(Dir::TR),
            DlAction::Fail(Dir::TR),
            DlAction::Crash(dl_core::action::Station::T),
        ] {
            assert_eq!(ch.successors(&s, &a), vec![s.clone()]);
        }
        // Out-of-scope actions have no transitions.
        assert!(ch.successors(&s, &DlAction::Wake(Dir::RT)).is_empty());
        assert!(ch.successors(&s, &DlAction::SendMsg(Msg(0))).is_empty());
    }

    #[test]
    fn waiting_reflects_pending_deliveries() {
        let ch = PermissiveChannel::fifo(Dir::TR);
        let mut s = ch.start_states().remove(0);
        s = send(&ch, &s, pkt(0));
        s = send(&ch, &s, pkt(1));
        assert_eq!(s.waiting(), vec![pkt(0), pkt(1)]);
        let s = ch
            .step_first(&s, &DlAction::ReceivePkt(Dir::TR, pkt(0)))
            .unwrap();
        assert_eq!(s.waiting(), vec![pkt(1)]);
    }

    #[test]
    fn make_clean_empties_waiting() {
        // Lemma 6.3.
        let ch = PermissiveChannel::fifo(Dir::TR);
        let mut s = ch.start_states().remove(0);
        s = send(&ch, &s, pkt(0));
        s = send(&ch, &s, pkt(1));
        assert!(!s.is_clean());
        s.make_clean();
        assert!(s.is_clean());
        assert!(s.waiting().is_empty());
        assert!(ch.enabled_local(&s).is_empty());
        // A new send is immediately deliverable (clean tail is FIFO).
        let s = send(&ch, &s, pkt(2));
        assert_eq!(s.waiting(), vec![pkt(2)]);
    }

    #[test]
    fn set_waiting_orders_in_transit_packets() {
        // Lemma 6.7 for C̄: any order of in-transit packets can wait.
        let ch = PermissiveChannel::universal(Dir::TR);
        let mut s = ch.start_states().remove(0);
        for n in 0..3 {
            s = send(&ch, &s, pkt(n));
        }
        ch.set_waiting(&mut s, &[3, 1]).unwrap();
        assert_eq!(s.waiting(), vec![pkt(2), pkt(0)]);
        // Packet 2 (index 2) is lost: no delivery position.
        assert_eq!(s.delivery_set().position_of(2), None);
    }

    #[test]
    fn set_waiting_fifo_requires_monotone() {
        let ch = PermissiveChannel::fifo(Dir::TR);
        let mut s = ch.start_states().remove(0);
        for n in 0..3 {
            s = send(&ch, &s, pkt(n));
        }
        assert_eq!(
            ch.set_waiting(&mut s, &[3, 1]),
            Err(SurgeryError::NotMonotone(3, 1))
        );
        ch.set_waiting(&mut s, &[1, 3]).unwrap();
        assert_eq!(s.waiting(), vec![pkt(0), pkt(2)]);
    }

    #[test]
    fn set_waiting_fifo_respects_delivered_prefix() {
        let ch = PermissiveChannel::fifo(Dir::TR);
        let mut s = ch.start_states().remove(0);
        for n in 0..3 {
            s = send(&ch, &s, pkt(n));
        }
        s = ch
            .step_first(&s, &DlAction::ReceivePkt(Dir::TR, pkt(0)))
            .unwrap();
        // Index 1 was delivered; a monotone future cannot go back to it...
        assert_eq!(
            ch.set_waiting(&mut s, &[1]),
            Err(SurgeryError::AlreadyDelivered(1))
        );
        // ...and must stay above the last delivered source.
        ch.set_waiting(&mut s, &[2, 3]).unwrap();
        assert_eq!(s.waiting(), vec![pkt(1), pkt(2)]);
    }

    #[test]
    fn set_waiting_validation() {
        let ch = PermissiveChannel::universal(Dir::TR);
        let mut s = ch.start_states().remove(0);
        s = send(&ch, &s, pkt(0));
        assert_eq!(ch.set_waiting(&mut s, &[5]), Err(SurgeryError::NotSent(5)));
        assert_eq!(
            ch.set_waiting(&mut s, &[1, 1]),
            Err(SurgeryError::Duplicate(1))
        );
        assert_eq!(ch.set_waiting(&mut s, &[0]), Err(SurgeryError::NotSent(0)));
    }

    #[test]
    fn lose_keeps_subsequence() {
        // Lemma 6.6.
        let ch = PermissiveChannel::fifo(Dir::TR);
        let mut s = ch.start_states().remove(0);
        for n in 0..4 {
            s = send(&ch, &s, pkt(n));
        }
        s.lose(&[1, 3]).unwrap();
        assert_eq!(s.waiting(), vec![pkt(1), pkt(3)]);
        // Monotonicity is preserved (Lemma 6.3 remark).
        assert!(s.delivery_set().is_monotone());
    }

    #[test]
    fn lose_validation() {
        let ch = PermissiveChannel::fifo(Dir::TR);
        let mut s = ch.start_states().remove(0);
        s = send(&ch, &s, pkt(0));
        assert_eq!(s.lose(&[3]), Err(SurgeryError::NoSuchWaiting(3)));
        s = send(&ch, &s, pkt(1));
        assert_eq!(s.lose(&[1, 0]), Err(SurgeryError::KeepNotSubsequence));
        s.lose(&[]).unwrap();
        assert!(s.waiting().is_empty());
    }

    #[test]
    fn in_transit_tracking() {
        let ch = PermissiveChannel::universal(Dir::TR);
        let mut s = ch.start_states().remove(0);
        for n in 0..3 {
            s = send(&ch, &s, pkt(n));
        }
        assert_eq!(s.in_transit_indices(), vec![1, 2, 3]);
        let s2 = ch
            .step_first(&s, &DlAction::ReceivePkt(Dir::TR, pkt(0)))
            .unwrap();
        assert_eq!(s2.in_transit_indices(), vec![2, 3]);
        // Losing a packet keeps it "in transit" per §6.3's definition
        // (sent, never received).
        let mut s3 = s2.clone();
        s3.lose(&[1]).unwrap(); // keep only pkt(2)
        assert_eq!(s3.in_transit_indices(), vec![2, 3]);
        assert_eq!(s3.waiting(), vec![pkt(2)]);
    }

    #[test]
    fn lemma_6_4_waiting_packets_deliverable_in_order() {
        let ch = PermissiveChannel::universal(Dir::TR);
        let mut s = ch.start_states().remove(0);
        for n in 0..3 {
            s = send(&ch, &s, pkt(n));
        }
        ch.set_waiting(&mut s, &[2, 3, 1]).unwrap();
        for expected in [pkt(1), pkt(2), pkt(0)] {
            let a = DlAction::ReceivePkt(Dir::TR, expected);
            assert_eq!(ch.enabled_local(&s), vec![a]);
            s = ch.step_first(&s, &a).unwrap();
        }
        assert!(ch.enabled_local(&s).is_empty());
    }

    #[test]
    fn channel_accessors() {
        let ch = PermissiveChannel::universal(Dir::RT);
        assert_eq!(ch.dir(), Dir::RT);
        assert!(!ch.is_fifo());
        assert!(PermissiveChannel::fifo(Dir::TR).is_fifo());
        let s = ChannelState::default();
        assert_eq!(s.packet(0), None);
        assert_eq!(s.packet(1), None);
    }
}
