//! Delivery sets (paper §6.1) and the `del` surgery (§6.3).
//!
//! A *delivery set* `S` is a set of pairs `(i, j)` of positive integers
//! such that for each `j` there is exactly one `(i, j) ∈ S`, and for each
//! `i` at most one. It prescribes that the `j`-th `receive_pkt` event
//! delivers the packet of the `i`-th `send_pkt` event. `S` is *monotone*
//! (FIFO) when `j ↦ i` is strictly increasing.
//!
//! The paper's `S` is infinite. [`DeliverySet`] represents it finitely as
//! an explicit prefix plus an *identity tail*: for `j` beyond the prefix,
//! `i = tail_base + (j − prefix_len)`. Every delivery set the proofs
//! construct has this shape (they only ever fix finitely many pairs and
//! leave the rest "clean FIFO"), and the representation is closed under the
//! paper's `del` surgery — deleting an explicit pair shifts later `j`s down
//! by one, which the tail formula absorbs unchanged.

use std::fmt;

/// Error constructing or editing a delivery set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeliverySetError {
    /// An `i` value appears twice (the map `j ↦ i` must be injective).
    DuplicateSource(u64),
    /// An explicit `i` exceeds the tail base, colliding with the tail.
    CollidesWithTail {
        /// The offending explicit source index.
        source: u64,
        /// The tail base it must not exceed.
        tail_base: u64,
    },
    /// A source index of zero (indices are positive).
    ZeroSource,
    /// The requested pair is not in the set.
    NotInSet(u64, u64),
}

impl fmt::Display for DeliverySetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliverySetError::DuplicateSource(i) => {
                write!(f, "source index {i} appears twice")
            }
            DeliverySetError::CollidesWithTail { source, tail_base } => write!(
                f,
                "explicit source index {source} collides with the identity tail starting at {}",
                tail_base + 1
            ),
            DeliverySetError::ZeroSource => f.write_str("source indices are positive"),
            DeliverySetError::NotInSet(i, j) => write!(f, "pair ({i}, {j}) is not in the set"),
        }
    }
}

impl std::error::Error for DeliverySetError {}

/// A delivery set: explicit prefix + identity tail.
///
/// `explicit[j-1] = i` gives the pairs `(i, j)` for `1 ≤ j ≤ prefix_len`;
/// for `j > prefix_len` the pair is `(tail_base + j − prefix_len, j)`.
///
/// ```
/// use dl_channels::DeliverySet;
///
/// # fn main() -> Result<(), dl_channels::DeliverySetError> {
/// // Deliver packet 2 first, then packet 1, then FIFO from 3 onward.
/// let mut s = DeliverySet::new(vec![2, 1], 2)?;
/// assert_eq!(s.source_for(1), 2);
/// assert!(!s.is_monotone());
/// // Lose packet 1: position 2 disappears, later positions shift down.
/// s.del(1, 2)?;
/// assert_eq!(s.source_for(2), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DeliverySet {
    explicit: Vec<u64>,
    tail_base: u64,
}

impl DeliverySet {
    /// The identity (perfect FIFO, no loss) delivery set `{(k, k)}`.
    #[must_use]
    pub fn fifo() -> Self {
        DeliverySet {
            explicit: Vec::new(),
            tail_base: 0,
        }
    }

    /// Builds a set from an explicit prefix and tail base.
    ///
    /// # Errors
    ///
    /// Rejects zero or duplicate source indices and prefix entries that
    /// collide with the tail (`i > tail_base`).
    pub fn new(explicit: Vec<u64>, tail_base: u64) -> Result<Self, DeliverySetError> {
        for (k, &i) in explicit.iter().enumerate() {
            if i == 0 {
                return Err(DeliverySetError::ZeroSource);
            }
            if i > tail_base {
                return Err(DeliverySetError::CollidesWithTail {
                    source: i,
                    tail_base,
                });
            }
            if explicit[..k].contains(&i) {
                return Err(DeliverySetError::DuplicateSource(i));
            }
        }
        Ok(DeliverySet {
            explicit,
            tail_base,
        })
    }

    /// The source index `i` of the pair `(i, j)`, for 1-based `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j == 0`.
    #[must_use]
    pub fn source_for(&self, j: u64) -> u64 {
        assert!(j > 0, "delivery positions are 1-based");
        let idx = (j - 1) as usize;
        if idx < self.explicit.len() {
            self.explicit[idx]
        } else {
            self.tail_base + (j - self.explicit.len() as u64)
        }
    }

    /// `true` if `(i, j) ∈ S`.
    #[must_use]
    pub fn contains(&self, i: u64, j: u64) -> bool {
        j > 0 && self.source_for(j) == i
    }

    /// The delivery position `j` whose source is `i`, if any.
    ///
    /// Every `j` has a source but not every `i` is delivered: explicit
    /// prefixes can skip indices (those packets are lost).
    #[must_use]
    pub fn position_of(&self, i: u64) -> Option<u64> {
        if let Some(k) = self.explicit.iter().position(|&x| x == i) {
            return Some(k as u64 + 1);
        }
        if i > self.tail_base {
            Some(self.explicit.len() as u64 + (i - self.tail_base))
        } else {
            None
        }
    }

    /// `true` if `j ↦ i` is strictly increasing — the FIFO condition on
    /// delivery sets (§6.2).
    #[must_use]
    pub fn is_monotone(&self) -> bool {
        let increasing = self.explicit.windows(2).all(|w| w[0] < w[1]);
        let last_ok = self
            .explicit
            .last()
            .is_none_or(|&last| last <= self.tail_base);
        increasing && last_ok
    }

    /// Length of the explicit prefix.
    #[must_use]
    pub fn prefix_len(&self) -> usize {
        self.explicit.len()
    }

    /// The tail base: for `j` past the prefix, `i = tail_base + (j − prefix_len)`.
    #[must_use]
    pub fn tail_base(&self) -> u64 {
        self.tail_base
    }

    /// Extends the explicit prefix so that positions `1..=j` are all
    /// explicit (materializing tail pairs). The set is unchanged as a set
    /// of pairs.
    pub fn materialize_to(&mut self, j: u64) {
        while (self.explicit.len() as u64) < j {
            let next = self.tail_base + 1;
            self.explicit.push(next);
            self.tail_base = next;
        }
    }

    /// The paper's `del(S, (i, j))`: removes the pair and shifts every
    /// later delivery position down by one (§6.3).
    ///
    /// # Errors
    ///
    /// [`DeliverySetError::NotInSet`] if `(i, j) ∉ S`.
    pub fn del(&mut self, i: u64, j: u64) -> Result<(), DeliverySetError> {
        if !self.contains(i, j) {
            return Err(DeliverySetError::NotInSet(i, j));
        }
        self.materialize_to(j);
        self.explicit.remove((j - 1) as usize);
        Ok(())
    }

    /// Deletes several pairs, given by their source indices, wherever they
    /// currently sit. Convenience wrapper over repeated [`del`](Self::del)
    /// (the paper's `del(S, X)`).
    ///
    /// # Errors
    ///
    /// Fails if some source index has no delivery position.
    pub fn del_sources(&mut self, sources: &[u64]) -> Result<(), DeliverySetError> {
        for &i in sources {
            let j = self
                .position_of(i)
                .ok_or(DeliverySetError::NotInSet(i, 0))?;
            self.del(i, j)?;
        }
        Ok(())
    }

    /// Rewrites the *future* of the set: keeps positions `1..=delivered`
    /// unchanged, makes positions `delivered+1 ..= delivered+n` deliver the
    /// given source indices, and sets the tail to clean FIFO starting after
    /// `floor`, where `floor = max(given tail floor, all retained sources)`.
    ///
    /// This is the executable form of the start-state nondeterminism the
    /// lemmas of §6.3 exploit ("β can leave the channel in a state where
    /// …"): the pairs at positions `≤ delivered` are the only part of `S`
    /// an execution so far has observed, so any consistent rewrite of the
    /// rest yields a state the same schedule can leave the channel in.
    ///
    /// # Errors
    ///
    /// Rejects future sources that duplicate each other or collide with an
    /// already-delivered position's source.
    pub fn set_future(
        &mut self,
        delivered: u64,
        future: &[u64],
        tail_floor: u64,
    ) -> Result<(), DeliverySetError> {
        self.materialize_to(delivered);
        self.explicit.truncate(delivered as usize);
        let mut base = tail_floor;
        for (k, &i) in future.iter().enumerate() {
            if i == 0 {
                return Err(DeliverySetError::ZeroSource);
            }
            if self.explicit[..delivered as usize].contains(&i) || future[..k].contains(&i) {
                return Err(DeliverySetError::DuplicateSource(i));
            }
            base = base.max(i);
        }
        for &i in self.explicit.iter() {
            base = base.max(i);
        }
        self.explicit.extend_from_slice(future);
        self.tail_base = base;
        Ok(())
    }

    /// `true` if the set is *clean* relative to the counters (§6.3): no
    /// pending pair draws from an already-sent packet
    /// (`i ≤ counter1` with `j > counter2`), and the tail continues FIFO
    /// with `(counter1 + k, counter2 + k)`.
    #[must_use]
    pub fn is_clean(&self, counter1: u64, counter2: u64) -> bool {
        // Every pending position must follow the pattern
        // `source_for(counter2 + k) == counter1 + k`. Both sides are
        // eventually affine with slope one, so checking through one point
        // past the explicit prefix decides all of them.
        let horizon = (self.explicit.len() as u64).max(counter2) + 2;
        (counter2 + 1..=horizon).all(|j| self.source_for(j) == counter1 + (j - counter2))
    }
}

impl Default for DeliverySet {
    fn default() -> Self {
        DeliverySet::fifo()
    }
}

impl fmt::Display for DeliverySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (k, i) in self.explicit.iter().enumerate() {
            write!(f, "({}, {}), ", i, k + 1)?;
        }
        write!(f, "({}+k, {}+k)…}}", self.tail_base, self.explicit.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_set_is_identity() {
        let s = DeliverySet::fifo();
        for j in 1..10 {
            assert_eq!(s.source_for(j), j);
            assert!(s.contains(j, j));
            assert_eq!(s.position_of(j), Some(j));
        }
        assert!(s.is_monotone());
        assert!(s.is_clean(0, 0));
    }

    #[test]
    fn explicit_prefix_lookup() {
        let s = DeliverySet::new(vec![2, 1, 3], 3).unwrap();
        assert_eq!(s.source_for(1), 2);
        assert_eq!(s.source_for(2), 1);
        assert_eq!(s.source_for(3), 3);
        assert_eq!(s.source_for(4), 4); // tail
        assert_eq!(s.position_of(1), Some(2));
        assert_eq!(s.position_of(7), Some(7));
        assert!(!s.is_monotone());
    }

    #[test]
    fn skipping_prefix_loses_packets() {
        // Deliver 2 then 5; packets 1, 3, 4 are lost forever.
        let s = DeliverySet::new(vec![2, 5], 5).unwrap();
        assert_eq!(s.position_of(1), None);
        assert_eq!(s.position_of(3), None);
        assert_eq!(s.position_of(2), Some(1));
        assert_eq!(s.position_of(6), Some(3));
        assert!(s.is_monotone());
    }

    #[test]
    fn construction_validation() {
        assert_eq!(
            DeliverySet::new(vec![0], 5),
            Err(DeliverySetError::ZeroSource)
        );
        assert_eq!(
            DeliverySet::new(vec![1, 1], 5),
            Err(DeliverySetError::DuplicateSource(1))
        );
        assert_eq!(
            DeliverySet::new(vec![9], 5),
            Err(DeliverySetError::CollidesWithTail {
                source: 9,
                tail_base: 5
            })
        );
    }

    #[test]
    fn one_based_positions() {
        let s = DeliverySet::fifo();
        assert!(!s.contains(1, 0));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn source_for_zero_panics() {
        let _ = DeliverySet::fifo().source_for(0);
    }

    #[test]
    fn materialization_preserves_pairs() {
        let mut s = DeliverySet::new(vec![3, 1], 3).unwrap();
        let before: Vec<u64> = (1..=10).map(|j| s.source_for(j)).collect();
        s.materialize_to(6);
        let after: Vec<u64> = (1..=10).map(|j| s.source_for(j)).collect();
        assert_eq!(before, after);
        assert_eq!(s.prefix_len(), 6);
    }

    #[test]
    fn del_removes_and_shifts() {
        let mut s = DeliverySet::new(vec![2, 1, 3], 3).unwrap();
        s.del(1, 2).unwrap();
        assert_eq!(s.source_for(1), 2);
        assert_eq!(s.source_for(2), 3);
        assert_eq!(s.source_for(3), 4); // tail shifted down
        assert_eq!(s.position_of(1), None); // packet 1 now lost
    }

    #[test]
    fn del_in_tail_region() {
        let mut s = DeliverySet::fifo();
        s.del(3, 3).unwrap();
        assert_eq!(s.source_for(1), 1);
        assert_eq!(s.source_for(2), 2);
        assert_eq!(s.source_for(3), 4);
        assert_eq!(s.source_for(4), 5);
        assert!(s.is_monotone());
    }

    #[test]
    fn del_rejects_absent_pair() {
        let mut s = DeliverySet::fifo();
        assert_eq!(s.del(2, 3), Err(DeliverySetError::NotInSet(2, 3)));
    }

    #[test]
    fn del_preserves_monotonicity() {
        // Lemma 6.3's remark: if S is monotone, so is del(S, X).
        let mut s = DeliverySet::new(vec![1, 3, 4], 4).unwrap();
        assert!(s.is_monotone());
        s.del(3, 2).unwrap();
        assert!(s.is_monotone());
        s.del_sources(&[4]).unwrap();
        assert!(s.is_monotone());
    }

    #[test]
    fn del_sources_batch() {
        let mut s = DeliverySet::fifo();
        s.del_sources(&[2, 4]).unwrap();
        assert_eq!(s.source_for(1), 1);
        assert_eq!(s.source_for(2), 3);
        assert_eq!(s.source_for(3), 5);
        assert!(s.del_sources(&[2]).is_err()); // 2 already deleted
    }

    #[test]
    fn set_future_rewrites_pending_only() {
        let mut s = DeliverySet::new(vec![2, 1], 2).unwrap();
        // Two deliveries happened; rewrite the future to deliver 5 then 3.
        s.set_future(2, &[5, 3], 6).unwrap();
        assert_eq!(s.source_for(1), 2);
        assert_eq!(s.source_for(2), 1);
        assert_eq!(s.source_for(3), 5);
        assert_eq!(s.source_for(4), 3);
        assert_eq!(s.source_for(5), 7); // tail after floor 6
    }

    #[test]
    fn set_future_validates() {
        let mut s = DeliverySet::new(vec![2], 2).unwrap();
        assert_eq!(
            s.set_future(1, &[2], 5),
            Err(DeliverySetError::DuplicateSource(2))
        );
        assert_eq!(
            s.set_future(1, &[3, 3], 5),
            Err(DeliverySetError::DuplicateSource(3))
        );
        assert_eq!(s.set_future(1, &[0], 5), Err(DeliverySetError::ZeroSource));
    }

    #[test]
    fn cleanliness() {
        // Lemma 6.3 shape: after c1 sends and c2 deliveries, clean means
        // the future is (c1+k, c2+k).
        let mut s = DeliverySet::new(vec![2, 1], 2).unwrap();
        assert!(!s.is_clean(5, 2));
        s.set_future(2, &[], 5).unwrap();
        assert!(s.is_clean(5, 2));
        assert_eq!(s.source_for(3), 6);
        // Materialized clean sets are still clean.
        s.materialize_to(4);
        assert!(s.is_clean(5, 2));
        assert!(!s.is_clean(4, 2));
        assert!(!s.is_clean(5, 1));
    }

    #[test]
    fn fifo_identity_is_clean_at_matching_counters() {
        let s = DeliverySet::fifo();
        assert!(s.is_clean(0, 0));
        assert!(s.is_clean(3, 3)); // delivered everything sent, tail continues FIFO
        assert!(!s.is_clean(3, 2)); // pending pair (3, 3) draws on a sent packet
    }

    #[test]
    fn display_is_informative() {
        let s = DeliverySet::new(vec![2], 2).unwrap();
        let txt = s.to_string();
        assert!(txt.contains("(2, 1)"));
        assert!(txt.contains("(2+k, 1+k)"));
    }
}
