//! Simulated physical channels: the repro substitution for real
//! transmission media.
//!
//! The paper's channels are specifications; real media lose packets
//! (PL-FIFO) and, for some media, reorder them (PL). These automata model
//! that behavior executably:
//!
//! * [`LossyFifoChannel`] — a FIFO queue that may drop packets at send
//!   time, either nondeterministically (each send has a *kept* and a
//!   *dropped* successor, resolved by the executor) or deterministically
//!   (every `n`-th packet dropped, keeping the automaton fully
//!   deterministic for benchmarks). Solves `PL-FIFO` — verified by the
//!   property tests in this crate and in `tests/`.
//! * [`ReorderChannel`] — a bag of in-flight packets, any of which may be
//!   delivered next, with optional loss. Solves `PL` but not `PL-FIFO`.
//!
//! Both ignore `wake`/`fail`/`crash` like the permissive channels; PL1 is
//! the environment's obligation.

use std::ops::ControlFlow;

use ioa::action::ActionClass;
use ioa::automaton::{Automaton, TaskId};

use dl_core::action::{Dir, DlAction, Packet};
use dl_core::protocol::channel_classify;
use dl_core::symmetry::{MsgRelabel, MsgVisit};
use ioa::intern::PackedCodec;

/// Loss behavior of a simulated channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossMode {
    /// Never drop.
    None,
    /// Each send nondeterministically kept or dropped; the executor's
    /// successor choice resolves it (uniformly, ≈50% loss under the seeded
    /// fair executor).
    Nondet,
    /// Deterministically drop every `n`-th packet (1-based count). `n`
    /// must be ≥ 2; use [`LossMode::None`] for lossless.
    EveryNth(u64),
}

/// State shared by the simulated channels: packets in flight plus a send
/// counter (for deterministic loss).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FlightState {
    /// Packets currently in flight, in send order.
    pub in_flight: Vec<Packet>,
    /// Total `send_pkt` events seen.
    pub sends: u64,
}

impl PackedCodec for FlightState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.in_flight.encode(out);
        self.sends.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Self {
        FlightState {
            in_flight: Vec::<Packet>::decode(input),
            sends: u64::decode(input),
        }
    }
}

impl MsgVisit for FlightState {
    fn visit_msgs(&self, f: &mut dyn FnMut(dl_core::action::Msg)) {
        self.in_flight.visit_msgs(f);
    }
}

impl MsgRelabel for FlightState {
    fn relabel_msgs(
        &self,
        f: &mut dyn FnMut(dl_core::action::Msg) -> dl_core::action::Msg,
    ) -> Self {
        FlightState {
            in_flight: self.in_flight.relabel_msgs(f),
            sends: self.sends,
        }
    }
}

fn send_successors(
    s: &FlightState,
    p: &Packet,
    mode: LossMode,
    capacity: Option<usize>,
) -> Vec<FlightState> {
    let full = capacity.is_some_and(|c| s.in_flight.len() >= c);
    // The send counter only drives EveryNth; leaving it untouched in the
    // other modes keeps the reachable state space finite for exploration.
    let count = matches!(mode, LossMode::EveryNth(_));
    let keep = {
        let mut t = s.clone();
        if count {
            t.sends += 1;
        }
        if !full {
            t.in_flight.push(*p);
        }
        t
    };
    let drop = {
        let mut t = s.clone();
        if count {
            t.sends += 1;
        }
        t
    };
    match mode {
        LossMode::None => vec![keep],
        LossMode::Nondet => vec![keep, drop],
        LossMode::EveryNth(n) => {
            debug_assert!(n >= 2, "EveryNth(n) requires n >= 2");
            if (s.sends + 1).is_multiple_of(n) {
                vec![drop]
            } else {
                vec![keep]
            }
        }
    }
}

/// Visitor twin of [`send_successors`]: same states, same order, no `Vec`.
fn try_send_successors(
    s: &FlightState,
    p: &Packet,
    mode: LossMode,
    capacity: Option<usize>,
    f: &mut dyn FnMut(FlightState) -> ControlFlow<()>,
) -> ControlFlow<()> {
    let full = capacity.is_some_and(|c| s.in_flight.len() >= c);
    let count = matches!(mode, LossMode::EveryNth(_));
    let keep = |s: &FlightState| {
        let mut t = s.clone();
        if count {
            t.sends += 1;
        }
        if !full {
            t.in_flight.push(*p);
        }
        t
    };
    let drop = |s: &FlightState| {
        let mut t = s.clone();
        if count {
            t.sends += 1;
        }
        t
    };
    match mode {
        LossMode::None => f(keep(s)),
        LossMode::Nondet => {
            f(keep(s))?;
            f(drop(s))
        }
        LossMode::EveryNth(n) => {
            debug_assert!(n >= 2, "EveryNth(n) requires n >= 2");
            if (s.sends + 1).is_multiple_of(n) {
                f(drop(s))
            } else {
                f(keep(s))
            }
        }
    }
}

/// A lossy FIFO channel: solves `PL-FIFO` (delivers the head of the queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossyFifoChannel {
    dir: Dir,
    mode: LossMode,
    capacity: Option<usize>,
}

impl LossyFifoChannel {
    /// A FIFO channel with the given direction and loss mode.
    #[must_use]
    pub fn new(dir: Dir, mode: LossMode) -> Self {
        LossyFifoChannel {
            dir,
            mode,
            capacity: None,
        }
    }

    /// A FIFO channel that additionally drops sends arriving while
    /// `capacity` packets are already in flight — keeps the reachable
    /// state space finite for exhaustive exploration.
    #[must_use]
    pub fn with_capacity(dir: Dir, mode: LossMode, capacity: usize) -> Self {
        LossyFifoChannel {
            dir,
            mode,
            capacity: Some(capacity),
        }
    }

    /// A lossless FIFO channel.
    #[must_use]
    pub fn perfect(dir: Dir) -> Self {
        LossyFifoChannel::new(dir, LossMode::None)
    }

    /// This channel's direction.
    #[must_use]
    pub fn dir(&self) -> Dir {
        self.dir
    }

    /// This channel's loss mode.
    #[must_use]
    pub fn mode(&self) -> LossMode {
        self.mode
    }
}

impl Automaton for LossyFifoChannel {
    type Action = DlAction;
    type State = FlightState;

    fn start_states(&self) -> Vec<FlightState> {
        vec![FlightState::default()]
    }

    fn classify(&self, a: &DlAction) -> Option<ActionClass> {
        channel_classify(self.dir, a)
    }

    fn successors(&self, s: &FlightState, a: &DlAction) -> Vec<FlightState> {
        match a {
            DlAction::SendPkt(d, p) if *d == self.dir => {
                send_successors(s, p, self.mode, self.capacity)
            }
            DlAction::ReceivePkt(d, p) if *d == self.dir => match s.in_flight.first() {
                Some(q) if q == p => {
                    let mut t = s.clone();
                    t.in_flight.remove(0);
                    vec![t]
                }
                _ => vec![],
            },
            DlAction::Wake(d) | DlAction::Fail(d) if *d == self.dir => vec![s.clone()],
            DlAction::Crash(x) if *x == self.dir.sender() => vec![s.clone()],
            _ => vec![],
        }
    }

    fn try_for_each_successor(
        &self,
        s: &FlightState,
        a: &DlAction,
        f: &mut dyn FnMut(FlightState) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        match a {
            DlAction::SendPkt(d, p) if *d == self.dir => {
                try_send_successors(s, p, self.mode, self.capacity, f)
            }
            DlAction::ReceivePkt(d, p) if *d == self.dir => match s.in_flight.first() {
                Some(q) if q == p => {
                    let mut t = s.clone();
                    t.in_flight.remove(0);
                    f(t)
                }
                _ => ControlFlow::Continue(()),
            },
            DlAction::Wake(d) | DlAction::Fail(d) if *d == self.dir => f(s.clone()),
            DlAction::Crash(x) if *x == self.dir.sender() => f(s.clone()),
            _ => ControlFlow::Continue(()),
        }
    }

    fn enabled_local(&self, s: &FlightState) -> Vec<DlAction> {
        s.in_flight
            .first()
            .map(|p| DlAction::ReceivePkt(self.dir, *p))
            .into_iter()
            .collect()
    }

    fn for_each_enabled_local(
        &self,
        s: &FlightState,
        f: &mut dyn FnMut(DlAction) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if let Some(p) = s.in_flight.first() {
            f(DlAction::ReceivePkt(self.dir, *p))?;
        }
        ControlFlow::Continue(())
    }

    fn task_of(&self, _a: &DlAction) -> TaskId {
        TaskId(0)
    }

    fn task_count(&self) -> usize {
        1
    }
}

/// A reordering (and optionally lossy) channel: any in-flight packet may be
/// delivered next. Solves `PL` but **not** `PL-FIFO`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReorderChannel {
    dir: Dir,
    mode: LossMode,
    capacity: Option<usize>,
}

impl ReorderChannel {
    /// A reordering channel with the given direction and loss mode.
    #[must_use]
    pub fn new(dir: Dir, mode: LossMode) -> Self {
        ReorderChannel {
            dir,
            mode,
            capacity: None,
        }
    }

    /// A reordering channel with a bounded in-flight pool (overflow sends
    /// are dropped) — for exhaustive exploration.
    #[must_use]
    pub fn with_capacity(dir: Dir, mode: LossMode, capacity: usize) -> Self {
        ReorderChannel {
            dir,
            mode,
            capacity: Some(capacity),
        }
    }

    /// A lossless reordering channel.
    #[must_use]
    pub fn lossless(dir: Dir) -> Self {
        ReorderChannel::new(dir, LossMode::None)
    }

    /// This channel's direction.
    #[must_use]
    pub fn dir(&self) -> Dir {
        self.dir
    }
}

impl Automaton for ReorderChannel {
    type Action = DlAction;
    type State = FlightState;

    fn start_states(&self) -> Vec<FlightState> {
        vec![FlightState::default()]
    }

    fn classify(&self, a: &DlAction) -> Option<ActionClass> {
        channel_classify(self.dir, a)
    }

    fn successors(&self, s: &FlightState, a: &DlAction) -> Vec<FlightState> {
        match a {
            DlAction::SendPkt(d, p) if *d == self.dir => {
                send_successors(s, p, self.mode, self.capacity)
            }
            DlAction::ReceivePkt(d, p) if *d == self.dir => {
                match s.in_flight.iter().position(|q| q == p) {
                    Some(k) => {
                        let mut t = s.clone();
                        t.in_flight.remove(k);
                        vec![t]
                    }
                    None => vec![],
                }
            }
            DlAction::Wake(d) | DlAction::Fail(d) if *d == self.dir => vec![s.clone()],
            DlAction::Crash(x) if *x == self.dir.sender() => vec![s.clone()],
            _ => vec![],
        }
    }

    fn try_for_each_successor(
        &self,
        s: &FlightState,
        a: &DlAction,
        f: &mut dyn FnMut(FlightState) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        match a {
            DlAction::SendPkt(d, p) if *d == self.dir => {
                try_send_successors(s, p, self.mode, self.capacity, f)
            }
            DlAction::ReceivePkt(d, p) if *d == self.dir => {
                match s.in_flight.iter().position(|q| q == p) {
                    Some(k) => {
                        let mut t = s.clone();
                        t.in_flight.remove(k);
                        f(t)
                    }
                    None => ControlFlow::Continue(()),
                }
            }
            DlAction::Wake(d) | DlAction::Fail(d) if *d == self.dir => f(s.clone()),
            DlAction::Crash(x) if *x == self.dir.sender() => f(s.clone()),
            _ => ControlFlow::Continue(()),
        }
    }

    fn enabled_local(&self, s: &FlightState) -> Vec<DlAction> {
        let mut out = Vec::new();
        for p in &s.in_flight {
            let a = DlAction::ReceivePkt(self.dir, *p);
            if !out.contains(&a) {
                out.push(a);
            }
        }
        out
    }

    fn for_each_enabled_local(
        &self,
        s: &FlightState,
        f: &mut dyn FnMut(DlAction) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        // Same first-occurrence dedup as `enabled_local`, without the
        // scratch Vec: flights are short, so the quadratic scan is cheap.
        for (i, p) in s.in_flight.iter().enumerate() {
            if s.in_flight[..i].iter().any(|q| q == p) {
                continue;
            }
            f(DlAction::ReceivePkt(self.dir, *p))?;
        }
        ControlFlow::Continue(())
    }

    fn task_of(&self, _a: &DlAction) -> TaskId {
        TaskId(0)
    }

    fn task_count(&self) -> usize {
        1
    }
}

/// State of a [`BurstLossChannel`]: the FIFO flight plus the position in
/// the deterministic good/bad cycle.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BurstState {
    /// Packets in flight, in send order.
    pub in_flight: Vec<Packet>,
    /// Position within the `good_len + bad_len` cycle.
    pub phase: u64,
}

/// A burst-loss FIFO channel: a deterministic Gilbert–Elliott-style model
/// that alternates a loss-free *good* stretch with a drop-everything *bad*
/// stretch, each measured in `send_pkt` events.
///
/// Burst loss is the signature failure mode of real radio and power-line
/// media; ARQ protocols see consecutive losses rather than independent
/// ones. The cycle is deterministic (part of the state), so runs stay
/// reproducible and the automaton solves `PL-FIFO` like its uniform-loss
/// sibling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstLossChannel {
    dir: Dir,
    good_len: u64,
    bad_len: u64,
}

impl BurstLossChannel {
    /// A channel that delivers `good_len` consecutive sends, then drops
    /// `bad_len` consecutive sends, repeating.
    ///
    /// # Panics
    ///
    /// Panics if `good_len == 0` (the channel would drop everything and
    /// could not satisfy any liveness expectation).
    #[must_use]
    pub fn new(dir: Dir, good_len: u64, bad_len: u64) -> Self {
        assert!(good_len > 0, "good stretch must be non-empty");
        BurstLossChannel {
            dir,
            good_len,
            bad_len,
        }
    }

    /// This channel's direction.
    #[must_use]
    pub fn dir(&self) -> Dir {
        self.dir
    }

    /// `(good_len, bad_len)`.
    #[must_use]
    pub fn cycle(&self) -> (u64, u64) {
        (self.good_len, self.bad_len)
    }

    fn in_bad_stretch(&self, phase: u64) -> bool {
        phase % (self.good_len + self.bad_len) >= self.good_len
    }
}

impl Automaton for BurstLossChannel {
    type Action = DlAction;
    type State = BurstState;

    fn start_states(&self) -> Vec<BurstState> {
        vec![BurstState::default()]
    }

    fn classify(&self, a: &DlAction) -> Option<ActionClass> {
        channel_classify(self.dir, a)
    }

    fn successors(&self, s: &BurstState, a: &DlAction) -> Vec<BurstState> {
        match a {
            DlAction::SendPkt(d, p) if *d == self.dir => {
                let mut t = s.clone();
                if !self.in_bad_stretch(s.phase) {
                    t.in_flight.push(*p);
                }
                t.phase = (t.phase + 1) % (self.good_len + self.bad_len);
                vec![t]
            }
            DlAction::ReceivePkt(d, p) if *d == self.dir => match s.in_flight.first() {
                Some(q) if q == p => {
                    let mut t = s.clone();
                    t.in_flight.remove(0);
                    vec![t]
                }
                _ => vec![],
            },
            DlAction::Wake(d) | DlAction::Fail(d) if *d == self.dir => vec![s.clone()],
            DlAction::Crash(x) if *x == self.dir.sender() => vec![s.clone()],
            _ => vec![],
        }
    }

    fn try_for_each_successor(
        &self,
        s: &BurstState,
        a: &DlAction,
        f: &mut dyn FnMut(BurstState) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        match a {
            DlAction::SendPkt(d, p) if *d == self.dir => {
                let mut t = s.clone();
                if !self.in_bad_stretch(s.phase) {
                    t.in_flight.push(*p);
                }
                t.phase = (t.phase + 1) % (self.good_len + self.bad_len);
                f(t)
            }
            DlAction::ReceivePkt(d, p) if *d == self.dir => match s.in_flight.first() {
                Some(q) if q == p => {
                    let mut t = s.clone();
                    t.in_flight.remove(0);
                    f(t)
                }
                _ => ControlFlow::Continue(()),
            },
            DlAction::Wake(d) | DlAction::Fail(d) if *d == self.dir => f(s.clone()),
            DlAction::Crash(x) if *x == self.dir.sender() => f(s.clone()),
            _ => ControlFlow::Continue(()),
        }
    }

    fn enabled_local(&self, s: &BurstState) -> Vec<DlAction> {
        s.in_flight
            .first()
            .map(|p| DlAction::ReceivePkt(self.dir, *p))
            .into_iter()
            .collect()
    }

    fn for_each_enabled_local(
        &self,
        s: &BurstState,
        f: &mut dyn FnMut(DlAction) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if let Some(p) = s.in_flight.first() {
            f(DlAction::ReceivePkt(self.dir, *p))?;
        }
        ControlFlow::Continue(())
    }

    fn task_of(&self, _a: &DlAction) -> TaskId {
        TaskId(0)
    }

    fn task_count(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_core::action::Msg;

    fn pkt(n: u64) -> Packet {
        Packet::data(n, Msg(n)).with_uid(n + 100)
    }

    #[test]
    fn fifo_delivers_in_order() {
        let ch = LossyFifoChannel::perfect(Dir::TR);
        let mut s = ch.start_states().remove(0);
        for n in 0..3 {
            s = ch
                .step_first(&s, &DlAction::SendPkt(Dir::TR, pkt(n)))
                .unwrap();
        }
        for n in 0..3 {
            let a = DlAction::ReceivePkt(Dir::TR, pkt(n));
            assert_eq!(ch.enabled_local(&s), vec![a]);
            s = ch.step_first(&s, &a).unwrap();
        }
        assert!(ch.enabled_local(&s).is_empty());
    }

    #[test]
    fn nondet_loss_offers_both_outcomes() {
        let ch = LossyFifoChannel::new(Dir::TR, LossMode::Nondet);
        let s = ch.start_states().remove(0);
        let succs = ch.successors(&s, &DlAction::SendPkt(Dir::TR, pkt(0)));
        assert_eq!(succs.len(), 2);
        assert_eq!(succs[0].in_flight.len(), 1);
        assert_eq!(succs[1].in_flight.len(), 0);
        // Nondet mode does not track the send counter (it never reads
        // it), keeping the state space finite for exploration.
        assert!(succs.iter().all(|t| t.sends == 0));
    }

    #[test]
    fn every_nth_drops_deterministically() {
        let ch = LossyFifoChannel::new(Dir::TR, LossMode::EveryNth(3));
        let mut s = ch.start_states().remove(0);
        for n in 0..6 {
            s = ch
                .step_first(&s, &DlAction::SendPkt(Dir::TR, pkt(n)))
                .unwrap();
        }
        // Packets 3rd and 6th (indices 2, 5) were dropped.
        let kept: Vec<u64> = s.in_flight.iter().map(|p| p.header.seq).collect();
        assert_eq!(kept, vec![0, 1, 3, 4]);
        assert_eq!(s.sends, 6);
    }

    #[test]
    fn reorder_offers_every_in_flight_packet() {
        let ch = ReorderChannel::lossless(Dir::TR);
        let mut s = ch.start_states().remove(0);
        for n in 0..3 {
            s = ch
                .step_first(&s, &DlAction::SendPkt(Dir::TR, pkt(n)))
                .unwrap();
        }
        let enabled = ch.enabled_local(&s);
        assert_eq!(enabled.len(), 3);
        // Deliver the last-sent first: allowed.
        let s = ch
            .step_first(&s, &DlAction::ReceivePkt(Dir::TR, pkt(2)))
            .unwrap();
        assert_eq!(s.in_flight.len(), 2);
    }

    #[test]
    fn reorder_removes_one_copy() {
        let ch = ReorderChannel::lossless(Dir::TR);
        let mut s = ch.start_states().remove(0);
        // Two distinct packets with equal content but different uids.
        let a = pkt(0).with_uid(1);
        let b = pkt(0).with_uid(2);
        s = ch.step_first(&s, &DlAction::SendPkt(Dir::TR, a)).unwrap();
        s = ch.step_first(&s, &DlAction::SendPkt(Dir::TR, b)).unwrap();
        assert_eq!(ch.enabled_local(&s).len(), 2);
        let s = ch
            .step_first(&s, &DlAction::ReceivePkt(Dir::TR, a))
            .unwrap();
        assert_eq!(s.in_flight, vec![b]);
    }

    #[test]
    fn receive_of_absent_packet_disabled() {
        let ch = ReorderChannel::lossless(Dir::TR);
        let s = ch.start_states().remove(0);
        assert!(!ch.is_enabled(&s, &DlAction::ReceivePkt(Dir::TR, pkt(9))));
        let f = LossyFifoChannel::perfect(Dir::TR);
        assert!(!f.is_enabled(&s, &DlAction::ReceivePkt(Dir::TR, pkt(9))));
    }

    #[test]
    fn status_actions_are_noops() {
        let ch = LossyFifoChannel::perfect(Dir::RT);
        let s = ch.start_states().remove(0);
        assert_eq!(ch.successors(&s, &DlAction::Wake(Dir::RT)), vec![s.clone()]);
        assert_eq!(
            ch.successors(&s, &DlAction::Crash(dl_core::action::Station::R)),
            vec![s.clone()]
        );
        assert!(ch.successors(&s, &DlAction::Wake(Dir::TR)).is_empty());
    }

    #[test]
    fn accessors() {
        let ch = LossyFifoChannel::new(Dir::TR, LossMode::EveryNth(4));
        assert_eq!(ch.dir(), Dir::TR);
        assert_eq!(ch.mode(), LossMode::EveryNth(4));
        assert_eq!(ReorderChannel::lossless(Dir::RT).dir(), Dir::RT);
    }

    #[test]
    fn burst_channel_drops_in_stretches() {
        let ch = BurstLossChannel::new(Dir::TR, 2, 2);
        let mut s = ch.start_states().remove(0);
        for n in 0..8 {
            s = ch
                .step_first(&s, &DlAction::SendPkt(Dir::TR, pkt(n)))
                .unwrap();
        }
        // Cycle of 4: sends 0,1 kept; 2,3 dropped; 4,5 kept; 6,7 dropped.
        let kept: Vec<u64> = s.in_flight.iter().map(|p| p.header.seq).collect();
        assert_eq!(kept, vec![0, 1, 4, 5]);
        // Delivery is FIFO.
        let a = DlAction::ReceivePkt(Dir::TR, pkt(0));
        assert_eq!(ch.enabled_local(&s), vec![a]);
    }

    #[test]
    fn burst_channel_lossless_when_bad_is_zero() {
        let ch = BurstLossChannel::new(Dir::TR, 3, 0);
        let mut s = ch.start_states().remove(0);
        for n in 0..6 {
            s = ch
                .step_first(&s, &DlAction::SendPkt(Dir::TR, pkt(n)))
                .unwrap();
        }
        assert_eq!(s.in_flight.len(), 6);
        assert_eq!(ch.cycle(), (3, 0));
        assert_eq!(ch.dir(), Dir::TR);
    }

    #[test]
    #[should_panic(expected = "good stretch")]
    fn burst_channel_rejects_empty_good_stretch() {
        let _ = BurstLossChannel::new(Dir::TR, 0, 2);
    }
}
