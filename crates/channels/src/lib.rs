//! Physical channels for the data link reproduction.
//!
//! Two families:
//!
//! * [`permissive`] — the paper's §6 channels `C̄` (universal, reordering)
//!   and `Ĉ` (FIFO), driven by explicit [`delivery_set::DeliverySet`]s,
//!   with the state-surgery operations (clean states, waiting sequences,
//!   packet loss) that the impossibility proofs of §7–8 rely on
//!   (Lemmas 6.3–6.7);
//! * [`simulated`] — loss/reorder channels used as the executable
//!   substitute for real transmission media when running protocols
//!   end-to-end;
//! * [`faulty`] — a single channel parameterized by a [`FaultSpec`] knob
//!   block (loss/dup/reorder rates, burst windows) whose per-send fault
//!   decisions are pure hashes, making fuzzer runs replayable;
//! * [`corrupt`] — the corrupted-initial-configuration fault class: a
//!   bounded-capacity, non-FIFO, never-duplicating channel that may start
//!   holding arbitrary ghost packets ([`CorruptSpec`]), the adversarial
//!   medium of the self-stabilizing protocol.
//!
//! Both families solve the `PL` specification of `dl-core` (and the FIFO
//! variants solve `PL-FIFO`); this is checked by unit and property tests
//! here and by the integration tests at the workspace root, which is the
//! executable counterpart of the paper's Lemma 6.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corrupt;
pub mod delivery_set;
pub mod faulty;
pub mod permissive;
pub mod simulated;

pub use corrupt::{CorruptChannel, CorruptSpec};
pub use delivery_set::{DeliverySet, DeliverySetError};
pub use faulty::{FaultSpec, FaultyChannel, GhostSpec};
pub use permissive::{ChannelState, PermissiveChannel, SurgeryError};
pub use simulated::{
    BurstLossChannel, BurstState, FlightState, LossMode, LossyFifoChannel, ReorderChannel,
};
