//! Property tests for delivery sets and channel-state surgery: the §6.3
//! lemmas hold for *random* surgery sequences, not just the proofs' uses.

use proptest::prelude::*;

use dl_channels::delivery_set::DeliverySet;
use dl_channels::permissive::PermissiveChannel;
use dl_core::action::{Dir, DlAction, Msg, Packet};
use ioa::Automaton;

/// A random legal delivery set: a deduplicated explicit prefix plus a tail
/// above its maximum.
fn delivery_set_strategy() -> impl Strategy<Value = DeliverySet> {
    prop::collection::vec(1u64..40, 0..10).prop_map(|raw| {
        let mut explicit = Vec::new();
        for i in raw {
            if !explicit.contains(&i) {
                explicit.push(i);
            }
        }
        let tail = explicit.iter().copied().max().unwrap_or(0).max(40);
        DeliverySet::new(explicit, tail).expect("constructed legally")
    })
}

proptest! {
    /// The defining property: for each position j exactly one source, and
    /// the map j ↦ i is injective.
    #[test]
    fn delivery_sets_are_injective(s in delivery_set_strategy()) {
        let horizon = 60u64;
        let sources: Vec<u64> = (1..=horizon).map(|j| s.source_for(j)).collect();
        for (a, &ia) in sources.iter().enumerate() {
            for &ib in &sources[a + 1..] {
                prop_assert_ne!(ia, ib);
            }
        }
    }

    /// position_of inverts source_for wherever defined.
    #[test]
    fn position_source_roundtrip(s in delivery_set_strategy()) {
        for j in 1..=50u64 {
            let i = s.source_for(j);
            prop_assert_eq!(s.position_of(i), Some(j));
        }
    }

    /// `del` removes exactly the requested pair and shifts the rest
    /// (paper §6.3's definition, checked pointwise).
    #[test]
    fn del_is_pointwise_correct(s in delivery_set_strategy(), j in 1u64..30) {
        let before: Vec<u64> = (1..=60).map(|x| s.source_for(x)).collect();
        let i = s.source_for(j);
        let mut t = s.clone();
        t.del(i, j).unwrap();
        // (1) positions below j unchanged; (3) above j shifted down.
        for jp in 1..j {
            prop_assert_eq!(t.source_for(jp), before[(jp - 1) as usize]);
        }
        for jp in j..=59 {
            prop_assert_eq!(t.source_for(jp), before[jp as usize]);
        }
        // (2) the deleted source is gone.
        prop_assert_eq!(t.position_of(i), None);
    }

    /// Monotone sets stay monotone under del (Lemma 6.3 remark).
    #[test]
    fn del_preserves_monotonicity(j in 1u64..20) {
        let mut s = DeliverySet::fifo();
        prop_assert!(s.is_monotone());
        s.del(j, j).unwrap();
        prop_assert!(s.is_monotone());
        // And again.
        let i2 = s.source_for(j);
        s.del(i2, j).unwrap();
        prop_assert!(s.is_monotone());
    }

    /// Materialization never changes the set extensionally.
    #[test]
    fn materialize_is_extensional_identity(s in delivery_set_strategy(), to in 1u64..50) {
        let before: Vec<u64> = (1..=60).map(|x| s.source_for(x)).collect();
        let mut t = s.clone();
        t.materialize_to(to);
        let after: Vec<u64> = (1..=60).map(|x| t.source_for(x)).collect();
        prop_assert_eq!(before, after);
    }

    /// Channel surgery: after `set_waiting(indices)`, exactly those packets
    /// wait, in order, and delivering them all is possible (Lemma 6.4 +
    /// 6.5/6.7 combined).
    #[test]
    fn set_waiting_then_deliver_all(
        sends in 1usize..8,
        pick in prop::collection::vec(any::<prop::sample::Index>(), 0..5),
    ) {
        let ch = PermissiveChannel::universal(Dir::TR);
        let mut s = ch.start_states().remove(0);
        for n in 0..sends {
            let p = Packet::data(n as u64, Msg(n as u64)).with_uid(100 + n as u64);
            s = ch.step_first(&s, &DlAction::SendPkt(Dir::TR, p)).unwrap();
        }
        // Choose distinct indices 1..=sends in arbitrary order.
        let mut indices: Vec<u64> = Vec::new();
        for ix in pick {
            let cand = (ix.index(sends) + 1) as u64;
            if !indices.contains(&cand) {
                indices.push(cand);
            }
        }
        ch.set_waiting(&mut s, &indices).unwrap();
        let waiting = s.waiting();
        prop_assert_eq!(waiting.len(), indices.len());
        // Deliver them all in order (Lemma 6.4).
        for expect in waiting {
            let enabled = ch.enabled_local(&s);
            prop_assert_eq!(enabled.clone(), vec![DlAction::ReceivePkt(Dir::TR, expect)]);
            s = ch.step_first(&s, &enabled[0]).unwrap();
        }
    }

    /// `lose` keeps exactly the selected subsequence (Lemma 6.6).
    #[test]
    fn lose_keeps_selected_subsequence(
        sends in 2usize..8,
        keep_mask in prop::collection::vec(any::<bool>(), 2..8),
    ) {
        let ch = PermissiveChannel::fifo(Dir::TR);
        let mut s = ch.start_states().remove(0);
        for n in 0..sends {
            let p = Packet::data(n as u64, Msg(n as u64)).with_uid(100 + n as u64);
            s = ch.step_first(&s, &DlAction::SendPkt(Dir::TR, p)).unwrap();
        }
        let before = s.waiting();
        let keep: Vec<usize> = keep_mask
            .iter()
            .take(before.len())
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i))
            .collect();
        s.lose(&keep).unwrap();
        let after = s.waiting();
        let expected: Vec<_> = keep.iter().map(|&k| before[k]).collect();
        prop_assert_eq!(after, expected);
        prop_assert!(s.delivery_set().is_monotone());
    }

    /// make_clean always yields a clean state, whatever happened before.
    #[test]
    fn make_clean_from_any_history(
        sends in 0usize..6,
        deliver in 0usize..6,
    ) {
        let ch = PermissiveChannel::fifo(Dir::TR);
        let mut s = ch.start_states().remove(0);
        for n in 0..sends {
            let p = Packet::data(n as u64, Msg(n as u64)).with_uid(100 + n as u64);
            s = ch.step_first(&s, &DlAction::SendPkt(Dir::TR, p)).unwrap();
        }
        for _ in 0..deliver.min(sends) {
            let Some(a) = ch.enabled_local(&s).into_iter().next() else { break };
            s = ch.step_first(&s, &a).unwrap();
        }
        s.make_clean();
        prop_assert!(s.is_clean());
        prop_assert!(s.waiting().is_empty());
        // Fresh sends flow FIFO afterwards.
        let p = Packet::data(99, Msg(99)).with_uid(999);
        let s2 = ch.step_first(&s, &DlAction::SendPkt(Dir::TR, p)).unwrap();
        prop_assert_eq!(s2.waiting(), vec![p]);
    }
}
