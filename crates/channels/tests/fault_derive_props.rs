//! Property tests for [`FaultSpec::derive`]'s domain-separation
//! contract — the one sanctioned fan-out from a fleet seed into
//! per-session, per-direction fault streams.
//!
//! `dl-fleet` derives session `id`'s two channel specs as
//! `base.derive(fleet_seed, 2·id)` (t→r) and `base.derive(fleet_seed,
//! 2·id + 1)` (r→t). The whole replayability story rests on that map
//! being (a) stable, (b) knob-preserving, and (c) decorrelating: any two
//! distinct `(salt, session_id, direction)` triples must land on
//! different derived salts, and therefore on statistically independent
//! per-send fate streams. These properties pin all three over random
//! triples, not just the fleet's particular call pattern.

use proptest::prelude::*;

use dl_channels::{CorruptSpec, FaultSpec};
use dl_core::action::Dir;

/// The fleet's encoding of a `(session, direction)` pair into the
/// `session_id` argument of [`FaultSpec::derive`].
fn lane(session: u64, dir: Dir) -> u64 {
    match dir {
        Dir::TR => 2 * session,
        Dir::RT => 2 * session + 1,
    }
}

/// Sorts and deduplicates a sampled vector (the vendored proptest has no
/// hash-set strategy; distinctness is what the properties need).
fn dedup(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v.dedup();
    v
}

fn base_spec() -> impl Strategy<Value = FaultSpec> {
    (any::<u8>(), any::<u8>(), 0u8..4, any::<u64>()).prop_map(|(loss, dup, reorder, salt)| {
        FaultSpec {
            loss,
            dup,
            reorder,
            salt,
            ..FaultSpec::none()
        }
    })
}

proptest! {
    /// Deriving is a pure function: same `(base, salt, session_id)` in,
    /// byte-identical spec out — and every knob except the salt is
    /// carried through untouched.
    #[test]
    fn derive_is_stable_and_knob_preserving(
        base in base_spec(),
        salt in any::<u64>(),
        session in 0u64..1 << 48,
    ) {
        for dir in [Dir::TR, Dir::RT] {
            let a = base.derive(salt, lane(session, dir));
            let b = base.derive(salt, lane(session, dir));
            prop_assert_eq!(a, b);
            prop_assert_eq!(a.loss, base.loss);
            prop_assert_eq!(a.dup, base.dup);
            prop_assert_eq!(a.reorder, base.reorder);
            prop_assert_eq!(a.burst_good, base.burst_good);
            prop_assert_eq!(a.burst_bad, base.burst_bad);
        }
    }

    /// Domain separation proper: distinct `(salt, session_id, direction)`
    /// triples never collide on the derived salt. (The mix is a 64-bit
    /// avalanche, so a collision in a few hundred random triples would be
    /// astronomically unlikely for a correct mix and near-certain for a
    /// broken one — e.g. one that dropped `session_id` or xor-folded the
    /// two salts symmetrically.)
    #[test]
    fn distinct_triples_decorrelate(
        base in base_spec(),
        salts in prop::collection::vec(any::<u64>(), 2..6),
        sessions in prop::collection::vec(0u64..1 << 40, 2..8),
    ) {
        let (salts, sessions) = (dedup(salts), dedup(sessions));
        let mut derived = Vec::new();
        for &salt in &salts {
            for &session in &sessions {
                for dir in [Dir::TR, Dir::RT] {
                    derived.push(((salt, session, dir), base.derive(salt, lane(session, dir)).salt));
                }
            }
        }
        for (i, (ta, a)) in derived.iter().enumerate() {
            for (tb, b) in &derived[i + 1..] {
                prop_assert_ne!(a, b, "salt collision between {:?} and {:?}", ta, tb);
            }
        }
    }

    /// The two directions of one session differ in their *fate streams*,
    /// not just the salt: with loss pinned mid-range the per-send drop
    /// decisions of the t→r and r→t lanes disagree somewhere in a short
    /// window. (A derivation that decorrelated salts but fed the fates
    /// from the session id alone would fail this.)
    #[test]
    fn direction_lanes_have_independent_fates(
        salt in any::<u64>(),
        session in 0u64..1 << 40,
    ) {
        let base = FaultSpec { loss: 128, ..FaultSpec::none() };
        let tr = base.derive(salt, lane(session, Dir::TR));
        let rt = base.derive(salt, lane(session, Dir::RT));
        let disagree = (0..256u64).any(|n| tr.fate(n) != rt.fate(n));
        prop_assert!(disagree, "t→r and r→t fate streams are identical");
    }

    /// The base spec's own salt stays in the mix: two template specs that
    /// differ only by salt remain decorrelated after derivation with the
    /// same `(salt, session_id)`.
    #[test]
    fn base_salt_participates(
        salt_a in any::<u64>(),
        salt_b in any::<u64>(),
        fleet in any::<u64>(),
        session in 0u64..1 << 40,
    ) {
        // No prop_assume in the vendored proptest; skew unequal instead.
        let salt_b = if salt_a == salt_b { salt_b.wrapping_add(1) } else { salt_b };
        let a = FaultSpec { salt: salt_a, ..FaultSpec::none() };
        let b = FaultSpec { salt: salt_b, ..FaultSpec::none() };
        for dir in [Dir::TR, Dir::RT] {
            prop_assert_ne!(
                a.derive(fleet, lane(session, dir)).salt,
                b.derive(fleet, lane(session, dir)).salt
            );
        }
    }

    /// [`CorruptSpec::derive`] honors the same fan-out contract (it is
    /// documented as sharing `FaultSpec::derive`'s): stable, knob-
    /// preserving, and decorrelating across sessions and directions.
    #[test]
    fn corrupt_spec_derivation_matches_the_contract(
        seed in any::<u64>(),
        fleet in any::<u64>(),
        sessions in prop::collection::vec(0u64..1 << 40, 2..6),
    ) {
        let sessions = dedup(sessions);
        let base = CorruptSpec { capacity: 3, ghosts: 2, loss: 16, seed };
        let mut seen = Vec::new();
        for &session in &sessions {
            for dir in [Dir::TR, Dir::RT] {
                let d = base.derive(fleet, lane(session, dir));
                prop_assert_eq!(d, base.derive(fleet, lane(session, dir)));
                prop_assert_eq!(d.capacity, base.capacity);
                prop_assert_eq!(d.ghosts, base.ghosts);
                prop_assert_eq!(d.loss, base.loss);
                seen.push(d.seed);
            }
        }
        seen.sort_unstable();
        let len = seen.len();
        seen.dedup();
        prop_assert_eq!(seen.len(), len, "derived corruption seeds collided");
    }
}
