//! Property tests for the I/O automaton kernel: the §2 lemmas hold on
//! random executions of a composed toy system.
//!
//! The toy system: a token ring of two cells. Cell 0 passes tokens to
//! cell 1 via `Hop(v)` (output of 0, input of 1); each cell can also
//! consume a held token (`Eat(i)`). Inputs `Feed(v)` give cell 0 a token.

use proptest::prelude::*;

use ioa::action::ActionClass;
use ioa::automaton::{Automaton, TaskId};
use ioa::composition::Compose2;
use ioa::execution::{behavior_of_schedule, project_schedule, Execution};
use ioa::fairness::{EnvScript, FairExecutor};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Act {
    Feed(u8),
    Hop(u8),
    Eat(u8), // cell index
}

/// One cell: holds at most one token value.
#[derive(Clone)]
struct Cell {
    index: u8,
}

impl Automaton for Cell {
    type Action = Act;
    type State = Option<u8>;

    fn start_states(&self) -> Vec<Option<u8>> {
        vec![None]
    }

    fn classify(&self, a: &Act) -> Option<ActionClass> {
        match (a, self.index) {
            (Act::Feed(_), 0) => Some(ActionClass::Input),
            (Act::Hop(_), 0) => Some(ActionClass::Output),
            (Act::Hop(_), 1) => Some(ActionClass::Input),
            (Act::Eat(i), _) if *i == self.index => Some(ActionClass::Output),
            _ => None,
        }
    }

    fn successors(&self, s: &Option<u8>, a: &Act) -> Vec<Option<u8>> {
        match (a, self.index) {
            (Act::Feed(v), 0) => vec![Some(*v)], // overwrite: input-enabled
            (Act::Hop(v), 0) => {
                if *s == Some(*v) {
                    vec![None]
                } else {
                    vec![]
                }
            }
            (Act::Hop(v), 1) => vec![Some(*v)],
            (Act::Eat(i), _) if *i == self.index => {
                if s.is_some() {
                    vec![None]
                } else {
                    vec![]
                }
            }
            _ => vec![],
        }
    }

    fn enabled_local(&self, s: &Option<u8>) -> Vec<Act> {
        let mut out = Vec::new();
        if let Some(v) = s {
            if self.index == 0 {
                out.push(Act::Hop(*v));
            }
            out.push(Act::Eat(self.index));
        }
        out
    }

    fn task_of(&self, a: &Act) -> TaskId {
        match a {
            Act::Hop(_) => TaskId(0),
            _ => TaskId(if self.index == 0 { 1 } else { 0 }),
        }
    }

    fn task_count(&self) -> usize {
        if self.index == 0 {
            2
        } else {
            1
        }
    }
}

fn ring() -> Compose2<Cell, Cell> {
    Compose2::new(Cell { index: 0 }, Cell { index: 1 })
}

fn random_execution(
    feeds: &[u8],
    seed: u64,
) -> Execution<Act, ioa::composition::Pair<Option<u8>, Option<u8>>> {
    let sys = ring();
    let mut exec = FairExecutor::new(seed, 10_000);
    let start = sys.start_states().remove(0);
    let script = EnvScript::with_gap(feeds.iter().map(|v| Act::Feed(*v)).collect(), 1);
    exec.run(&sys, start, script).execution
}

proptest! {
    /// Lemma 2.2: the projection of any execution of the composition onto a
    /// component is an execution of that component.
    #[test]
    fn projections_are_component_executions(
        feeds in prop::collection::vec(0u8..5, 0..10),
        seed in any::<u64>(),
    ) {
        let sys = ring();
        let exec = random_execution(&feeds, seed);
        let left = sys.project_left(&exec);
        let right = sys.project_right(&exec);
        prop_assert_eq!(left.validate(&Cell { index: 0 }), Ok(()));
        prop_assert_eq!(right.validate(&Cell { index: 1 }), Ok(()));
    }

    /// Lemma 2.2 for schedules: β|Aᵢ is a schedule of Aᵢ, and the
    /// projection helpers agree with the execution projections.
    #[test]
    fn schedule_projection_agrees(
        feeds in prop::collection::vec(0u8..5, 0..10),
        seed in any::<u64>(),
    ) {
        let sys = ring();
        let exec = random_execution(&feeds, seed);
        let sched = exec.schedule();
        let left_cell = Cell { index: 0 };
        prop_assert_eq!(
            project_schedule(&left_cell, &sched),
            sys.project_left(&exec).schedule()
        );
    }

    /// The composition's behavior never contains actions outside its
    /// external signature, and conservation holds: every Hop was preceded
    /// by a Feed, every Eat by a holding state.
    #[test]
    fn behaviors_are_external_and_conserving(
        feeds in prop::collection::vec(0u8..5, 0..10),
        seed in any::<u64>(),
    ) {
        let sys = ring();
        let exec = random_execution(&feeds, seed);
        let beh = behavior_of_schedule(&sys, &exec.schedule());
        // All actions of this system are external, so beh == sched.
        prop_assert_eq!(beh.len(), exec.len());
        let mut fed = 0i64;
        let mut consumed = 0i64;
        for a in &beh {
            match a {
                Act::Feed(_) => fed += 1,
                Act::Eat(_) => consumed += 1,
                Act::Hop(_) => {}
            }
            prop_assert!(consumed <= fed, "consumed a token never fed");
        }
    }

    /// Fair runs with no pending input quiesce with no tokens held
    /// (every fed token is eventually eaten — the fairness guarantee).
    #[test]
    fn fair_runs_drain_all_tokens(
        feeds in prop::collection::vec(0u8..5, 0..10),
        seed in any::<u64>(),
    ) {
        let sys = ring();
        let mut exec = FairExecutor::new(seed, 10_000);
        let start = sys.start_states().remove(0);
        let script = EnvScript::with_gap(feeds.iter().map(|v| Act::Feed(*v)).collect(), 1);
        let out = exec.run(&sys, start, script);
        prop_assert!(out.quiescent);
        let last = out.execution.last_state();
        prop_assert_eq!(last.left, None);
        prop_assert_eq!(last.right, None);
    }

    /// Lemma 2.3/2.4 (pasting, restricted form): replaying the composite
    /// schedule through fresh component states step by step succeeds — the
    /// composite schedule *is* consistent with both components.
    #[test]
    fn composite_schedules_replay_through_components(
        feeds in prop::collection::vec(0u8..5, 0..10),
        seed in any::<u64>(),
    ) {
        let exec = random_execution(&feeds, seed);
        for cell in [Cell { index: 0 }, Cell { index: 1 }] {
            let mut s = cell.start_states().remove(0);
            for a in exec.schedule() {
                if cell.in_signature(&a) {
                    let next = cell.step_first(&s, &a);
                    prop_assert!(next.is_some(), "{a:?} rejected during replay");
                    s = next.expect("checked");
                }
            }
        }
    }
}
