//! Property tests for the state-space explorer: BFS optimality and
//! agreement with a brute-force reference on small random graph automata.

use std::collections::HashSet;

use proptest::prelude::*;

use ioa::action::ActionClass;
use ioa::automaton::{Automaton, TaskId};
use ioa::Explorer;

/// An automaton defined by an explicit random transition table on `n`
/// states: action `Step(k)` moves state `s` to `table[s][k]`.
#[derive(Debug, Clone)]
struct Table {
    table: Vec<Vec<u8>>, // table[state][k] = successor
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Step(usize);

impl Automaton for Table {
    type Action = Step;
    type State = u8;

    fn start_states(&self) -> Vec<u8> {
        vec![0]
    }
    fn classify(&self, _a: &Step) -> Option<ActionClass> {
        Some(ActionClass::Output)
    }
    fn successors(&self, s: &u8, a: &Step) -> Vec<u8> {
        self.table[*s as usize]
            .get(a.0)
            .map(|t| vec![*t])
            .unwrap_or_default()
    }
    fn enabled_local(&self, s: &u8) -> Vec<Step> {
        (0..self.table[*s as usize].len()).map(Step).collect()
    }
    fn task_of(&self, _a: &Step) -> TaskId {
        TaskId(0)
    }
    fn task_count(&self) -> usize {
        1
    }
}

fn table_strategy() -> impl Strategy<Value = Table> {
    // 3..8 states, each with 0..3 outgoing edges.
    (3u8..8).prop_flat_map(|n| {
        prop::collection::vec(prop::collection::vec(0..n, 0..3), n as usize)
            .prop_map(|table| Table { table })
    })
}

/// Reference: BFS distances by hand.
fn distances(t: &Table) -> Vec<Option<usize>> {
    let n = t.table.len();
    let mut dist = vec![None; n];
    dist[0] = Some(0);
    let mut frontier = vec![0usize];
    let mut d = 0usize;
    while !frontier.is_empty() {
        d += 1;
        let mut next = Vec::new();
        for s in frontier {
            for &succ in &t.table[s] {
                if dist[succ as usize].is_none() {
                    dist[succ as usize] = Some(d);
                    next.push(succ as usize);
                }
            }
        }
        frontier = next;
    }
    dist
}

proptest! {
    /// The explorer visits exactly the reachable states.
    #[test]
    fn reachable_set_agrees_with_reference(t in table_strategy()) {
        let reference: HashSet<usize> = distances(&t)
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|_| i))
            .collect();
        let explorer = Explorer::new(t.clone(), |_s: &u8| vec![], 10_000, 10_000);
        let report = explorer.reachable_states();
        prop_assert!(report.holds());
        prop_assert_eq!(report.states_visited, reference.len());
    }

    /// A violation path found by the explorer has exactly the BFS distance
    /// of the violating state (shortest counterexamples).
    #[test]
    fn violation_paths_are_shortest(t in table_strategy(), target in 1u8..8) {
        let dist = distances(&t);
        let explorer = Explorer::new(t.clone(), |_s: &u8| vec![], 10_000, 10_000);
        let report = explorer.check_invariant(|s| *s != target);
        match dist.get(target as usize).copied().flatten() {
            None => prop_assert!(report.violation.is_none(), "unreachable state 'reached'"),
            Some(d) => {
                let (path, state) = report.violation.expect("reachable target not found");
                prop_assert_eq!(state, target);
                prop_assert_eq!(path.len(), d, "path not shortest");
                // The path really leads to the target.
                let mut cur = 0u8;
                for a in &path {
                    cur = t.successors(&cur, a)[0];
                }
                prop_assert_eq!(cur, target);
            }
        }
    }

    /// Environment inputs extend reachability exactly like extra edges.
    #[test]
    fn inputs_extend_reachability(t in table_strategy()) {
        // Allow a "teleport to state 1" input everywhere.
        let n = t.table.len() as u8;
        let base = Explorer::new(t.clone(), |_s: &u8| vec![], 10_000, 10_000)
            .reachable_states()
            .states_visited;
        let with_input = {
            let mut t2 = t.clone();
            // Teleport edge encoded as an extra action on every state.
            for row in &mut t2.table {
                row.push(1 % n);
            }
            Explorer::new(t2, |_s: &u8| vec![], 10_000, 10_000)
                .reachable_states()
                .states_visited
        };
        prop_assert!(with_input >= base);
    }
}
