//! Schedule modules: problem specifications as sets of action sequences
//! (paper §2.3–2.4).
//!
//! A schedule module is a signature plus a set of schedules. An automaton
//! `A` *solves* a schedule module `H` when `fairbehs(A) ⊆ behs(H)`. Since a
//! set of (possibly infinite) sequences is not directly representable, a
//! [`ScheduleModule`] here is a *decision procedure on finite traces*,
//! returning a structured [`Verdict`].
//!
//! Safety properties are decidable on finite prefixes. Liveness properties
//! (like the paper's PL6 and DL8) are checked under the *complete-trace
//! convention*: when the caller asserts that the finite trace is the whole
//! behavior of a fair execution that ended quiescent, "eventually" must have
//! happened within the trace. [`TraceKind`] records which convention
//! applies.

use std::fmt;

/// Whether a finite trace is a prefix of an ongoing behavior or the complete
/// behavior of a (quiescent) fair execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// The trace may extend further: only safety properties are judged.
    Prefix,
    /// The trace is complete: liveness obligations must be discharged
    /// within it.
    Complete,
}

/// A structured account of a specification violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated property, e.g. `"DL4"` or `"PL5 (FIFO)"`.
    pub property: &'static str,
    /// Index into the trace where the violation is witnessed, if pointable.
    pub at: Option<usize>,
    /// Human-readable explanation.
    pub reason: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.at {
            Some(i) => write!(
                f,
                "{} violated at event {}: {}",
                self.property, i, self.reason
            ),
            None => write!(f, "{} violated: {}", self.property, self.reason),
        }
    }
}

/// The outcome of checking a finite trace against a schedule module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The trace is in (a prefix of a member of) the module's schedule set.
    Satisfied,
    /// The module's hypotheses do not hold (e.g. the environment violated
    /// well-formedness), so the specification imposes no constraint and the
    /// trace is vacuously allowed. The violation explains which hypothesis
    /// failed.
    Vacuous(Violation),
    /// The trace is not allowed by the module.
    Violated(Violation),
}

impl Verdict {
    /// `true` for [`Verdict::Satisfied`] and [`Verdict::Vacuous`] — the
    /// trace is allowed by the module.
    #[must_use]
    pub fn is_allowed(&self) -> bool {
        !matches!(self, Verdict::Violated(_))
    }

    /// Returns the violation if the verdict is [`Verdict::Violated`].
    #[must_use]
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            Verdict::Violated(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Satisfied => f.write_str("satisfied"),
            Verdict::Vacuous(v) => write!(f, "vacuous ({v})"),
            Verdict::Violated(v) => write!(f, "violated ({v})"),
        }
    }
}

/// A problem specification: decides membership of finite traces.
///
/// Implementors must be *prefix-consistent* for safety: if
/// `check(t, Prefix)` is violated then so is every extension. The
/// workspace's property tests exercise this.
pub trait ScheduleModule {
    /// The action universe the module's schedules draw from.
    type Action;

    /// Checks a finite trace against the module.
    fn check(&self, trace: &[Self::Action], kind: TraceKind) -> Verdict;

    /// Convenience: `true` if the complete trace is allowed.
    fn allows(&self, trace: &[Self::Action]) -> bool {
        self.check(trace, TraceKind::Complete).is_allowed()
    }
}

/// Checks that an automaton's sampled fair behaviors are allowed by a
/// schedule module — a finite-sample refutation procedure for the paper's
/// `A solves H` (§2.4). Returns the first disallowed behavior.
///
/// This cannot *prove* `solves` (that needs proof, which is the paper's
/// point); it is used in tests to gain confidence in positive claims and in
/// the impossibility engines to *certify* counterexamples.
pub fn first_disallowed<'a, H, I>(
    module: &H,
    behaviors: I,
    kind: TraceKind,
) -> Option<(&'a [H::Action], Violation)>
where
    H: ScheduleModule,
    I: IntoIterator<Item = &'a [H::Action]>,
    H::Action: 'a,
{
    for beh in behaviors {
        if let Verdict::Violated(v) = module.check(beh, kind) {
            return Some((beh, v));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy spec: every `1` must be preceded by a `0`; complete traces must
    /// end with `9` ("liveness").
    struct Toy;
    impl ScheduleModule for Toy {
        type Action = u8;

        fn check(&self, trace: &[u8], kind: TraceKind) -> Verdict {
            let mut seen_zero = false;
            for (i, a) in trace.iter().enumerate() {
                match a {
                    0 => seen_zero = true,
                    1 if !seen_zero => {
                        return Verdict::Violated(Violation {
                            property: "TOY-SAFE",
                            at: Some(i),
                            reason: "1 before any 0".into(),
                        })
                    }
                    _ => {}
                }
            }
            if kind == TraceKind::Complete && trace.last() != Some(&9) {
                return Verdict::Violated(Violation {
                    property: "TOY-LIVE",
                    at: None,
                    reason: "complete trace does not end with 9".into(),
                });
            }
            Verdict::Satisfied
        }
    }

    #[test]
    fn safety_on_prefixes() {
        assert_eq!(Toy.check(&[0, 1], TraceKind::Prefix), Verdict::Satisfied);
        assert!(Toy.check(&[1], TraceKind::Prefix).violation().is_some());
    }

    #[test]
    fn liveness_only_on_complete() {
        assert_eq!(Toy.check(&[0, 1], TraceKind::Prefix), Verdict::Satisfied);
        let v = Toy.check(&[0, 1], TraceKind::Complete);
        assert_eq!(v.violation().unwrap().property, "TOY-LIVE");
        assert!(Toy.allows(&[0, 1, 9]));
    }

    #[test]
    fn verdict_accessors_and_display() {
        let v = Verdict::Violated(Violation {
            property: "P",
            at: Some(3),
            reason: "bad".into(),
        });
        assert!(!v.is_allowed());
        assert!(v.to_string().contains("P violated at event 3"));
        assert!(Verdict::Satisfied.is_allowed());
        assert_eq!(Verdict::Satisfied.to_string(), "satisfied");
        let vac = Verdict::Vacuous(Violation {
            property: "WF",
            at: None,
            reason: "environment misbehaved".into(),
        });
        assert!(vac.is_allowed());
        assert!(vac.to_string().starts_with("vacuous"));
    }

    #[test]
    fn first_disallowed_finds_bad_behavior() {
        let behaviors: Vec<Vec<u8>> = vec![vec![0, 1, 9], vec![1, 9]];
        let found = first_disallowed(
            &Toy,
            behaviors.iter().map(Vec::as_slice),
            TraceKind::Complete,
        );
        let (beh, v) = found.unwrap();
        assert_eq!(beh, &[1, 9]);
        assert_eq!(v.property, "TOY-SAFE");
    }

    #[test]
    fn first_disallowed_none_when_all_good() {
        let behaviors: Vec<Vec<u8>> = vec![vec![0, 9], vec![9]];
        assert!(first_disallowed(
            &Toy,
            behaviors.iter().map(Vec::as_slice),
            TraceKind::Complete
        )
        .is_none());
    }
}
