//! Fair execution of automata (paper §2.2).
//!
//! A fair execution gives fair turns to each class of the task partition:
//! if the execution is infinite, each class either takes infinitely many
//! steps or is disabled infinitely often; if finite, no class is enabled in
//! the final state.
//!
//! [`FairExecutor`] produces finite *fair-so-far* executions by round-robin
//! scheduling over task classes, interleaving environment inputs from an
//! [`EnvScript`]. A run that ends **quiescent** (no locally-controlled
//! action enabled, no pending inputs) is a genuinely fair execution in the
//! paper's sense; a run truncated by the step bound is a fair execution
//! *prefix* (every class got turns at uniform frequency).
//!
//! This is the executable counterpart of Lemma 2.1: from any finite
//! execution and any further sequence of inputs, the executor extends to a
//! run that is fair to every task.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::automaton::{Automaton, TaskId};
use crate::execution::Execution;

/// A script of environment inputs to inject during a run.
///
/// Inputs are injected in order. `gap` controls pacing: the executor
/// performs up to `gap` locally-controlled steps between consecutive
/// injections (0 means inject as fast as possible).
#[derive(Debug, Clone)]
pub struct EnvScript<A> {
    inputs: Vec<A>,
    gap: usize,
}

impl<A> EnvScript<A> {
    /// A script with no inputs: the automaton runs autonomously.
    pub fn empty() -> Self {
        EnvScript {
            inputs: Vec::new(),
            gap: 0,
        }
    }

    /// Injects `inputs` in order, back-to-back.
    pub fn new(inputs: Vec<A>) -> Self {
        EnvScript { inputs, gap: 0 }
    }

    /// Injects `inputs` in order with up to `gap` local steps between
    /// consecutive injections.
    pub fn with_gap(inputs: Vec<A>, gap: usize) -> Self {
        EnvScript { inputs, gap }
    }

    /// Remaining inputs.
    pub fn remaining(&self) -> &[A] {
        &self.inputs
    }

    fn pop(&mut self) -> Option<A>
    where
        A: Clone,
    {
        if self.inputs.is_empty() {
            None
        } else {
            Some(self.inputs.remove(0))
        }
    }
}

impl<A> Default for EnvScript<A> {
    fn default() -> Self {
        EnvScript::empty()
    }
}

/// Result of a [`FairExecutor`] run.
#[derive(Debug, Clone)]
pub struct RunOutcome<A, S> {
    /// The execution produced.
    pub execution: Execution<A, S>,
    /// `true` if the run ended because no locally-controlled action was
    /// enabled and all scripted inputs were consumed — i.e. the finite
    /// execution is fair in the paper's sense.
    pub quiescent: bool,
}

/// Round-robin fair executor with seeded tie-breaking.
///
/// Nondeterminism is resolved in two places: the choice among enabled
/// actions *within* the scheduled task class, and the choice among
/// successors of the chosen action. Both use the seeded RNG, so runs are
/// reproducible.
#[derive(Debug)]
pub struct FairExecutor {
    rng: StdRng,
    max_steps: usize,
}

impl FairExecutor {
    /// Creates an executor with the given RNG seed and step bound.
    pub fn new(seed: u64, max_steps: usize) -> Self {
        FairExecutor {
            rng: StdRng::seed_from_u64(seed),
            max_steps,
        }
    }

    /// Runs `automaton` from `start`, injecting `script` inputs, until
    /// quiescence or the step bound.
    pub fn run<M>(
        &mut self,
        automaton: &M,
        start: M::State,
        mut script: EnvScript<M::Action>,
    ) -> RunOutcome<M::Action, M::State>
    where
        M: Automaton,
    {
        let mut exec = Execution::new(start);
        let tasks = automaton.task_count().max(1);
        let mut next_task = 0usize;
        let mut since_inject = 0usize;
        // Successor scratch, reused across every step of the run.
        let mut succs: Vec<M::State> = Vec::new();

        while exec.len() < self.max_steps {
            // Inject the next scripted input if it is due.
            if !script.remaining().is_empty() && since_inject >= script.gap {
                if let Some(input) = script.pop() {
                    let took = self.take(automaton, &mut exec, input, &mut succs);
                    assert!(
                        took,
                        "input action was not enabled: automaton is not input-enabled"
                    );
                    since_inject = 0;
                    continue;
                }
            }

            // Give the next task class a fair turn: scan classes round-robin
            // until one with an enabled action is found.
            let enabled = automaton.enabled_local(exec.last_state());
            if enabled.is_empty() {
                if script.remaining().is_empty() {
                    return RunOutcome {
                        execution: exec,
                        quiescent: true,
                    };
                }
                // Nothing local to do; force the next injection.
                since_inject = usize::MAX / 2;
                continue;
            }

            let mut stepped = false;
            for offset in 0..tasks {
                let t = TaskId((next_task + offset) % tasks);
                let in_class: Vec<_> = enabled
                    .iter()
                    .filter(|a| automaton.task_of(a) == t)
                    .cloned()
                    .collect();
                if in_class.is_empty() {
                    continue;
                }
                let pick = self.rng.random_range(0..in_class.len());
                let action = in_class[pick].clone();
                let took = self.take(automaton, &mut exec, action, &mut succs);
                debug_assert!(took, "enabled_local returned a non-enabled action");
                next_task = (next_task + offset + 1) % tasks;
                since_inject += 1;
                stepped = true;
                break;
            }
            debug_assert!(stepped, "enabled action belonged to no task class");
            if !stepped {
                break;
            }
        }

        let quiescent =
            script.remaining().is_empty() && !automaton.has_enabled_local(exec.last_state());
        RunOutcome {
            execution: exec,
            quiescent,
        }
    }

    fn take<M>(
        &mut self,
        automaton: &M,
        exec: &mut Execution<M::Action, M::State>,
        action: M::Action,
        succs: &mut Vec<M::State>,
    ) -> bool
    where
        M: Automaton,
    {
        succs.clear();
        automaton.successors_into(exec.last_state(), &action, succs);
        if succs.is_empty() {
            return false;
        }
        let pick = self.rng.random_range(0..succs.len());
        exec.push_unchecked(action, succs.swap_remove(pick));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionClass;

    /// Two independent "ping" tasks; each may fire up to a budget, then the
    /// automaton quiesces. Input `Refill` restores both budgets.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Act {
        Refill,
        Fire(u8), // task index 0 or 1
    }

    #[derive(Clone)]
    struct TwoTasks;
    impl Automaton for TwoTasks {
        type Action = Act;
        type State = [u8; 2];

        fn start_states(&self) -> Vec<Self::State> {
            vec![[3, 3]]
        }
        fn classify(&self, a: &Act) -> Option<ActionClass> {
            Some(match a {
                Act::Refill => ActionClass::Input,
                Act::Fire(_) => ActionClass::Output,
            })
        }
        fn successors(&self, s: &Self::State, a: &Act) -> Vec<Self::State> {
            match a {
                Act::Refill => vec![[3, 3]],
                Act::Fire(i) => {
                    let i = *i as usize;
                    if s[i] > 0 {
                        let mut t = *s;
                        t[i] -= 1;
                        vec![t]
                    } else {
                        vec![]
                    }
                }
            }
        }
        fn enabled_local(&self, s: &Self::State) -> Vec<Act> {
            (0..2u8)
                .filter(|i| s[*i as usize] > 0)
                .map(Act::Fire)
                .collect()
        }
        fn task_of(&self, a: &Act) -> TaskId {
            match a {
                Act::Fire(i) => TaskId(*i as usize),
                Act::Refill => unreachable!("task_of called on input"),
            }
        }
        fn task_count(&self) -> usize {
            2
        }
    }

    #[test]
    fn runs_to_quiescence() {
        let mut ex = FairExecutor::new(0, 1000);
        let out = ex.run(&TwoTasks, [3, 3], EnvScript::empty());
        assert!(out.quiescent);
        assert_eq!(out.execution.len(), 6);
        assert_eq!(*out.execution.last_state(), [0, 0]);
    }

    #[test]
    fn both_tasks_get_turns() {
        let mut ex = FairExecutor::new(42, 1000);
        let out = ex.run(&TwoTasks, [3, 3], EnvScript::empty());
        let sched = out.execution.schedule();
        assert_eq!(sched.iter().filter(|a| **a == Act::Fire(0)).count(), 3);
        assert_eq!(sched.iter().filter(|a| **a == Act::Fire(1)).count(), 3);
        // Round-robin: the two classes alternate while both are enabled.
        assert_ne!(sched[0], sched[1]);
    }

    #[test]
    fn scripted_inputs_are_injected() {
        let mut ex = FairExecutor::new(7, 1000);
        let out = ex.run(&TwoTasks, [0, 0], EnvScript::new(vec![Act::Refill]));
        assert!(out.quiescent);
        assert_eq!(out.execution.action(0), &Act::Refill);
        assert_eq!(out.execution.len(), 7); // refill + 6 fires
    }

    #[test]
    fn gap_paces_injections() {
        let mut ex = FairExecutor::new(7, 1000);
        let out = ex.run(&TwoTasks, [3, 3], EnvScript::with_gap(vec![Act::Refill], 4));
        let sched = out.execution.schedule();
        let refill_at = sched.iter().position(|a| *a == Act::Refill).unwrap();
        assert!(refill_at >= 4, "refill injected too early: {refill_at}");
        assert!(out.quiescent);
    }

    #[test]
    fn step_bound_truncates() {
        let mut ex = FairExecutor::new(0, 3);
        let out = ex.run(&TwoTasks, [3, 3], EnvScript::empty());
        assert!(!out.quiescent);
        assert_eq!(out.execution.len(), 3);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = FairExecutor::new(99, 100).run(&TwoTasks, [3, 3], EnvScript::empty());
        let b = FairExecutor::new(99, 100).run(&TwoTasks, [3, 3], EnvScript::empty());
        assert_eq!(a.execution, b.execution);
    }
}
