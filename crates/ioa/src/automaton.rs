//! The [`Automaton`] trait: explicit-state I/O automata (paper §2.2).

use std::fmt::Debug;
use std::hash::Hash;

use crate::action::{ActionClass, Signature};

/// Identifier of an equivalence class of the task partition `part(A)`.
///
/// The partition groups the locally-controlled actions of an automaton into
/// at most countably many classes; a *fair* execution gives fair turns to
/// each class (paper §2.2). `TaskId(i)` names the `i`-th class,
/// `0 <= i < task_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

/// An input/output automaton over a shared action universe.
///
/// This mirrors the five components of the paper's definition (§2.2):
///
/// 1. the action signature, via [`classify`](Automaton::classify);
/// 2. the (implicit) state set, the associated type [`State`](Automaton::State);
/// 3. the start states, [`start_states`](Automaton::start_states);
/// 4. the transition relation, [`successors`](Automaton::successors);
/// 5. the task partition, [`task_of`](Automaton::task_of) /
///    [`task_count`](Automaton::task_count).
///
/// # Input-enabledness
///
/// The model requires that *every input action is enabled in every state*.
/// Implementations must therefore return a non-empty successor list from
/// [`successors`](Automaton::successors) whenever the action classifies as
/// [`ActionClass::Input`]. [`check_input_enabled`](Automaton::check_input_enabled)
/// spot-checks this on given states and is exercised by this workspace's
/// property tests.
///
/// # Nondeterminism
///
/// `successors` returns *all* post-states of the step `(s, a, s')`. Executors
/// resolve the choice (randomly, or deliberately — the impossibility-proof
/// engines pick specific successors, as the paper's constructions do).
pub trait Automaton {
    /// The action universe this automaton's signature draws from.
    type Action: Clone + Eq + Debug;
    /// Automaton states. Cloneable values so executions can be recorded.
    type State: Clone + Eq + Debug;

    /// The set `start(A)` of start states; must be non-empty.
    fn start_states(&self) -> Vec<Self::State>;

    /// Classifies `action` within this automaton's signature, or `None` if
    /// the action is not in the signature at all.
    fn classify(&self, action: &Self::Action) -> Option<ActionClass>;

    /// All states `s'` with `(state, action, s') ∈ steps(A)`.
    ///
    /// Empty means the action is not enabled in `state` — which is only
    /// permitted for locally-controlled actions (inputs are always enabled).
    fn successors(&self, state: &Self::State, action: &Self::Action) -> Vec<Self::State>;

    /// The locally-controlled actions enabled in `state`.
    ///
    /// Every action returned must classify as output or internal and have at
    /// least one successor from `state`.
    fn enabled_local(&self, state: &Self::State) -> Vec<Self::Action>;

    /// The task-partition class of a locally-controlled action.
    ///
    /// Only called for actions that classify as output or internal; the
    /// returned id must be `< task_count()`. Actions related by the
    /// partition share a `TaskId`.
    fn task_of(&self, action: &Self::Action) -> TaskId;

    /// Number of classes in the task partition.
    fn task_count(&self) -> usize;

    /// Convenience: `true` if the action is in the signature.
    fn in_signature(&self, action: &Self::Action) -> bool {
        self.classify(action).is_some()
    }

    /// Convenience: `true` if `action` has at least one successor from
    /// `state`.
    fn is_enabled(&self, state: &Self::State, action: &Self::Action) -> bool {
        !self.successors(state, action).is_empty()
    }

    /// Takes one step, resolving nondeterminism by picking the first
    /// successor. Returns `None` if the action is not enabled.
    ///
    /// Deterministic automata (one successor per step, one start state) can
    /// be driven entirely through `step_first`.
    fn step_first(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State> {
        self.successors(state, action).into_iter().next()
    }

    /// Spot-checks determinism: a unique start state and at most one
    /// successor for every `(state, action)` pair in the given samples.
    /// Returns the first nondeterministic pair found, or `Err(())` if the
    /// start state is not unique.
    ///
    /// The impossibility engines assume deterministic protocols (they
    /// replay recorded executions); this audit lets callers fail early
    /// with a clear message instead of diverging mid-replay.
    ///
    /// # Errors
    ///
    /// `Err(())` when `start_states().len() != 1`.
    #[allow(clippy::result_unit_err, clippy::type_complexity)]
    fn check_deterministic<'a>(
        &self,
        states: &'a [Self::State],
        actions: &'a [Self::Action],
    ) -> Result<Option<(&'a Self::State, &'a Self::Action)>, ()> {
        if self.start_states().len() != 1 {
            return Err(());
        }
        for s in states {
            for a in actions {
                if self.successors(s, a).len() > 1 {
                    return Ok(Some((s, a)));
                }
            }
        }
        Ok(None)
    }

    /// Spot-checks input-enabledness: every action of `inputs` that
    /// classifies as an input must be enabled in every state of `states`.
    /// Returns the first violation as `(state, action)`.
    fn check_input_enabled<'a>(
        &self,
        states: &'a [Self::State],
        inputs: &'a [Self::Action],
    ) -> Option<(&'a Self::State, &'a Self::Action)> {
        for s in states {
            for a in inputs {
                if self.classify(a) == Some(ActionClass::Input) && !self.is_enabled(s, a) {
                    return Some((s, a));
                }
            }
        }
        None
    }

    /// This automaton's signature as a detached [`Signature`] value.
    fn signature(&self) -> Signature<Self::Action>
    where
        Self: Sized + Clone + Send + Sync + 'static,
        Self::Action: 'static,
    {
        let this = self.clone();
        Signature::new(move |a| this.classify(a))
    }
}

/// Blanket impl so `&A` can be used wherever an automaton is consumed by
/// value (executors take `&A` internally; this keeps APIs flexible).
impl<A: Automaton + ?Sized> Automaton for &A {
    type Action = A::Action;
    type State = A::State;

    fn start_states(&self) -> Vec<Self::State> {
        (**self).start_states()
    }
    fn classify(&self, action: &Self::Action) -> Option<ActionClass> {
        (**self).classify(action)
    }
    fn successors(&self, state: &Self::State, action: &Self::Action) -> Vec<Self::State> {
        (**self).successors(state, action)
    }
    fn enabled_local(&self, state: &Self::State) -> Vec<Self::Action> {
        (**self).enabled_local(state)
    }
    fn task_of(&self, action: &Self::Action) -> TaskId {
        (**self).task_of(action)
    }
    fn task_count(&self) -> usize {
        (**self).task_count()
    }
}

/// A state paired with a hash requirement, for algorithms that deduplicate
/// states (reachability searches in tests).
pub trait HashState: Automaton
where
    Self::State: Hash,
{
}
impl<A: Automaton> HashState for A where A::State: Hash {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Modulo-3 counter. Input `Reset`, output `Tick`.
    #[derive(Clone)]
    struct Counter;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Act {
        Reset,
        Tick,
    }

    impl Automaton for Counter {
        type Action = Act;
        type State = u8;

        fn start_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn classify(&self, a: &Act) -> Option<ActionClass> {
            Some(match a {
                Act::Reset => ActionClass::Input,
                Act::Tick => ActionClass::Output,
            })
        }
        fn successors(&self, s: &u8, a: &Act) -> Vec<u8> {
            match a {
                Act::Reset => vec![0],
                Act::Tick => vec![(s + 1) % 3],
            }
        }
        fn enabled_local(&self, _s: &u8) -> Vec<Act> {
            vec![Act::Tick]
        }
        fn task_of(&self, _a: &Act) -> TaskId {
            TaskId(0)
        }
        fn task_count(&self) -> usize {
            1
        }
    }

    #[test]
    fn stepping() {
        let c = Counter;
        let s0 = c.start_states()[0];
        let s1 = c.step_first(&s0, &Act::Tick).unwrap();
        assert_eq!(s1, 1);
        let s2 = c.step_first(&s1, &Act::Reset).unwrap();
        assert_eq!(s2, 0);
    }

    #[test]
    fn input_enabled_check_passes() {
        let c = Counter;
        assert!(c
            .check_input_enabled(&[0, 1, 2], &[Act::Reset, Act::Tick])
            .is_none());
    }

    #[test]
    fn enabledness() {
        let c = Counter;
        assert!(c.is_enabled(&0, &Act::Tick));
        assert!(c.in_signature(&Act::Reset));
    }

    #[test]
    fn reference_automaton_delegates() {
        let c = Counter;
        let r = &c;
        assert_eq!(r.start_states(), vec![0]);
        assert_eq!(r.task_count(), 1);
        assert_eq!(r.step_first(&0, &Act::Tick), Some(1));
        assert_eq!(r.classify(&Act::Tick), Some(ActionClass::Output));
        assert_eq!(r.enabled_local(&2), vec![Act::Tick]);
        assert_eq!(r.task_of(&Act::Tick), TaskId(0));
    }

    #[test]
    fn determinism_audit() {
        let c = Counter;
        assert_eq!(
            c.check_deterministic(&[0, 1, 2], &[Act::Reset, Act::Tick]),
            Ok(None)
        );

        /// Coin: two successors for Flip.
        #[derive(Clone)]
        struct Coin;
        impl Automaton for Coin {
            type Action = Act;
            type State = u8;
            fn start_states(&self) -> Vec<u8> {
                vec![0]
            }
            fn classify(&self, _a: &Act) -> Option<ActionClass> {
                Some(ActionClass::Input)
            }
            fn successors(&self, _s: &u8, _a: &Act) -> Vec<u8> {
                vec![0, 1]
            }
            fn enabled_local(&self, _s: &u8) -> Vec<Act> {
                vec![]
            }
            fn task_of(&self, _a: &Act) -> TaskId {
                TaskId(0)
            }
            fn task_count(&self) -> usize {
                1
            }
        }
        let found = Coin.check_deterministic(&[0], &[Act::Reset]).unwrap();
        assert!(found.is_some());
    }

    #[test]
    fn detached_signature() {
        let sig = Counter.signature();
        assert_eq!(sig.classify(&Act::Reset), Some(ActionClass::Input));
        assert!(sig.is_external(&Act::Tick));
    }
}
