//! The [`Automaton`] trait: explicit-state I/O automata (paper §2.2).

use std::fmt::Debug;
use std::hash::Hash;
use std::ops::ControlFlow;

use crate::action::{ActionClass, Signature};

/// Identifier of an equivalence class of the task partition `part(A)`.
///
/// The partition groups the locally-controlled actions of an automaton into
/// at most countably many classes; a *fair* execution gives fair turns to
/// each class (paper §2.2). `TaskId(i)` names the `i`-th class,
/// `0 <= i < task_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

/// An input/output automaton over a shared action universe.
///
/// This mirrors the five components of the paper's definition (§2.2):
///
/// 1. the action signature, via [`classify`](Automaton::classify);
/// 2. the (implicit) state set, the associated type [`State`](Automaton::State);
/// 3. the start states, [`start_states`](Automaton::start_states);
/// 4. the transition relation, [`successors`](Automaton::successors);
/// 5. the task partition, [`task_of`](Automaton::task_of) /
///    [`task_count`](Automaton::task_count).
///
/// # Input-enabledness
///
/// The model requires that *every input action is enabled in every state*.
/// Implementations must therefore return a non-empty successor list from
/// [`successors`](Automaton::successors) whenever the action classifies as
/// [`ActionClass::Input`]. [`check_input_enabled`](Automaton::check_input_enabled)
/// spot-checks this on given states and is exercised by this workspace's
/// property tests.
///
/// # Nondeterminism
///
/// `successors` returns *all* post-states of the step `(s, a, s')`. Executors
/// resolve the choice (randomly, or deliberately — the impossibility-proof
/// engines pick specific successors, as the paper's constructions do).
pub trait Automaton {
    /// The action universe this automaton's signature draws from.
    type Action: Clone + Eq + Debug;
    /// Automaton states. Cloneable so executions can be recorded, and
    /// hashable so every execution layer — explorer visited sets,
    /// [`StateTable`](crate::intern::StateTable) arenas,
    /// [`InternedSeq`](crate::intern::InternedSeq) recordings — can intern
    /// states instead of storing copies.
    type State: Clone + Eq + Hash + Debug;

    /// The set `start(A)` of start states; must be non-empty.
    fn start_states(&self) -> Vec<Self::State>;

    /// Classifies `action` within this automaton's signature, or `None` if
    /// the action is not in the signature at all.
    fn classify(&self, action: &Self::Action) -> Option<ActionClass>;

    /// All states `s'` with `(state, action, s') ∈ steps(A)`.
    ///
    /// Empty means the action is not enabled in `state` — which is only
    /// permitted for locally-controlled actions (inputs are always enabled).
    fn successors(&self, state: &Self::State, action: &Self::Action) -> Vec<Self::State>;

    /// The locally-controlled actions enabled in `state`.
    ///
    /// Every action returned must classify as output or internal and have at
    /// least one successor from `state`.
    fn enabled_local(&self, state: &Self::State) -> Vec<Self::Action>;

    /// The task-partition class of a locally-controlled action.
    ///
    /// Only called for actions that classify as output or internal; the
    /// returned id must be `< task_count()`. Actions related by the
    /// partition share a `TaskId`.
    fn task_of(&self, action: &Self::Action) -> TaskId;

    /// Number of classes in the task partition.
    fn task_count(&self) -> usize;

    /// Visits every successor of `(state, action)` in the same order
    /// [`successors`](Automaton::successors) would return them, stopping
    /// early when `f` breaks. Returns whatever the last `f` call returned.
    ///
    /// This is the **single override point** for allocation-free
    /// transitions: [`successors_into`](Automaton::successors_into),
    /// [`is_enabled`](Automaton::is_enabled) and
    /// [`step_first`](Automaton::step_first) are all derived from it, so an
    /// automaton that overrides it (the protocol zoo, the channels, and
    /// [`Compose2`](crate::composition::Compose2) do) gets a Vec-free hot
    /// path everywhere at once. Overrides must enumerate **exactly** the
    /// `successors` list — same states, same order — since executors pick
    /// successors by position.
    fn try_for_each_successor(
        &self,
        state: &Self::State,
        action: &Self::Action,
        f: &mut dyn FnMut(Self::State) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        for s in self.successors(state, action) {
            f(s)?;
        }
        ControlFlow::Continue(())
    }

    /// Appends all successors of `(state, action)` to `out` — the
    /// buffer-reuse form of [`successors`](Automaton::successors). Callers
    /// own the buffer lifecycle (typically `clear()` + `successors_into` in
    /// a loop), so steady-state stepping performs no allocation once the
    /// buffer has grown to its high-water mark.
    fn successors_into(
        &self,
        state: &Self::State,
        action: &Self::Action,
        out: &mut Vec<Self::State>,
    ) {
        let _ = self.try_for_each_successor(state, action, &mut |s| {
            out.push(s);
            ControlFlow::Continue(())
        });
    }

    /// Visits every enabled locally-controlled action in the same order
    /// [`enabled_local`](Automaton::enabled_local) would return them,
    /// stopping early when `f` breaks — the allocation-free form of
    /// `enabled_local` for automata that override it.
    fn for_each_enabled_local(
        &self,
        state: &Self::State,
        f: &mut dyn FnMut(Self::Action) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        for a in self.enabled_local(state) {
            f(a)?;
        }
        ControlFlow::Continue(())
    }

    /// Convenience: `true` if some locally-controlled action is enabled —
    /// the quiescence test, without materializing the enabled set.
    fn has_enabled_local(&self, state: &Self::State) -> bool {
        self.for_each_enabled_local(state, &mut |_| ControlFlow::Break(()))
            .is_break()
    }

    /// Convenience: `true` if the action is in the signature.
    fn in_signature(&self, action: &Self::Action) -> bool {
        self.classify(action).is_some()
    }

    /// Convenience: `true` if `action` has at least one successor from
    /// `state`. Short-circuits on the first successor found instead of
    /// materializing the full list.
    fn is_enabled(&self, state: &Self::State, action: &Self::Action) -> bool {
        self.try_for_each_successor(state, action, &mut |_| ControlFlow::Break(()))
            .is_break()
    }

    /// Takes one step, resolving nondeterminism by picking the first
    /// successor. Returns `None` if the action is not enabled. Stops
    /// enumerating after the first successor.
    ///
    /// Deterministic automata (one successor per step, one start state) can
    /// be driven entirely through `step_first`.
    fn step_first(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State> {
        let mut first = None;
        let _ = self.try_for_each_successor(state, action, &mut |s| {
            first = Some(s);
            ControlFlow::Break(())
        });
        first
    }

    /// Spot-checks determinism: a unique start state and at most one
    /// successor for every `(state, action)` pair in the given samples.
    /// Returns the first nondeterministic pair found, or `Err(())` if the
    /// start state is not unique.
    ///
    /// The impossibility engines assume deterministic protocols (they
    /// replay recorded executions); this audit lets callers fail early
    /// with a clear message instead of diverging mid-replay.
    ///
    /// # Errors
    ///
    /// `Err(())` when `start_states().len() != 1`.
    #[allow(clippy::result_unit_err, clippy::type_complexity)]
    fn check_deterministic<'a>(
        &self,
        states: &'a [Self::State],
        actions: &'a [Self::Action],
    ) -> Result<Option<(&'a Self::State, &'a Self::Action)>, ()> {
        if self.start_states().len() != 1 {
            return Err(());
        }
        for s in states {
            for a in actions {
                // Stop enumerating at the second successor — the audit
                // only needs to know whether more than one exists.
                let mut seen = 0u32;
                let two = self
                    .try_for_each_successor(s, a, &mut |_| {
                        seen += 1;
                        if seen > 1 {
                            ControlFlow::Break(())
                        } else {
                            ControlFlow::Continue(())
                        }
                    })
                    .is_break();
                if two {
                    return Ok(Some((s, a)));
                }
            }
        }
        Ok(None)
    }

    /// Spot-checks input-enabledness: every action of `inputs` that
    /// classifies as an input must be enabled in every state of `states`.
    /// Returns the first violation as `(state, action)`.
    fn check_input_enabled<'a>(
        &self,
        states: &'a [Self::State],
        inputs: &'a [Self::Action],
    ) -> Option<(&'a Self::State, &'a Self::Action)> {
        for s in states {
            for a in inputs {
                if self.classify(a) == Some(ActionClass::Input) && !self.is_enabled(s, a) {
                    return Some((s, a));
                }
            }
        }
        None
    }

    /// This automaton's signature as a detached [`Signature`] value.
    fn signature(&self) -> Signature<Self::Action>
    where
        Self: Sized + Clone + Send + Sync + 'static,
        Self::Action: 'static,
    {
        let this = self.clone();
        Signature::new(move |a| this.classify(a))
    }
}

/// Blanket impl so `&A` can be used wherever an automaton is consumed by
/// value (executors take `&A` internally; this keeps APIs flexible).
impl<A: Automaton + ?Sized> Automaton for &A {
    type Action = A::Action;
    type State = A::State;

    fn start_states(&self) -> Vec<Self::State> {
        (**self).start_states()
    }
    fn classify(&self, action: &Self::Action) -> Option<ActionClass> {
        (**self).classify(action)
    }
    fn successors(&self, state: &Self::State, action: &Self::Action) -> Vec<Self::State> {
        (**self).successors(state, action)
    }
    fn enabled_local(&self, state: &Self::State) -> Vec<Self::Action> {
        (**self).enabled_local(state)
    }
    fn task_of(&self, action: &Self::Action) -> TaskId {
        (**self).task_of(action)
    }
    fn task_count(&self) -> usize {
        (**self).task_count()
    }
    // Forward the hot-path defaults explicitly so a reference does not
    // silently fall back to the allocating defaults when the underlying
    // automaton overrides them.
    fn try_for_each_successor(
        &self,
        state: &Self::State,
        action: &Self::Action,
        f: &mut dyn FnMut(Self::State) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        (**self).try_for_each_successor(state, action, f)
    }
    fn successors_into(
        &self,
        state: &Self::State,
        action: &Self::Action,
        out: &mut Vec<Self::State>,
    ) {
        (**self).successors_into(state, action, out);
    }
    fn for_each_enabled_local(
        &self,
        state: &Self::State,
        f: &mut dyn FnMut(Self::Action) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        (**self).for_each_enabled_local(state, f)
    }
    fn has_enabled_local(&self, state: &Self::State) -> bool {
        (**self).has_enabled_local(state)
    }
    fn is_enabled(&self, state: &Self::State, action: &Self::Action) -> bool {
        (**self).is_enabled(state, action)
    }
    fn step_first(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State> {
        (**self).step_first(state, action)
    }
    fn in_signature(&self, action: &Self::Action) -> bool {
        (**self).in_signature(action)
    }
}

/// A state paired with a hash requirement, for algorithms that deduplicate
/// states (reachability searches in tests).
pub trait HashState: Automaton
where
    Self::State: Hash,
{
}
impl<A: Automaton> HashState for A where A::State: Hash {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Modulo-3 counter. Input `Reset`, output `Tick`.
    #[derive(Clone)]
    struct Counter;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Act {
        Reset,
        Tick,
    }

    impl Automaton for Counter {
        type Action = Act;
        type State = u8;

        fn start_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn classify(&self, a: &Act) -> Option<ActionClass> {
            Some(match a {
                Act::Reset => ActionClass::Input,
                Act::Tick => ActionClass::Output,
            })
        }
        fn successors(&self, s: &u8, a: &Act) -> Vec<u8> {
            match a {
                Act::Reset => vec![0],
                Act::Tick => vec![(s + 1) % 3],
            }
        }
        fn enabled_local(&self, _s: &u8) -> Vec<Act> {
            vec![Act::Tick]
        }
        fn task_of(&self, _a: &Act) -> TaskId {
            TaskId(0)
        }
        fn task_count(&self) -> usize {
            1
        }
    }

    #[test]
    fn stepping() {
        let c = Counter;
        let s0 = c.start_states()[0];
        let s1 = c.step_first(&s0, &Act::Tick).unwrap();
        assert_eq!(s1, 1);
        let s2 = c.step_first(&s1, &Act::Reset).unwrap();
        assert_eq!(s2, 0);
    }

    #[test]
    fn input_enabled_check_passes() {
        let c = Counter;
        assert!(c
            .check_input_enabled(&[0, 1, 2], &[Act::Reset, Act::Tick])
            .is_none());
    }

    #[test]
    fn enabledness() {
        let c = Counter;
        assert!(c.is_enabled(&0, &Act::Tick));
        assert!(c.in_signature(&Act::Reset));
    }

    #[test]
    fn reference_automaton_delegates() {
        let c = Counter;
        let r = &c;
        assert_eq!(r.start_states(), vec![0]);
        assert_eq!(r.task_count(), 1);
        assert_eq!(r.step_first(&0, &Act::Tick), Some(1));
        assert_eq!(r.classify(&Act::Tick), Some(ActionClass::Output));
        assert_eq!(r.enabled_local(&2), vec![Act::Tick]);
        assert_eq!(r.task_of(&Act::Tick), TaskId(0));
    }

    #[test]
    fn determinism_audit() {
        let c = Counter;
        assert_eq!(
            c.check_deterministic(&[0, 1, 2], &[Act::Reset, Act::Tick]),
            Ok(None)
        );

        /// Coin: two successors for Flip.
        #[derive(Clone)]
        struct Coin;
        impl Automaton for Coin {
            type Action = Act;
            type State = u8;
            fn start_states(&self) -> Vec<u8> {
                vec![0]
            }
            fn classify(&self, _a: &Act) -> Option<ActionClass> {
                Some(ActionClass::Input)
            }
            fn successors(&self, _s: &u8, _a: &Act) -> Vec<u8> {
                vec![0, 1]
            }
            fn enabled_local(&self, _s: &u8) -> Vec<Act> {
                vec![]
            }
            fn task_of(&self, _a: &Act) -> TaskId {
                TaskId(0)
            }
            fn task_count(&self) -> usize {
                1
            }
        }
        let found = Coin.check_deterministic(&[0], &[Act::Reset]).unwrap();
        assert!(found.is_some());
    }

    #[test]
    fn buffer_reuse_and_callback_defaults_match_vec_apis() {
        let c = Counter;
        let mut buf = Vec::new();
        c.successors_into(&1, &Act::Tick, &mut buf);
        assert_eq!(buf, c.successors(&1, &Act::Tick));
        // Append semantics: the caller owns clearing.
        c.successors_into(&1, &Act::Reset, &mut buf);
        assert_eq!(buf, vec![2, 0]);

        let mut seen = Vec::new();
        let flow = c.for_each_enabled_local(&0, &mut |a| {
            seen.push(a);
            ControlFlow::Continue(())
        });
        assert_eq!(flow, ControlFlow::Continue(()));
        assert_eq!(seen, c.enabled_local(&0));
        assert!(c.has_enabled_local(&0));
    }

    #[test]
    fn is_enabled_short_circuits_enumeration() {
        /// Two successors; counts how many the visitor materialized.
        #[derive(Clone)]
        struct Pair2(std::sync::Arc<std::sync::atomic::AtomicUsize>);
        impl Automaton for Pair2 {
            type Action = Act;
            type State = u8;
            fn start_states(&self) -> Vec<u8> {
                vec![0]
            }
            fn classify(&self, _a: &Act) -> Option<ActionClass> {
                Some(ActionClass::Input)
            }
            fn successors(&self, _s: &u8, _a: &Act) -> Vec<u8> {
                vec![0, 1]
            }
            fn try_for_each_successor(
                &self,
                _s: &u8,
                _a: &Act,
                f: &mut dyn FnMut(u8) -> ControlFlow<()>,
            ) -> ControlFlow<()> {
                for s in [0u8, 1] {
                    self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    f(s)?;
                }
                ControlFlow::Continue(())
            }
            fn enabled_local(&self, _s: &u8) -> Vec<Act> {
                vec![]
            }
            fn task_of(&self, _a: &Act) -> TaskId {
                TaskId(0)
            }
            fn task_count(&self) -> usize {
                1
            }
        }

        let made = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let p = Pair2(std::sync::Arc::clone(&made));
        assert!(p.is_enabled(&0, &Act::Reset));
        assert_eq!(
            made.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "is_enabled must stop at the first successor"
        );
        assert_eq!(p.step_first(&0, &Act::Reset), Some(0));
        assert_eq!(
            made.load(std::sync::atomic::Ordering::Relaxed),
            2,
            "step_first must stop at the first successor"
        );
    }

    #[test]
    fn detached_signature() {
        let sig = Counter.signature();
        assert_eq!(sig.classify(&Act::Reset), Some(ActionClass::Input));
        assert!(sig.is_external(&Act::Tick));
    }
}
