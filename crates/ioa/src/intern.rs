//! State interning: dense `u32` ids for explicit-state search.
//!
//! Exhaustive reachability over composed link systems (the E9 sweeps) is
//! dominated by cloning and re-hashing full composite states: a
//! `HashMap<S, _>` visited set stores every state **twice** (once as the
//! map key, once in the exploration arena) and re-hashes it on every
//! probe. [`StateTable`] fixes both costs: states live exactly once in an
//! append-only arena, an open-addressing index maps hashes to arena slots,
//! and everything downstream — frontiers, parent links, cross-shard
//! exchanges — carries copyable [`StateId`]s instead of cloned states.
//!
//! Id stability: ids are assigned in **insertion order** (the arena is
//! append-only, nothing is ever removed), so any interleaving-independent
//! insertion schedule yields interleaving-independent ids. The parallel
//! explorer admits states at layer barriers in a deterministic sorted
//! order, which makes ids — and therefore everything keyed on them —
//! independent of thread count.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hash, Hasher};

/// A fast, **deterministic** build-hasher for small fixed-width keys:
/// the multiply-rotate ("fx") scheme. `RandomState` stays the right
/// default for long-lived interners fed arbitrary input, but per-run
/// tables keyed on tiny `Copy` action values are probed once per
/// observed action — there the SipHash setup cost *is* the hot path.
/// Determinism is a feature for those consumers: identically-fed tables
/// assign identical ids and layouts regardless of process or shard.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher { hash: 0 }
    }
}

/// Hasher half of [`FxBuildHasher`].
#[derive(Debug, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" differ.
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n.into());
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n.into());
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n.into());
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// Dense identifier of an interned state: an index into a
/// [`StateTable`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// The arena index this id names.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

const EMPTY: u32 = u32::MAX;

/// An append-only state interner: arena + open-addressing hash index.
///
/// Each distinct state is stored once; [`intern`](StateTable::intern)
/// returns the existing id on a duplicate. Lookups compare candidates
/// against the arena-resident value (the index itself stores only `u32`
/// slots and cached hashes), so the table adds 12 bytes of overhead per
/// state instead of a second full clone.
pub struct StateTable<S, H = RandomState> {
    /// The arena: `states[id]` is the interned state.
    states: Vec<S>,
    /// Cached hash per arena slot, probed before the full `Eq` check.
    hashes: Vec<u64>,
    /// Open-addressing index into the arena; `EMPTY` marks a free slot.
    /// Length is always a power of two.
    table: Vec<u32>,
    hasher: H,
}

impl<S: Hash + Eq> StateTable<S> {
    /// An empty table with a randomly seeded hasher.
    #[must_use]
    pub fn new() -> Self {
        Self::with_hasher(RandomState::new())
    }
}

impl<S: Hash + Eq, H: BuildHasher + Default> Default for StateTable<S, H> {
    fn default() -> Self {
        Self::with_hasher(H::default())
    }
}

impl<S: Clone, H: Clone> Clone for StateTable<S, H> {
    fn clone(&self) -> Self {
        StateTable {
            states: self.states.clone(),
            hashes: self.hashes.clone(),
            table: self.table.clone(),
            hasher: self.hasher.clone(),
        }
    }
}

impl<S: Hash + Eq, H: BuildHasher> StateTable<S, H> {
    /// An empty table using the given hasher (shared hashers let sharded
    /// consumers route states consistently).
    pub fn with_hasher(hasher: H) -> Self {
        StateTable {
            states: Vec::new(),
            hashes: Vec::new(),
            table: Vec::new(),
            hasher,
        }
    }

    /// Number of distinct states interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state an id names. Panics on a foreign id.
    #[must_use]
    pub fn get(&self, id: StateId) -> &S {
        &self.states[id.index()]
    }

    /// The interned states in id order.
    #[must_use]
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The id of `state` if it is already interned.
    #[must_use]
    pub fn lookup(&self, state: &S) -> Option<StateId> {
        if self.table.is_empty() {
            return None;
        }
        self.find(self.hasher.hash_one(state), state)
    }

    /// Interns a state, returning its id and whether it was new.
    pub fn intern(&mut self, state: S) -> (StateId, bool) {
        let hash = self.hasher.hash_one(&state);
        if let Some(id) = self.find(hash, &state) {
            return (id, false);
        }
        (self.insert_new(hash, state), true)
    }

    /// Interns a state whose hash under this table's hasher the caller
    /// already knows (a sharded front-end sharing the hasher computed it
    /// at claim time). `hash` **must** equal `hasher.hash_one(&state)`;
    /// a wrong hash silently corrupts the index.
    pub fn intern_prehashed(&mut self, hash: u64, state: S) -> (StateId, bool) {
        debug_assert_eq!(
            hash,
            self.hasher.hash_one(&state),
            "prehashed hash mismatch"
        );
        if let Some(id) = self.find(hash, &state) {
            return (id, false);
        }
        (self.insert_new(hash, state), true)
    }

    /// Interns by reference, cloning only on a miss.
    pub fn intern_ref(&mut self, state: &S) -> (StateId, bool)
    where
        S: Clone,
    {
        let hash = self.hasher.hash_one(state);
        if let Some(id) = self.find(hash, state) {
            return (id, false);
        }
        (self.insert_new(hash, state.clone()), true)
    }

    /// Absorbs another table (a per-shard arena, at a merge barrier) into
    /// this one, returning the remap `other id index -> id in self`.
    /// States already present keep their existing ids — merging is
    /// idempotent and never perturbs ids handed out earlier.
    pub fn absorb<H2: BuildHasher>(&mut self, other: StateTable<S, H2>) -> Vec<StateId> {
        other.states.into_iter().map(|s| self.intern(s).0).collect()
    }

    /// Reserves room for at least `additional` more distinct states:
    /// arena, hash cache, and index grow once, up front. A batched
    /// ingest hint — without it a large slice of fresh states pays a
    /// rehash storm of doubling re-insertions mid-stream.
    pub fn reserve(&mut self, additional: usize) {
        self.states.reserve(additional);
        self.hashes.reserve(additional);
        let needed = self.states.len() + additional;
        if (needed + 1) * 8 > self.table.len() * 7 {
            let mut cap = self.table.len().max(16);
            while (needed + 1) * 8 > cap * 7 {
                cap *= 2;
            }
            self.grow_to(cap);
        }
    }

    /// Resident bytes of the interner itself: arena slots, cached hashes,
    /// and index slots. Heap data owned *by* the states (queues, buffers)
    /// is not traversed, so this is a lower bound on total footprint.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.states.capacity() * std::mem::size_of::<S>()
            + self.hashes.capacity() * std::mem::size_of::<u64>()
            + self.table.capacity() * std::mem::size_of::<u32>()
    }

    fn find(&self, hash: u64, state: &S) -> Option<StateId> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let slot = self.table[i];
            if slot == EMPTY {
                return None;
            }
            let idx = slot as usize;
            if self.hashes[idx] == hash && self.states[idx] == *state {
                return Some(StateId(slot));
            }
            i = (i + 1) & mask;
        }
    }

    fn insert_new(&mut self, hash: u64, state: S) -> StateId {
        let id = u32::try_from(self.states.len()).expect("state arena overflowed u32 ids");
        self.states.push(state);
        self.hashes.push(hash);
        // Grow at 7/8 load so probe chains stay short.
        if self.table.is_empty() || (self.states.len() + 1) * 8 > self.table.len() * 7 {
            self.grow();
        } else {
            self.place(hash, id);
        }
        StateId(id)
    }

    fn place(&mut self, hash: u64, id: u32) {
        Self::place_in(&mut self.table, hash, id);
    }

    fn place_in(table: &mut [u32], hash: u64, id: u32) {
        let mask = table.len() - 1;
        let mut i = (hash as usize) & mask;
        while table[i] != EMPTY {
            i = (i + 1) & mask;
        }
        table[i] = id;
    }

    fn grow(&mut self) {
        self.grow_to((self.table.len() * 2).max(16));
    }

    fn grow_to(&mut self, cap: usize) {
        self.table.clear();
        self.table.resize(cap, EMPTY);
        for (idx, &hash) in self.hashes.iter().enumerate() {
            Self::place_in(&mut self.table, hash, idx as u32);
        }
    }
}

impl<S: std::fmt::Debug, H> std::fmt::Debug for StateTable<S, H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateTable")
            .field("len", &self.states.len())
            .field("slots", &self.table.len())
            .finish_non_exhaustive()
    }
}

/// A sequence of (possibly repeating) states stored as ids over a private
/// interner — the memory shape of a recorded execution.
///
/// The impossibility engines replay long executions and keep *every*
/// per-step component state for the §7 equivalence checks; consecutive
/// steps usually leave a given component untouched, so interning collapses
/// the sequence to its handful of distinct states plus 4 bytes per step.
#[derive(Debug)]
pub struct InternedSeq<S, H = RandomState> {
    table: StateTable<S, H>,
    ids: Vec<StateId>,
}

impl<S: Hash + Eq> InternedSeq<S> {
    /// An empty sequence.
    #[must_use]
    pub fn new() -> Self {
        InternedSeq {
            table: StateTable::new(),
            ids: Vec::new(),
        }
    }
}

impl<S: Hash + Eq> Default for InternedSeq<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Hash + Eq, H: BuildHasher> InternedSeq<S, H> {
    /// Appends a state to the sequence, interning it.
    pub fn push(&mut self, state: S) {
        let (id, _) = self.table.intern(state);
        self.ids.push(id);
    }

    /// Sequence length (in steps, not distinct states).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if the sequence has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The state at position `k`.
    #[must_use]
    pub fn get(&self, k: usize) -> &S {
        self.table.get(self.ids[k])
    }

    /// The last state, if any.
    #[must_use]
    pub fn last(&self) -> Option<&S> {
        self.ids.last().map(|&id| self.table.get(id))
    }

    /// The id at position `k` — equal ids mean equal states, so §7's
    /// repeated-state scans compare 4-byte ids instead of full states.
    #[must_use]
    pub fn id_at(&self, k: usize) -> StateId {
        self.ids[k]
    }

    /// Appends a stuttering step: the last entry repeats without hashing
    /// or cloning the state. This is the common case when recording one
    /// component of a composed execution — every step of the *other*
    /// components leaves this one untouched.
    ///
    /// # Panics
    ///
    /// If the sequence is empty (there is nothing to repeat).
    pub fn repeat_last(&mut self) {
        let id = *self.ids.last().expect("repeat_last on an empty sequence");
        self.ids.push(id);
    }

    /// Number of distinct states in the sequence.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.table.len()
    }

    /// Approximate resident bytes: the backing [`StateTable`] plus 4
    /// bytes per recorded step. Same lower-bound caveat as
    /// [`StateTable::approx_bytes`].
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.table.approx_bytes() + self.ids.capacity() * std::mem::size_of::<StateId>()
    }
}

impl<S: Hash + Eq, H: BuildHasher> std::ops::Index<usize> for InternedSeq<S, H> {
    type Output = S;
    fn index(&self, k: usize) -> &S {
        self.get(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_ids_are_dense() {
        let mut t = StateTable::new();
        let (a, fresh_a) = t.intern("alpha".to_string());
        let (b, fresh_b) = t.intern("beta".to_string());
        let (a2, fresh_a2) = t.intern("alpha".to_string());
        assert!(fresh_a && fresh_b && !fresh_a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!((a.0, b.0), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a), "alpha");
        assert_eq!(t.get(b), "beta");
    }

    #[test]
    fn lookup_without_insertion() {
        let mut t = StateTable::new();
        assert_eq!(t.lookup(&7u64), None);
        let (id, _) = t.intern(7u64);
        assert_eq!(t.lookup(&7u64), Some(id));
        assert_eq!(t.lookup(&8u64), None);
    }

    #[test]
    fn intern_ref_clones_only_on_miss() {
        let mut t = StateTable::new();
        let s = vec![1u8, 2, 3];
        let (id, fresh) = t.intern_ref(&s);
        assert!(fresh);
        let (id2, fresh2) = t.intern_ref(&s);
        assert!(!fresh2);
        assert_eq!(id, id2);
    }

    #[test]
    fn survives_growth_past_initial_capacity() {
        let mut t = StateTable::new();
        let ids: Vec<StateId> = (0..10_000u64).map(|n| t.intern(n).0).collect();
        assert_eq!(t.len(), 10_000);
        for (n, id) in ids.iter().enumerate() {
            assert_eq!(*t.get(*id), n as u64);
            assert_eq!(t.lookup(&(n as u64)), Some(*id));
        }
        // Ids are insertion-dense.
        assert!(ids.iter().enumerate().all(|(i, id)| id.index() == i));
    }

    #[test]
    fn absorb_remaps_and_preserves_existing_ids() {
        let mut base = StateTable::new();
        let (a, _) = base.intern("a".to_string());
        let (b, _) = base.intern("b".to_string());

        let mut shard = StateTable::new();
        shard.intern("b".to_string());
        shard.intern("c".to_string());

        let remap = base.absorb(shard);
        assert_eq!(remap[0], b, "duplicate keeps the pre-existing id");
        assert_eq!(remap[1].index(), 2, "fresh state appended");
        assert_eq!(base.get(a), "a");
        assert_eq!(base.len(), 3);
    }

    #[test]
    fn interned_seq_collapses_repeats() {
        let mut seq = InternedSeq::new();
        for k in [0u8, 0, 1, 0, 1, 1, 2] {
            seq.push(k);
        }
        assert_eq!(seq.len(), 7);
        assert_eq!(seq.distinct(), 3);
        assert_eq!(seq[3], 0);
        assert_eq!(seq.last(), Some(&2));
        assert_eq!(seq.id_at(2), seq.id_at(4), "equal states share an id");
        assert_ne!(seq.id_at(0), seq.id_at(6));
    }

    #[test]
    fn approx_bytes_is_nonzero_once_populated() {
        let mut t = StateTable::new();
        t.intern(1u64);
        assert!(t.approx_bytes() >= std::mem::size_of::<u64>());
    }

    #[test]
    fn repeat_last_stutters_without_new_entries() {
        let mut seq = InternedSeq::new();
        seq.push("s0".to_string());
        seq.repeat_last();
        seq.repeat_last();
        seq.push("s1".to_string());
        seq.repeat_last();
        assert_eq!(seq.len(), 5);
        assert_eq!(seq.distinct(), 2);
        assert_eq!(seq.id_at(0), seq.id_at(2));
        assert_eq!(seq.id_at(3), seq.id_at(4));
        assert_eq!(seq[1], "s0");
        assert_eq!(seq.last(), Some(&"s1".to_string()));
        assert!(seq.approx_bytes() >= 5 * std::mem::size_of::<StateId>());
    }

    #[test]
    #[should_panic(expected = "repeat_last on an empty sequence")]
    fn repeat_last_panics_on_empty() {
        InternedSeq::<u8>::new().repeat_last();
    }

    #[test]
    fn fx_hasher_is_deterministic_and_spreads() {
        let h = FxBuildHasher;
        assert_eq!(h.hash_one(42u64), h.hash_one(42u64));
        assert_ne!(h.hash_one(42u64), h.hash_one(43u64));
        // Byte-slice path: length is folded in, so a zero-padded tail
        // does not collide with its extension.
        assert_ne!(h.hash_one([0xabu8, 0xcd]), h.hash_one([0xabu8, 0xcd, 0x00]));
        // Two processes (two builder values) agree — the determinism
        // that makes fx-backed tables shard- and replay-stable.
        assert_eq!(FxBuildHasher.hash_one(7u32), FxBuildHasher.hash_one(7u32));
    }

    #[test]
    fn fx_backed_table_assigns_stable_dense_ids() {
        let mut a: StateTable<u64, FxBuildHasher> = StateTable::default();
        let mut b: StateTable<u64, FxBuildHasher> = StateTable::default();
        for n in 0..1000u64 {
            assert_eq!(a.intern(n * 17), b.intern(n * 17));
        }
        assert_eq!(a.len(), 1000);
        assert!((0..1000u64).all(|n| a.lookup(&(n * 17)) == b.lookup(&(n * 17))));
    }

    #[test]
    fn cloned_table_is_independent() {
        let mut t: StateTable<u64, FxBuildHasher> = StateTable::default();
        let (id, _) = t.intern(5);
        let mut c = t.clone();
        let (id2, fresh) = c.intern(5);
        assert_eq!(id, id2);
        assert!(!fresh);
        c.intern(6);
        assert_eq!(c.len(), 2);
        assert_eq!(t.len(), 1, "clone growth must not touch the original");
        assert_eq!(t.lookup(&6), None);
    }

    #[test]
    fn reserve_presizes_without_changing_ids() {
        let mut plain: StateTable<u64, FxBuildHasher> = StateTable::default();
        let mut reserved: StateTable<u64, FxBuildHasher> = StateTable::default();
        reserved.reserve(10_000);
        let bytes_before = reserved.approx_bytes();
        for n in 0..10_000u64 {
            assert_eq!(plain.intern(n).0, reserved.intern(n).0);
        }
        assert_eq!(
            reserved.approx_bytes(),
            bytes_before,
            "a fully reserved table must not reallocate during ingest"
        );
        // Reserving on a non-empty table keeps existing ids valid.
        let mut t: StateTable<u64, FxBuildHasher> = StateTable::default();
        let (early, _) = t.intern(1);
        t.reserve(5000);
        assert_eq!(t.lookup(&1), Some(early));
    }
}
