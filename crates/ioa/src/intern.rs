//! State interning: dense `u32` ids for explicit-state search.
//!
//! Exhaustive reachability over composed link systems (the E9 sweeps) is
//! dominated by cloning and re-hashing full composite states: a
//! `HashMap<S, _>` visited set stores every state **twice** (once as the
//! map key, once in the exploration arena) and re-hashes it on every
//! probe. [`StateTable`] fixes both costs: states live exactly once in an
//! append-only arena, an open-addressing index maps hashes to arena slots,
//! and everything downstream — frontiers, parent links, cross-shard
//! exchanges — carries copyable [`StateId`]s instead of cloned states.
//!
//! Id stability: ids are assigned in **insertion order** (the arena is
//! append-only, nothing is ever removed), so any interleaving-independent
//! insertion schedule yields interleaving-independent ids. The parallel
//! explorer admits states at layer barriers in a deterministic sorted
//! order, which makes ids — and therefore everything keyed on them —
//! independent of thread count.

use std::collections::hash_map::RandomState;
use std::collections::VecDeque;
use std::hash::{BuildHasher, Hash, Hasher};
use std::os::unix::fs::FileExt;

/// A fast, **deterministic** build-hasher for small fixed-width keys:
/// the multiply-rotate ("fx") scheme. `RandomState` stays the right
/// default for long-lived interners fed arbitrary input, but per-run
/// tables keyed on tiny `Copy` action values are probed once per
/// observed action — there the SipHash setup cost *is* the hot path.
/// Determinism is a feature for those consumers: identically-fed tables
/// assign identical ids and layouts regardless of process or shard.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher { hash: 0 }
    }
}

/// Hasher half of [`FxBuildHasher`].
#[derive(Debug, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" differ.
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n.into());
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n.into());
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n.into());
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// Dense identifier of an interned state: an index into a
/// [`StateTable`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// The arena index this id names.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

const EMPTY: u32 = u32::MAX;

/// An append-only state interner: arena + open-addressing hash index.
///
/// Each distinct state is stored once; [`intern`](StateTable::intern)
/// returns the existing id on a duplicate. Lookups compare candidates
/// against the arena-resident value (the index itself stores only `u32`
/// slots and cached hashes), so the table adds 12 bytes of overhead per
/// state instead of a second full clone.
pub struct StateTable<S, H = RandomState> {
    /// The arena: `states[id]` is the interned state.
    states: Vec<S>,
    /// Cached hash per arena slot, probed before the full `Eq` check.
    hashes: Vec<u64>,
    /// Open-addressing index into the arena; `EMPTY` marks a free slot.
    /// Length is always a power of two.
    table: Vec<u32>,
    hasher: H,
}

impl<S: Hash + Eq> StateTable<S> {
    /// An empty table with a randomly seeded hasher.
    #[must_use]
    pub fn new() -> Self {
        Self::with_hasher(RandomState::new())
    }
}

impl<S: Hash + Eq, H: BuildHasher + Default> Default for StateTable<S, H> {
    fn default() -> Self {
        Self::with_hasher(H::default())
    }
}

impl<S: Clone, H: Clone> Clone for StateTable<S, H> {
    fn clone(&self) -> Self {
        StateTable {
            states: self.states.clone(),
            hashes: self.hashes.clone(),
            table: self.table.clone(),
            hasher: self.hasher.clone(),
        }
    }
}

impl<S: Hash + Eq, H: BuildHasher> StateTable<S, H> {
    /// An empty table using the given hasher (shared hashers let sharded
    /// consumers route states consistently).
    pub fn with_hasher(hasher: H) -> Self {
        StateTable {
            states: Vec::new(),
            hashes: Vec::new(),
            table: Vec::new(),
            hasher,
        }
    }

    /// Number of distinct states interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state an id names. Panics on a foreign id.
    #[must_use]
    pub fn get(&self, id: StateId) -> &S {
        &self.states[id.index()]
    }

    /// The interned states in id order.
    #[must_use]
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The id of `state` if it is already interned.
    #[must_use]
    pub fn lookup(&self, state: &S) -> Option<StateId> {
        if self.table.is_empty() {
            return None;
        }
        self.find(self.hasher.hash_one(state), state)
    }

    /// Interns a state, returning its id and whether it was new.
    pub fn intern(&mut self, state: S) -> (StateId, bool) {
        let hash = self.hasher.hash_one(&state);
        if let Some(id) = self.find(hash, &state) {
            return (id, false);
        }
        (self.insert_new(hash, state), true)
    }

    /// Interns a state whose hash under this table's hasher the caller
    /// already knows (a sharded front-end sharing the hasher computed it
    /// at claim time). `hash` **must** equal `hasher.hash_one(&state)`;
    /// a wrong hash silently corrupts the index.
    pub fn intern_prehashed(&mut self, hash: u64, state: S) -> (StateId, bool) {
        debug_assert_eq!(
            hash,
            self.hasher.hash_one(&state),
            "prehashed hash mismatch"
        );
        if let Some(id) = self.find(hash, &state) {
            return (id, false);
        }
        (self.insert_new(hash, state), true)
    }

    /// The id of `state` when its hash under this table's hasher is
    /// already known (a front-end sharing the hasher computed it at claim
    /// time). `hash` **must** equal `hasher.hash_one(state)`.
    #[must_use]
    pub fn lookup_prehashed(&self, hash: u64, state: &S) -> Option<StateId> {
        debug_assert_eq!(hash, self.hasher.hash_one(state), "prehashed hash mismatch");
        self.find(hash, state)
    }

    /// Interns by reference, cloning only on a miss.
    pub fn intern_ref(&mut self, state: &S) -> (StateId, bool)
    where
        S: Clone,
    {
        let hash = self.hasher.hash_one(state);
        if let Some(id) = self.find(hash, state) {
            return (id, false);
        }
        (self.insert_new(hash, state.clone()), true)
    }

    /// Absorbs another table (a per-shard arena, at a merge barrier) into
    /// this one, returning the remap `other id index -> id in self`.
    /// States already present keep their existing ids — merging is
    /// idempotent and never perturbs ids handed out earlier.
    pub fn absorb<H2: BuildHasher>(&mut self, other: StateTable<S, H2>) -> Vec<StateId> {
        other.states.into_iter().map(|s| self.intern(s).0).collect()
    }

    /// Reserves room for at least `additional` more distinct states:
    /// arena, hash cache, and index grow once, up front. A batched
    /// ingest hint — without it a large slice of fresh states pays a
    /// rehash storm of doubling re-insertions mid-stream.
    pub fn reserve(&mut self, additional: usize) {
        self.states.reserve(additional);
        self.hashes.reserve(additional);
        let needed = self.states.len() + additional;
        if (needed + 1) * 8 > self.table.len() * 7 {
            let mut cap = self.table.len().max(16);
            while (needed + 1) * 8 > cap * 7 {
                cap *= 2;
            }
            self.grow_to(cap);
        }
    }

    /// Resident bytes of the interner itself: arena slots, cached hashes,
    /// and index slots. Heap data owned *by* the states (queues, buffers)
    /// is not traversed, so this is a lower bound on total footprint.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.states.capacity() * std::mem::size_of::<S>()
            + self.hashes.capacity() * std::mem::size_of::<u64>()
            + self.table.capacity() * std::mem::size_of::<u32>()
    }

    fn find(&self, hash: u64, state: &S) -> Option<StateId> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let slot = self.table[i];
            if slot == EMPTY {
                return None;
            }
            let idx = slot as usize;
            if self.hashes[idx] == hash && self.states[idx] == *state {
                return Some(StateId(slot));
            }
            i = (i + 1) & mask;
        }
    }

    fn insert_new(&mut self, hash: u64, state: S) -> StateId {
        let id = u32::try_from(self.states.len()).expect("state arena overflowed u32 ids");
        self.states.push(state);
        self.hashes.push(hash);
        // Grow at 7/8 load so probe chains stay short.
        if self.table.is_empty() || (self.states.len() + 1) * 8 > self.table.len() * 7 {
            self.grow();
        } else {
            self.place(hash, id);
        }
        StateId(id)
    }

    fn place(&mut self, hash: u64, id: u32) {
        Self::place_in(&mut self.table, hash, id);
    }

    fn place_in(table: &mut [u32], hash: u64, id: u32) {
        let mask = table.len() - 1;
        let mut i = (hash as usize) & mask;
        while table[i] != EMPTY {
            i = (i + 1) & mask;
        }
        table[i] = id;
    }

    fn grow(&mut self) {
        self.grow_to((self.table.len() * 2).max(16));
    }

    fn grow_to(&mut self, cap: usize) {
        self.table.clear();
        self.table.resize(cap, EMPTY);
        for (idx, &hash) in self.hashes.iter().enumerate() {
            Self::place_in(&mut self.table, hash, idx as u32);
        }
    }
}

impl<S: std::fmt::Debug, H> std::fmt::Debug for StateTable<S, H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateTable")
            .field("len", &self.states.len())
            .field("slots", &self.table.len())
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Packed state encodings
// ---------------------------------------------------------------------------

/// A compact, canonical byte encoding for explorer states.
///
/// Zoo states are mostly small queues and counters; hashing and storing
/// them as full structs wastes both cycles (padding, pointer-chased
/// `VecDeque` buffers) and arena bytes (`size_of::<S>()` per state
/// regardless of occupancy). A `PackedCodec` implementation flattens a
/// state to a short varint/delta byte string instead; the packed arena
/// ([`PackedTable`]) then hashes and dedups those bytes directly.
///
/// Contract: `encode` is **canonical** — equal states produce identical
/// bytes, distinct states produce distinct bytes (the encoding is
/// self-delimiting and injective) — and `decode` is its exact inverse:
/// `decode(encode(s)) == s` consuming exactly the bytes `encode` wrote.
/// Byte equality of encodings is therefore state equality, which is what
/// lets the packed arena skip `Eq` on decoded values entirely.
///
/// `decode` may panic on malformed input: encodings never leave the
/// process, so corruption is a logic error, not an input error.
pub trait PackedCodec: Sized {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Reconstructs a value, consuming its encoding from the front of
    /// `input`.
    fn decode(input: &mut &[u8]) -> Self;
}

/// Appends `v` to `out` as a LEB128 varint (7 bits per byte, low first).
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Consumes one LEB128 varint from the front of `input`.
///
/// # Panics
///
/// On truncated input (a logic error; see [`PackedCodec`]).
#[inline]
pub fn read_varint(input: &mut &[u8]) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = input.split_first().expect("truncated varint");
        *input = rest;
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Zigzag-folds a signed value so small magnitudes get small varints.
#[inline]
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
#[must_use]
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Delta-encodes an ascending `u64` sequence: count, first value, then
/// successive differences — the shape of sorted id sets
/// (`BTreeSet<Msg>` contents, say), where deltas are tiny varints.
///
/// # Panics
///
/// Debug-asserts that the sequence is ascending.
pub fn write_delta_seq(out: &mut Vec<u8>, len: usize, vals: impl Iterator<Item = u64>) {
    write_varint(out, len as u64);
    let mut prev = 0u64;
    let mut first = true;
    for v in vals {
        if first {
            write_varint(out, v);
            first = false;
        } else {
            debug_assert!(v >= prev, "delta sequence must be ascending");
            write_varint(out, v - prev);
        }
        prev = v;
    }
}

/// Inverse of [`write_delta_seq`]: calls `f` once per decoded value, in
/// order.
pub fn read_delta_seq(input: &mut &[u8], mut f: impl FnMut(u64)) {
    let len = read_varint(input);
    let mut prev = 0u64;
    for i in 0..len {
        let v = if i == 0 {
            read_varint(input)
        } else {
            prev + read_varint(input)
        };
        f(v);
        prev = v;
    }
}

macro_rules! varint_codec {
    ($($t:ty),*) => {$(
        impl PackedCodec for $t {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                write_varint(out, u64::from(*self));
            }
            #[inline]
            fn decode(input: &mut &[u8]) -> Self {
                <$t>::try_from(read_varint(input)).expect("varint out of range")
            }
        }
    )*};
}

varint_codec!(u8, u16, u32, u64);

impl PackedCodec for usize {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, *self as u64);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Self {
        usize::try_from(read_varint(input)).expect("varint out of range")
    }
}

impl PackedCodec for i64 {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, zigzag(*self));
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Self {
        unzigzag(read_varint(input))
    }
}

impl PackedCodec for bool {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Self {
        u8::decode(input) != 0
    }
}

impl<T: PackedCodec> PackedCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Self {
        if bool::decode(input) {
            Some(T::decode(input))
        } else {
            None
        }
    }
}

impl<T: PackedCodec> PackedCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Self {
        let len = read_varint(input) as usize;
        (0..len).map(|_| T::decode(input)).collect()
    }
}

impl<T: PackedCodec> PackedCodec for VecDeque<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Self {
        let len = read_varint(input) as usize;
        (0..len).map(|_| T::decode(input)).collect()
    }
}

impl<A: PackedCodec, B: PackedCodec> PackedCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Self {
        (A::decode(input), B::decode(input))
    }
}

impl<T: PackedCodec, const N: usize> PackedCodec for [T; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in self {
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Self {
        // `from_fn` fills indices in order, matching the encode order.
        std::array::from_fn(|_| T::decode(input))
    }
}

/// Ordered maps encode as a length followed by `(key, value)` pairs in
/// key order — canonical because iteration order is.
impl<K: PackedCodec + Ord, V: PackedCodec> PackedCodec for std::collections::BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Self {
        let len = read_varint(input);
        (0..len)
            .map(|_| (K::decode(input), V::decode(input)))
            .collect()
    }
}

/// Sorted `u64` sets delta-encode like the message sets they usually are.
impl PackedCodec for std::collections::BTreeSet<u64> {
    fn encode(&self, out: &mut Vec<u8>) {
        write_delta_seq(out, self.len(), self.iter().copied());
    }
    fn decode(input: &mut &[u8]) -> Self {
        let mut set = std::collections::BTreeSet::new();
        read_delta_seq(input, |v| {
            set.insert(v);
        });
        set
    }
}

/// An append-only interner over **packed byte encodings**: the
/// [`PackedCodec`] twin of [`StateTable`].
///
/// States are stored as concatenated encodings in one contiguous byte
/// arena plus an end-offset per state; the open-addressing index maps
/// byte-string hashes to ids and dedups by byte equality (canonical
/// encodings make that state equality). Per-state overhead is
/// `bytes + 8 (end) + 8 (hash) + ~4.6 (index)` — for zoo states whose
/// structs run 50–150 bytes plus queue allocations, the packed arena is
/// several times smaller and the hasher touches a handful of bytes
/// instead of walking a struct.
///
/// **Disk spill** (optional): with a nonzero `spill_threshold`, the
/// resident byte arena is appended to an unlinked temp file whenever it
/// exceeds the threshold, keeping only the tail in memory. Offsets are
/// logical (stream-absolute), reads go through positional I/O
/// (`read_at`), so lookups and decodes keep working — duplicate probes
/// touch the file only on a full hash match, which true duplicates are.
pub struct PackedTable<H = FxBuildHasher> {
    /// Resident suffix of the logical byte stream.
    bytes: Vec<u8>,
    /// Absolute end offset of each state's encoding in the stream.
    ends: Vec<u64>,
    /// Cached byte-string hash per state.
    hashes: Vec<u64>,
    /// Open-addressing index; `EMPTY` marks a free slot.
    table: Vec<u32>,
    hasher: H,
    /// Logical offset of `bytes[0]` (== bytes already spilled).
    base: u64,
    /// Spill file (created lazily) and the resident-size threshold that
    /// triggers spilling; `0` disables the spill path entirely.
    spill: Option<std::fs::File>,
    spill_threshold: usize,
}

impl Default for PackedTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PackedTable {
    /// An empty packed arena with the deterministic fx hasher and no
    /// spill.
    #[must_use]
    pub fn new() -> Self {
        Self::with_hasher(FxBuildHasher)
    }
}

impl<H: BuildHasher> PackedTable<H> {
    /// An empty packed arena using `hasher` for byte-string hashes.
    pub fn with_hasher(hasher: H) -> Self {
        PackedTable {
            bytes: Vec::new(),
            ends: Vec::new(),
            hashes: Vec::new(),
            table: Vec::new(),
            hasher,
            base: 0,
            spill: None,
            spill_threshold: 0,
        }
    }

    /// Enables disk spill: whenever the resident byte arena exceeds
    /// `threshold` bytes it is appended to an unlinked temp file and the
    /// in-memory copy is dropped. `0` disables spilling.
    #[must_use]
    pub fn with_spill_threshold(mut self, threshold: usize) -> Self {
        self.spill_threshold = threshold;
        self
    }

    /// Number of distinct states interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// `true` if nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// The hash this table assigns to an encoding (for claim-time
    /// front-ends sharing the hasher).
    #[must_use]
    pub fn hash_bytes(&self, encoded: &[u8]) -> u64 {
        self.hasher.hash_one(encoded)
    }

    /// The id of the state with this canonical encoding, if interned.
    /// `hash` **must** equal [`hash_bytes`](Self::hash_bytes) of
    /// `encoded`.
    #[must_use]
    pub fn lookup(&self, hash: u64, encoded: &[u8]) -> Option<u32> {
        debug_assert_eq!(
            hash,
            self.hasher.hash_one(encoded),
            "prehashed hash mismatch"
        );
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let slot = self.table[i];
            if slot == EMPTY {
                return None;
            }
            let idx = slot as usize;
            if self.hashes[idx] == hash && self.bytes_eq(idx, encoded) {
                return Some(slot);
            }
            i = (i + 1) & mask;
        }
    }

    /// Interns an encoding, returning its id and whether it was new.
    /// Same `hash` contract as [`lookup`](Self::lookup).
    pub fn intern(&mut self, hash: u64, encoded: &[u8]) -> (u32, bool) {
        if let Some(id) = self.lookup(hash, encoded) {
            return (id, false);
        }
        let id = u32::try_from(self.ends.len()).expect("packed arena overflowed u32 ids");
        self.bytes.extend_from_slice(encoded);
        self.ends.push(self.base + self.bytes.len() as u64);
        self.hashes.push(hash);
        if self.table.is_empty() || (self.ends.len() + 1) * 8 > self.table.len() * 7 {
            self.grow();
        } else {
            Self::place_in(&mut self.table, hash, id);
        }
        if self.spill_threshold > 0 && self.bytes.len() >= self.spill_threshold {
            self.spill_resident();
        }
        (id, true)
    }

    /// Runs `f` over the stored encoding of state `idx`, reading it back
    /// from the spill file when it is no longer resident.
    pub fn with_bytes<R>(&self, idx: u32, f: impl FnOnce(&[u8]) -> R) -> R {
        let (start, end) = self.span(idx);
        if start >= self.base {
            let lo = (start - self.base) as usize;
            let hi = (end - self.base) as usize;
            f(&self.bytes[lo..hi])
        } else {
            let mut buf = vec![0u8; (end - start) as usize];
            self.spill
                .as_ref()
                .expect("offset below base implies a spill file")
                .read_exact_at(&mut buf, start)
                .expect("spill read failed");
            f(&buf)
        }
    }

    /// Decodes state `idx`.
    #[must_use]
    pub fn decode<S: PackedCodec>(&self, idx: u32) -> S {
        self.with_bytes(idx, |mut b| {
            let s = S::decode(&mut b);
            debug_assert!(b.is_empty(), "encoding not fully consumed");
            s
        })
    }

    /// Resident bytes: byte arena, offsets, cached hashes, and index
    /// slots. Spilled bytes are excluded — they are on disk, which is
    /// the point; see [`spilled_bytes`](Self::spilled_bytes).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.bytes.capacity()
            + self.ends.capacity() * std::mem::size_of::<u64>()
            + self.hashes.capacity() * std::mem::size_of::<u64>()
            + self.table.capacity() * std::mem::size_of::<u32>()
    }

    /// Bytes moved to the spill file so far.
    #[must_use]
    pub fn spilled_bytes(&self) -> u64 {
        self.base
    }

    fn span(&self, idx: u32) -> (u64, u64) {
        let i = idx as usize;
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        (start, self.ends[i])
    }

    fn bytes_eq(&self, idx: usize, encoded: &[u8]) -> bool {
        let (start, end) = self.span(idx as u32);
        if end - start != encoded.len() as u64 {
            return false;
        }
        self.with_bytes(idx as u32, |b| b == encoded)
    }

    fn spill_resident(&mut self) {
        if self.spill.is_none() {
            self.spill = Some(unlinked_temp_file());
        }
        let file = self.spill.as_ref().expect("just created");
        file.write_all_at(&self.bytes, self.base)
            .expect("spill write failed");
        self.base += self.bytes.len() as u64;
        self.bytes.clear();
    }

    fn place_in(table: &mut [u32], hash: u64, id: u32) {
        let mask = table.len() - 1;
        let mut i = (hash as usize) & mask;
        while table[i] != EMPTY {
            i = (i + 1) & mask;
        }
        table[i] = id;
    }

    fn grow(&mut self) {
        let cap = (self.table.len() * 2).max(16);
        self.table.clear();
        self.table.resize(cap, EMPTY);
        for (idx, &hash) in self.hashes.iter().enumerate() {
            Self::place_in(&mut self.table, hash, idx as u32);
        }
    }
}

impl<H> std::fmt::Debug for PackedTable<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedTable")
            .field("len", &self.ends.len())
            .field("resident_bytes", &self.bytes.len())
            .field("spilled_bytes", &self.base)
            .finish_non_exhaustive()
    }
}

/// Creates an anonymous (already-unlinked) temp file: readable and
/// writable through the handle, invisible in the filesystem, reclaimed
/// by the OS when the handle drops — no cleanup path needed.
fn unlinked_temp_file() -> std::fs::File {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "ioa-packed-{}-{}.spill",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create_new(true)
        .open(&path)
        .expect("failed to create spill file");
    std::fs::remove_file(&path).expect("failed to unlink spill file");
    file
}

/// A sequence of (possibly repeating) states stored as ids over a private
/// interner — the memory shape of a recorded execution.
///
/// The impossibility engines replay long executions and keep *every*
/// per-step component state for the §7 equivalence checks; consecutive
/// steps usually leave a given component untouched, so interning collapses
/// the sequence to its handful of distinct states plus 4 bytes per step.
#[derive(Debug)]
pub struct InternedSeq<S, H = RandomState> {
    table: StateTable<S, H>,
    ids: Vec<StateId>,
}

impl<S: Hash + Eq> InternedSeq<S> {
    /// An empty sequence.
    #[must_use]
    pub fn new() -> Self {
        InternedSeq {
            table: StateTable::new(),
            ids: Vec::new(),
        }
    }
}

impl<S: Hash + Eq> Default for InternedSeq<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Hash + Eq, H: BuildHasher> InternedSeq<S, H> {
    /// Appends a state to the sequence, interning it.
    pub fn push(&mut self, state: S) {
        let (id, _) = self.table.intern(state);
        self.ids.push(id);
    }

    /// Sequence length (in steps, not distinct states).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if the sequence has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The state at position `k`.
    #[must_use]
    pub fn get(&self, k: usize) -> &S {
        self.table.get(self.ids[k])
    }

    /// The last state, if any.
    #[must_use]
    pub fn last(&self) -> Option<&S> {
        self.ids.last().map(|&id| self.table.get(id))
    }

    /// The id at position `k` — equal ids mean equal states, so §7's
    /// repeated-state scans compare 4-byte ids instead of full states.
    #[must_use]
    pub fn id_at(&self, k: usize) -> StateId {
        self.ids[k]
    }

    /// Appends a stuttering step: the last entry repeats without hashing
    /// or cloning the state. This is the common case when recording one
    /// component of a composed execution — every step of the *other*
    /// components leaves this one untouched.
    ///
    /// # Panics
    ///
    /// If the sequence is empty (there is nothing to repeat).
    pub fn repeat_last(&mut self) {
        let id = *self.ids.last().expect("repeat_last on an empty sequence");
        self.ids.push(id);
    }

    /// Number of distinct states in the sequence.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.table.len()
    }

    /// Approximate resident bytes: the backing [`StateTable`] plus 4
    /// bytes per recorded step. Same lower-bound caveat as
    /// [`StateTable::approx_bytes`].
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.table.approx_bytes() + self.ids.capacity() * std::mem::size_of::<StateId>()
    }
}

impl<S: Hash + Eq, H: BuildHasher> std::ops::Index<usize> for InternedSeq<S, H> {
    type Output = S;
    fn index(&self, k: usize) -> &S {
        self.get(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_ids_are_dense() {
        let mut t = StateTable::new();
        let (a, fresh_a) = t.intern("alpha".to_string());
        let (b, fresh_b) = t.intern("beta".to_string());
        let (a2, fresh_a2) = t.intern("alpha".to_string());
        assert!(fresh_a && fresh_b && !fresh_a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!((a.0, b.0), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a), "alpha");
        assert_eq!(t.get(b), "beta");
    }

    #[test]
    fn lookup_without_insertion() {
        let mut t = StateTable::new();
        assert_eq!(t.lookup(&7u64), None);
        let (id, _) = t.intern(7u64);
        assert_eq!(t.lookup(&7u64), Some(id));
        assert_eq!(t.lookup(&8u64), None);
    }

    #[test]
    fn intern_ref_clones_only_on_miss() {
        let mut t = StateTable::new();
        let s = vec![1u8, 2, 3];
        let (id, fresh) = t.intern_ref(&s);
        assert!(fresh);
        let (id2, fresh2) = t.intern_ref(&s);
        assert!(!fresh2);
        assert_eq!(id, id2);
    }

    #[test]
    fn survives_growth_past_initial_capacity() {
        let mut t = StateTable::new();
        let ids: Vec<StateId> = (0..10_000u64).map(|n| t.intern(n).0).collect();
        assert_eq!(t.len(), 10_000);
        for (n, id) in ids.iter().enumerate() {
            assert_eq!(*t.get(*id), n as u64);
            assert_eq!(t.lookup(&(n as u64)), Some(*id));
        }
        // Ids are insertion-dense.
        assert!(ids.iter().enumerate().all(|(i, id)| id.index() == i));
    }

    #[test]
    fn absorb_remaps_and_preserves_existing_ids() {
        let mut base = StateTable::new();
        let (a, _) = base.intern("a".to_string());
        let (b, _) = base.intern("b".to_string());

        let mut shard = StateTable::new();
        shard.intern("b".to_string());
        shard.intern("c".to_string());

        let remap = base.absorb(shard);
        assert_eq!(remap[0], b, "duplicate keeps the pre-existing id");
        assert_eq!(remap[1].index(), 2, "fresh state appended");
        assert_eq!(base.get(a), "a");
        assert_eq!(base.len(), 3);
    }

    #[test]
    fn interned_seq_collapses_repeats() {
        let mut seq = InternedSeq::new();
        for k in [0u8, 0, 1, 0, 1, 1, 2] {
            seq.push(k);
        }
        assert_eq!(seq.len(), 7);
        assert_eq!(seq.distinct(), 3);
        assert_eq!(seq[3], 0);
        assert_eq!(seq.last(), Some(&2));
        assert_eq!(seq.id_at(2), seq.id_at(4), "equal states share an id");
        assert_ne!(seq.id_at(0), seq.id_at(6));
    }

    #[test]
    fn approx_bytes_is_nonzero_once_populated() {
        let mut t = StateTable::new();
        t.intern(1u64);
        assert!(t.approx_bytes() >= std::mem::size_of::<u64>());
    }

    #[test]
    fn repeat_last_stutters_without_new_entries() {
        let mut seq = InternedSeq::new();
        seq.push("s0".to_string());
        seq.repeat_last();
        seq.repeat_last();
        seq.push("s1".to_string());
        seq.repeat_last();
        assert_eq!(seq.len(), 5);
        assert_eq!(seq.distinct(), 2);
        assert_eq!(seq.id_at(0), seq.id_at(2));
        assert_eq!(seq.id_at(3), seq.id_at(4));
        assert_eq!(seq[1], "s0");
        assert_eq!(seq.last(), Some(&"s1".to_string()));
        assert!(seq.approx_bytes() >= 5 * std::mem::size_of::<StateId>());
    }

    #[test]
    #[should_panic(expected = "repeat_last on an empty sequence")]
    fn repeat_last_panics_on_empty() {
        InternedSeq::<u8>::new().repeat_last();
    }

    #[test]
    fn fx_hasher_is_deterministic_and_spreads() {
        let h = FxBuildHasher;
        assert_eq!(h.hash_one(42u64), h.hash_one(42u64));
        assert_ne!(h.hash_one(42u64), h.hash_one(43u64));
        // Byte-slice path: length is folded in, so a zero-padded tail
        // does not collide with its extension.
        assert_ne!(h.hash_one([0xabu8, 0xcd]), h.hash_one([0xabu8, 0xcd, 0x00]));
        // Two processes (two builder values) agree — the determinism
        // that makes fx-backed tables shard- and replay-stable.
        assert_eq!(FxBuildHasher.hash_one(7u32), FxBuildHasher.hash_one(7u32));
    }

    #[test]
    fn fx_backed_table_assigns_stable_dense_ids() {
        let mut a: StateTable<u64, FxBuildHasher> = StateTable::default();
        let mut b: StateTable<u64, FxBuildHasher> = StateTable::default();
        for n in 0..1000u64 {
            assert_eq!(a.intern(n * 17), b.intern(n * 17));
        }
        assert_eq!(a.len(), 1000);
        assert!((0..1000u64).all(|n| a.lookup(&(n * 17)) == b.lookup(&(n * 17))));
    }

    #[test]
    fn cloned_table_is_independent() {
        let mut t: StateTable<u64, FxBuildHasher> = StateTable::default();
        let (id, _) = t.intern(5);
        let mut c = t.clone();
        let (id2, fresh) = c.intern(5);
        assert_eq!(id, id2);
        assert!(!fresh);
        c.intern(6);
        assert_eq!(c.len(), 2);
        assert_eq!(t.len(), 1, "clone growth must not touch the original");
        assert_eq!(t.lookup(&6), None);
    }

    #[test]
    fn varint_roundtrips_at_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            16_383,
            16_384,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            let mut r = out.as_slice();
            assert_eq!(read_varint(&mut r), v);
            assert!(r.is_empty());
        }
        // Small values take one byte — the whole point.
        let mut out = Vec::new();
        write_varint(&mut out, 42);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn zigzag_roundtrips_and_keeps_small_magnitudes_small() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert!(zigzag(-1) < 128, "small negatives must stay one byte");
    }

    #[test]
    fn delta_seq_roundtrips_sorted_sets() {
        let vals = [3u64, 9, 10, 500, 501];
        let mut out = Vec::new();
        write_delta_seq(&mut out, vals.len(), vals.iter().copied());
        let mut back = Vec::new();
        let mut r = out.as_slice();
        read_delta_seq(&mut r, |v| back.push(v));
        assert!(r.is_empty());
        assert_eq!(back, vals);
        // Empty sequence is fine too.
        let mut out = Vec::new();
        write_delta_seq(&mut out, 0, std::iter::empty());
        let mut r = out.as_slice();
        read_delta_seq(&mut r, |_| panic!("no values expected"));
        assert!(r.is_empty());
    }

    #[test]
    fn composite_codecs_roundtrip() {
        fn rt<T: PackedCodec + PartialEq + std::fmt::Debug>(v: T) {
            let mut out = Vec::new();
            v.encode(&mut out);
            let mut r = out.as_slice();
            assert_eq!(T::decode(&mut r), v);
            assert!(r.is_empty(), "encoding must be self-delimiting");
        }
        rt(Option::<u64>::None);
        rt(Some(7u64));
        rt(vec![1u32, 2, 3]);
        rt(VecDeque::from([true, false, true]));
        rt((5u8, vec![9u64]));
        rt((Some(1u16), VecDeque::<u64>::new()));
        rt(-12i64);
        rt(3usize);
    }

    #[test]
    fn packed_table_dedups_and_decodes() {
        let mut t = PackedTable::new();
        let mut enc = Vec::new();
        vec![1u64, 2, 3].encode(&mut enc);
        let h = t.hash_bytes(&enc);
        let (a, fresh) = t.intern(h, &enc);
        assert!(fresh);
        let (a2, fresh2) = t.intern(h, &enc);
        assert!(!fresh2);
        assert_eq!(a, a2);
        assert_eq!(t.lookup(h, &enc), Some(a));
        assert_eq!(t.decode::<Vec<u64>>(a), vec![1, 2, 3]);
        assert_eq!(t.len(), 1);
        assert!(t.approx_bytes() > 0);
        assert_eq!(t.spilled_bytes(), 0);
    }

    #[test]
    fn packed_table_survives_growth_with_dense_ids() {
        let mut t = PackedTable::new();
        let mut enc = Vec::new();
        for n in 0..5_000u64 {
            enc.clear();
            (n, n.wrapping_mul(3)).encode(&mut enc);
            let h = t.hash_bytes(&enc);
            let (id, fresh) = t.intern(h, &enc);
            assert!(fresh);
            assert_eq!(id as u64, n, "ids are insertion-dense");
        }
        for n in 0..5_000u64 {
            assert_eq!(t.decode::<(u64, u64)>(n as u32), (n, n.wrapping_mul(3)));
        }
    }

    #[test]
    fn packed_table_spills_and_reads_back() {
        let mut t = PackedTable::new().with_spill_threshold(256);
        let mut enc = Vec::new();
        let mut hashes = Vec::new();
        for n in 0..2_000u64 {
            enc.clear();
            vec![n, n + 1, n + 2].encode(&mut enc);
            let h = t.hash_bytes(&enc);
            hashes.push(h);
            assert!(t.intern(h, &enc).1);
        }
        assert!(t.spilled_bytes() > 0, "threshold must have triggered");
        // Every state decodes back, resident or spilled.
        for n in 0..2_000u64 {
            assert_eq!(t.decode::<Vec<u64>>(n as u32), vec![n, n + 1, n + 2]);
        }
        // Duplicate probes across the spill boundary still dedup.
        for n in (0..2_000u64).step_by(97) {
            enc.clear();
            vec![n, n + 1, n + 2].encode(&mut enc);
            let (id, fresh) = t.intern(hashes[n as usize], &enc);
            assert!(!fresh);
            assert_eq!(id as u64, n);
        }
    }

    #[test]
    fn reserve_presizes_without_changing_ids() {
        let mut plain: StateTable<u64, FxBuildHasher> = StateTable::default();
        let mut reserved: StateTable<u64, FxBuildHasher> = StateTable::default();
        reserved.reserve(10_000);
        let bytes_before = reserved.approx_bytes();
        for n in 0..10_000u64 {
            assert_eq!(plain.intern(n).0, reserved.intern(n).0);
        }
        assert_eq!(
            reserved.approx_bytes(),
            bytes_before,
            "a fully reserved table must not reallocate during ingest"
        );
        // Reserving on a non-empty table keeps existing ids valid.
        let mut t: StateTable<u64, FxBuildHasher> = StateTable::default();
        let (early, _) = t.intern(1);
        t.reserve(5000);
        assert_eq!(t.lookup(&1), Some(early));
    }
}
