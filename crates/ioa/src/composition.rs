//! Composition of strongly compatible automata (paper §2.5).
//!
//! We provide *binary* composition [`Compose2`]; n-ary composition is
//! obtained by nesting (composition is associative up to state-tuple
//! re-bracketing, which is all the paper's proofs need). Each step of the
//! composition consists of every component that has the action in its
//! signature taking that action simultaneously, while the others' states are
//! unchanged.

use std::fmt;
use std::ops::ControlFlow;

use crate::action::ActionClass;
use crate::automaton::{Automaton, TaskId};
use crate::execution::Execution;

/// Product state of a binary composition.
///
/// A plain pair with readable `Debug` output; fields are public because the
/// impossibility engines inspect and splice component states, mirroring the
/// paper's `s[i]` notation.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Pair<S, T> {
    /// State of the left component.
    pub left: S,
    /// State of the right component.
    pub right: T,
}

impl<S, T> Pair<S, T> {
    /// Creates a product state.
    pub fn new(left: S, right: T) -> Self {
        Pair { left, right }
    }
}

impl<S: fmt::Debug, T: fmt::Debug> fmt::Debug for Pair<S, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}, {:?})", self.left, self.right)
    }
}

impl<S: crate::intern::PackedCodec, T: crate::intern::PackedCodec> crate::intern::PackedCodec
    for Pair<S, T>
{
    fn encode(&self, out: &mut Vec<u8>) {
        self.left.encode(out);
        self.right.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Self {
        Pair {
            left: S::decode(input),
            right: T::decode(input),
        }
    }
}

/// Why two automata failed the strong-compatibility check (paper §2.5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompatibilityError<A> {
    /// The action is an output of both components.
    SharedOutput(A),
    /// The action is internal to one component but in the signature of the
    /// other.
    InternalShared(A),
}

impl<A: fmt::Debug> fmt::Display for CompatibilityError<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompatibilityError::SharedOutput(a) => {
                write!(f, "action {a:?} is an output of both components")
            }
            CompatibilityError::InternalShared(a) => write!(
                f,
                "action {a:?} is internal to one component but shared with the other"
            ),
        }
    }
}

impl<A: fmt::Debug> std::error::Error for CompatibilityError<A> {}

/// The composition `L × R` of two (strongly compatible) automata over the
/// same action universe.
///
/// The composite signature follows §2.5.1: an action is an *output* if it is
/// an output of either component, *internal* if internal to either, and an
/// *input* if it is an input of some component and an output of none.
/// Task ids of the right component are shifted by `left.task_count()` so the
/// composite partition is the disjoint union of the component partitions.
///
/// Strong compatibility is **checked per action on demand** (the action
/// universe may be infinite): [`Compose2::check_compatible`] validates a
/// sample of actions, and every `classify` call asserts compatibility for
/// the action it sees in debug builds.
#[derive(Clone)]
pub struct Compose2<L, R> {
    left: L,
    right: R,
}

impl<L, R, A> Compose2<L, R>
where
    A: Clone + Eq + fmt::Debug,
    L: Automaton<Action = A>,
    R: Automaton<Action = A>,
{
    /// Composes two automata. Compatibility is not exhaustively checkable
    /// (the action universe may be infinite); use
    /// [`check_compatible`](Compose2::check_compatible) to validate a
    /// sample.
    pub fn new(left: L, right: R) -> Self {
        Compose2 { left, right }
    }

    /// The left component.
    pub fn left(&self) -> &L {
        &self.left
    }

    /// The right component.
    pub fn right(&self) -> &R {
        &self.right
    }

    /// Checks strong compatibility on the given sample of actions.
    ///
    /// # Errors
    ///
    /// Returns the first [`CompatibilityError`] found.
    pub fn check_compatible(&self, sample: &[A]) -> Result<(), CompatibilityError<A>> {
        for a in sample {
            let l = self.left.classify(a);
            let r = self.right.classify(a);
            if l == Some(ActionClass::Output) && r == Some(ActionClass::Output) {
                return Err(CompatibilityError::SharedOutput(a.clone()));
            }
            if (l == Some(ActionClass::Internal) && r.is_some())
                || (r == Some(ActionClass::Internal) && l.is_some())
            {
                return Err(CompatibilityError::InternalShared(a.clone()));
            }
        }
        Ok(())
    }

    /// Projects an execution of the composition onto the left component
    /// (Lemma 2.2): keeps steps whose action is in the left signature and
    /// maps states to their left halves.
    pub fn project_left(
        &self,
        exec: &Execution<A, Pair<L::State, R::State>>,
    ) -> Execution<A, L::State> {
        let mut out = Execution::new(exec.first_state().left.clone());
        for step in exec.steps() {
            if self.left.in_signature(&step.action) {
                out.push_unchecked(step.action.clone(), step.post.left.clone());
            }
        }
        out
    }

    /// Projects an execution of the composition onto the right component
    /// (Lemma 2.2).
    pub fn project_right(
        &self,
        exec: &Execution<A, Pair<L::State, R::State>>,
    ) -> Execution<A, R::State> {
        let mut out = Execution::new(exec.first_state().right.clone());
        for step in exec.steps() {
            if self.right.in_signature(&step.action) {
                out.push_unchecked(step.action.clone(), step.post.right.clone());
            }
        }
        out
    }
}

impl<L, R, A> Automaton for Compose2<L, R>
where
    A: Clone + Eq + fmt::Debug,
    L: Automaton<Action = A>,
    R: Automaton<Action = A>,
{
    type Action = A;
    type State = Pair<L::State, R::State>;

    fn start_states(&self) -> Vec<Self::State> {
        let rs = self.right.start_states();
        self.left
            .start_states()
            .into_iter()
            .flat_map(|l| rs.iter().map(move |r| Pair::new(l.clone(), r.clone())))
            .collect()
    }

    fn classify(&self, action: &A) -> Option<ActionClass> {
        let l = self.left.classify(action);
        let r = self.right.classify(action);
        debug_assert!(
            !(l == Some(ActionClass::Output) && r == Some(ActionClass::Output)),
            "strong compatibility violated: {action:?} is an output of both components"
        );
        debug_assert!(
            !((l == Some(ActionClass::Internal) && r.is_some())
                || (r == Some(ActionClass::Internal) && l.is_some())),
            "strong compatibility violated: {action:?} is internal to one component but shared"
        );
        match (l, r) {
            (None, None) => None,
            (Some(ActionClass::Internal), _) | (_, Some(ActionClass::Internal)) => {
                Some(ActionClass::Internal)
            }
            (Some(ActionClass::Output), _) | (_, Some(ActionClass::Output)) => {
                Some(ActionClass::Output)
            }
            _ => Some(ActionClass::Input),
        }
    }

    fn successors(&self, state: &Self::State, action: &A) -> Vec<Self::State> {
        let in_l = self.left.in_signature(action);
        let in_r = self.right.in_signature(action);
        match (in_l, in_r) {
            (false, false) => vec![],
            (true, false) => self
                .left
                .successors(&state.left, action)
                .into_iter()
                .map(|l| Pair::new(l, state.right.clone()))
                .collect(),
            (false, true) => self
                .right
                .successors(&state.right, action)
                .into_iter()
                .map(|r| Pair::new(state.left.clone(), r))
                .collect(),
            (true, true) => {
                let ls = self.left.successors(&state.left, action);
                let rs = self.right.successors(&state.right, action);
                ls.into_iter()
                    .flat_map(|l| rs.iter().map(move |r| Pair::new(l.clone(), r.clone())))
                    .collect()
            }
        }
    }

    fn enabled_local(&self, state: &Self::State) -> Vec<A> {
        let mut out: Vec<A> = Vec::new();
        for a in self.left.enabled_local(&state.left) {
            // A locally-controlled action of L is enabled in the composite
            // only if every component having it in its signature can take it;
            // R can only have it as an input (strong compatibility), and
            // inputs are always enabled, but we check defensively.
            if !self.right.in_signature(&a) || self.right.is_enabled(&state.right, &a) {
                out.push(a);
            }
        }
        for a in self.right.enabled_local(&state.right) {
            if (!self.left.in_signature(&a) || self.left.is_enabled(&state.left, &a))
                && !out.contains(&a)
            {
                out.push(a);
            }
        }
        out
    }

    fn try_for_each_successor(
        &self,
        state: &Self::State,
        action: &A,
        f: &mut dyn FnMut(Self::State) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        // Mirrors `successors` exactly — same product states, same (left
        // outer, right inner) order — without materializing per-component
        // successor lists or the full cross product.
        let in_l = self.left.in_signature(action);
        let in_r = self.right.in_signature(action);
        match (in_l, in_r) {
            (false, false) => ControlFlow::Continue(()),
            (true, false) => self
                .left
                .try_for_each_successor(&state.left, action, &mut |l| {
                    f(Pair::new(l, state.right.clone()))
                }),
            (false, true) => self
                .right
                .try_for_each_successor(&state.right, action, &mut |r| {
                    f(Pair::new(state.left.clone(), r))
                }),
            (true, true) => self
                .left
                .try_for_each_successor(&state.left, action, &mut |l| {
                    self.right
                        .try_for_each_successor(&state.right, action, &mut |r| {
                            f(Pair::new(l.clone(), r))
                        })
                }),
        }
    }

    fn is_enabled(&self, state: &Self::State, action: &A) -> bool {
        // The cross product is non-empty iff both factors are, so the
        // composite never needs to build a single `Pair` to decide
        // enabledness — this was the hot path's worst offender (the
        // shared-action arm materialized |L|·|R| product states).
        let in_l = self.left.in_signature(action);
        let in_r = self.right.in_signature(action);
        match (in_l, in_r) {
            (false, false) => false,
            (true, false) => self.left.is_enabled(&state.left, action),
            (false, true) => self.right.is_enabled(&state.right, action),
            (true, true) => {
                self.left.is_enabled(&state.left, action)
                    && self.right.is_enabled(&state.right, action)
            }
        }
    }

    fn for_each_enabled_local(
        &self,
        state: &Self::State,
        f: &mut dyn FnMut(A) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        // Same order as `enabled_local`: left's enabled actions (filtered
        // by the defensive other-side check), then right's. The Vec path
        // also dedups right-side actions against the left's — a case strong
        // compatibility makes unreachable (an action locally controlled on
        // one side is at most an *input* on the other, and `enabled_local`
        // returns locally-controlled actions only), so the callback form
        // omits it.
        self.left.for_each_enabled_local(&state.left, &mut |a| {
            if !self.right.in_signature(&a) || self.right.is_enabled(&state.right, &a) {
                f(a)?;
            }
            ControlFlow::Continue(())
        })?;
        self.right.for_each_enabled_local(&state.right, &mut |a| {
            if !self.left.in_signature(&a) || self.left.is_enabled(&state.left, &a) {
                f(a)?;
            }
            ControlFlow::Continue(())
        })
    }

    fn task_of(&self, action: &A) -> TaskId {
        if self
            .left
            .classify(action)
            .is_some_and(ActionClass::is_locally_controlled)
        {
            self.left.task_of(action)
        } else {
            TaskId(self.left.task_count() + self.right.task_of(action).0)
        }
    }

    fn task_count(&self) -> usize {
        self.left.task_count() + self.right.task_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Producer emits `Mid(n)` (output), consumer takes `Mid(n)` (input) and
    /// emits `Out(n)`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Act {
        Go,
        Mid(u8),
        Out(u8),
    }

    #[derive(Clone)]
    struct Producer;
    impl Automaton for Producer {
        type Action = Act;
        type State = Option<u8>;

        fn start_states(&self) -> Vec<Self::State> {
            vec![None]
        }
        fn classify(&self, a: &Act) -> Option<ActionClass> {
            match a {
                Act::Go => Some(ActionClass::Input),
                Act::Mid(_) => Some(ActionClass::Output),
                Act::Out(_) => None,
            }
        }
        fn successors(&self, s: &Self::State, a: &Act) -> Vec<Self::State> {
            match a {
                Act::Go => vec![Some(7)],
                Act::Mid(n) if *s == Some(*n) => vec![None],
                _ => vec![],
            }
        }
        fn enabled_local(&self, s: &Self::State) -> Vec<Act> {
            s.iter().map(|n| Act::Mid(*n)).collect()
        }
        fn task_of(&self, _a: &Act) -> TaskId {
            TaskId(0)
        }
        fn task_count(&self) -> usize {
            1
        }
    }

    #[derive(Clone)]
    struct Consumer;
    impl Automaton for Consumer {
        type Action = Act;
        type State = Option<u8>;

        fn start_states(&self) -> Vec<Self::State> {
            vec![None]
        }
        fn classify(&self, a: &Act) -> Option<ActionClass> {
            match a {
                Act::Mid(_) => Some(ActionClass::Input),
                Act::Out(_) => Some(ActionClass::Output),
                Act::Go => None,
            }
        }
        fn successors(&self, s: &Self::State, a: &Act) -> Vec<Self::State> {
            match a {
                Act::Mid(n) => vec![Some(*n)],
                Act::Out(n) if *s == Some(*n) => vec![None],
                _ => vec![],
            }
        }
        fn enabled_local(&self, s: &Self::State) -> Vec<Act> {
            s.iter().map(|n| Act::Out(*n)).collect()
        }
        fn task_of(&self, _a: &Act) -> TaskId {
            TaskId(0)
        }
        fn task_count(&self) -> usize {
            1
        }
    }

    fn pipeline() -> Compose2<Producer, Consumer> {
        Compose2::new(Producer, Consumer)
    }

    #[test]
    fn composite_signature() {
        let c = pipeline();
        assert_eq!(c.classify(&Act::Go), Some(ActionClass::Input));
        // Mid is an output of Producer and input of Consumer => output.
        assert_eq!(c.classify(&Act::Mid(1)), Some(ActionClass::Output));
        assert_eq!(c.classify(&Act::Out(1)), Some(ActionClass::Output));
    }

    #[test]
    fn compatibility_check() {
        let c = pipeline();
        assert!(c
            .check_compatible(&[Act::Go, Act::Mid(0), Act::Out(0)])
            .is_ok());
        // Producer composed with itself shares the Mid output.
        let bad = Compose2::new(Producer, Producer);
        assert_eq!(
            bad.check_compatible(&[Act::Mid(0)]),
            Err(CompatibilityError::SharedOutput(Act::Mid(0)))
        );
    }

    #[test]
    fn shared_action_steps_both() {
        let c = pipeline();
        let s0 = c.start_states().remove(0);
        let s1 = c.step_first(&s0, &Act::Go).unwrap();
        assert_eq!(s1.left, Some(7));
        assert_eq!(s1.right, None);
        let s2 = c.step_first(&s1, &Act::Mid(7)).unwrap();
        assert_eq!(s2.left, None);
        assert_eq!(s2.right, Some(7));
        let s3 = c.step_first(&s2, &Act::Out(7)).unwrap();
        assert_eq!(s3.right, None);
    }

    #[test]
    fn enabled_local_unions_components() {
        let c = pipeline();
        let s0 = c.start_states().remove(0);
        assert!(c.enabled_local(&s0).is_empty());
        let s1 = c.step_first(&s0, &Act::Go).unwrap();
        assert_eq!(c.enabled_local(&s1), vec![Act::Mid(7)]);
    }

    #[test]
    fn task_ids_shift() {
        let c = pipeline();
        assert_eq!(c.task_count(), 2);
        assert_eq!(c.task_of(&Act::Mid(0)), TaskId(0));
        assert_eq!(c.task_of(&Act::Out(0)), TaskId(1));
    }

    #[test]
    fn projection_yields_component_executions() {
        let c = pipeline();
        let mut e = Execution::new(c.start_states().remove(0));
        assert!(e.push(&c, Act::Go, 0));
        assert!(e.push(&c, Act::Mid(7), 0));
        assert!(e.push(&c, Act::Out(7), 0));

        let pl = c.project_left(&e);
        assert_eq!(pl.schedule(), vec![Act::Go, Act::Mid(7)]);
        assert_eq!(pl.validate(&Producer), Ok(()));

        let pr = c.project_right(&e);
        assert_eq!(pr.schedule(), vec![Act::Mid(7), Act::Out(7)]);
        assert_eq!(pr.validate(&Consumer), Ok(()));
    }

    #[test]
    fn compatibility_error_display() {
        let e = CompatibilityError::SharedOutput(Act::Mid(1));
        assert!(e.to_string().contains("output of both"));
        let e = CompatibilityError::InternalShared(Act::Go);
        assert!(e.to_string().contains("internal"));
    }
}
