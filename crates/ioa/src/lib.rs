//! Executable input/output automata.
//!
//! This crate implements the I/O automaton model of Lynch and Tuttle
//! (\[LT87\], summarized in Section 2 of *The Data Link Layer: Two
//! Impossibility Results*, Lynch–Mansour–Fekete, PODC 1988) as a small,
//! dependency-light Rust kernel:
//!
//! * [`ActionClass`] / [`Signature`] — input, output, and internal action
//!   classification (§2.1 of the paper);
//! * [`Automaton`] — explicit-state, nondeterministic automata that are
//!   *input-enabled*: every input action is enabled in every state (§2.2);
//! * [`Execution`], schedules, and behaviors, with projection onto
//!   components (§2.2–2.3);
//! * task partitions and a *fair executor* that gives fair turns to every
//!   equivalence class of locally-controlled actions (§2.2);
//! * binary [`composition`] of strongly compatible automata, with the
//!   projection/pasting lemmas (Lemmas 2.2–2.4) available as runtime checks;
//! * the [`hiding`] operator `hide_Φ` (§2.6);
//! * [`ScheduleModule`] — problem specifications as sets of action
//!   sequences, with a finite-trace satisfaction verdict (§2.3–2.4).
//!
//! The kernel is deliberately *explicit-state*: states are ordinary cloneable
//! values and transitions are enumerable, so the same automaton definition
//! can be simulated, property-tested, and driven step-by-step by the
//! impossibility-proof engines in the `dl-impossibility` crate, which need to
//! *choose* particular nondeterministic successors.
//!
//! # Example
//!
//! ```
//! use ioa::{ActionClass, Automaton, TaskId};
//!
//! /// A one-place buffer: inputs `Put(n)`, outputs `Get(n)`.
//! #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
//! enum Act { Put(u32), Get(u32) }
//!
//! struct Buffer;
//!
//! impl Automaton for Buffer {
//!     type Action = Act;
//!     type State = Option<u32>;
//!
//!     fn start_states(&self) -> Vec<Self::State> { vec![None] }
//!
//!     fn classify(&self, a: &Act) -> Option<ActionClass> {
//!         Some(match a {
//!             Act::Put(_) => ActionClass::Input,
//!             Act::Get(_) => ActionClass::Output,
//!         })
//!     }
//!
//!     fn successors(&self, s: &Self::State, a: &Act) -> Vec<Self::State> {
//!         match (s, a) {
//!             (_, Act::Put(n)) => vec![Some(*n)],            // input-enabled
//!             (Some(m), Act::Get(n)) if m == n => vec![None],
//!             _ => vec![],
//!         }
//!     }
//!
//!     fn enabled_local(&self, s: &Self::State) -> Vec<Act> {
//!         s.iter().map(|n| Act::Get(*n)).collect()
//!     }
//!
//!     fn task_of(&self, _a: &Act) -> TaskId { TaskId(0) }
//!     fn task_count(&self) -> usize { 1 }
//! }
//!
//! let b = Buffer;
//! let s0 = b.start_states()[0];
//! let s1 = b.successors(&s0, &Act::Put(7))[0];
//! assert_eq!(b.enabled_local(&s1), vec![Act::Get(7)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod automaton;
pub mod composition;
pub mod execution;
pub mod explore;
pub mod fairness;
pub mod hiding;
pub mod intern;
pub mod schedule_module;

pub use action::{ActionClass, Signature};
pub use automaton::{Automaton, TaskId};
pub use composition::{CompatibilityError, Compose2, Pair};
pub use execution::{Execution, Step};
pub use explore::{ExploreReport, Explorer};
pub use fairness::{EnvScript, FairExecutor, RunOutcome};
pub use hiding::Hide;
pub use intern::{InternedSeq, StateId, StateTable};
pub use schedule_module::{ScheduleModule, Verdict, Violation};
