//! The output-hiding operator `hide_Φ(A)` (paper §2.6).
//!
//! `hide_Φ(A)` is identical to `A` except that the outputs in `Φ` become
//! internal. In this paper it is used to hide the `send_pkt`/`receive_pkt`
//! actions of a data link implementation so that only data-link-layer
//! actions remain external (§5.2).

use std::ops::ControlFlow;

use crate::action::ActionClass;
use crate::automaton::{Automaton, TaskId};

/// Wraps an automaton, reclassifying a predicate-selected set of its output
/// actions as internal.
#[derive(Clone)]
pub struct Hide<M, F> {
    inner: M,
    hidden: F,
}

impl<M, F> Hide<M, F>
where
    M: Automaton,
    F: Fn(&M::Action) -> bool,
{
    /// Hides every output action of `inner` for which `hidden` returns
    /// `true`. Actions that are not outputs are unaffected even if the
    /// predicate selects them (the paper requires `Φ ⊆ out(A)`).
    pub fn new(inner: M, hidden: F) -> Self {
        Hide { inner, hidden }
    }

    /// The wrapped automaton.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Consumes the wrapper, returning the wrapped automaton.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M, F> Automaton for Hide<M, F>
where
    M: Automaton,
    F: Fn(&M::Action) -> bool,
{
    type Action = M::Action;
    type State = M::State;

    fn start_states(&self) -> Vec<Self::State> {
        self.inner.start_states()
    }

    fn classify(&self, action: &Self::Action) -> Option<ActionClass> {
        match self.inner.classify(action) {
            Some(ActionClass::Output) if (self.hidden)(action) => Some(ActionClass::Internal),
            other => other,
        }
    }

    fn successors(&self, state: &Self::State, action: &Self::Action) -> Vec<Self::State> {
        self.inner.successors(state, action)
    }

    fn enabled_local(&self, state: &Self::State) -> Vec<Self::Action> {
        self.inner.enabled_local(state)
    }

    fn task_of(&self, action: &Self::Action) -> TaskId {
        self.inner.task_of(action)
    }

    fn task_count(&self) -> usize {
        self.inner.task_count()
    }

    // Hiding only relabels the signature; the transition structure — and
    // therefore every hot-path method — delegates, so the inner automaton's
    // allocation-free overrides survive the wrapper.
    fn try_for_each_successor(
        &self,
        state: &Self::State,
        action: &Self::Action,
        f: &mut dyn FnMut(Self::State) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        self.inner.try_for_each_successor(state, action, f)
    }

    fn successors_into(
        &self,
        state: &Self::State,
        action: &Self::Action,
        out: &mut Vec<Self::State>,
    ) {
        self.inner.successors_into(state, action, out);
    }

    fn for_each_enabled_local(
        &self,
        state: &Self::State,
        f: &mut dyn FnMut(Self::Action) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        self.inner.for_each_enabled_local(state, f)
    }

    fn has_enabled_local(&self, state: &Self::State) -> bool {
        self.inner.has_enabled_local(state)
    }

    fn is_enabled(&self, state: &Self::State, action: &Self::Action) -> bool {
        self.inner.is_enabled(state, action)
    }

    fn step_first(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State> {
        self.inner.step_first(state, action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Act {
        In,
        OutA,
        OutB,
    }

    #[derive(Clone)]
    struct M;
    impl Automaton for M {
        type Action = Act;
        type State = u8;

        fn start_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn classify(&self, a: &Act) -> Option<ActionClass> {
            Some(match a {
                Act::In => ActionClass::Input,
                Act::OutA | Act::OutB => ActionClass::Output,
            })
        }
        fn successors(&self, s: &u8, _a: &Act) -> Vec<u8> {
            vec![*s]
        }
        fn enabled_local(&self, _s: &u8) -> Vec<Act> {
            vec![Act::OutA, Act::OutB]
        }
        fn task_of(&self, _a: &Act) -> TaskId {
            TaskId(0)
        }
        fn task_count(&self) -> usize {
            1
        }
    }

    #[test]
    fn hides_selected_outputs_only() {
        let h = Hide::new(M, |a: &Act| matches!(a, Act::OutA));
        assert_eq!(h.classify(&Act::OutA), Some(ActionClass::Internal));
        assert_eq!(h.classify(&Act::OutB), Some(ActionClass::Output));
        assert_eq!(h.classify(&Act::In), Some(ActionClass::Input));
    }

    #[test]
    fn does_not_hide_inputs() {
        let h = Hide::new(M, |_: &Act| true);
        // Predicate selects everything, but inputs stay inputs.
        assert_eq!(h.classify(&Act::In), Some(ActionClass::Input));
        assert_eq!(h.classify(&Act::OutA), Some(ActionClass::Internal));
    }

    #[test]
    fn dynamics_unchanged() {
        let h = Hide::new(M, |a: &Act| matches!(a, Act::OutA));
        assert_eq!(h.start_states(), vec![0]);
        assert_eq!(h.successors(&0, &Act::OutA), vec![0]);
        assert_eq!(h.enabled_local(&0), vec![Act::OutA, Act::OutB]);
        assert_eq!(h.task_count(), 1);
        assert_eq!(h.task_of(&Act::OutA), TaskId(0));
    }

    #[test]
    fn inner_accessors() {
        let h = Hide::new(M, |_: &Act| false);
        let _: &M = h.inner();
        let _: M = h.into_inner();
    }
}
