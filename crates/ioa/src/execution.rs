//! Executions, schedules, and behaviors (paper §2.2).
//!
//! An execution is an alternating sequence `s0 π1 s1 π2 … πn sn` of states
//! and actions such that every `(s_i, π_{i+1}, s_{i+1})` is a step. The
//! *schedule* is the action subsequence; the *behavior* is the subsequence
//! of external actions.

use std::fmt::Debug;
use std::ops::ControlFlow;

use crate::action::ActionClass;
use crate::automaton::Automaton;

/// `true` if `(state, action, post)` is a step of the automaton.
/// Short-circuits on the matching successor instead of collecting the
/// full list.
fn is_successor<M: Automaton>(
    automaton: &M,
    state: &M::State,
    action: &M::Action,
    post: &M::State,
) -> bool {
    automaton
        .try_for_each_successor(state, action, &mut |s| {
            if s == *post {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        })
        .is_break()
}

/// One step of an execution: the action taken and the post-state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step<A, S> {
    /// The action `π_{i+1}` of the step.
    pub action: A,
    /// The post-state `s_{i+1}`.
    pub post: S,
}

/// A finite execution fragment of an automaton: a start state followed by
/// steps.
///
/// The invariant that consecutive `(state, action, state)` triples are steps
/// of the automaton is maintained by constructing executions only through
/// [`Execution::new`] + [`Execution::push`] (checked) or by an executor that
/// itself only takes legal steps. [`Execution::validate`] re-checks the whole
/// fragment against an automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution<A, S> {
    first: S,
    steps: Vec<Step<A, S>>,
}

impl<A, S> Execution<A, S>
where
    A: Clone + Eq + Debug,
    S: Clone + Eq + Debug,
{
    /// Creates an execution fragment consisting of the single state `first`
    /// and no steps.
    pub fn new(first: S) -> Self {
        Execution {
            first,
            steps: Vec::new(),
        }
    }

    /// The first state of the fragment.
    pub fn first_state(&self) -> &S {
        &self.first
    }

    /// The final state of the fragment.
    pub fn last_state(&self) -> &S {
        self.steps.last().map_or(&self.first, |st| &st.post)
    }

    /// Number of steps (actions) in the fragment.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if the fragment contains no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The `i`-th state, `0 <= i <= len()`.
    ///
    /// # Panics
    ///
    /// Panics if `i > len()`.
    pub fn state(&self, i: usize) -> &S {
        if i == 0 {
            &self.first
        } else {
            &self.steps[i - 1].post
        }
    }

    /// The `i`-th action, `0 <= i < len()`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn action(&self, i: usize) -> &A {
        &self.steps[i].action
    }

    /// Iterates over the steps.
    pub fn steps(&self) -> impl Iterator<Item = &Step<A, S>> {
        self.steps.iter()
    }

    /// Appends a step by taking `action` from the current last state via the
    /// automaton, resolving nondeterminism with `choose` (an index into the
    /// successor list).
    ///
    /// Returns `false` (and leaves the execution unchanged) if the action is
    /// not enabled or `choose` is out of range.
    pub fn push<M>(&mut self, automaton: &M, action: A, choose: usize) -> bool
    where
        M: Automaton<Action = A, State = S>,
    {
        // Stream successors and stop at index `choose` — no full list.
        let mut seen = 0usize;
        let mut post = None;
        let _ = automaton.try_for_each_successor(self.last_state(), &action, &mut |s| {
            if seen == choose {
                post = Some(s);
                ControlFlow::Break(())
            } else {
                seen += 1;
                ControlFlow::Continue(())
            }
        });
        match post {
            Some(post) => {
                self.steps.push(Step { action, post });
                true
            }
            None => false,
        }
    }

    /// Appends a step with an explicitly chosen post-state, verifying it is
    /// a legal successor. Returns `false` if `(last, action, post)` is not a
    /// step of the automaton.
    pub fn push_to<M>(&mut self, automaton: &M, action: A, post: S) -> bool
    where
        M: Automaton<Action = A, State = S>,
    {
        if is_successor(automaton, self.last_state(), &action, &post) {
            self.steps.push(Step { action, post });
            true
        } else {
            false
        }
    }

    /// Appends a step **without** validating it against an automaton.
    ///
    /// Used when pasting projections back together (Lemma 2.3), where
    /// validity is established by the lemma rather than re-derived; call
    /// [`validate`](Execution::validate) afterwards in tests.
    pub fn push_unchecked(&mut self, action: A, post: S) {
        self.steps.push(Step { action, post });
    }

    /// The schedule `sched(α)`: the sequence of actions.
    pub fn schedule(&self) -> Vec<A> {
        self.steps.iter().map(|s| s.action.clone()).collect()
    }

    /// The behavior `beh(α)`: the subsequence of external actions, as
    /// classified by `automaton`.
    pub fn behavior<M>(&self, automaton: &M) -> Vec<A>
    where
        M: Automaton<Action = A, State = S>,
    {
        self.steps
            .iter()
            .map(|s| &s.action)
            .filter(|a| automaton.classify(a).is_some_and(ActionClass::is_external))
            .cloned()
            .collect()
    }

    /// Checks that every recorded step is a step of `automaton` and that the
    /// first state is a start state (i.e. this is an execution, not just a
    /// fragment). Returns the index of the first bad step, or `Err(None)` if
    /// the first state is not a start state.
    ///
    /// # Errors
    ///
    /// `Err(None)` — first state not in `start(A)`;
    /// `Err(Some(i))` — step `i` is not in `steps(A)`.
    pub fn validate<M>(&self, automaton: &M) -> Result<(), Option<usize>>
    where
        M: Automaton<Action = A, State = S>,
    {
        if !automaton.start_states().contains(&self.first) {
            return Err(None);
        }
        self.validate_fragment(automaton).map_err(Some)
    }

    /// Like [`validate`](Execution::validate) but does not require the first
    /// state to be a start state (checks an execution *fragment*).
    ///
    /// # Errors
    ///
    /// Returns the index of the first step that is not in `steps(A)`.
    pub fn validate_fragment<M>(&self, automaton: &M) -> Result<(), usize>
    where
        M: Automaton<Action = A, State = S>,
    {
        let mut cur = &self.first;
        for (i, step) in self.steps.iter().enumerate() {
            if !is_successor(automaton, cur, &step.action, &step.post) {
                return Err(i);
            }
            cur = &step.post;
        }
        Ok(())
    }

    /// Concatenates another fragment onto this one.
    ///
    /// # Panics
    ///
    /// Panics if `other`'s first state differs from this fragment's last
    /// state.
    pub fn extend_with(&mut self, other: Execution<A, S>) {
        assert_eq!(
            self.last_state(),
            other.first_state(),
            "execution fragments do not compose: last state != first state"
        );
        self.steps.extend(other.steps);
    }

    /// The suffix of this execution after its first `n` steps, as a
    /// fragment starting at state `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn suffix_from(&self, n: usize) -> Execution<A, S> {
        Execution {
            first: self.state(n).clone(),
            steps: self.steps[n..].to_vec(),
        }
    }

    /// The prefix consisting of the first `n` steps.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn prefix(&self, n: usize) -> Execution<A, S> {
        Execution {
            first: self.first.clone(),
            steps: self.steps[..n].to_vec(),
        }
    }
}

/// Projects a schedule onto the signature of one automaton: `β|A` keeps the
/// actions that are in `acts(A)` (paper §2.3, used throughout §7–8).
pub fn project_schedule<M: Automaton>(automaton: &M, schedule: &[M::Action]) -> Vec<M::Action> {
    schedule
        .iter()
        .filter(|a| automaton.in_signature(a))
        .cloned()
        .collect()
}

/// Restricts a schedule to its external actions under `automaton`'s
/// signature: `beh(β)`.
pub fn behavior_of_schedule<M: Automaton>(automaton: &M, schedule: &[M::Action]) -> Vec<M::Action> {
    schedule
        .iter()
        .filter(|a| automaton.classify(a).is_some_and(ActionClass::is_external))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::TaskId;

    #[derive(Clone)]
    struct Toggle;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Act {
        Flip,
        Obs(bool),
        Silent,
    }

    impl Automaton for Toggle {
        type Action = Act;
        type State = bool;

        fn start_states(&self) -> Vec<bool> {
            vec![false]
        }
        fn classify(&self, a: &Act) -> Option<ActionClass> {
            Some(match a {
                Act::Flip => ActionClass::Input,
                Act::Obs(_) => ActionClass::Output,
                Act::Silent => ActionClass::Internal,
            })
        }
        fn successors(&self, s: &bool, a: &Act) -> Vec<bool> {
            match a {
                Act::Flip => vec![!s],
                Act::Obs(b) if b == s => vec![*s],
                Act::Silent => vec![*s],
                Act::Obs(_) => vec![],
            }
        }
        fn enabled_local(&self, s: &bool) -> Vec<Act> {
            vec![Act::Obs(*s), Act::Silent]
        }
        fn task_of(&self, _a: &Act) -> TaskId {
            TaskId(0)
        }
        fn task_count(&self) -> usize {
            1
        }
    }

    fn sample() -> Execution<Act, bool> {
        let t = Toggle;
        let mut e = Execution::new(false);
        assert!(e.push(&t, Act::Flip, 0));
        assert!(e.push(&t, Act::Obs(true), 0));
        assert!(e.push(&t, Act::Silent, 0));
        e
    }

    #[test]
    fn construction_and_access() {
        let e = sample();
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
        assert!(!(*e.first_state()));
        assert!(*e.last_state());
        assert!(*e.state(1));
        assert_eq!(*e.action(0), Act::Flip);
    }

    #[test]
    fn rejects_disabled_action() {
        let t = Toggle;
        let mut e = Execution::new(false);
        assert!(!e.push(&t, Act::Obs(true), 0));
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn push_to_validates_successor() {
        let t = Toggle;
        let mut e = Execution::new(false);
        assert!(e.push_to(&t, Act::Flip, true));
        assert!(!e.push_to(&t, Act::Flip, true)); // flip from true goes to false
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn schedule_and_behavior() {
        let e = sample();
        assert_eq!(e.schedule(), vec![Act::Flip, Act::Obs(true), Act::Silent]);
        assert_eq!(e.behavior(&Toggle), vec![Act::Flip, Act::Obs(true)]);
    }

    #[test]
    fn validate_accepts_good_execution() {
        assert_eq!(sample().validate(&Toggle), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_start() {
        let mut e = Execution::new(true);
        e.push_unchecked(Act::Flip, false);
        assert_eq!(e.validate(&Toggle), Err(None));
        assert_eq!(e.validate_fragment(&Toggle), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_step() {
        let mut e = sample();
        e.push_unchecked(Act::Obs(false), true); // Obs(false) disabled in state true
        assert_eq!(e.validate(&Toggle), Err(Some(3)));
    }

    #[test]
    fn prefix_suffix_roundtrip() {
        let e = sample();
        let mut p = e.prefix(1);
        let s = e.suffix_from(1);
        assert_eq!(p.len(), 1);
        assert_eq!(s.len(), 2);
        p.extend_with(s);
        assert_eq!(p, e);
    }

    #[test]
    #[should_panic(expected = "do not compose")]
    fn extend_with_mismatched_states_panics() {
        let mut a = Execution::<Act, bool>::new(false);
        let b = Execution::<Act, bool>::new(true);
        a.extend_with(b);
    }

    #[test]
    fn projection_helpers() {
        let sched = vec![Act::Flip, Act::Silent, Act::Obs(true)];
        assert_eq!(project_schedule(&Toggle, &sched), sched);
        assert_eq!(
            behavior_of_schedule(&Toggle, &sched),
            vec![Act::Flip, Act::Obs(true)]
        );
    }
}
