//! Bounded state-space exploration: exhaustive verification on small
//! models.
//!
//! The impossibility engines of this workspace *construct* specific bad
//! executions; the [`Explorer`] complements them by exhaustively checking
//! *all* executions of a finite fragment of the system: breadth-first
//! search over reachable states, following every locally-controlled action
//! and every environment input the caller permits, checking a state
//! invariant, and returning a minimal counterexample path when it fails.
//!
//! Typical uses in this workspace:
//!
//! * verify that a protocol composed with a bounded channel *never*
//!   violates data-link safety in crash-free runs (no seed-dependence —
//!   all interleavings);
//! * re-discover the crash vulnerability by adding `crash` to the allowed
//!   inputs and watching the invariant break on a shortest path.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::ops::ControlFlow;

use crate::automaton::Automaton;

/// Result of an exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport<A, S> {
    /// Number of distinct states visited.
    pub states_visited: usize,
    /// `true` if the search stopped because a limit was hit (state or
    /// depth budget), so absence of a violation is not conclusive.
    pub truncated: bool,
    /// A shortest action path to an invariant-violating state, with that
    /// state, if one was found.
    pub violation: Option<(Vec<A>, S)>,
    /// States with no locally-controlled action enabled and no permitted
    /// input (terminal under this exploration).
    pub quiescent_states: usize,
}

impl<A, S> ExploreReport<A, S> {
    /// `true` if the search enumerated every reachable state (no budget
    /// truncation), so its verdict is conclusive for the full model.
    #[must_use]
    pub fn exhaustive(&self) -> bool {
        !self.truncated
    }

    /// `true` if no violation was found among the states the budget
    /// admitted — the weaker, budget-relative safety verdict. A truncated
    /// search can still be `safe_within_budget`; callers that need a
    /// conclusive answer must also check [`exhaustive`](Self::exhaustive).
    #[must_use]
    pub fn safe_within_budget(&self) -> bool {
        self.violation.is_none()
    }

    /// `true` if the invariant held on every visited state **and** the
    /// search was exhaustive: the strong verdict,
    /// [`safe_within_budget`](Self::safe_within_budget) ∧
    /// [`exhaustive`](Self::exhaustive).
    #[must_use]
    pub fn holds(&self) -> bool {
        self.safe_within_budget() && self.exhaustive()
    }
}

/// Breadth-first explorer over an automaton's reachable states.
///
/// ```
/// use ioa::{ActionClass, Automaton, Explorer, TaskId};
///
/// /// Counter that wraps at 4; invariant "never reaches 3" fails.
/// #[derive(Clone)]
/// struct C;
/// impl Automaton for C {
///     type Action = ();
///     type State = u8;
///     fn start_states(&self) -> Vec<u8> { vec![0] }
///     fn classify(&self, _: &()) -> Option<ActionClass> { Some(ActionClass::Output) }
///     fn successors(&self, s: &u8, _: &()) -> Vec<u8> { vec![(s + 1) % 4] }
///     fn enabled_local(&self, _: &u8) -> Vec<()> { vec![()] }
///     fn task_of(&self, _: &()) -> TaskId { TaskId(0) }
///     fn task_count(&self) -> usize { 1 }
/// }
///
/// let explorer = Explorer::new(C, |_s: &u8| vec![], 100, 100);
/// let report = explorer.check_invariant(|s| *s != 3);
/// let (path, state) = report.violation.unwrap();
/// assert_eq!(state, 3);
/// assert_eq!(path.len(), 3); // the shortest path
/// ```
pub struct Explorer<M, I> {
    automaton: M,
    /// Environment inputs permitted in a given state.
    inputs: I,
    max_states: usize,
    max_depth: usize,
}

impl<M, I> Explorer<M, I>
where
    M: Automaton,
    M::State: Hash,
    I: Fn(&M::State) -> Vec<M::Action>,
{
    /// Creates an explorer. `inputs(state)` returns the environment input
    /// actions to consider from `state` (return an empty vector for a
    /// closed system).
    pub fn new(automaton: M, inputs: I, max_states: usize, max_depth: usize) -> Self {
        Explorer {
            automaton,
            inputs,
            max_states,
            max_depth,
        }
    }

    /// Explores breadth-first from the automaton's start states, checking
    /// `invariant` on every state encountered (start states included).
    /// Returns at the first violation with a shortest path to it.
    pub fn check_invariant(
        &self,
        invariant: impl Fn(&M::State) -> bool,
    ) -> ExploreReport<M::Action, M::State> {
        self.check_invariant_from(self.automaton.start_states(), invariant)
    }

    /// Like [`check_invariant`](Self::check_invariant) but explores from
    /// the given states instead of the automaton's start states — useful
    /// when a fixed environment prefix (e.g. waking the media) should be
    /// applied before exploration begins.
    pub fn check_invariant_from(
        &self,
        starts: Vec<M::State>,
        invariant: impl Fn(&M::State) -> bool,
    ) -> ExploreReport<M::Action, M::State> {
        // Map from visited state to (parent index, action from parent).
        let mut order: Vec<M::State> = Vec::new();
        let mut meta: Vec<(usize, Option<M::Action>, usize)> = Vec::new(); // (parent, action, depth)
        let mut index: HashMap<M::State, usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut truncated = false;
        let mut quiescent = 0usize;

        for s in starts {
            if index.contains_key(&s) {
                continue;
            }
            let id = order.len();
            index.insert(s.clone(), id);
            order.push(s);
            meta.push((id, None, 0));
            queue.push_back(id);
        }

        // Check invariant on starts first.
        for id in 0..order.len() {
            if !invariant(&order[id]) {
                return ExploreReport {
                    states_visited: order.len(),
                    truncated: false,
                    violation: Some((vec![], order[id].clone())),
                    quiescent_states: 0,
                };
            }
        }

        while let Some(id) = queue.pop_front() {
            let depth = meta[id].2;
            if depth >= self.max_depth {
                truncated = true;
                continue;
            }
            let state = order[id].clone();
            let mut actions = self.automaton.enabled_local(&state);
            let extra = (self.inputs)(&state);
            let had_moves = !actions.is_empty() || !extra.is_empty();
            actions.extend(extra);
            if !had_moves {
                quiescent += 1;
                continue;
            }
            for a in actions {
                // Successors stream through the callback — no per-action
                // successor vector is materialized.
                let mut violating: Option<(usize, M::State)> = None;
                let flow = self
                    .automaton
                    .try_for_each_successor(&state, &a, &mut |succ| {
                        if index.contains_key(&succ) {
                            return ControlFlow::Continue(());
                        }
                        if order.len() >= self.max_states {
                            truncated = true;
                            return ControlFlow::Continue(());
                        }
                        let sid = order.len();
                        index.insert(succ.clone(), sid);
                        order.push(succ.clone());
                        meta.push((id, Some(a.clone()), depth + 1));
                        if !invariant(&succ) {
                            violating = Some((sid, succ));
                            return ControlFlow::Break(());
                        }
                        queue.push_back(sid);
                        ControlFlow::Continue(())
                    });
                if flow.is_break() {
                    let (sid, succ) = violating.expect("break implies a recorded violation");
                    // Reconstruct the path.
                    let mut path = Vec::new();
                    let mut cur = sid;
                    while let (parent, Some(action), _) = &meta[cur] {
                        path.push(action.clone());
                        cur = *parent;
                    }
                    path.reverse();
                    return ExploreReport {
                        states_visited: order.len(),
                        truncated,
                        violation: Some((path, succ)),
                        quiescent_states: quiescent,
                    };
                }
            }
        }

        ExploreReport {
            states_visited: order.len(),
            truncated,
            violation: None,
            quiescent_states: quiescent,
        }
    }

    /// Counts reachable states (invariant `true`), for sizing studies.
    pub fn reachable_states(&self) -> ExploreReport<M::Action, M::State> {
        self.check_invariant(|_| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionClass;
    use crate::automaton::TaskId;

    /// Counter modulo `n` with an input `Bump` and output `Tick`; the
    /// invariant "value != target" breaks at depth `target`.
    #[derive(Clone)]
    struct Counter {
        n: u8,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Act {
        Bump,
        Tick,
    }

    impl Automaton for Counter {
        type Action = Act;
        type State = u8;

        fn start_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn classify(&self, a: &Act) -> Option<ActionClass> {
            Some(match a {
                Act::Bump => ActionClass::Input,
                Act::Tick => ActionClass::Output,
            })
        }
        fn successors(&self, s: &u8, a: &Act) -> Vec<u8> {
            match a {
                Act::Bump => vec![(s + 1) % self.n],
                Act::Tick => {
                    if s.is_multiple_of(2) {
                        vec![(s + 2) % self.n]
                    } else {
                        vec![]
                    }
                }
            }
        }
        fn enabled_local(&self, s: &u8) -> Vec<Act> {
            if s.is_multiple_of(2) {
                vec![Act::Tick]
            } else {
                vec![]
            }
        }
        fn task_of(&self, _a: &Act) -> TaskId {
            TaskId(0)
        }
        fn task_count(&self) -> usize {
            1
        }
    }

    #[test]
    fn finds_shortest_violation_path() {
        let e = Explorer::new(Counter { n: 10 }, |_s: &u8| vec![Act::Bump], 1000, 100);
        let report = e.check_invariant(|s| *s != 3);
        let (path, state) = report.violation.expect("3 is reachable");
        assert_eq!(state, 3);
        // Shortest: Tick (0→2) then Bump (2→3), or Bump,Bump,Bump — BFS
        // finds a 2-step path.
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn exhaustive_hold() {
        let e = Explorer::new(Counter { n: 10 }, |_s: &u8| vec![Act::Bump], 1000, 100);
        let report = e.check_invariant(|s| *s < 10);
        assert!(report.holds());
        assert!(report.exhaustive() && report.safe_within_budget());
        assert_eq!(report.states_visited, 10);
        assert!(!report.truncated);
    }

    #[test]
    fn closed_system_quiesces_on_odd_states() {
        // No inputs allowed: from 0, Tick reaches only even states; odd
        // states are unreachable and evens never quiesce (Tick always
        // enabled) except... all even states have Tick enabled, so no
        // quiescent state exists.
        let e = Explorer::new(Counter { n: 10 }, |_s: &u8| vec![], 1000, 100);
        let report = e.reachable_states();
        assert_eq!(report.states_visited, 5); // evens only
        assert_eq!(report.quiescent_states, 0);
        assert!(report.holds());
    }

    #[test]
    fn state_budget_truncates() {
        let e = Explorer::new(Counter { n: 100 }, |_s: &u8| vec![Act::Bump], 5, 100);
        let report = e.reachable_states();
        assert!(report.truncated);
        assert!(!report.holds());
        // The split verdicts: inconclusive but no violation seen.
        assert!(!report.exhaustive());
        assert!(report.safe_within_budget());
        assert!(report.states_visited <= 5);
    }

    #[test]
    fn depth_budget_truncates() {
        let e = Explorer::new(Counter { n: 100 }, |_s: &u8| vec![Act::Bump], 1000, 3);
        let report = e.reachable_states();
        assert!(report.truncated);
        // Depth 3 from 0 reaches at most ~7 states.
        assert!(report.states_visited <= 8);
    }

    #[test]
    fn violated_start_state_gives_empty_path() {
        let e = Explorer::new(Counter { n: 10 }, |_s: &u8| vec![], 1000, 100);
        let report = e.check_invariant(|s| *s != 0);
        let (path, state) = report.violation.unwrap();
        assert!(path.is_empty());
        assert_eq!(state, 0);
    }
}
