//! Action classification and action signatures (paper §2.1).
//!
//! An *action signature* partitions a set of actions into pairwise-disjoint
//! input, output, and internal sets. Because our automata work over a shared
//! concrete action universe (an `enum` in practice), a signature here is a
//! classification function: each action of the universe is either not in the
//! signature at all ([`Signature::classify`] returns `None`) or belongs to
//! exactly one [`ActionClass`].

use std::fmt;

/// The class of an action within a signature: input, output, or internal.
///
/// External actions are the inputs and outputs; locally-controlled actions
/// are the outputs and internals (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionClass {
    /// Action controlled by the environment; enabled in every state.
    Input,
    /// Locally-controlled action visible to the environment.
    Output,
    /// Locally-controlled action invisible to the environment.
    Internal,
}

impl ActionClass {
    /// Returns `true` for [`ActionClass::Input`] and [`ActionClass::Output`].
    #[must_use]
    pub fn is_external(self) -> bool {
        matches!(self, ActionClass::Input | ActionClass::Output)
    }

    /// Returns `true` for [`ActionClass::Output`] and
    /// [`ActionClass::Internal`] — the locally-controlled actions.
    #[must_use]
    pub fn is_locally_controlled(self) -> bool {
        matches!(self, ActionClass::Output | ActionClass::Internal)
    }

    /// The class's canonical lowercase name, as rendered by `Display`
    /// and emitted into the TLA+ action-atom tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ActionClass::Input => "input",
            ActionClass::Output => "output",
            ActionClass::Internal => "internal",
        }
    }
}

impl fmt::Display for ActionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Boxed classification function stored inside a [`Signature`].
type ClassifyFn<A> = Box<dyn Fn(&A) -> Option<ActionClass> + Send + Sync>;

/// A reified action signature: a classification function over a shared
/// action universe `A`.
///
/// Most code interrogates an automaton's signature through
/// [`crate::Automaton::classify`]; `Signature` exists for code that needs a
/// signature *detached* from an automaton — e.g. the composition operator
/// computes the composite signature (paper §2.5.1), and schedule modules
/// carry a signature of their own (§2.3).
pub struct Signature<A> {
    classify: ClassifyFn<A>,
}

impl<A> Signature<A> {
    /// Creates a signature from a classification function.
    ///
    /// The function must be a *partition*: for a fixed action it must always
    /// return the same class. (This is trivially true for pure functions.)
    pub fn new(classify: impl Fn(&A) -> Option<ActionClass> + Send + Sync + 'static) -> Self {
        Signature {
            classify: Box::new(classify),
        }
    }

    /// Classifies an action, or returns `None` if the action is not in the
    /// signature.
    #[must_use]
    pub fn classify(&self, action: &A) -> Option<ActionClass> {
        (self.classify)(action)
    }

    /// Returns `true` if the action belongs to the signature.
    #[must_use]
    pub fn contains(&self, action: &A) -> bool {
        self.classify(action).is_some()
    }

    /// Returns `true` if the action is an external (input or output) action
    /// of this signature.
    #[must_use]
    pub fn is_external(&self, action: &A) -> bool {
        self.classify(action).is_some_and(ActionClass::is_external)
    }

    /// The external action signature obtained by dropping internal actions
    /// (used when a schedule module has "the same external action signature"
    /// as an automaton, §2.4).
    #[must_use]
    pub fn external(self) -> Signature<A>
    where
        A: 'static,
    {
        let inner = self.classify;
        Signature::new(move |a| match inner(a) {
            Some(ActionClass::Internal) | None => None,
            some => some,
        })
    }

    /// Memoizes classification over a sampled action table.
    ///
    /// Detached signatures accrete boxed-closure layers (composition
    /// chains, [`external`](Signature::external) wrappers, automaton
    /// captures); on a per-action hot path that dispatch is pure overhead,
    /// since for an enum universe the classes of the recurring actions are
    /// a finite table. `memoized` evaluates the signature once for every
    /// sampled action and answers subsequent `classify` calls for those
    /// actions from the table; unsampled actions fall through to the
    /// original classification chain, so the signature's meaning is
    /// unchanged.
    #[must_use]
    pub fn memoized(self, sample: impl IntoIterator<Item = A>) -> Signature<A>
    where
        A: std::hash::Hash + Eq + Send + Sync + 'static,
    {
        let inner = self.classify;
        let table: std::collections::HashMap<A, Option<ActionClass>> = sample
            .into_iter()
            .map(|a| {
                let class = inner(&a);
                (a, class)
            })
            .collect();
        Signature::new(move |a| match table.get(a) {
            Some(&class) => class,
            None => inner(a),
        })
    }
}

impl<A> fmt::Debug for Signature<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Signature").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(ActionClass::Input.is_external());
        assert!(ActionClass::Output.is_external());
        assert!(!ActionClass::Internal.is_external());
        assert!(!ActionClass::Input.is_locally_controlled());
        assert!(ActionClass::Output.is_locally_controlled());
        assert!(ActionClass::Internal.is_locally_controlled());
    }

    #[test]
    fn class_display() {
        assert_eq!(ActionClass::Input.to_string(), "input");
        assert_eq!(ActionClass::Output.to_string(), "output");
        assert_eq!(ActionClass::Internal.to_string(), "internal");
    }

    #[test]
    fn signature_classifies() {
        let sig = Signature::new(|a: &i32| match a {
            0 => Some(ActionClass::Input),
            1 => Some(ActionClass::Output),
            2 => Some(ActionClass::Internal),
            _ => None,
        });
        assert_eq!(sig.classify(&0), Some(ActionClass::Input));
        assert!(sig.contains(&1));
        assert!(!sig.contains(&3));
        assert!(sig.is_external(&1));
        assert!(!sig.is_external(&2));
        assert!(!sig.is_external(&3));
    }

    #[test]
    fn memoized_signature_agrees_with_original_and_falls_through() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let calls = Arc::new(AtomicUsize::new(0));
        let counted = Arc::clone(&calls);
        let sig = Signature::new(move |a: &i32| {
            counted.fetch_add(1, Ordering::Relaxed);
            match a {
                0 => Some(ActionClass::Input),
                1 => Some(ActionClass::Output),
                2 => Some(ActionClass::Internal),
                _ => None,
            }
        })
        .memoized(0..=3);
        let after_build = calls.load(Ordering::Relaxed);
        assert_eq!(after_build, 4, "each sampled action classified once");

        // Sampled actions (including a sampled non-member) answer from the
        // table without re-entering the closure chain.
        assert_eq!(sig.classify(&0), Some(ActionClass::Input));
        assert_eq!(sig.classify(&1), Some(ActionClass::Output));
        assert_eq!(sig.classify(&2), Some(ActionClass::Internal));
        assert_eq!(sig.classify(&3), None);
        assert_eq!(calls.load(Ordering::Relaxed), after_build);

        // Unsampled actions fall through, preserving the signature.
        assert_eq!(sig.classify(&42), None);
        assert_eq!(calls.load(Ordering::Relaxed), after_build + 1);
    }

    #[test]
    fn external_signature_drops_internals() {
        let sig = Signature::new(|a: &i32| match a {
            0 => Some(ActionClass::Input),
            2 => Some(ActionClass::Internal),
            _ => None,
        })
        .external();
        assert_eq!(sig.classify(&0), Some(ActionClass::Input));
        assert_eq!(sig.classify(&2), None);
    }
}
